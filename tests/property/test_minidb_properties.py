"""Property-based tests (hypothesis) for minidb invariants."""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.minidb import Database, UniqueViolation
from repro.minidb.lexer import tokenize
from repro.minidb.parser import parse

names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)

#: words the parser treats as syntax: generated identifiers colliding with
#: these produce legitimately unparseable statements (latent flake found by
#: Hypothesis, e.g. ``SELECT distinct FROM is``)
_RESERVED = {
    "select", "from", "where", "as", "is", "distinct", "all", "and", "or",
    "not", "group", "by", "having", "order", "limit", "offset", "union",
    "intersect", "except", "join", "inner", "left", "right", "cross", "on",
    "null", "true", "false", "like", "ilike", "in", "between", "exists",
    "case", "when", "then", "else", "end", "cast", "asc", "desc", "values",
}
identifiers = names.filter(lambda s: s not in _RESERVED)
ints = st.integers(min_value=-10_000, max_value=10_000)
floats = st.floats(allow_nan=False, allow_infinity=False, width=32)
texts = st.text(
    alphabet=string.ascii_letters + string.digits + " '_-", max_size=20
)


def fresh_db():
    db = Database(owner="admin")
    session = db.connect("admin")
    session.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT, s TEXT)")
    return db, session


class TestInsertSelectRoundTrip:
    @given(rows=st.lists(st.tuples(ints, texts), max_size=25, unique_by=lambda r: r[0]))
    @settings(max_examples=40, deadline=None)
    def test_everything_inserted_comes_back(self, rows):
        db, session = fresh_db()
        for pk, (value, text) in enumerate(rows):
            escaped = text.replace("'", "''")
            session.execute(
                f"INSERT INTO t VALUES ({pk}, {value}, '{escaped}')"
            )
        result = session.execute("SELECT id, v, s FROM t ORDER BY id")
        assert [(r[1], r[2]) for r in result.rows] == [
            (value, text) for value, text in rows
        ]

    @given(values=st.lists(ints, min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_aggregates_match_python(self, values):
        db, session = fresh_db()
        for index, value in enumerate(values):
            session.execute(f"INSERT INTO t (id, v) VALUES ({index}, {value})")
        total, count, low, high = session.execute(
            "SELECT SUM(v), COUNT(v), MIN(v), MAX(v) FROM t"
        ).rows[0]
        assert total == sum(values)
        assert count == len(values)
        assert low == min(values)
        assert high == max(values)

    @given(values=st.lists(ints, min_size=1, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_where_filter_matches_python(self, values):
        db, session = fresh_db()
        for index, value in enumerate(values):
            session.execute(f"INSERT INTO t (id, v) VALUES ({index}, {value})")
        kept = session.execute("SELECT v FROM t WHERE v > 0").rows
        assert sorted(r[0] for r in kept) == sorted(v for v in values if v > 0)

    @given(values=st.lists(ints, min_size=1, max_size=25))
    @settings(max_examples=30, deadline=None)
    def test_order_by_sorts(self, values):
        db, session = fresh_db()
        for index, value in enumerate(values):
            session.execute(f"INSERT INTO t (id, v) VALUES ({index}, {value})")
        result = [r[0] for r in session.execute("SELECT v FROM t ORDER BY v").rows]
        assert result == sorted(values)

    @given(
        values=st.lists(ints, min_size=1, max_size=25),
        limit=st.integers(min_value=0, max_value=30),
        offset=st.integers(min_value=0, max_value=30),
    )
    @settings(max_examples=30, deadline=None)
    def test_limit_offset_slicing(self, values, limit, offset):
        db, session = fresh_db()
        for index, value in enumerate(values):
            session.execute(f"INSERT INTO t (id, v) VALUES ({index}, {value})")
        rows = session.execute(
            f"SELECT v FROM t ORDER BY id LIMIT {limit} OFFSET {offset}"
        ).rows
        assert [r[0] for r in rows] == values[offset : offset + limit]


class TestTransactionInvariants:
    @given(
        updates=st.lists(st.tuples(st.integers(0, 9), ints), max_size=15),
    )
    @settings(max_examples=30, deadline=None)
    def test_rollback_always_restores_snapshot(self, updates):
        db, session = fresh_db()
        for index in range(10):
            session.execute(f"INSERT INTO t (id, v) VALUES ({index}, {index})")
        before = db.snapshot()
        session.execute("BEGIN")
        for target, value in updates:
            session.execute(f"UPDATE t SET v = {value} WHERE id = {target}")
        session.execute("ROLLBACK")
        assert db.snapshot() == before

    @given(
        deletions=st.lists(st.integers(0, 9), max_size=10, unique=True),
        inserts=st.lists(st.integers(100, 120), max_size=10, unique=True),
    )
    @settings(max_examples=30, deadline=None)
    def test_commit_equals_replay(self, deletions, inserts):
        db1, s1 = fresh_db()
        db2, s2 = fresh_db()
        for index in range(10):
            s1.execute(f"INSERT INTO t (id, v) VALUES ({index}, 0)")
            s2.execute(f"INSERT INTO t (id, v) VALUES ({index}, 0)")
        # transactional on db1, autocommit on db2 — same final state
        s1.execute("BEGIN")
        for pk in deletions:
            s1.execute(f"DELETE FROM t WHERE id = {pk}")
        for pk in inserts:
            s1.execute(f"INSERT INTO t (id, v) VALUES ({pk}, 1)")
        s1.execute("COMMIT")
        for pk in deletions:
            s2.execute(f"DELETE FROM t WHERE id = {pk}")
        for pk in inserts:
            s2.execute(f"INSERT INTO t (id, v) VALUES ({pk}, 1)")
        assert db1.snapshot() == db2.snapshot()

    @given(dup=st.integers(0, 5))
    @settings(max_examples=20, deadline=None)
    def test_pk_uniqueness_invariant(self, dup):
        db, session = fresh_db()
        for index in range(6):
            session.execute(f"INSERT INTO t (id, v) VALUES ({index}, 0)")
        with pytest.raises(UniqueViolation):
            session.execute(f"INSERT INTO t (id, v) VALUES ({dup}, 1)")
        ids = [r[0] for r in session.execute("SELECT id FROM t").rows]
        assert len(ids) == len(set(ids))


class TestLexerParserProperties:
    @given(texts)
    @settings(max_examples=60, deadline=None)
    def test_string_literal_round_trip(self, text):
        escaped = text.replace("'", "''")
        tokens = tokenize(f"'{escaped}'")
        assert tokens[0].value == text

    @given(ints)
    @settings(max_examples=40, deadline=None)
    def test_integer_literal_round_trip(self, value):
        stmt = parse(f"SELECT {value}" if value >= 0 else f"SELECT ({value})")
        db = Database(owner="a")
        result = db.connect("a").execute_statement(stmt)
        assert result.rows[0][0] == value

    @given(identifiers, identifiers)
    @settings(max_examples=40, deadline=None)
    def test_parse_never_crashes_on_select(self, table, column):
        stmt = parse(f"SELECT {column} FROM {table}")
        assert stmt.from_sources[0].name == table


class TestExpressionProperties:
    @given(a=ints, b=ints)
    @settings(max_examples=40, deadline=None)
    def test_arithmetic_matches_python(self, a, b):
        db = Database(owner="x")
        session = db.connect("x")
        result = session.scalar(f"SELECT ({a}) + ({b})")
        assert result == a + b

    @given(a=ints, b=ints)
    @settings(max_examples=40, deadline=None)
    def test_comparison_matches_python(self, a, b):
        db = Database(owner="x")
        session = db.connect("x")
        assert session.scalar(f"SELECT ({a}) < ({b})") == (a < b)

    @given(value=ints)
    @settings(max_examples=30, deadline=None)
    def test_null_propagation(self, value):
        db = Database(owner="x")
        session = db.connect("x")
        assert session.scalar(f"SELECT NULL + ({value})") is None
        assert session.scalar(f"SELECT NULL = ({value})") is None
