"""Property-based tests for core toolkit components."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import compile_transform, similarity, top_k
from repro.core.config import SecurityPolicy
from repro.core.transforms import TransformError
from repro.llm.tokenizer import count_tokens
from repro.mltools import minmax_normalize, train_test_split, zscore_normalize

words = st.text(alphabet=string.ascii_lowercase + " ", min_size=1, max_size=30)
numeric_rows = st.lists(
    st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=2,
        max_size=5,
    ),
    min_size=2,
    max_size=30,
).filter(lambda rows: len({len(r) for r in rows}) == 1)


class TestSimilarityProperties:
    @given(words)
    @settings(max_examples=60, deadline=None)
    def test_self_similarity_is_max(self, word):
        assert similarity(word.strip() or "x", word.strip() or "x") in (0.0, 1.0)

    @given(words, words)
    @settings(max_examples=60, deadline=None)
    def test_bounded(self, a, b):
        assert 0.0 <= similarity(a, b) <= 1.0

    @given(words, st.lists(words, min_size=1, max_size=10), st.integers(0, 12))
    @settings(max_examples=40, deadline=None)
    def test_top_k_size_and_order(self, key, values, k):
        ranked = top_k(key, values, k)
        assert len(ranked) == min(k, len(values))
        scores = [score for _, score in ranked]
        assert scores == sorted(scores, reverse=True)


class TestTransformProperties:
    @given(st.lists(st.integers(-100, 100), max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_identity_transform(self, data):
        assert compile_transform("lambda x: x")(data) == data

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_map_transform_matches_python(self, data):
        fn = compile_transform("lambda xs: [v * 2 + 1 for v in xs]")
        assert fn(data) == [v * 2 + 1 for v in data]

    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    @settings(max_examples=50, deadline=None)
    def test_arith_transform_matches_python(self, a, b):
        fn = compile_transform("lambda a, b: a + b * 2")
        assert fn(a, b) == a + b * 2

    @given(words)
    @settings(max_examples=30, deadline=None)
    def test_rejected_sources_never_execute(self, name):
        source = f"lambda x: __import__('{name}')"
        try:
            fn = compile_transform(source)
            fn(1)
        except TransformError:
            return
        raise AssertionError("dangerous transform was not rejected")


class TestTokenizerProperties:
    @given(words)
    @settings(max_examples=60, deadline=None)
    def test_non_negative(self, text):
        assert count_tokens(text) >= 0

    @given(words, words)
    @settings(max_examples=60, deadline=None)
    def test_superadditive_under_concat_with_space(self, a, b):
        # concatenation with a separator never costs less than the parts
        assert count_tokens(f"{a} {b}") >= max(count_tokens(a), count_tokens(b))

    @given(st.text(alphabet="x", min_size=1, max_size=400))
    @settings(max_examples=30, deadline=None)
    def test_single_chunk_ceiling_rule(self, text):
        expected = -(-len(text) // 4)
        assert count_tokens(text) == expected


class TestPolicyProperties:
    @given(st.sets(words, max_size=5), st.sets(words, max_size=5), words)
    @settings(max_examples=60, deadline=None)
    def test_blacklist_always_wins(self, whitelist, blacklist, probe):
        policy = SecurityPolicy(
            object_whitelist=frozenset(whitelist) or None,
            object_blacklist=frozenset(blacklist),
        )
        if probe.lower() in {b.lower() for b in blacklist}:
            assert not policy.permits_object(probe)

    @given(st.sets(words, min_size=1, max_size=5), words)
    @settings(max_examples=60, deadline=None)
    def test_whitelist_excludes_others(self, whitelist, probe):
        policy = SecurityPolicy(object_whitelist=frozenset(whitelist))
        if probe.lower() not in {w.lower() for w in whitelist}:
            assert not policy.permits_object(probe)


class TestPreprocessingProperties:
    @given(numeric_rows)
    @settings(max_examples=40, deadline=None)
    def test_zscore_preserves_shape(self, rows):
        out = zscore_normalize(rows)
        assert len(out) == len(rows)
        assert all(len(o) == len(rows[0]) for o in out)

    @given(numeric_rows)
    @settings(max_examples=40, deadline=None)
    def test_minmax_bounded(self, rows):
        out = minmax_normalize(rows, skip_last=False)
        for row in out:
            for value in row:
                assert -1e-9 <= value <= 1 + 1e-9

    @given(numeric_rows, st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_split_partitions_data(self, rows, seed):
        train, test = train_test_split(rows, 0.25, seed=seed)
        assert len(train) + len(test) == len(rows)
        combined = sorted(map(tuple, train + test))
        assert combined == sorted(map(tuple, rows))
