"""Property-based soundness tests for static SQL analysis.

The security of BridgeScope's object-level verification rests on one
property: **every object a statement touches appears in its analyzed
footprint**. These tests generate random statements over a known schema
and check the footprint covers exactly the touched tables, and that
analysis-level denial implies engine-level denial (no false negatives).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.minidb import Database, PermissionDenied, analyze, parse

TABLES = {
    "alpha": ["a1", "a2"],
    "beta": ["b1", "b2"],
    "gamma": ["g1", "g2"],
}

table_names = st.sampled_from(sorted(TABLES))


def make_db():
    db = Database(owner="admin")
    session = db.connect("admin")
    for table, columns in TABLES.items():
        cols = ", ".join(f"{c} INT" for c in columns)
        session.execute(f"CREATE TABLE {table} ({cols})")
        session.execute(
            f"INSERT INTO {table} ({columns[0]}, {columns[1]}) VALUES (1, 2)"
        )
    return db


@st.composite
def select_statements(draw):
    main = draw(table_names)
    use_join = draw(st.booleans())
    use_subquery = draw(st.booleans())
    tables = {main}
    sql = f"SELECT {TABLES[main][0]} FROM {main}"
    if use_join:
        other = draw(table_names)
        tables.add(other)
        sql = (
            f"SELECT {main}.{TABLES[main][0]} FROM {main} "
            f"JOIN {other} x ON {main}.{TABLES[main][0]} = x.{TABLES[other][0]}"
        )
    if use_subquery:
        inner = draw(table_names)
        tables.add(inner)
        sql += (
            f" WHERE {main}.{TABLES[main][1]} IN "
            f"(SELECT {TABLES[inner][0]} FROM {inner})"
        )
    return sql, tables


@st.composite
def write_statements(draw):
    table = draw(table_names)
    kind = draw(st.sampled_from(["insert", "update", "delete"]))
    c1, c2 = TABLES[table]
    if kind == "insert":
        return f"INSERT INTO {table} ({c1}, {c2}) VALUES (9, 9)", {table}, "INSERT"
    if kind == "update":
        return f"UPDATE {table} SET {c1} = 0 WHERE {c2} > 0", {table}, "UPDATE"
    return f"DELETE FROM {table} WHERE {c1} = 1", {table}, "DELETE"


class TestFootprintSoundness:
    @given(select_statements())
    @settings(max_examples=80, deadline=None)
    def test_select_footprint_covers_all_tables(self, case):
        sql, expected_tables = case
        analysis = analyze(parse(sql))
        assert set(analysis.objects()) == expected_tables
        assert analysis.is_read_only

    @given(write_statements())
    @settings(max_examples=60, deadline=None)
    def test_write_footprint_and_action(self, case):
        sql, expected_tables, action = case
        analysis = analyze(parse(sql))
        assert analysis.action == action
        write_objects = {
            obj for act, obj, _ in (
                (a.action, a.obj, a.columns) for a in analysis.accesses
            )
            if act == action
        }
        assert write_objects == expected_tables


class TestAnalysisEngineAgreement:
    """If analysis says user u touches table t with action a, then the
    engine's own privilege check agrees: denying (a, t) blocks the SQL."""

    @given(select_statements(), table_names)
    @settings(max_examples=50, deadline=None)
    def test_denied_table_blocks_execution(self, case, revoked):
        sql, tables = case
        db = make_db()
        db.create_user("u")
        admin = db.connect("admin")
        for table in TABLES:
            if table != revoked:
                admin.execute(f"GRANT SELECT ON {table} TO u")
        session = db.connect("u")
        analysis = analyze(parse(sql), db.catalog)
        if revoked in analysis.objects():
            with pytest.raises(PermissionDenied):
                session.execute(sql)
        else:
            session.execute(sql)  # must succeed

    @given(write_statements())
    @settings(max_examples=40, deadline=None)
    def test_readonly_user_blocked_from_all_writes(self, case):
        sql, _, _ = case
        db = make_db()
        db.create_user("reader")
        admin = db.connect("admin")
        for table in TABLES:
            admin.execute(f"GRANT SELECT ON {table} TO reader")
        with pytest.raises(PermissionDenied):
            db.connect("reader").execute(sql)
