"""Framework-level tests: suppression parsing and scoping, the baseline
ratchet, and the CLI contract (exit codes, output formats) the CI gate
depends on."""

import json
import textwrap

import pytest

from repro.staticcheck import Baseline, ModuleSource, check_module, run_paths
from repro.staticcheck.cli import main
from repro.staticcheck.core import Finding, MiniStaticError


def module(source, rel_path="src/repro/fixture.py"):
    return ModuleSource("fixture.py", textwrap.dedent(source), rel_path=rel_path)


BAD_HANDLER = """\
    def swallow():
        try:
            return risky()
        except Exception:
            return None
"""


# ---------------------------------------------------------- suppressions


def test_suppression_parses_rules_and_reason():
    mod = module(
        """\
        def swallow():
            try:
                return risky()
            except Exception:  # staticcheck: ignore[broad-except,cond-wait] — known-safe fixture
                return None
        """
    )
    (sup,) = mod.suppressions
    assert sup.rules == ("broad-except", "cond-wait")
    assert sup.reason == "known-safe fixture"
    assert sup.covers("broad-except", sup.line)
    assert not sup.covers("guarded-by", sup.line)


@pytest.mark.parametrize("separator", ["—", "–", "--", "-"])
def test_suppression_accepts_dash_variants(separator):
    mod = module(
        f"""\
        x = 1  # staticcheck: ignore[broad-except] {separator} some reason
        """
    )
    (sup,) = mod.suppressions
    assert sup.reason == "some reason"


def test_reasonless_suppression_is_itself_a_finding():
    mod = module(
        """\
        def swallow():
            try:
                return risky()
            except Exception:  # staticcheck: ignore[broad-except]
                return None
        """
    )
    result = check_module(mod)
    rules = [f.rule for f in result.findings]
    assert "suppression-format" in rules
    # the malformed suppression still silences its target (the gate fails
    # on the format finding instead, which points at the same line)
    assert "broad-except" not in rules


def test_standalone_suppression_covers_next_line():
    mod = module(
        """\
        def swallow():
            try:
                return risky()
            # staticcheck: ignore[broad-except] — standalone comment form
            except Exception:
                return None
        """
    )
    result = check_module(mod)
    assert [f.rule for f in result.findings] == []
    assert [f.rule for f in result.suppressed] == ["broad-except"]


def test_def_level_suppression_covers_whole_body():
    mod = module(
        """\
        # staticcheck: ignore[broad-except] — every handler in here is deliberate
        def swallow():
            try:
                first()
            except Exception:
                pass
            try:
                second()
            except Exception:
                pass
        """
    )
    result = check_module(mod)
    assert result.findings == []
    assert len(result.suppressed) == 2


def test_def_level_suppression_does_not_leak_to_siblings():
    mod = module(
        """\
        # staticcheck: ignore[broad-except] — covered
        def covered():
            try:
                first()
            except Exception:
                pass

        def uncovered():
            try:
                second()
            except Exception:
                pass
        """
    )
    result = check_module(mod)
    assert len(result.findings) == 1
    assert result.findings[0].context == "uncovered"


# -------------------------------------------------------------- baseline


def test_baseline_round_trip_and_covers(tmp_path):
    finding = Finding(
        rule="broad-except",
        path="src/repro/x.py",
        line=10,
        message="msg",
        context="C.m",
    )
    path = tmp_path / "baseline.json"
    Baseline.from_findings([finding]).save(str(path))
    loaded = Baseline.load(str(path))
    assert loaded.covers(finding)
    # line drift must not break the match: identity is line-independent
    moved = Finding(
        rule="broad-except",
        path="src/repro/x.py",
        line=99,
        message="msg",
        context="C.m",
    )
    assert loaded.covers(moved)
    other = Finding(
        rule="broad-except", path="src/repro/y.py", line=10, message="msg"
    )
    assert not loaded.covers(other)
    assert loaded.stale_entries([finding]) == []
    assert loaded.stale_entries([]) == [finding.key()]


def test_baseline_missing_file_is_empty(tmp_path):
    assert Baseline.load(str(tmp_path / "nope.json")).entries == set()


def test_baseline_bad_version_rejected(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 99, "findings": []}))
    with pytest.raises(MiniStaticError):
        Baseline.load(str(path))


# ------------------------------------------------------------ run_paths


def test_run_paths_unknown_rule_is_an_error(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("x = 1\n")
    with pytest.raises(MiniStaticError):
        run_paths([str(target)], root=str(tmp_path), rules=["no-such-rule"])


def test_run_paths_syntax_error_becomes_finding(tmp_path):
    target = tmp_path / "broken.py"
    target.write_text("def f(:\n")
    result = run_paths([str(target)], root=str(tmp_path))
    assert [f.rule for f in result.findings] == ["parse-error"]


# ------------------------------------------------------------------ CLI


@pytest.fixture
def workdir(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    return tmp_path


def write_fixture(workdir, source=BAD_HANDLER, name="mod.py"):
    target = workdir / name
    target.write_text(textwrap.dedent(source))
    return name


def test_cli_clean_exits_zero(workdir, capsys):
    name = write_fixture(workdir, "x = 1\n")
    assert main([name]) == 0
    assert "0 new finding(s)" in capsys.readouterr().out


def test_cli_findings_exit_one(workdir, capsys):
    name = write_fixture(workdir)
    assert main([name]) == 1
    out = capsys.readouterr().out
    assert "[broad-except]" in out
    assert "mod.py:4" in out


def test_cli_github_format(workdir, capsys):
    name = write_fixture(workdir)
    assert main([name, "--format", "github"]) == 1
    out = capsys.readouterr().out
    assert "::error file=mod.py,line=4,title=staticcheck[broad-except]::" in out


def test_cli_usage_errors_exit_two(workdir, capsys):
    assert main(["does/not/exist.py"]) == 2
    name = write_fixture(workdir, "x = 1\n")
    assert main([name, "--rule", "no-such-rule"]) == 2


def test_cli_write_baseline_then_clean(workdir, capsys):
    name = write_fixture(workdir)
    assert main([name, "--write-baseline"]) == 0
    assert (workdir / "staticcheck.baseline.json").exists()
    # default baseline path is picked up automatically
    assert main([name]) == 0
    assert "1 baselined" in capsys.readouterr().out
    # --no-baseline reports everything again
    assert main([name, "--no-baseline"]) == 1


def test_cli_reports_stale_baseline_entries(workdir, capsys):
    name = write_fixture(workdir)
    assert main([name, "--write-baseline"]) == 0
    write_fixture(workdir, "x = 1\n")  # fix the finding
    assert main([name]) == 0
    assert "stale baseline" in capsys.readouterr().out


def test_cli_rule_filter_keeps_suppression_format(workdir, capsys):
    name = write_fixture(
        workdir,
        """\
        def swallow():
            try:
                return risky()
            except Exception:  # staticcheck: ignore[broad-except]
                return None
        """,
    )
    # filtering to an unrelated rule must not hide the malformed suppression
    assert main([name, "--rule", "cond-wait"]) == 1
    assert "[suppression-format]" in capsys.readouterr().out


def test_cli_list_rules(workdir, capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in (
        "guarded-by",
        "encapsulation",
        "cond-wait",
        "wal-pairing",
        "error-taxonomy",
        "broad-except",
    ):
        assert rule in out
