"""The gate itself, as a tier-1 test: the repository's own sources must
be clean (so CI's staticcheck step and this suite can never disagree),
and the lock-discipline annotations must be load-bearing — deleting any
``with self._mutex`` guard in the session manager must produce a
guarded-by finding, proving the checker would catch exactly the race
class it was built for."""

import ast
from pathlib import Path

from repro.staticcheck import ModuleSource, all_checkers, check_module, run_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"


def test_repository_sources_are_clean():
    result = run_paths([str(SRC)], root=str(REPO_ROOT))
    assert result.findings == [], "\n".join(
        f.render() for f in result.findings
    )
    assert result.files_checked > 50  # the walk really covered the tree


def test_every_mutex_guard_in_session_manager_is_load_bearing():
    source_path = SRC / "service" / "sessions.py"
    source = source_path.read_text(encoding="utf-8")
    lines = source.splitlines(keepends=True)
    tree = ast.parse(source)
    manager = next(
        node
        for node in ast.walk(tree)
        if isinstance(node, ast.ClassDef) and node.name == "SessionManager"
    )
    guards = [
        node
        for node in ast.walk(manager)
        if isinstance(node, ast.With)
        and any(
            isinstance(item.context_expr, ast.Attribute)
            and item.context_expr.attr == "_mutex"
            for item in node.items
        )
    ]
    assert len(guards) >= 5, "expected SessionManager to be mutex-heavy"

    checker = all_checkers()["guarded-by"]()
    for guard in guards:
        mutated = _delete_with_guard(lines, guard)
        module = ModuleSource(
            str(source_path), mutated, rel_path="src/repro/service/sessions.py"
        )
        result = check_module(module, [checker])
        flagged = [f for f in result.findings if f.rule == "guarded-by"]
        assert flagged, (
            f"deleting the 'with self._mutex' guard at "
            f"sessions.py:{guard.lineno} went undetected"
        )


def _delete_with_guard(lines, guard):
    """Source with one ``with`` line removed and its body dedented."""
    body_start = guard.body[0].lineno
    body_end = guard.end_lineno
    mutated = []
    for number, line in enumerate(lines, start=1):
        if number == guard.lineno:
            continue
        if body_start <= number <= body_end and line.startswith("    "):
            mutated.append(line[4:])
        else:
            mutated.append(line)
    return "".join(mutated)
