"""Fixture triples for every checker: a bad fixture the rule must flag,
a good fixture it must leave alone, and a suppressed fixture it must
honor. These are the proof that the CI gate actually guards each
invariant — a checker that never fires is indistinguishable from no
checker at all."""

import textwrap

from repro.staticcheck import ModuleSource, all_checkers, check_module


def run_rule(rule, source, rel_path="src/repro/fixture.py"):
    """Run one named rule over fixture source; returns (findings, suppressed)."""
    module = ModuleSource("fixture.py", textwrap.dedent(source), rel_path=rel_path)
    checker = all_checkers()[rule]()
    result = check_module(module, [checker])
    named = [f for f in result.findings if f.rule == rule]
    return named, [f for f in result.suppressed if f.rule == rule]


# ------------------------------------------------------------- guarded-by


GUARDED_BAD = """\
    import threading

    class Box:
        def __init__(self):
            self._mutex = threading.Lock()
            self._items = []  #: guarded by self._mutex

        def add(self, item):
            self._items.append(item)
"""

GUARDED_GOOD = """\
    import threading

    class Box:
        def __init__(self):
            self._mutex = threading.Lock()
            self._items = []  #: guarded by self._mutex

        def add(self, item):
            with self._mutex:
                self._items.append(item)
"""


def test_guarded_by_flags_unlocked_access():
    findings, _ = run_rule("guarded-by", GUARDED_BAD)
    assert len(findings) == 1
    assert "_items" in findings[0].message
    assert "_mutex" in findings[0].message
    assert findings[0].context == "Box.add"


def test_guarded_by_clean_when_locked():
    findings, _ = run_rule("guarded-by", GUARDED_GOOD)
    assert findings == []


def test_guarded_by_suppression_honored():
    source = GUARDED_BAD.replace(
        "self._items.append(item)\n",
        "self._items.append(item)"
        "  # staticcheck: ignore[guarded-by] — fixture rationale\n",
        1,
    ).replace("self._items = []  #", "self._items = []  #", 1)
    # only the access line is suppressed, not the annotation line
    findings, suppressed = run_rule("guarded-by", source)
    assert findings == []
    assert len(suppressed) == 1


def test_guarded_by_init_exempt_and_annotation_above():
    findings, _ = run_rule(
        "guarded-by",
        """\
        import threading

        class Box:
            def __init__(self):
                self._mutex = threading.Lock()
                #: guarded by self._mutex
                self._items = []
                self._items.append(0)  # __init__ happens-before sharing

            def peek(self):
                return self._items
        """,
    )
    assert len(findings) == 1
    assert findings[0].context == "Box.peek"


def test_guarded_by_requires_annotation_shifts_obligation():
    source = """\
        import threading

        class Box:
            def __init__(self):
                self._mutex = threading.Lock()
                self._items = []  #: guarded by self._mutex

            #: requires self._mutex
            def _append(self, item):
                self._items.append(item)

            def good(self, item):
                with self._mutex:
                    self._append(item)

            def bad(self, item):
                self._append(item)
        """
    findings, _ = run_rule("guarded-by", source)
    assert len(findings) == 1
    assert findings[0].context == "Box.bad"
    assert "_append" in findings[0].message


def test_guarded_by_condition_aliases_lock():
    findings, _ = run_rule(
        "guarded-by",
        """\
        import threading

        class Box:
            def __init__(self):
                self._mutex = threading.Lock()
                self._space = threading.Condition(self._mutex)
                self._items = []  #: guarded by self._mutex

            def add(self, item):
                with self._space:
                    self._items.append(item)
        """,
    )
    assert findings == []


# --------------------------------------------------------- encapsulation


def test_encapsulation_flags_foreign_private_access():
    findings, _ = run_rule(
        "encapsulation",
        """\
        def peek(obj):
            return obj._hidden
        """,
    )
    assert len(findings) == 1
    assert "_hidden" in findings[0].message


def test_encapsulation_allows_self_and_module_friends():
    findings, _ = run_rule(
        "encapsulation",
        """\
        class Owner:
            def __init__(self):
                self._secret = 1

            def mine(self):
                return self._secret

        def module_friend(owner):
            return owner._secret  # declared by a class in this module
        """,
    )
    assert findings == []


def test_encapsulation_suppression_honored():
    findings, suppressed = run_rule(
        "encapsulation",
        """\
        def peek(obj):
            return obj._hidden  # staticcheck: ignore[encapsulation] — fixture rationale
        """,
    )
    assert findings == []
    assert len(suppressed) == 1


def test_encapsulation_dunder_exempt():
    findings, _ = run_rule(
        "encapsulation",
        """\
        def name_of(obj):
            return obj.__class__.__name__
        """,
    )
    assert findings == []


# ------------------------------------------------------------- cond-wait


COND_WAIT_BAD = """\
    import threading

    class Q:
        def __init__(self):
            self._mutex = threading.Lock()
            self._ready = threading.Condition(self._mutex)
            self.items = []

        def get(self):
            with self._ready:
                if not self.items:
                    self._ready.wait()
                return self.items.pop()
"""


def test_cond_wait_flags_if_recheck():
    findings, _ = run_rule("cond-wait", COND_WAIT_BAD)
    assert len(findings) == 1
    assert "while" in findings[0].message


def test_cond_wait_clean_in_while_loop():
    findings, _ = run_rule(
        "cond-wait", COND_WAIT_BAD.replace("if not self.items:", "while not self.items:")
    )
    assert findings == []


def test_cond_wait_suppression_honored():
    source = COND_WAIT_BAD.replace(
        "self._ready.wait()",
        "self._ready.wait()  # staticcheck: ignore[cond-wait] — fixture rationale",
    )
    findings, suppressed = run_rule("cond-wait", source)
    assert findings == []
    assert len(suppressed) == 1


def test_cond_wait_ignores_event_wait():
    findings, _ = run_rule(
        "cond-wait",
        """\
        import threading

        class Latch:
            def __init__(self):
                self._done = threading.Event()

            def join(self):
                self._done.wait()  # Event.wait has no predicate to re-check
        """,
    )
    assert findings == []


# ----------------------------------------------------------- wal-pairing


WAL_BAD = """\
    def delete_row(session, heap, rid, old_row):
        session.tx.log_undo("delete", heap.name, rid, old_row)
        heap.delete(rid)
"""

WAL_GOOD = """\
    def delete_row(session, heap, rid, old_row):
        session.tx.log_undo("delete", heap.name, rid, old_row)
        heap.delete(rid)
        if session.tx.redo_enabled:
            session.tx.log_redo("delete", heap.name, rid)
"""


def test_wal_pairing_flags_unpaired_undo():
    findings, _ = run_rule("wal-pairing", WAL_BAD)
    assert len(findings) == 1
    assert "log_redo" in findings[0].message


def test_wal_pairing_accepts_conditional_redo():
    findings, _ = run_rule("wal-pairing", WAL_GOOD)
    assert findings == []


def test_wal_pairing_suppression_honored():
    source = WAL_BAD.replace(
        'session.tx.log_undo("delete", heap.name, rid, old_row)',
        'session.tx.log_undo("delete", heap.name, rid, old_row)'
        "  # staticcheck: ignore[wal-pairing] — fixture rationale",
    )
    findings, suppressed = run_rule("wal-pairing", source)
    assert findings == []
    assert len(suppressed) == 1


def test_wal_pairing_redo_in_branch_after_undo_in_branch():
    # undo inside an if-arm pairs with a redo later in the same arm
    findings, _ = run_rule(
        "wal-pairing",
        """\
        def update(session, heap, rid, row, old_row):
            if old_row is not None:
                session.tx.log_undo("update", heap.name, rid, old_row)
                heap.update(rid, row)
                session.tx.log_redo("update", heap.name, rid, row)
        """,
    )
    assert findings == []


# -------------------------------------------------------- error-taxonomy


MINIDB_PATH = "src/repro/minidb/fixture.py"


def test_error_taxonomy_flags_builtin_raise_in_minidb():
    findings, _ = run_rule(
        "error-taxonomy",
        """\
        def parse(text):
            raise ValueError("bad input")
        """,
        rel_path=MINIDB_PATH,
    )
    assert len(findings) == 1
    assert "ValueError" in findings[0].message


def test_error_taxonomy_allows_taxonomy_and_local_subclasses():
    findings, _ = run_rule(
        "error-taxonomy",
        """\
        from .errors import SQLSyntaxError

        class _Internal(ValueError):
            pass

        def parse(text):
            if not text:
                raise _Internal(text)
            raise SQLSyntaxError("unexpected end of input")
        """,
        rel_path=MINIDB_PATH,
    )
    assert findings == []


def test_error_taxonomy_out_of_scope_module_exempt():
    findings, _ = run_rule(
        "error-taxonomy",
        """\
        def validate(n):
            raise ValueError(n)
        """,
        rel_path="src/repro/bench/fixture.py",
    )
    assert findings == []


def test_error_taxonomy_suppression_honored():
    findings, suppressed = run_rule(
        "error-taxonomy",
        """\
        def parse(text):
            raise ValueError("bad input")  # staticcheck: ignore[error-taxonomy] — fixture rationale
        """,
        rel_path=MINIDB_PATH,
    )
    assert findings == []
    assert len(suppressed) == 1


# --------------------------------------------------------- broad-except


BROAD_BAD = """\
    def swallow():
        try:
            return risky()
        except Exception:
            return None
"""


def test_broad_except_flags_silent_handler():
    findings, _ = run_rule("broad-except", BROAD_BAD)
    assert len(findings) == 1


def test_broad_except_allows_reraise_and_tool_result():
    findings, _ = run_rule(
        "broad-except",
        """\
        def convert():
            try:
                return risky()
            except Exception as exc:
                raise WrappedError(str(exc)) from exc

        def fold():
            try:
                return risky()
            except Exception as exc:
                return ToolResult.error(str(exc), code=type(exc).__name__)

        def narrow():
            try:
                return risky()
            except (OSError, ValueError):
                return None
        """,
    )
    assert findings == []


def test_broad_except_flags_bare_except():
    findings, _ = run_rule(
        "broad-except",
        """\
        def swallow():
            try:
                return risky()
            except:
                return None
        """,
    )
    assert len(findings) == 1


def test_broad_except_suppression_honored():
    source = BROAD_BAD.replace(
        "except Exception:",
        "except Exception:  # staticcheck: ignore[broad-except] — fixture rationale",
    )
    findings, suppressed = run_rule("broad-except", source)
    assert findings == []
    assert len(suppressed) == 1


# ---------------------------------------------------------------- fs-seam


FS_SEAM_BAD = """\
    import json
    import os

    class Engine:
        def checkpoint(self, payload, tmp_path, final_path):
            with open(tmp_path, "w", encoding="utf-8") as fh:
                fh.write(json.dumps(payload))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_path, final_path)
"""

FS_SEAM_GOOD = """\
    import json

    class Engine:
        def checkpoint(self, payload, tmp_path, final_path):
            fh = self.fs.open(tmp_path, "w", encoding="utf-8")
            try:
                fh.write(json.dumps(payload))
                fh.flush()
                self.fs.fsync(fh)
            finally:
                fh.close()
            self.fs.replace(tmp_path, final_path)
"""

#: the rule is scoped to the durable stack; fixtures must claim that path
FS_SEAM_PATH = "src/repro/minidb/engines/durable.py"


def test_fs_seam_flags_bare_io_in_seamed_module():
    findings, _ = run_rule("fs-seam", FS_SEAM_BAD, rel_path=FS_SEAM_PATH)
    assert len(findings) == 3  # open(), os.fsync(), os.replace()
    messages = " ".join(f.message for f in findings)
    assert "open()" in messages
    assert "os.fsync()" in messages
    assert "os.replace()" in messages


def test_fs_seam_clean_through_the_seam():
    findings, _ = run_rule("fs-seam", FS_SEAM_GOOD, rel_path=FS_SEAM_PATH)
    assert findings == []


def test_fs_seam_ignores_unseamed_modules():
    # the same bare I/O outside the durable stack is not a finding — the
    # seam is a durability contract, not a repo-wide style rule
    findings, _ = run_rule("fs-seam", FS_SEAM_BAD, rel_path="src/repro/bench/cli.py")
    assert findings == []


def test_fs_seam_allows_pid_probes_and_path_helpers():
    findings, _ = run_rule(
        "fs-seam",
        """\
        import os

        class Engine:
            def _pid_alive(self, pid):
                try:
                    os.kill(pid, 0)
                except ProcessLookupError:
                    return False
                return True

            def lock_path(self):
                return os.path.join(self.path, "LOCK")
        """,
        rel_path=FS_SEAM_PATH,
    )
    assert findings == []


def test_fs_seam_suppression_honored():
    source = FS_SEAM_BAD.replace(
        'os.replace(tmp_path, final_path)',
        'os.replace(tmp_path, final_path)  # staticcheck: ignore[fs-seam] — fixture rationale',
    )
    findings, suppressed = run_rule("fs-seam", source, rel_path=FS_SEAM_PATH)
    assert len(findings) == 2
    assert len(suppressed) == 1


# ----------------------------------------------------- metric-registration


METRIC_BAD = """\
    from repro.obs.metrics import Counter, Histogram

    class Stats:
        def __init__(self):
            self.hits = Counter("hits_total")
            self.latency = Histogram("latency_seconds")
"""

METRIC_GOOD = """\
    from repro.obs.metrics import Gauge, MetricsRegistry

    class Stats:
        def __init__(self, registry: MetricsRegistry):
            self.hits = registry.counter("hits_total")
            self.latency = registry.histogram("latency_seconds")
            self.depth = registry.register(Gauge("queue_depth"))
"""


def test_metric_registration_flags_orphan_instruments():
    findings, _ = run_rule("metric-registration", METRIC_BAD)
    assert len(findings) == 2
    messages = " ".join(f.message for f in findings)
    assert "orphan Counter()" in messages
    assert "orphan Histogram()" in messages
    assert "registry.counter(...)" in messages


def test_metric_registration_clean_through_registry():
    findings, _ = run_rule("metric-registration", METRIC_GOOD)
    assert findings == []


def test_metric_registration_sees_through_module_alias():
    findings, _ = run_rule(
        "metric-registration",
        """\
        from repro.obs import metrics

        counter = metrics.Counter("loose_total")
        """,
    )
    assert len(findings) == 1
    assert "orphan Counter()" in findings[0].message


def test_metric_registration_ignores_unrelated_counters():
    # collections.Counter is not an instrument; import-awareness keeps it out
    findings, _ = run_rule(
        "metric-registration",
        """\
        from collections import Counter

        tally = Counter("aabbcc")
        """,
    )
    assert findings == []


def test_metric_registration_exempts_the_factory_module():
    findings, _ = run_rule(
        "metric-registration", METRIC_BAD, rel_path="src/repro/obs/metrics.py"
    )
    assert findings == []


def test_metric_registration_suppression_honored():
    source = METRIC_BAD.replace(
        'Counter("hits_total")',
        'Counter("hits_total")  # staticcheck: ignore[metric-registration] — fixture rationale',
    )
    findings, suppressed = run_rule("metric-registration", source)
    assert len(findings) == 1  # the Histogram orphan still fires
    assert len(suppressed) == 1
