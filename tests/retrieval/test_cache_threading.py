"""CatalogCache thread-safety stress: concurrent lookup + invalidate.

Without the cache mutex, concurrent ``move_to_end`` / ``popitem`` /
``clear`` calls corrupt the LRU ``OrderedDict`` (KeyError / "dictionary
changed size during iteration" / silently broken LRU order). The stress
here drives N threads through a hot loop of lookups, stale-fingerprint
rebuilds, and invalidations and requires zero exceptions plus coherent
final state.
"""

import os
import threading

import pytest

from repro.retrieval import CatalogCache

STRESS_THREADS = int(os.environ.get("REPRO_STRESS_THREADS", "8"))


def build_values(key, fingerprint):
    return [f"{key}-{fingerprint}-{n}" for n in range(20)]


class TestCacheThreading:
    def test_concurrent_lookup_and_invalidate(self):
        cache = CatalogCache(max_entries=16)
        keys = [("table", f"col{n}", 100) for n in range(32)]
        errors = []
        done = threading.Barrier(STRESS_THREADS + 1)

        def hammer(seed):
            try:
                for step in range(400):
                    key = keys[(seed * 7 + step) % len(keys)]
                    # fingerprints advance now and then: forces rebuilds
                    fingerprint = (1, (seed + step) // 50)
                    catalog = cache.lookup(
                        key,
                        fingerprint,
                        lambda k=key, f=fingerprint: build_values(k, f),
                    )
                    assert len(catalog.values) == 20
                    if step % 37 == 0:
                        cache.invalidate(key)
                    if step % 151 == 0:
                        cache.invalidate()  # full clear
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(exc)
            finally:
                done.wait(timeout=120.0)

        threads = [
            threading.Thread(target=hammer, args=(n,), daemon=True)
            for n in range(STRESS_THREADS)
        ]
        for thread in threads:
            thread.start()
        done.wait(timeout=120.0)
        for thread in threads:
            thread.join(timeout=30.0)

        assert errors == []
        # LRU bound respected and stats coherent
        assert len(cache) <= cache.max_entries
        stats = cache.stats
        assert stats["hits"] + stats["misses"] + stats["rebuilds"] > 0

    def test_concurrent_same_key_converges(self):
        """All threads racing one missing key end with a served catalog
        for the same fingerprint (last build wins; none is torn)."""
        cache = CatalogCache(max_entries=4)
        key = ("t", "c", 100)
        fingerprint = (5, 1)
        results = []
        guard = threading.Lock()

        def racer():
            catalog = cache.lookup(
                key, fingerprint, lambda: build_values("k", "f")
            )
            with guard:
                results.append(catalog)

        threads = [
            threading.Thread(target=racer, daemon=True) for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert len(results) == 8
        assert all(len(c.values) == 20 for c in results)
        # subsequent lookups hit the cached entry
        before = cache.stats["hits"]
        cache.lookup(key, fingerprint, lambda: pytest.fail("must not rebuild"))
        assert cache.stats["hits"] == before + 1

    def test_single_threaded_semantics_unchanged(self):
        cache = CatalogCache(max_entries=2)
        catalog = cache.lookup(("a",), (1, 0), lambda: ["x", "y"])
        assert cache.lookup(("a",), (1, 0), lambda: pytest.fail("cached")) is catalog
        assert cache.stats == {
            "hits": 1, "misses": 1, "rebuilds": 0, "persisted_hits": 0,
        }
        # stale fingerprint rebuilds
        rebuilt = cache.lookup(("a",), (1, 1), lambda: ["z"])
        assert rebuilt is not catalog
        assert cache.stats["rebuilds"] == 1
