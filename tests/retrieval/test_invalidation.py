"""Index invalidation: exemplars must never lag the stored data.

Covers the tentpole's freshness contract end to end: heap version
counters, the fingerprinted catalog cache on the Database, and the
``get_value`` tool surface across INSERT / UPDATE / DELETE / ROLLBACK /
DDL, plus the equivalence of the indexed and brute-force tool outputs.
"""

import pytest

from repro.core import BridgeScope, BridgeScopeConfig, MinidbBinding
from repro.minidb import Database


@pytest.fixture
def db():
    database = Database(owner="admin")
    admin = database.connect("admin")
    admin.execute("CREATE TABLE items (id INT PRIMARY KEY, category TEXT)")
    admin.execute(
        "INSERT INTO items VALUES (1, 'women''s wear'), (2, 'footwear'), "
        "(3, 'men''s wear')"
    )
    return database


@pytest.fixture
def bridge(db):
    return BridgeScope(MinidbBinding.for_user(db, "admin"))


def exemplars(bridge, key="wear", k=10):
    out = bridge.invoke("get_value", col="items.category", key=key, k=k).content
    assert not out.startswith("ERROR"), out
    return out


class TestHeapVersionCounter:
    def test_bumped_by_dml(self, db):
        heap = db.heap("items")
        session = db.connect("admin")
        before = heap.version
        session.execute("INSERT INTO items VALUES (4, 'hats')")
        after_insert = heap.version
        session.execute("UPDATE items SET category = 'caps' WHERE id = 4")
        after_update = heap.version
        session.execute("DELETE FROM items WHERE id = 4")
        after_delete = heap.version
        assert before < after_insert < after_update < after_delete

    def test_bumped_by_rollback(self, db):
        heap = db.heap("items")
        session = db.connect("admin")
        session.execute("BEGIN")
        session.execute("INSERT INTO items VALUES (4, 'hats')")
        mid = heap.version
        session.execute("ROLLBACK")
        assert heap.version > mid  # undo replays bump too

    def test_bumped_by_column_ddl(self, db):
        heap = db.heap("items")
        session = db.connect("admin")
        v0 = heap.version
        session.execute("ALTER TABLE items ADD COLUMN note TEXT")
        v1 = heap.version
        session.execute("ALTER TABLE items RENAME COLUMN note TO memo")
        v2 = heap.version
        session.execute("ALTER TABLE items DROP COLUMN memo")
        v3 = heap.version
        assert v0 < v1 < v2 < v3

    def test_drop_column_rollback_restores_and_bumps(self, db):
        session = db.connect("admin")
        heap = db.heap("items")
        session.execute("BEGIN")
        session.execute("ALTER TABLE items DROP COLUMN category")
        mid = heap.version
        session.execute("ROLLBACK")
        assert heap.version > mid
        values = {row["category"] for _, row in heap.rows()}
        assert "women's wear" in values

    def test_bumped_by_index_ddl(self, db):
        """Regression: add_index/drop_index must move the fingerprint —
        index DDL changes the heap's durable representation, and WAL/
        snapshot stamps would otherwise miss it."""
        heap = db.heap("items")
        session = db.connect("admin")
        v0 = heap.version
        session.execute("CREATE INDEX idx_cat ON items (category)")
        v1 = heap.version
        session.execute("DROP INDEX idx_cat")
        v2 = heap.version
        assert v0 < v1 < v2

    def test_bumped_by_index_ddl_rollback(self, db):
        heap = db.heap("items")
        session = db.connect("admin")
        session.execute("BEGIN")
        session.execute("CREATE INDEX idx_cat ON items (category)")
        mid = heap.version
        session.execute("ROLLBACK")
        assert heap.version > mid  # the undo drop bumps too
        assert "idx_cat" not in heap.indexes

    def test_uid_changes_on_recreate(self, db):
        session = db.connect("admin")
        old_uid = db.heap("items").uid
        session.execute("DROP TABLE items")
        session.execute("CREATE TABLE items (id INT PRIMARY KEY, category TEXT)")
        assert db.heap("items").uid != old_uid


class TestGetValueFreshness:
    def test_insert_visible(self, db, bridge):
        exemplars(bridge)  # builds + caches the catalog
        db.connect("admin").execute("INSERT INTO items VALUES (4, 'outerwear')")
        assert "outerwear" in exemplars(bridge)

    def test_update_visible(self, db, bridge):
        exemplars(bridge)
        db.connect("admin").execute(
            "UPDATE items SET category = 'formal wear' WHERE id = 3"
        )
        out = exemplars(bridge)
        assert "formal wear" in out
        assert repr("men's wear") not in out

    def test_delete_visible(self, db, bridge):
        exemplars(bridge)
        db.connect("admin").execute("DELETE FROM items WHERE id = 1")
        assert "women's wear" not in exemplars(bridge)

    def test_rollback_not_served_stale(self, db, bridge):
        exemplars(bridge)
        session = db.connect("admin")
        session.execute("BEGIN")
        session.execute("INSERT INTO items VALUES (4, 'outerwear')")
        assert "outerwear" in exemplars(bridge)  # in-flight data is visible
        session.execute("ROLLBACK")
        assert "outerwear" not in exemplars(bridge)

    def test_savepoint_rollback_fresh(self, db, bridge):
        session = db.connect("admin")
        session.execute("BEGIN")
        session.execute("SAVEPOINT sp")
        session.execute("UPDATE items SET category = 'misc' WHERE id = 2")
        assert "footwear" not in exemplars(bridge)
        session.execute("ROLLBACK TO SAVEPOINT sp")
        assert "footwear" in exemplars(bridge)
        session.execute("COMMIT")

    def test_drop_and_recreate_not_stale(self, db, bridge):
        exemplars(bridge)
        session = db.connect("admin")
        session.execute("DROP TABLE items")
        session.execute("CREATE TABLE items (id INT PRIMARY KEY, category TEXT)")
        session.execute("INSERT INTO items VALUES (1, 'gadgets')")
        out = exemplars(bridge, key="gadgets")
        assert "gadgets" in out
        assert "footwear" not in out

    def test_repeated_calls_hit_cache(self, db, bridge):
        exemplars(bridge)
        exemplars(bridge)
        exemplars(bridge, key="women")  # same column, different key
        stats = db.retrieval_cache.stats
        assert stats["misses"] == 1
        assert stats["hits"] == 2

    def test_cache_shared_across_sessions(self, db, bridge):
        exemplars(bridge)
        other = BridgeScope(MinidbBinding.for_user(db, "admin"))
        exemplars(other)
        assert db.retrieval_cache.stats["hits"] == 1


class TestIndexedBruteToolEquivalence:
    KEYS = ("women", "wear", "foot", "mens", "zzz", "")

    def test_identical_tool_output(self, db):
        indexed = BridgeScope(
            MinidbBinding.for_user(db, "admin"),
            BridgeScopeConfig(use_retrieval_index=True),
        )
        brute = BridgeScope(
            MinidbBinding.for_user(db, "admin"),
            BridgeScopeConfig(use_retrieval_index=False),
        )
        for key in self.KEYS:
            a = indexed.invoke(
                "get_value", col="items.category", key=key, k=5
            ).content
            b = brute.invoke(
                "get_value", col="items.category", key=key, k=5
            ).content
            assert a == b

    def test_identical_after_mutations(self, db):
        indexed = BridgeScope(
            MinidbBinding.for_user(db, "admin"),
            BridgeScopeConfig(use_retrieval_index=True),
        )
        brute = BridgeScope(
            MinidbBinding.for_user(db, "admin"),
            BridgeScopeConfig(use_retrieval_index=False),
        )
        session = db.connect("admin")
        for statement in (
            "INSERT INTO items VALUES (10, 'swimwear')",
            "UPDATE items SET category = 'knitwear' WHERE id = 2",
            "DELETE FROM items WHERE id = 1",
        ):
            session.execute(statement)
            for key in self.KEYS:
                a = indexed.invoke(
                    "get_value", col="items.category", key=key, k=4
                ).content
                b = brute.invoke(
                    "get_value", col="items.category", key=key, k=4
                ).content
                assert a == b

    def test_errors_identical(self, db):
        for use_index in (True, False):
            bridge = BridgeScope(
                MinidbBinding.for_user(db, "admin"),
                BridgeScopeConfig(use_retrieval_index=use_index),
            )
            out = bridge.invoke(
                "get_value", col="items.ghost", key="x"
            ).content
            assert out.startswith("ERROR")
