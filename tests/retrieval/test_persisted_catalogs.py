"""Persisted value catalogs: zero-rebuild reopen, freshness, crash pruning.

The durable engine restores heap ``(uid, version)`` fingerprints exactly,
so a reopened database must serve ``get_value`` for unchanged columns
straight from the pickled catalog sidecars — byte-identically to both the
pre-restart output and the brute-force scorer — while changed columns and
catalogs persisted from uncommitted data must never be served.
"""

from __future__ import annotations

import os

import pytest

from repro.core import BridgeScope, BridgeScopeConfig, MinidbBinding
from repro.minidb import Database
from repro.retrieval import CatalogStore, ValueCatalog

NAMES = (
    "womens wear", "mens shoes", "kids jacket", "coastal dress",
    "premium boots", "vintage gear", "sport outfit", "eco apparel",
)
KEYS = ("women", "sport shoe", "premum boots", "eco", "zzz")


@pytest.fixture
def dbdir(tmp_path):
    return str(tmp_path / "db")


def build(dbdir: str) -> Database:
    db = Database.open(dbdir)
    session = db.connect("admin")
    session.execute("CREATE TABLE products (id INT PRIMARY KEY, name TEXT)")
    for i, name in enumerate(NAMES):
        session.execute(f"INSERT INTO products VALUES ({i}, '{name}')")
    return db


def bridge_for(db: Database, use_index: bool = True) -> BridgeScope:
    return BridgeScope(
        MinidbBinding.for_user(db, "admin"),
        BridgeScopeConfig(use_retrieval_index=use_index),
    )


def get_value(bridge: BridgeScope, key: str, k: int = 4) -> str:
    result = bridge.invoke("get_value", col="products.name", key=key, k=k)
    assert not result.is_error, result.content
    return result.content


class TestZeroRebuildReopen:
    def test_reopen_serves_persisted_catalog(self, dbdir):
        db = build(dbdir)
        before = {key: get_value(bridge_for(db), key) for key in KEYS}
        db.close()

        db2 = Database.open(dbdir)
        bridge = bridge_for(db2)
        after = {key: get_value(bridge, key) for key in KEYS}
        assert after == before
        stats = db2.retrieval_cache.stats
        assert stats["persisted_hits"] == 1  # loaded once, then memory-hits
        assert stats["misses"] == 0  # zero rebuild
        assert stats["rebuilds"] == 0
        db2.close()

    def test_persisted_catalog_matches_brute_force(self, dbdir):
        """Freshness oracle: the reopened indexed path must be
        byte-identical to brute-force scoring over the recovered data."""
        db = build(dbdir)
        get_value(bridge_for(db), KEYS[0])  # build + persist
        db.close()
        db2 = Database.open(dbdir)
        indexed = bridge_for(db2, use_index=True)
        brute = bridge_for(db2, use_index=False)
        for key in KEYS:
            assert get_value(indexed, key) == get_value(brute, key)
        assert db2.retrieval_cache.stats["persisted_hits"] == 1
        db2.close()

    def test_changed_column_rebuilds_after_reopen(self, dbdir):
        db = build(dbdir)
        get_value(bridge_for(db), "women")
        db.close()
        db2 = Database.open(dbdir)
        db2.connect("admin").execute(
            "INSERT INTO products VALUES (99, 'womens gala dress')"
        )
        out = get_value(bridge_for(db2), "women", k=3)
        assert "gala" in out
        assert db2.retrieval_cache.stats["persisted_hits"] == 0
        db2.close()

    def test_in_memory_database_has_no_store(self):
        db = Database(owner="admin")
        session = db.connect("admin")
        session.execute("CREATE TABLE products (id INT PRIMARY KEY, name TEXT)")
        session.execute("INSERT INTO products VALUES (1, 'womens wear')")
        get_value(bridge_for(db), "women")
        assert db.retrieval_cache.store is None


class TestCrashSafety:
    def test_dirty_catalog_pruned_on_recovery(self, dbdir):
        db = build(dbdir)
        session = db.connect("admin")
        session.execute("BEGIN")
        session.execute("INSERT INTO products VALUES (50, 'dirty uncommitted')")
        # catalog built from in-flight data gets persisted at a fingerprint
        # the WAL knows nothing about
        out = get_value(bridge_for(db), "dirty")
        assert "uncommitted" in out
        del db, session  # crash with the transaction still open

        db2 = Database.open(dbdir)
        out = get_value(bridge_for(db2), "dirty")
        assert "uncommitted" not in out
        assert db2.retrieval_cache.stats["persisted_hits"] == 0
        db2.close()

    def test_stale_fingerprints_pruned_on_recovery(self, dbdir):
        db = build(dbdir)
        get_value(bridge_for(db), "women")
        # supersede the persisted catalog, then crash before rebuilding it
        db.connect("admin").execute("DELETE FROM products WHERE id = 0")
        del db

        db2 = Database.open(dbdir)
        catalog_dir = db2.engine.catalog_dir
        assert os.listdir(catalog_dir) == []  # stale sidecar removed
        out = get_value(bridge_for(db2), "women")
        assert "womens wear" not in out
        db2.close()


class TestCatalogStore:
    def test_store_and_load_roundtrip(self, tmp_path):
        store = CatalogStore(str(tmp_path))
        catalog = ValueCatalog(["alpha", "beta"])
        store.store(("t", "c", 100), (7, 3), catalog)
        loaded = store.load(("t", "c", 100), (7, 3))
        assert isinstance(loaded, ValueCatalog)
        assert loaded.values == ["alpha", "beta"]
        assert loaded.stats == {"queries": 0, "candidates": 0, "scored": 0}

    def test_load_misses_on_other_fingerprint(self, tmp_path):
        store = CatalogStore(str(tmp_path))
        store.store(("t", "c", 100), (7, 3), ValueCatalog(["alpha"]))
        assert store.load(("t", "c", 100), (7, 4)) is None
        assert store.stats["misses"] == 1

    def test_store_replaces_older_fingerprints(self, tmp_path):
        store = CatalogStore(str(tmp_path))
        store.store(("t", "c", 100), (7, 3), ValueCatalog(["old"]))
        store.store(("t", "c", 100), (7, 8), ValueCatalog(["new"]))
        assert len(os.listdir(str(tmp_path))) == 1
        assert store.load(("t", "c", 100), (7, 3)) is None
        assert store.load(("t", "c", 100), (7, 8)).values == ["new"]

    def test_corrupt_file_is_a_miss(self, tmp_path):
        store = CatalogStore(str(tmp_path))
        store.store(("t", "c", 100), (7, 3), ValueCatalog(["alpha"]))
        (path,) = (
            os.path.join(str(tmp_path), n) for n in os.listdir(str(tmp_path))
        )
        with open(path, "wb") as fh:
            fh.write(b"not a pickle")
        assert store.load(("t", "c", 100), (7, 3)) is None
