"""Tests for the indexed value catalog: ranking equivalence + internals."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.similarity import SynonymTable, similarity, top_k
from repro.retrieval import CatalogCache, ValueCatalog

VALUES = [
    "women's wear",
    "men's wear",
    "footwear",
    "kids shoes",
    "female apparel",
    "quarterly earnings",
    "sportswear",
    "",
    "a",
    100,
    "100",
]


class TestValueCatalogRanking:
    def test_matches_brute_force_on_fixture(self):
        catalog = ValueCatalog(VALUES)
        for key in ("women", "sportwear", "wear", "100", "a", "x", ""):
            for k in (0, 1, 3, len(VALUES) + 5):
                assert catalog.top_k(key, k) == top_k(key, VALUES, k)

    def test_scores_match_similarity_exactly(self):
        catalog = ValueCatalog(VALUES)
        for value, score in catalog.top_k("women", 5):
            assert score == similarity("women", value)

    def test_synonym_only_match_not_pruned(self):
        # "female apparel" shares no trigram or substring with "women";
        # only the reverse synonym map reaches it
        catalog = ValueCatalog(["female apparel", "quarterly earnings"])
        ranked = catalog.top_k("women", 1)
        assert ranked[0][0] == "female apparel"
        assert ranked[0][1] > 0

    def test_custom_synonym_table(self):
        table = SynonymTable({"cat": frozenset({"feline"})})
        catalog = ValueCatalog(["feline friend", "dog house"])
        ranked = catalog.top_k("cat", 2, synonyms=table)
        assert ranked == top_k("cat", ["feline friend", "dog house"], 2, table)
        assert ranked[0][0] == "feline friend"
        assert ranked[0][1] > 0

    def test_zero_score_tail_in_text_order(self):
        catalog = ValueCatalog(["bb", "aa", "cc"])
        ranked = catalog.top_k("zzz", 3)
        assert ranked == [("aa", 0.0), ("bb", 0.0), ("cc", 0.0)]

    def test_short_key_containment_found(self):
        # 1-char normalized key inside a word: reachable only through the
        # short-key substring sweep, never through trigram postings
        catalog = ValueCatalog(["bab", "xyz"])
        assert catalog.top_k("a", 1) == top_k("a", ["bab", "xyz"], 1)

    def test_short_value_containment_found(self):
        # sub-trigram value norm contained in the key
        catalog = ValueCatalog(["at", "xyz"])
        assert catalog.top_k("category", 1) == top_k(
            "category", ["at", "xyz"], 1
        )

    def test_duplicate_text_values_keep_insertion_order(self):
        # int 100 and str "100" render identically; brute force relies on
        # stable sort, the catalog must reproduce it
        values = [100, "100", 100.5]
        assert ValueCatalog(values).top_k("100", 3) == top_k("100", values, 3)

    def test_pruning_actually_skips_work(self):
        # hundreds of low-bound trigram-noise candidates behind one exact
        # match: the heap fills at 1.0 and the rest are never scored
        values = ["target phrase"] + [f"tartan {i:04d}" for i in range(300)]
        catalog = ValueCatalog(values)
        ranked = catalog.top_k("target phrase", 1)
        assert ranked[0] == ("target phrase", 1.0)
        assert catalog.stats["candidates"] > 100
        assert catalog.stats["scored"] < 10

    def test_stats_track_queries(self):
        catalog = ValueCatalog(VALUES)
        catalog.top_k("women", 2)
        catalog.top_k("men", 2)
        assert catalog.stats["queries"] == 2


@st.composite
def value_lists(draw):
    scalar = st.one_of(
        st.text(alphabet="abcdef '!9", max_size=8),
        st.integers(min_value=0, max_value=99),
    )
    return draw(st.lists(scalar, max_size=20))


class TestIndexedBruteEquivalence:
    @settings(max_examples=300)
    @given(
        values=value_lists(),
        key=st.text(alphabet="abcdef '!9", max_size=6),
        k=st.integers(min_value=0, max_value=8),
    )
    def test_identical_rankings(self, values, key, k):
        assert ValueCatalog(values).top_k(key, k) == top_k(key, values, k)

    @settings(max_examples=100)
    @given(
        values=st.lists(
            st.sampled_from(
                ["women", "female", "ladies wear", "mens", "sea", "coastal",
                 "refund", "return policy", "ab", "a", ""]
            ),
            max_size=15,
        ),
        key=st.sampled_from(
            ["women", "sea side", "chargeback", "wear", "a", "zz"]
        ),
        k=st.integers(min_value=0, max_value=6),
    )
    def test_identical_rankings_synonym_heavy(self, values, key, k):
        assert ValueCatalog(values).top_k(key, k) == top_k(key, values, k)


class TestCatalogCache:
    def test_hit_on_same_fingerprint(self):
        cache = CatalogCache()
        first = cache.lookup("t.c", (1, 0), lambda: ["a"])
        second = cache.lookup("t.c", (1, 0), lambda: ["b"])
        assert second is first
        assert cache.stats == {
            "hits": 1, "misses": 1, "rebuilds": 0, "persisted_hits": 0,
        }

    def test_rebuild_on_fingerprint_change(self):
        cache = CatalogCache()
        cache.lookup("t.c", (1, 0), lambda: ["a"])
        rebuilt = cache.lookup("t.c", (1, 1), lambda: ["b"])
        assert rebuilt.values == ["b"]
        assert cache.stats["rebuilds"] == 1

    def test_lru_eviction(self):
        cache = CatalogCache(max_entries=2)
        cache.lookup("a", 1, lambda: [])
        cache.lookup("b", 1, lambda: [])
        cache.lookup("a", 1, lambda: [])  # refresh a
        cache.lookup("c", 1, lambda: [])  # evicts b
        assert len(cache) == 2
        cache.lookup("b", 1, lambda: [])
        assert cache.stats["misses"] == 4  # a, b, c, then b again

    def test_invalidate(self):
        cache = CatalogCache()
        cache.lookup("a", 1, lambda: [])
        cache.invalidate("a")
        assert len(cache) == 0
        cache.lookup("a", 1, lambda: [])
        cache.invalidate()
        assert len(cache) == 0


class TestSynonymTable:
    def test_reverse_map_built(self):
        table = SynonymTable({"women": {"female", "ladies"}})
        assert table.reverse["female"] == frozenset({"women"})
        assert table.reverse["ladies"] == frozenset({"women"})

    def test_member_in_two_clusters(self):
        table = SynonymTable({"a": {"x"}, "b": {"x"}})
        assert table.reverse["x"] == frozenset({"a", "b"})

    def test_related_is_symmetric_closure(self):
        table = SynonymTable({"women": {"female"}})
        assert "female" in table.related("women")
        assert "women" in table.related("female")
        assert table.related("unknown") == frozenset()

    def test_reverse_direction_scoring_unchanged(self):
        # key token is a cluster member, value holds the head
        assert similarity("female", "women and kids") > 0.3


def test_similarity_accepts_all_synonym_shapes():
    as_dict = {"cat": frozenset({"feline"})}
    as_table = SynonymTable(as_dict)
    assert similarity("cat", "feline", as_dict) == similarity(
        "cat", "feline", as_table
    )
    assert similarity("cat", "feline", None) < similarity(
        "cat", "feline", as_table
    )
