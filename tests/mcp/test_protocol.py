"""Tests for the MCP-style tool protocol layer."""

import pytest

from repro.mcp import (
    ParamSpec,
    ToolArgumentError,
    ToolCall,
    ToolError,
    ToolNotFoundError,
    ToolRegistry,
    ToolResult,
    ToolServer,
    ToolSpec,
    tool,
)


class EchoServer(ToolServer):
    name = "echo"

    @tool(description="Echo the input back.", params=[ParamSpec("text", "string")])
    def echo(self, text: str) -> str:
        return text

    @tool(
        description="Add two numbers.",
        params=[ParamSpec("a", "number"), ParamSpec("b", "number")],
    )
    def add(self, a, b):
        return a + b

    @tool(
        description="Greet with optional punctuation.",
        params=[
            ParamSpec("name", "string"),
            ParamSpec("mark", "string", required=False, default="!"),
        ],
    )
    def greet(self, name, mark="!"):
        return f"hi {name}{mark}"

    @tool(description="Always fails.", params=[])
    def boom(self):
        raise ToolError("kaboom", retriable=False)


@pytest.fixture
def server():
    return EchoServer()


class TestParamSpec:
    def test_valid_types(self):
        for kind in ("string", "number", "integer", "boolean", "object", "array", "any"):
            ParamSpec("x", kind)

    def test_invalid_type_rejected(self):
        with pytest.raises(ValueError):
            ParamSpec("x", "blob")

    def test_required_missing(self):
        with pytest.raises(ToolArgumentError, match="missing required"):
            ParamSpec("x", "string").validate(None)

    def test_optional_default(self):
        assert ParamSpec("x", "string", required=False, default="d").validate(None) == "d"

    @pytest.mark.parametrize(
        "kind,good,bad",
        [
            ("string", "a", 1),
            ("number", 1.5, "a"),
            ("integer", 3, 3.5),
            ("boolean", True, 1),
            ("object", {}, []),
            ("array", [], {}),
        ],
    )
    def test_type_checking(self, kind, good, bad):
        spec = ParamSpec("x", kind)
        assert spec.validate(good) == good
        with pytest.raises(ToolArgumentError):
            spec.validate(bad)

    def test_bool_is_not_number(self):
        with pytest.raises(ToolArgumentError):
            ParamSpec("x", "number").validate(True)

    def test_any_accepts_everything(self):
        spec = ParamSpec("x", "any")
        for value in ("a", 1, [], {}, True):
            assert spec.validate(value) == value


class TestToolSpec:
    def test_unknown_argument_rejected(self):
        spec = ToolSpec("t", "d", [ParamSpec("a", "string")])
        with pytest.raises(ToolArgumentError, match="unknown argument"):
            spec.validate_args({"a": "x", "zz": 1})

    def test_defaults_filled(self):
        spec = ToolSpec(
            "t", "d", [ParamSpec("a", "string", required=False, default="v")]
        )
        assert spec.validate_args({}) == {"a": "v"}

    def test_render_is_deterministic(self):
        spec = ToolSpec("t", "does things", [ParamSpec("a", "string", "the a")])
        assert spec.render() == spec.render()
        assert "t: does things" in spec.render()

    def test_json_schema_export(self):
        spec = ToolSpec("t", "d", [ParamSpec("a", "string", required=True)])
        schema = spec.to_json_schema()
        assert schema["name"] == "t"
        assert schema["inputSchema"]["required"] == ["a"]


class TestToolServer:
    def test_decorated_tools_discovered(self, server):
        names = {spec.name for spec in server.visible_tools()}
        assert names == {"echo", "add", "greet", "boom"}

    def test_invoke_success(self, server):
        result = server.invoke("echo", text="hello")
        assert not result.is_error
        assert result.content == "hello"

    def test_invoke_with_default(self, server):
        assert server.invoke("greet", name="bob").content == "hi bob!"

    def test_tool_error_becomes_result(self, server):
        result = server.invoke("boom")
        assert result.is_error
        assert result.error_code == "ToolError"
        assert "kaboom" in result.content

    def test_argument_error_becomes_result(self, server):
        result = server.invoke("echo")
        assert result.is_error
        assert result.error_code == "ToolArgumentError"

    def test_unknown_tool(self, server):
        result = server.call(ToolCall("nope", {}))
        assert result.is_error
        assert result.error_code == "ToolNotFoundError"

    def test_register_dynamic_tool(self, server):
        server.register(ToolSpec("dyn", "dynamic", []), lambda: 42)
        assert server.invoke("dyn").content == 42

    def test_unregister(self, server):
        server.unregister("echo")
        assert not server.has_tool("echo")

    def test_spec_lookup(self, server):
        assert server.spec("add").name == "add"
        with pytest.raises(ToolNotFoundError):
            server.spec("ghost")

    def test_render_tool_list_contains_all(self, server):
        text = server.render_tool_list()
        for name in ("echo", "add", "greet"):
            assert name in text


class TestToolResult:
    def test_ok_with_metadata(self):
        result = ToolResult.ok("data", rowcount=3)
        assert result.metadata["rowcount"] == 3

    def test_error_render_prefix(self):
        assert ToolResult.error("oops").render() == "ERROR: oops"

    def test_non_string_content_rendered(self):
        assert ToolResult.ok([1, 2]).render() == "[1, 2]"


class TestRegistry:
    def test_routing(self, server):
        registry = ToolRegistry([server])
        assert registry.invoke("add", a=1, b=2).content == 3

    def test_unknown_tool_error_result(self, server):
        registry = ToolRegistry([server])
        result = registry.invoke("ghost")
        assert result.is_error

    def test_first_server_wins_on_collision(self):
        class A(ToolServer):
            @tool(description="a", params=[])
            def same(self):
                return "A"

        class B(ToolServer):
            @tool(description="b", params=[])
            def same(self):
                return "B"

        registry = ToolRegistry([A(), B()])
        assert registry.invoke("same").content == "A"
        assert registry.tool_names().count("same") == 1

    def test_add_server(self, server):
        registry = ToolRegistry()
        registry.add_server(server)
        assert registry.has_tool("echo")

    def test_owner_of(self, server):
        registry = ToolRegistry([server])
        assert registry.owner_of("echo") is server
        with pytest.raises(ToolNotFoundError):
            registry.owner_of("ghost")
