"""SessionManager tests: authentication, expiry, teardown semantics."""

import pytest

from repro.mcp import ToolCall
from repro.minidb import Database
from repro.minidb.errors import PermissionDenied
from repro.service import LockManager, SessionError, SessionManager


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def db():
    database = Database(owner="admin")
    admin = database.connect("admin")
    admin.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
    admin.execute("INSERT INTO t VALUES (1, 'one')")
    return database


class TestLifecycle:
    def test_create_session_authenticates_against_db_roles(self, db):
        manager = SessionManager(db)
        session = manager.create_session("admin")
        assert session.user == "admin"
        assert manager.active_count() == 1
        with pytest.raises(PermissionDenied):
            manager.create_session("nobody")
        assert manager.active_count() == 1

    def test_installs_lock_manager_once(self, db):
        assert db.lock_manager is None
        manager = SessionManager(db)
        assert isinstance(db.lock_manager, LockManager)
        again = SessionManager(db)
        assert again.lock_manager is manager.lock_manager

    def test_tokens_are_unique_and_resolvable(self, db):
        manager = SessionManager(db)
        s1 = manager.create_session("admin")
        s2 = manager.create_session("admin")
        assert s1.token != s2.token
        assert manager.authenticate(s1.token) is s1
        assert manager.authenticate(s2.token) is s2
        with pytest.raises(SessionError):
            manager.authenticate("not-a-token")

    def test_each_session_owns_its_toolkit_and_minidb_session(self, db):
        manager = SessionManager(db)
        s1 = manager.create_session("admin")
        s2 = manager.create_session("admin")
        assert s1.bridge is not s2.bridge
        assert s1.minidb_session is not s2.minidb_session
        assert s1.minidb_session.db is db

    def test_session_limit_rejects(self, db):
        manager = SessionManager(db, max_sessions=2)
        manager.create_session("admin")
        manager.create_session("admin")
        with pytest.raises(SessionError):
            manager.create_session("admin")
        assert manager.stats["rejected"] == 1

    def test_session_limit_holds_under_racing_creates(self, db, monkeypatch):
        """Regression: the limit is re-checked in the same critical
        section that inserts, so a create that sneaks in while another's
        bridge is being built cannot push the count past max_sessions."""
        from repro.core.server import BridgeScope

        manager = SessionManager(db, max_sessions=1)
        original = BridgeScope.for_minidb_user.__func__
        state = {"raced": False}

        def racing(cls, database, user, config=None, **kwargs):
            if not state["raced"]:
                state["raced"] = True
                manager.create_session("admin")  # wins the race mid-build
            return original(cls, database, user, config, **kwargs)

        monkeypatch.setattr(
            BridgeScope, "for_minidb_user", classmethod(racing)
        )
        with pytest.raises(SessionError, match="limit"):
            manager.create_session("admin")
        assert manager.active_count() == 1
        assert manager.stats["rejected"] == 1


class TestExpiry:
    def test_idle_session_expires(self, db):
        clock = FakeClock()
        manager = SessionManager(db, session_ttl_s=60.0, clock=clock)
        session = manager.create_session("admin")
        clock.advance(30)
        assert manager.authenticate(session.token) is session  # touches
        clock.advance(59)
        assert manager.authenticate(session.token) is session
        clock.advance(61)
        with pytest.raises(SessionError, match="expired"):
            manager.authenticate(session.token)
        assert manager.active_count() == 0
        assert session.closed

    def test_expire_idle_reaps_only_stale(self, db):
        clock = FakeClock()
        manager = SessionManager(db, session_ttl_s=60.0, clock=clock)
        stale = manager.create_session("admin")
        clock.advance(40)
        fresh = manager.create_session("admin")
        clock.advance(30)  # stale idle 70s > TTL; fresh idle 30s
        assert manager.expire_idle() == 1
        assert stale.closed and not fresh.closed
        assert manager.stats["expired"] == 1

    def test_expired_session_rolls_back_and_releases_locks(self, db):
        clock = FakeClock()
        manager = SessionManager(db, session_ttl_s=60.0, clock=clock)
        session = manager.create_session("admin")
        session.call(ToolCall("begin", {}))
        session.call(
            ToolCall("update", {"sql": "UPDATE t SET v = 'dirty' WHERE id = 1"})
        )
        owner = session.minidb_session
        assert manager.lock_manager.held_by(owner)  # X lock held mid-tx
        clock.advance(120)
        manager.expire_idle()
        assert manager.lock_manager.held_by(owner) == {}
        # the uncommitted change was rolled back
        assert db.connect("admin").scalar("SELECT v FROM t WHERE id = 1") == "one"


class TestTeardown:
    def test_close_session_is_idempotent(self, db):
        manager = SessionManager(db)
        session = manager.create_session("admin")
        manager.close_session(session.token)
        manager.close_session(session.token)
        assert manager.active_count() == 0
        assert manager.stats["closed"] == 1
        with pytest.raises(SessionError):
            session.call(ToolCall("select", {"sql": "SELECT * FROM t"}))

    def test_manager_close_tears_down_everything(self, db):
        manager = SessionManager(db)
        sessions = [manager.create_session("admin") for _ in range(3)]
        manager.close()
        assert manager.active_count() == 0
        assert all(s.closed for s in sessions)


class TestCalls:
    def test_call_routes_through_bridge(self, db):
        manager = SessionManager(db)
        session = manager.create_session("admin")
        result = session.call(
            ToolCall("select", {"sql": "SELECT v FROM t WHERE id = 1"})
        )
        assert not result.is_error
        assert result.metadata["rows"] == [("one",)]
        assert session.calls == 1

    def test_privileges_scope_the_tool_surface(self, db):
        db.create_user("reader")
        db.connect("admin").execute("GRANT SELECT ON t TO reader")
        manager = SessionManager(db)
        session = manager.create_session("reader")
        names = session.bridge.tool_names()
        assert "select" in names
        assert "insert" not in names  # no INSERT grant, no insert tool
