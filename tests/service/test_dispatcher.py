"""Dispatcher tests: ordering, concurrency, backpressure, containment."""

import threading
import time

import pytest

from repro.mcp import ToolCall, ToolResult
from repro.minidb import Database
from repro.service import (
    Dispatcher,
    SerialDispatcher,
    ServiceOverloaded,
    SessionManager,
)


@pytest.fixture
def db():
    database = Database(owner="admin")
    admin = database.connect("admin")
    admin.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    admin.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
    return database


@pytest.fixture
def manager(db):
    return SessionManager(db, lock_timeout_s=5.0)


class TestExecution:
    def test_call_returns_tool_result(self, manager):
        dispatcher = Dispatcher(manager, workers=2)
        token = manager.create_session("admin").token
        result = dispatcher.call(
            token, ToolCall("select", {"sql": "SELECT v FROM t WHERE id = 1"})
        )
        assert not result.is_error
        assert result.metadata["rows"] == [(10,)]
        dispatcher.close()

    def test_unknown_token_fails_fast(self, manager):
        dispatcher = Dispatcher(manager, workers=1)
        from repro.service import SessionError

        with pytest.raises(SessionError):
            dispatcher.submit("bogus", ToolCall("select", {"sql": "SELECT 1"}))
        dispatcher.close()

    def test_handler_exception_becomes_error_result(self, manager):
        def broken(session, call):
            raise RuntimeError("boom")

        dispatcher = Dispatcher(manager, workers=1, handler=broken)
        token = manager.create_session("admin").token
        result = dispatcher.call(token, ToolCall("select", {"sql": "SELECT 1"}))
        assert result.is_error
        assert result.error_code == "RuntimeError"
        # the worker survived: a second request still executes
        result2 = dispatcher.call(token, ToolCall("select", {"sql": "SELECT 1"}))
        assert result2.is_error  # same broken handler, but it RAN
        dispatcher.close()


class TestOrdering:
    def test_per_session_fifo(self, manager):
        """One session's requests execute in submission order even with
        many workers."""
        seen = []
        guard = threading.Lock()

        def recording(session, call):
            with guard:
                seen.append(call.args["n"])
            time.sleep(0.002)
            return ToolResult.ok("done")

        dispatcher = Dispatcher(manager, workers=8, handler=recording)
        token = manager.create_session("admin").token
        futures = [
            dispatcher.submit(token, ToolCall("noop", {"n": n}))
            for n in range(50)
        ]
        for future in futures:
            future.result(timeout=30.0)
        assert seen == list(range(50))
        dispatcher.close()

    def test_sessions_run_concurrently(self, manager):
        """K sessions with blocking handlers overlap on K workers."""
        active = {"now": 0, "peak": 0}
        guard = threading.Lock()

        def blocking(session, call):
            with guard:
                active["now"] += 1
                active["peak"] = max(active["peak"], active["now"])
            time.sleep(0.05)
            with guard:
                active["now"] -= 1
            return ToolResult.ok("done")

        dispatcher = Dispatcher(manager, workers=4, handler=blocking)
        tokens = [manager.create_session("admin").token for _ in range(4)]
        futures = [
            dispatcher.submit(token, ToolCall("noop", {})) for token in tokens
        ]
        for future in futures:
            future.result(timeout=30.0)
        assert active["peak"] >= 3  # genuinely parallel, not serialized
        dispatcher.close()


class TestBackpressure:
    def test_admission_queue_rejects_when_full(self, manager):
        release = threading.Event()

        def stalled(session, call):
            release.wait(10.0)
            return ToolResult.ok("done")

        dispatcher = Dispatcher(
            manager,
            workers=1,
            queue_limit=2,
            admission_timeout_s=0.05,
            handler=stalled,
        )
        tokens = [manager.create_session("admin").token for _ in range(3)]
        dispatcher.submit(tokens[0], ToolCall("noop", {}))
        time.sleep(0.05)  # let the worker pick it up; queue_limit counts it
        dispatcher.submit(tokens[1], ToolCall("noop", {}))
        with pytest.raises(ServiceOverloaded):
            dispatcher.submit(tokens[2], ToolCall("noop", {}))
        assert dispatcher.metrics.snapshot()["rejected"] == 1
        release.set()
        dispatcher.close()

    def test_admission_blocks_until_space(self, manager):
        """submit waits for queue space instead of failing immediately."""
        dispatcher = Dispatcher(
            manager,
            workers=1,
            queue_limit=1,
            admission_timeout_s=10.0,
            handler=lambda s, c: (time.sleep(0.02), ToolResult.ok("ok"))[1],
        )
        token = manager.create_session("admin").token
        futures = [
            dispatcher.submit(token, ToolCall("noop", {"n": n}))
            for n in range(5)  # each submit waits for the previous to drain
        ]
        for future in futures:
            assert future.result(timeout=30.0).content == "ok"
        dispatcher.close()


class TestMetrics:
    def test_snapshot_has_service_surface(self, manager):
        dispatcher = Dispatcher(manager, workers=2)
        token = manager.create_session("admin").token
        for _ in range(5):
            dispatcher.call(token, ToolCall("select", {"sql": "SELECT 1"}))
        snapshot = dispatcher.metrics.snapshot()
        assert snapshot["submitted"] == 5
        assert snapshot["completed"] == 5
        assert snapshot["active_sessions"] == 1
        assert snapshot["p50_latency_s"] > 0
        assert snapshot["p95_latency_s"] >= snapshot["p50_latency_s"]
        assert "deadlocks" in snapshot and "lock_waits" in snapshot
        dispatcher.close()


class TestSerialDispatcher:
    def test_same_interface_inline_execution(self, manager):
        dispatcher = SerialDispatcher(manager)
        token = manager.create_session("admin").token
        future = dispatcher.submit(
            token, ToolCall("select", {"sql": "SELECT v FROM t WHERE id = 2"})
        )
        assert future.done()  # inline: resolved before submit returned
        assert future.result().metadata["rows"] == [(20,)]
        assert dispatcher.queue_depth() == 0
        dispatcher.close()

    def test_matches_threaded_results(self, db):
        calls = [
            ToolCall("select", {"sql": "SELECT v FROM t ORDER BY id"}),
            ToolCall("insert", {"sql": "INSERT INTO t VALUES (3, 30)"}),
            ToolCall("select", {"sql": "SELECT SUM(v) FROM t"}),
        ]
        outputs = {}
        for label in ("serial", "threaded"):
            database = Database(owner="admin")
            admin = database.connect("admin")
            admin.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
            admin.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
            manager = SessionManager(database)
            token = manager.create_session("admin").token
            dispatcher = (
                SerialDispatcher(manager)
                if label == "serial"
                else Dispatcher(manager, workers=4)
            )
            outputs[label] = [
                dispatcher.call(token, call).render() for call in calls
            ]
            dispatcher.close()
            manager.close()
        assert outputs["serial"] == outputs["threaded"]


class TestShutdown:
    def test_close_resolves_unrun_requests(self, manager):
        release = threading.Event()

        def stalled(session, call):
            release.wait(5.0)
            return ToolResult.ok("done")

        dispatcher = Dispatcher(
            manager, workers=1, queue_limit=10, handler=stalled
        )
        token = manager.create_session("admin").token
        first = dispatcher.submit(token, ToolCall("noop", {}))
        queued = [dispatcher.submit(token, ToolCall("noop", {})) for _ in range(3)]
        release.set()
        dispatcher.close(drain=False)
        # every future resolves one way or the other — nothing hangs
        for future in [first, *queued]:
            result = future.result(timeout=10.0)
            assert result.content in ("done",) or result.error_code == "ServiceShutdown"

    def test_submit_after_close_rejects(self, manager):
        dispatcher = Dispatcher(manager, workers=1)
        token = manager.create_session("admin").token
        dispatcher.close()
        with pytest.raises(ServiceOverloaded):
            dispatcher.submit(token, ToolCall("noop", {}))

    def test_close_wakes_admission_blocked_submitters(self, manager):
        """Regression: close() must notify submitters waiting for queue
        space (they fail fast instead of sleeping out their admission
        timeout), and a submit racing with close must never leave a
        future that nothing resolves."""
        release = threading.Event()

        def stalled(session, call):
            release.wait(10.0)
            return ToolResult.ok("done")

        dispatcher = Dispatcher(
            manager,
            workers=1,
            queue_limit=1,
            admission_timeout_s=30.0,
            handler=stalled,
        )
        token = manager.create_session("admin").token
        first = dispatcher.submit(token, ToolCall("noop", {}))
        outcome = {}

        def blocked_submit():
            try:
                outcome["future"] = dispatcher.submit(
                    token, ToolCall("noop", {})
                )
            except ServiceOverloaded:
                outcome["rejected"] = True

        thread = threading.Thread(target=blocked_submit, daemon=True)
        thread.start()
        time.sleep(0.1)  # let it block on admission (queue is full)
        release.set()
        dispatcher.close(drain=False)
        thread.join(timeout=5.0)  # well under the 30s admission timeout
        assert not thread.is_alive()
        assert outcome  # it either got in or was rejected — never lost
        if "future" in outcome:  # admitted in the race window: resolves
            result = outcome["future"].result(timeout=5.0)
            assert (
                result.content == "done"
                or result.error_code == "ServiceShutdown"
            )
        assert first.result(timeout=5.0).content == "done"
