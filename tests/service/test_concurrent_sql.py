"""End-to-end concurrency stress: real SQL through the threaded service.

``REPRO_STRESS_THREADS`` scales the session count (CI runs these with a
higher count than the local default to shake out scheduling races).
"""

import os
import threading
import time

import pytest

from repro.mcp import ToolCall
from repro.minidb import Database
from repro.service import (
    Dispatcher,
    RetryPolicy,
    SessionManager,
    retryable_result,
    run_with_retries,
)

STRESS_SESSIONS = int(os.environ.get("REPRO_STRESS_THREADS", "6"))


def make_db():
    db = Database(owner="admin")
    admin = db.connect("admin")
    admin.execute("CREATE TABLE counters (id INT PRIMARY KEY, val INT)")
    admin.execute("INSERT INTO counters VALUES (1, 0)")
    admin.execute("CREATE TABLE log (id INT PRIMARY KEY, who TEXT)")
    return db


def run_increments(dispatcher, manager, sessions, increments):
    """Each session commits `increments` read-modify-write transactions,
    re-issuing deadlock/timeout victims through the blessed retry
    primitive (`run_with_retries` + the result-metadata taxonomy)."""
    stats = {"committed": 0, "retries": 0, "nonretryable": 0}
    guard = threading.Lock()

    def work(index):
        token = manager.create_session("admin").token
        policy = RetryPolicy(
            max_attempts=1000, base_delay_s=0.001, max_delay_s=0.05, seed=index
        )

        def attempt():
            dispatcher.call(token, ToolCall("begin", {}))
            read = dispatcher.call(
                token,
                ToolCall("select", {"sql": "SELECT val FROM counters WHERE id = 1"}),
            )
            if read.is_error:
                # a deadlock abort already rolled the transaction back;
                # the explicit rollback is then a harmless no-op
                dispatcher.call(token, ToolCall("rollback", {}))
                return read
            value = read.metadata["rows"][0][0]
            write = dispatcher.call(
                token,
                ToolCall(
                    "update",
                    {"sql": f"UPDATE counters SET val = {value + 1} WHERE id = 1"},
                ),
            )
            if write.is_error:
                dispatcher.call(token, ToolCall("rollback", {}))
                return write
            return dispatcher.call(token, ToolCall("commit", {}))

        def note_retry(attempt_number, failure):
            with guard:
                stats["retries"] += 1

        done = 0
        while done < increments:
            result = run_with_retries(
                attempt,
                policy,
                retry_result=retryable_result,
                on_retry=note_retry,
            )
            if result.is_error:
                with guard:
                    stats["nonretryable"] += 1
                continue
            done += 1
            with guard:
                stats["committed"] += 1

    threads = [
        threading.Thread(target=work, args=(n,), daemon=True)
        for n in range(sessions)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=180.0)
    hung = [thread for thread in threads if thread.is_alive()]
    return stats, hung


class TestWriterContention:
    def test_zero_lost_updates_and_zero_hangs(self):
        """The acceptance stress: concurrent read-modify-write transactions
        on one row must serialize perfectly — every committed increment
        lands, every deadlock aborts exactly one victim retryably, and no
        session ever hangs."""
        db = make_db()
        manager = SessionManager(db, lock_timeout_s=5.0)
        dispatcher = Dispatcher(
            manager, workers=STRESS_SESSIONS, queue_limit=STRESS_SESSIONS * 4
        )
        increments = 15
        stats, hung = run_increments(
            dispatcher, manager, STRESS_SESSIONS, increments
        )
        final = db.connect("admin").scalar("SELECT val FROM counters WHERE id = 1")
        dispatcher.close()
        manager.close()

        assert not hung, f"{len(hung)} sessions hung"
        assert stats["nonretryable"] == 0, stats
        assert stats["committed"] == STRESS_SESSIONS * increments
        # THE invariant: no lost updates under S->X upgrade contention
        assert final == stats["committed"]
        # locks fully drained
        assert manager.lock_manager.waiting_count() == 0

    def test_deadlocks_were_exercised_and_detected(self):
        """With enough contention the upgrade pattern must deadlock at
        least once — and every one must have been detected (no timeouts
        needed, no hangs)."""
        db = make_db()
        manager = SessionManager(db, lock_timeout_s=30.0)
        dispatcher = Dispatcher(manager, workers=8, queue_limit=64)
        stats, hung = run_increments(dispatcher, manager, 8, 10)
        lock_stats = dict(manager.lock_manager.stats)
        dispatcher.close()
        manager.close()
        assert not hung
        assert stats["committed"] == 80
        # the 30s lock timeout never fired: detection, not timeout,
        # resolved every cycle
        assert lock_stats["timeouts"] == 0
        assert lock_stats["deadlocks"] >= 1


class TestReadersAndWriters:
    def test_readers_never_see_torn_state(self):
        """Writers move value pairs atomically (explicit transaction);
        readers locked at table level must always observe a consistent
        pair."""
        db = Database(owner="admin")
        admin = db.connect("admin")
        admin.execute("CREATE TABLE pairs (id INT PRIMARY KEY, a INT, b INT)")
        admin.execute("INSERT INTO pairs VALUES (1, 0, 0)")
        manager = SessionManager(db, lock_timeout_s=10.0)
        dispatcher = Dispatcher(manager, workers=6, queue_limit=64)

        violations = []
        stop = threading.Event()

        def writer():
            token = manager.create_session("admin").token
            for n in range(1, 31):
                while True:
                    dispatcher.call(token, ToolCall("begin", {}))
                    u1 = dispatcher.call(
                        token,
                        ToolCall("update", {"sql": f"UPDATE pairs SET a = {n} WHERE id = 1"}),
                    )
                    if u1.is_error:
                        dispatcher.call(token, ToolCall("rollback", {}))
                        continue
                    u2 = dispatcher.call(
                        token,
                        ToolCall("update", {"sql": f"UPDATE pairs SET b = {n} WHERE id = 1"}),
                    )
                    if u2.is_error:
                        dispatcher.call(token, ToolCall("rollback", {}))
                        continue
                    if not dispatcher.call(token, ToolCall("commit", {})).is_error:
                        break
            stop.set()

        def reader():
            token = manager.create_session("admin").token
            while not stop.is_set():
                result = dispatcher.call(
                    token,
                    ToolCall("select", {"sql": "SELECT a, b FROM pairs WHERE id = 1"}),
                )
                if result.is_error:
                    continue  # retryable lock error under contention
                a, b = result.metadata["rows"][0]
                if a != b:
                    violations.append((a, b))

        threads = [threading.Thread(target=writer, daemon=True)] + [
            threading.Thread(target=reader, daemon=True) for _ in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        final = db.connect("admin").query("SELECT a, b FROM pairs")[0]
        dispatcher.close()
        manager.close()
        assert violations == []
        assert final == {"a": 30, "b": 30}


class TestRetryableAborts:
    def test_lock_timeout_rolls_back_transaction(self):
        """Regression: a lock-wait timeout is surfaced as retryable, so
        it must abort the transaction like a deadlock does — otherwise a
        client retrying with BEGIN hits a nested-transaction error while
        the stale locks linger until session teardown."""
        from repro.minidb.errors import LockTimeoutError
        from repro.service import LockManager

        db = make_db()
        db.lock_manager = LockManager(timeout_s=0.1)
        blocker = db.connect("admin")
        blocker.execute("BEGIN")
        blocker.execute("UPDATE counters SET val = 1 WHERE id = 1")  # X held
        victim = db.connect("admin")
        victim.execute("BEGIN")
        with pytest.raises(LockTimeoutError):
            victim.execute("SELECT * FROM counters")  # S blocked by X
        # the timeout aborted the whole transaction and freed its locks
        assert not victim.in_transaction
        assert db.lock_manager.held_by(victim) == {}
        victim.execute("BEGIN")  # the retryable contract: BEGIN just works
        victim.execute("ROLLBACK")
        blocker.execute("ROLLBACK")

    def test_value_retrieval_respects_table_locks(self):
        """Regression: the binding's catalog-building heap scans take an
        S lock, so they block on a writer's uncommitted X instead of
        reading dirty rows (and release at scan end in autocommit)."""
        from repro.core.minidb_binding import MinidbBinding
        from repro.minidb.errors import LockTimeoutError
        from repro.service import LockManager

        db = make_db()
        db.lock_manager = LockManager(timeout_s=0.1)
        writer = db.connect("admin")
        writer.execute("BEGIN")
        writer.execute("UPDATE counters SET val = 99 WHERE id = 1")
        binding = MinidbBinding(db.connect("admin"))
        with pytest.raises(LockTimeoutError):
            binding.distinct_values("counters", "val", 10)
        writer.execute("ROLLBACK")
        assert binding.distinct_values("counters", "val", 10) == [0]
        # autocommit: the S lock does not outlive the scan
        assert db.lock_manager.held_by(binding.session) == {}


class TestSchemaResolutionUnderLocks:
    def test_blocked_dml_sees_recreated_schema(self):
        """Regression: DML resolves its table schema *after* the table
        lock is granted, so a statement that blocked behind a concurrent
        DROP + CREATE runs against the recreated table's contract — not
        the dropped schema it saw before sleeping."""
        from repro.service import LockManager

        db = Database(owner="admin")
        db.lock_manager = LockManager(timeout_s=10.0)
        admin = db.connect("admin")
        admin.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")

        ddl = db.connect("admin")
        ddl.execute("BEGIN")
        ddl.execute("DELETE FROM t")  # takes and holds X on t

        writer = db.connect("admin")
        outcome = {}

        def blocked_insert():
            try:
                # legal against the old schema (v is nullable) — must be
                # judged against whatever schema exists once the lock is
                # finally granted
                writer.execute("INSERT INTO t (id) VALUES (1)")
                outcome["error"] = None
            except Exception as exc:
                outcome["error"] = exc

        thread = threading.Thread(target=blocked_insert, daemon=True)
        thread.start()
        time.sleep(0.2)  # let the insert park on the X lock
        assert thread.is_alive()
        ddl.execute("DROP TABLE t")
        ddl.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT NOT NULL)")
        ddl.execute("COMMIT")
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        # the recreated schema's NOT NULL constraint applied: the insert
        # was rejected instead of writing a mis-shaped row into the new heap
        assert outcome["error"] is not None
        assert db.connect("admin").scalar("SELECT COUNT(*) FROM t") == 0

    def test_blocked_retrieval_serves_recreated_table(self):
        """Regression: retrieve_values resolves schema/heap (and thus the
        cache fingerprint) *inside* the S lock, so a call that blocked
        behind DROP + CREATE rebuilds from the recreated heap instead of
        serving the dropped table's warm cached catalog."""
        from repro.core.minidb_binding import MinidbBinding
        from repro.service import LockManager

        db = Database(owner="admin")
        db.lock_manager = LockManager(timeout_s=10.0)
        admin = db.connect("admin")
        admin.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
        admin.execute("INSERT INTO t VALUES (1, 'old_value')")
        binding = MinidbBinding(db.connect("admin"))
        warm = [v for v, _ in binding.retrieve_values("t", "v", "value", 5, 100)]
        assert warm == ["old_value"]

        writer = db.connect("admin")
        writer.execute("BEGIN")
        writer.execute("DELETE FROM t WHERE id = 999")  # X on t, no rows hit

        outcome = {}

        def blocked_retrieve():
            outcome["values"] = [
                v for v, _ in binding.retrieve_values("t", "v", "value", 5, 100)
            ]

        thread = threading.Thread(target=blocked_retrieve, daemon=True)
        thread.start()
        time.sleep(0.2)
        assert thread.is_alive()  # parked on the S lock
        writer.execute("DROP TABLE t")
        writer.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
        writer.execute("INSERT INTO t VALUES (1, 'new_value')")
        writer.execute("COMMIT")
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert outcome["values"] == ["new_value"]

    def test_blocked_drop_index_if_exists_sees_concurrent_drop(self):
        """Regression: DROP INDEX re-checks existence after the lock
        grant, so losing the race to another drop yields '(absent)'
        rather than a raw KeyError from the catalog."""
        from repro.service import LockManager

        db = Database(owner="admin")
        db.lock_manager = LockManager(timeout_s=10.0)
        admin = db.connect("admin")
        admin.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        admin.execute("CREATE INDEX i ON t (v)")

        holder = db.connect("admin")
        holder.execute("BEGIN")
        holder.execute("DELETE FROM t")  # X on t

        dropper = db.connect("admin")
        outcome = {}

        def blocked_drop():
            try:
                outcome["status"] = dropper.execute("DROP INDEX IF EXISTS i").status
            except Exception as exc:
                outcome["error"] = exc

        thread = threading.Thread(target=blocked_drop, daemon=True)
        thread.start()
        time.sleep(0.2)
        assert thread.is_alive()  # parked behind holder's X
        holder.execute("DROP INDEX i")
        holder.execute("COMMIT")
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert outcome.get("error") is None, outcome
        assert outcome["status"] == "DROP INDEX (absent)"


class TestZeroThreadFastPath:
    def test_database_without_service_has_no_lock_manager(self):
        """Tier-1 semantics: a plain Database never pays for locking."""
        db = Database(owner="admin")
        assert db.lock_manager is None
        session = db.connect("admin")
        session.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        session.execute("INSERT INTO t VALUES (1)")
        assert session.scalar("SELECT COUNT(*) FROM t") == 1
