"""LockManager unit tests: compatibility, fairness, timeout, deadlock."""

import threading
import time

import pytest

from repro.minidb.errors import DeadlockError, LockTimeoutError
from repro.service import EXCLUSIVE, SHARED, LockManager


def spawn(fn, *args):
    thread = threading.Thread(target=fn, args=args, daemon=True)
    thread.start()
    return thread


class TestCompatibility:
    def test_shared_locks_coexist(self):
        lm = LockManager()
        lm.acquire("a", "t", SHARED)
        lm.acquire("b", "t", SHARED)
        assert lm.held_by("a") == {"t": "S"}
        assert lm.held_by("b") == {"t": "S"}

    def test_exclusive_excludes_everything(self):
        lm = LockManager(timeout_s=0.05)
        lm.acquire("a", "t", EXCLUSIVE)
        with pytest.raises(LockTimeoutError):
            lm.acquire("b", "t", SHARED)
        with pytest.raises(LockTimeoutError):
            lm.acquire("b", "t", EXCLUSIVE)

    def test_reentrant_and_sufficient_holds(self):
        lm = LockManager()
        lm.acquire("a", "t", EXCLUSIVE)
        lm.acquire("a", "t", EXCLUSIVE)  # re-entrant
        lm.acquire("a", "t", SHARED)  # X satisfies S
        lm.acquire("a", "t2", SHARED)
        lm.acquire("a", "t2", SHARED)
        assert lm.held_by("a") == {"t": "X", "t2": "S"}

    def test_table_names_case_insensitive(self):
        lm = LockManager(timeout_s=0.05)
        lm.acquire("a", "Orders", EXCLUSIVE)
        with pytest.raises(LockTimeoutError):
            lm.acquire("b", "orders", SHARED)

    def test_release_all_wakes_waiter(self):
        lm = LockManager(timeout_s=5.0)
        lm.acquire("a", "t", EXCLUSIVE)
        got = threading.Event()

        def waiter():
            lm.acquire("b", "t", EXCLUSIVE)
            got.set()

        thread = spawn(waiter)
        time.sleep(0.05)
        assert not got.is_set()
        lm.release_all("a")
        thread.join(timeout=5.0)
        assert got.is_set()
        assert lm.held_by("a") == {}
        assert lm.held_by("b") == {"t": "X"}


class TestFairness:
    def test_no_reader_barging_past_queued_writer(self):
        """S requests queue behind a waiting X (no writer starvation)."""
        lm = LockManager(timeout_s=5.0)
        lm.acquire("r1", "t", SHARED)
        order = []

        def writer():
            lm.acquire("w", "t", EXCLUSIVE)
            order.append("w")

        def late_reader():
            lm.acquire("r2", "t", SHARED)
            order.append("r2")

        w_thread = spawn(writer)
        time.sleep(0.05)  # writer is queued now
        r_thread = spawn(late_reader)
        time.sleep(0.05)
        # late reader must be waiting even though r1's S is compatible
        assert order == []
        lm.release_all("r1")
        w_thread.join(timeout=5.0)
        lm.release_all("w")
        r_thread.join(timeout=5.0)
        assert order == ["w", "r2"]

    def test_fifo_grant_order_for_writers(self):
        lm = LockManager(timeout_s=5.0)
        lm.acquire("holder", "t", EXCLUSIVE)
        order = []
        threads = []

        def writer(name):
            lm.acquire(name, "t", EXCLUSIVE)
            order.append(name)
            lm.release_all(name)

        for name in ("w1", "w2", "w3"):
            threads.append(spawn(writer, name))
            time.sleep(0.05)  # deterministic queue order
        lm.release_all("holder")
        for thread in threads:
            thread.join(timeout=5.0)
        assert order == ["w1", "w2", "w3"]


class TestUpgrade:
    def test_sole_holder_upgrades_in_place(self):
        lm = LockManager()
        lm.acquire("a", "t", SHARED)
        lm.acquire("a", "t", EXCLUSIVE)
        assert lm.held_by("a") == {"t": "X"}
        assert lm.stats["upgrades"] == 1

    def test_upgrade_waits_for_other_readers(self):
        lm = LockManager(timeout_s=5.0)
        lm.acquire("a", "t", SHARED)
        lm.acquire("b", "t", SHARED)
        done = threading.Event()

        def upgrader():
            lm.acquire("a", "t", EXCLUSIVE)
            done.set()

        thread = spawn(upgrader)
        time.sleep(0.05)
        assert not done.is_set()
        lm.release_all("b")
        thread.join(timeout=5.0)
        assert done.is_set()
        assert lm.held_by("a") == {"t": "X"}

    def test_upgrade_jumps_queued_writer(self):
        """An upgrade must not queue behind a stranger's X request —
        that would deadlock against our own S hold."""
        lm = LockManager(timeout_s=5.0)
        lm.acquire("a", "t", SHARED)
        order = []

        def stranger():
            lm.acquire("w", "t", EXCLUSIVE)
            order.append("w")
            lm.release_all("w")

        thread = spawn(stranger)
        time.sleep(0.05)
        lm.acquire("a", "t", EXCLUSIVE)  # upgrade goes first
        order.append("a")
        lm.release_all("a")
        thread.join(timeout=5.0)
        assert order == ["a", "w"]


class TestDeadlock:
    def test_upgrade_upgrade_deadlock_aborts_one(self):
        """The classic: two S holders both upgrade; one must die."""
        lm = LockManager(timeout_s=10.0)
        lm.acquire("a", "t", SHARED)
        lm.acquire("b", "t", SHARED)
        outcomes = {}

        def upgrade(name):
            try:
                lm.acquire(name, "t", EXCLUSIVE)
                outcomes[name] = "granted"
            except DeadlockError:
                outcomes[name] = "deadlock"
                lm.release_all(name)

        t_a = spawn(upgrade, "a")
        time.sleep(0.1)
        t_b = spawn(upgrade, "b")
        t_a.join(timeout=5.0)
        t_b.join(timeout=5.0)
        assert sorted(outcomes.values()) == ["deadlock", "granted"]
        assert lm.stats["deadlocks"] == 1

    def test_cross_table_cycle_detected(self):
        """A holds t1, B holds t2, each requests the other's table."""
        lm = LockManager(timeout_s=10.0)
        lm.acquire("a", "t1", EXCLUSIVE)
        lm.acquire("b", "t2", EXCLUSIVE)
        outcomes = {}

        def cross(name, table):
            try:
                lm.acquire(name, table, EXCLUSIVE)
                outcomes[name] = "granted"
            except DeadlockError:
                outcomes[name] = "deadlock"
                lm.release_all(name)

        t_a = spawn(cross, "a", "t2")
        time.sleep(0.1)
        t_b = spawn(cross, "b", "t1")
        t_a.join(timeout=5.0)
        t_b.join(timeout=5.0)
        assert sorted(outcomes.values()) == ["deadlock", "granted"]

    def test_deadlock_error_is_retryable(self):
        assert DeadlockError.retryable is True
        assert LockTimeoutError.retryable is True

    def test_victim_removal_promotes_follower(self):
        """Aborting a queue-front waiter must wake a grantable follower."""
        lm = LockManager(timeout_s=10.0)
        lm.acquire("a", "t", SHARED)
        lm.acquire("b", "t", SHARED)
        follower_done = threading.Event()

        def upgrade_a():
            try:
                lm.acquire("a", "t", EXCLUSIVE)
            except DeadlockError:
                lm.release_all("a")

        def upgrade_b():
            try:
                lm.acquire("b", "t", EXCLUSIVE)
            except DeadlockError:
                lm.release_all("b")

        def follower():
            lm.acquire("c", "t", SHARED)
            follower_done.set()
            lm.release_all("c")

        threads = [spawn(upgrade_a)]
        time.sleep(0.05)
        threads.append(spawn(follower))  # queues behind the upgrade
        time.sleep(0.05)
        threads.append(spawn(upgrade_b))  # closes the cycle
        for thread in threads:
            thread.join(timeout=5.0)
        lm.release_all("a")
        lm.release_all("b")
        assert follower_done.wait(timeout=5.0)


class TestTimeout:
    def test_timeout_raises_and_cleans_queue(self):
        lm = LockManager(timeout_s=0.05)
        lm.acquire("a", "t", EXCLUSIVE)
        with pytest.raises(LockTimeoutError):
            lm.acquire("b", "t", EXCLUSIVE)
        assert lm.waiting_count() == 0
        assert lm.stats["timeouts"] == 1
        # the manager is still healthy afterwards
        lm.release_all("a")
        lm.acquire("b", "t", EXCLUSIVE)

    def test_per_call_timeout_override(self):
        lm = LockManager(timeout_s=30.0)
        lm.acquire("a", "t", EXCLUSIVE)
        started = time.monotonic()
        with pytest.raises(LockTimeoutError):
            lm.acquire("b", "t", SHARED, timeout_s=0.05)
        assert time.monotonic() - started < 5.0


class TestStaleLockReferences:
    def test_abandoning_stale_lock_never_pops_the_live_one(self):
        """Regression: a woken victim can hold a reference to a
        _TableLock whose key went idle and was re-created by another
        session; abandoning its wait must not pop the NEW live lock from
        the table map (that would orphan the live holders — release_all
        could no longer find them, and fresh acquirers could grant a
        second X on a table still exclusively held)."""
        from repro.service.locks import _TableLock, _Waiter

        lm = LockManager(timeout_s=0.05)
        stale = _TableLock()
        orphan = _Waiter("victim", EXCLUSIVE)
        orphan.victim = True
        # key "t" has since been re-created: a live session holds X on it
        lm.acquire("a", "t", EXCLUSIVE)
        with lm._mutex:
            lm._abandon_wait("t", stale, orphan)
        # mutual exclusion must survive: "a" still holds X and blocks "b"
        assert lm.held_by("a") == {"t": "X"}
        with pytest.raises(LockTimeoutError):
            lm.acquire("b", "t", EXCLUSIVE)
        # and release_all still finds the holder, so the lock drains
        lm.release_all("a")
        lm.acquire("b", "t", EXCLUSIVE)
        assert lm.held_by("b") == {"t": "X"}
