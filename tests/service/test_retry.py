"""The unified retry/backoff layer and storage-degradation mapping.

Covers :mod:`repro.service.retry` — schedule shape, both failure
channels (exceptions and ToolResults), the retryable taxonomy — and the
dispatcher end of the fail-stop contract: a panicked engine surfaces as
a degraded service with ``storage_errors`` counted and ``retryable``
*not* set (re-issuing a write at a fail-stop engine cannot help).
"""

from __future__ import annotations

import random

import pytest

from repro.faults import FaultPlan, FaultyFilesystem
from repro.mcp import ToolCall, ToolResult
from repro.minidb import Database, StorageFailedError
from repro.minidb.errors import DeadlockError, LockTimeoutError
from repro.service import (
    Dispatcher,
    RetryPolicy,
    SerialDispatcher,
    ServiceOverloaded,
    SessionManager,
    is_retryable_error,
    retryable_result,
    run_with_retries,
)


class TestRetryPolicy:
    def test_delay_grows_exponentially_to_the_cap(self):
        policy = RetryPolicy(
            base_delay_s=0.01, max_delay_s=0.05, multiplier=2.0, jitter=0.0
        )
        rng = random.Random(0)
        delays = [policy.delay_s(a, rng) for a in range(1, 6)]
        assert delays == [0.01, 0.02, 0.04, 0.05, 0.05]

    def test_jitter_only_shaves_never_inflates(self):
        policy = RetryPolicy(base_delay_s=0.01, jitter=1.0, multiplier=1.0)
        rng = random.Random(42)
        for attempt in range(1, 50):
            delay = policy.delay_s(attempt, rng)
            assert 0.0 <= delay <= 0.01

    def test_seed_makes_the_schedule_reproducible(self):
        def schedule(seed):
            policy = RetryPolicy(seed=seed)
            rng = random.Random(policy.seed)
            return [policy.delay_s(a, rng) for a in range(1, 8)]

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)


class TestTaxonomy:
    def test_engine_retryable_flags_are_honored(self):
        assert is_retryable_error(DeadlockError("victim"))
        assert is_retryable_error(LockTimeoutError("slow"))
        assert is_retryable_error(ServiceOverloaded("shed"))

    def test_failstop_and_plain_errors_are_not_retryable(self):
        assert not is_retryable_error(StorageFailedError("fail-stop"))
        assert not is_retryable_error(ValueError("nope"))

    def test_result_channel_reads_the_metadata_mark(self):
        marked = ToolResult.error("deadlock", code="DeadlockError")
        marked.metadata["retryable"] = True
        assert retryable_result(marked)
        assert not retryable_result(ToolResult.error("boom", code="X"))
        assert not retryable_result(ToolResult.ok("fine"))


class TestRunWithRetries:
    def test_retries_until_success(self):
        sleeps = []
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 4:
                raise DeadlockError("victim")
            return "done"

        result = run_with_retries(
            flaky,
            RetryPolicy(max_attempts=8, jitter=0.0, seed=1),
            sleep=sleeps.append,
        )
        assert result == "done"
        assert len(attempts) == 4
        assert len(sleeps) == 3
        assert sleeps == sorted(sleeps), "backoff must be non-decreasing"

    def test_nonretryable_exception_propagates_immediately(self):
        attempts = []

        def broken():
            attempts.append(1)
            raise StorageFailedError("fail-stop")

        with pytest.raises(StorageFailedError):
            run_with_retries(
                broken, RetryPolicy(max_attempts=8), sleep=lambda _s: None
            )
        assert len(attempts) == 1, "fail-stop must not consume retries"

    def test_exhaustion_reraises_the_last_exception(self):
        attempts = []

        def always_deadlocked():
            attempts.append(1)
            raise DeadlockError("victim")

        with pytest.raises(DeadlockError):
            run_with_retries(
                always_deadlocked,
                RetryPolicy(max_attempts=3),
                sleep=lambda _s: None,
            )
        assert len(attempts) == 3

    def test_result_channel_retries_marked_errors(self):
        outcomes = [
            ToolResult.error("deadlock", code="DeadlockError"),
            ToolResult.error("deadlock", code="DeadlockError"),
            ToolResult.ok("committed"),
        ]
        for bad in outcomes[:2]:
            bad.metadata["retryable"] = True
        calls = []

        def attempt():
            calls.append(1)
            return outcomes[len(calls) - 1]

        result = run_with_retries(
            attempt,
            RetryPolicy(max_attempts=8),
            retry_result=retryable_result,
            sleep=lambda _s: None,
        )
        assert not result.is_error
        assert len(calls) == 3

    def test_result_channel_exhaustion_returns_the_last_result(self):
        def always_marked():
            result = ToolResult.error("deadlock", code="DeadlockError")
            result.metadata["retryable"] = True
            return result

        result = run_with_retries(
            always_marked,
            RetryPolicy(max_attempts=3),
            retry_result=retryable_result,
            sleep=lambda _s: None,
        )
        assert result.is_error, "the caller must still see the failure"

    def test_on_retry_observes_each_scheduled_retry(self):
        seen = []

        def flaky():
            if len(seen) < 2:
                raise LockTimeoutError("slow")
            return "ok"

        run_with_retries(
            flaky,
            RetryPolicy(max_attempts=8),
            on_retry=lambda attempt, failure: seen.append(
                (attempt, type(failure).__name__)
            ),
            sleep=lambda _s: None,
        )
        assert seen == [(1, "LockTimeoutError"), (2, "LockTimeoutError")]

    def test_overload_is_retried(self):
        calls = []

        def shed_once():
            calls.append(1)
            if len(calls) == 1:
                raise ServiceOverloaded("queue full")
            return "admitted"

        assert (
            run_with_retries(
                shed_once, RetryPolicy(max_attempts=4), sleep=lambda _s: None
            )
            == "admitted"
        )


# --------------------------------------------------------------------------
# service degradation: panic mode through the dispatchers
# --------------------------------------------------------------------------


def panicked_service(tmp_path, dispatcher_cls):
    fs = FaultyFilesystem(FaultPlan())
    db = Database.open(str(tmp_path / "db"), filesystem=fs)
    admin = db.connect("admin")
    admin.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    admin.execute("INSERT INTO t VALUES (1, 10)")
    manager = SessionManager(db, lock_timeout_s=5.0)
    dispatcher = dispatcher_cls(manager, workers=2)
    token = manager.create_session("admin").token
    # poison the next WAL append: the first write through the service
    # latches fail-stop panic mode
    fs.plan = FaultPlan(error_at=fs.ops)
    return db, dispatcher, token


@pytest.mark.parametrize("dispatcher_cls", [Dispatcher, SerialDispatcher])
class TestDegradedService:
    def test_panic_degrades_to_readonly_with_counters(
        self, tmp_path, dispatcher_cls
    ):
        db, dispatcher, token = panicked_service(tmp_path, dispatcher_cls)
        before = dispatcher.metrics.snapshot()
        assert before["degraded"] is False
        assert before["storage_errors"] == 0

        write = ToolCall("insert", {"sql": "INSERT INTO t VALUES (2, 20)"})
        result = dispatcher.call(token, write)
        assert result.is_error
        assert result.error_code == "StorageFailedError"
        assert not result.metadata.get("retryable"), (
            "fail-stop must not invite retries"
        )
        assert db.engine.panicked

        # reads still serve; further writes keep refusing and counting
        read = dispatcher.call(
            token, ToolCall("select", {"sql": "SELECT v FROM t WHERE id = 1"})
        )
        assert not read.is_error
        assert read.metadata["rows"] == [(10,)]
        again = dispatcher.call(token, write)
        assert again.error_code == "StorageFailedError"

        after = dispatcher.metrics.snapshot()
        assert after["degraded"] is True
        assert after["storage_errors"] == 2
        dispatcher.close()
        db.close()
