"""Tests for the ReAct agent loop with scripted policies."""

from dataclasses import dataclass

import pytest

from repro.agent import AgentAction, Conversation, ReActAgent
from repro.llm import GPT_4O
from repro.llm.profiles import ModelProfile
from repro.mcp import ParamSpec, ToolRegistry, ToolServer, tool


@dataclass
class FakeTask:
    task_id: str = "t1"
    description: str = "do the thing"


class CounterServer(ToolServer):
    @tool(description="count up", params=[])
    def tick(self):
        return "tock"

    @tool(description="emit big output", params=[ParamSpec("n", "integer")])
    def blob(self, n):
        return "x " * n

    @tool(description="fail", params=[])
    def fail(self):
        raise ValueError("nope")


class ScriptedPolicy:
    """Plays back a fixed list of actions."""

    def __init__(self, actions, profile=GPT_4O):
        self.actions = actions
        self.profile = profile
        self.index = 0

    def reset(self):
        self.index = 0

    def decide(self, task, view):
        action = self.actions[min(self.index, len(self.actions) - 1)]
        self.index += 1
        return action


@pytest.fixture
def registry():
    return ToolRegistry([CounterServer()])


def make_agent(actions, registry, profile=GPT_4O):
    return ReActAgent(ScriptedPolicy(actions, profile), registry, "sys prompt")


class TestLoop:
    def test_final_completes(self, registry):
        agent = make_agent([AgentAction.final("done")], registry)
        trace = agent.run(FakeTask())
        assert trace.completed
        assert not trace.aborted
        assert trace.llm_calls == 1
        assert trace.final_text == "done"

    def test_abort_marks_trace(self, registry):
        agent = make_agent([AgentAction.abort("cannot")], registry)
        trace = agent.run(FakeTask())
        assert trace.completed
        assert trace.aborted

    def test_tool_call_then_final(self, registry):
        agent = make_agent(
            [AgentAction.call("tick"), AgentAction.final("ok")], registry
        )
        trace = agent.run(FakeTask())
        assert trace.llm_calls == 2
        assert trace.tool_sequence() == ["tick"]
        assert trace.tool_calls[0].ok

    def test_tool_failure_recorded(self, registry):
        agent = make_agent(
            [AgentAction.call("fail"), AgentAction.final("ok")], registry
        )
        trace = agent.run(FakeTask())
        assert not trace.tool_calls[0].ok
        assert trace.error_count() == 1

    def test_step_limit(self, registry):
        agent = make_agent([AgentAction.call("tick")], registry)
        trace = agent.run(FakeTask())
        assert not trace.completed
        assert trace.failure_reason == "step_limit"
        assert trace.llm_calls == GPT_4O.max_steps

    def test_transaction_flags(self):
        class TxServer(ToolServer):
            @tool(description="b", params=[])
            def begin(self):
                return "BEGIN"

            @tool(description="c", params=[])
            def commit(self):
                return "COMMIT"

        agent = ReActAgent(
            ScriptedPolicy(
                [
                    AgentAction.call("begin"),
                    AgentAction.call("commit"),
                    AgentAction.final("ok"),
                ]
            ),
            ToolRegistry([TxServer()]),
            "p",
        )
        trace = agent.run(FakeTask())
        assert trace.began_transaction
        assert trace.committed


class TestTokenAccounting:
    def test_tokens_accumulate_per_call(self, registry):
        agent = make_agent(
            [AgentAction.call("tick"), AgentAction.final("ok")], registry
        )
        trace = agent.run(FakeTask())
        assert trace.input_tokens > 0
        assert trace.output_tokens >= 2 * GPT_4O.reasoning_verbosity
        assert trace.total_tokens == trace.input_tokens + trace.output_tokens

    def test_later_calls_cost_more_input(self, registry):
        one = make_agent([AgentAction.final("ok")], registry).run(FakeTask())
        three = make_agent(
            [
                AgentAction.call("tick"),
                AgentAction.call("tick"),
                AgentAction.final("ok"),
            ],
            registry,
        ).run(FakeTask())
        assert three.input_tokens > 3 * one.input_tokens  # history compounds

    def test_context_overflow_fails_run(self, registry):
        tiny = ModelProfile(
            **{
                **{f.name: getattr(GPT_4O, f.name) for f in GPT_4O.__dataclass_fields__.values()},
                "context_window": 300,
            }
        )
        agent = make_agent(
            [
                AgentAction.call("blob", n=500),
                AgentAction.call("tick"),
                AgentAction.final("ok"),
            ],
            registry,
            profile=tiny,
        )
        trace = agent.run(FakeTask())
        assert not trace.completed
        assert trace.failure_reason == "context_overflow"

    def test_payload_captured(self, registry):
        class DataServer(ToolServer):
            @tool(description="rows", params=[])
            def rows(self):
                from repro.mcp import ToolResult

                return ToolResult.ok("text", rows=[(1,), (2,)])

        agent = ReActAgent(
            ScriptedPolicy([AgentAction.call("rows"), AgentAction.final("ok")]),
            ToolRegistry([DataServer()]),
            "p",
        )
        trace = agent.run(FakeTask())
        assert trace.last_payload == [(1,), (2,)]


class TestConversation:
    def test_token_totals(self):
        conversation = Conversation()
        conversation.add("system", "hello world")
        conversation.add("user", "task")
        assert conversation.total_tokens == sum(m.tokens for m in conversation.messages)

    def test_render(self):
        conversation = Conversation()
        conversation.add("user", "hi")
        assert "[user] hi" in conversation.render()


class TestAgentAction:
    def test_render_tool_call(self):
        action = AgentAction.call("select", sql="SELECT 1")
        assert "select" in action.render()
        assert "SELECT 1" in action.render()

    def test_render_final(self):
        assert AgentAction.final("answer").render() == "FINAL: answer"

    def test_render_abort(self):
        assert AgentAction.abort("why").render() == "ABORT: why"
