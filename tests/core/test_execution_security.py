"""Tests for F2: action-level tool exposure and object-level verification."""

import pytest

from repro.core import (
    BridgeScope,
    BridgeScopeConfig,
    MinidbBinding,
    SecurityPolicy,
    SqlVerifier,
    SecurityViolation,
)
from repro.minidb import Database


class TestToolExposure:
    def test_full_privileges_expose_all_tools(self, manager_bridge):
        actions = set(manager_bridge.exposed_sql_actions())
        assert {"SELECT", "INSERT", "UPDATE", "DELETE"} <= actions

    def test_read_only_user_gets_only_select(self, viewer_bridge):
        assert viewer_bridge.exposed_sql_actions() == ["SELECT"]
        assert "insert" not in viewer_bridge.tool_names()
        assert "delete" not in viewer_bridge.tool_names()

    def test_read_only_user_has_no_transaction_tools(self, viewer_bridge):
        names = viewer_bridge.tool_names()
        assert "begin" not in names
        assert "commit" not in names

    def test_writer_gets_transaction_tools(self, manager_bridge):
        names = manager_bridge.tool_names()
        assert {"begin", "commit", "rollback"} <= set(names)

    def test_policy_blacklist_removes_tools(self, policy_bridge):
        actions = set(policy_bridge.exposed_sql_actions())
        assert "DROP" not in actions
        assert "DELETE" not in actions
        assert "SELECT" in actions

    def test_action_whitelist(self, db):
        bridge = BridgeScope(
            MinidbBinding.for_user(db, "manager"),
            BridgeScopeConfig(policy=SecurityPolicy.read_only()),
        )
        assert bridge.exposed_sql_actions() == ["SELECT"]

    def test_user_without_any_grants_has_no_sql_tools(self, db):
        db.create_user("nobody")
        bridge = BridgeScope(MinidbBinding.for_user(db, "nobody"))
        assert bridge.exposed_sql_actions() == []

    def test_proxy_always_present(self, viewer_bridge):
        assert "proxy" in viewer_bridge.tool_names()


class TestExecution:
    def test_select_returns_rows(self, manager_bridge):
        result = manager_bridge.invoke("select", sql="SELECT * FROM items")
        assert not result.is_error
        assert result.metadata["rowcount"] == 3
        assert "rows" in result.metadata

    def test_insert_reports_rowcount(self, manager_bridge):
        result = manager_bridge.invoke(
            "insert",
            sql="INSERT INTO items VALUES (9, 'hat', 'accessories', 12.0)",
        )
        assert result.content == "INSERT 1"

    def test_row_truncation(self, db):
        bridge = BridgeScope(
            MinidbBinding.for_user(db, "manager"),
            BridgeScopeConfig(max_result_rows=1),
        )
        result = bridge.invoke("select", sql="SELECT * FROM items")
        assert "more rows truncated" in result.content
        # full rows still in metadata for proxy routing
        assert len(result.metadata["rows"]) == 3

    def test_engine_errors_surface(self, manager_bridge):
        result = manager_bridge.invoke("select", sql="SELECT nope FROM items")
        assert result.is_error
        assert result.error_code == "UnknownColumnError"


class TestActionMismatch:
    @pytest.mark.parametrize(
        "tool,sql",
        [
            ("select", "DELETE FROM items"),
            ("select", "INSERT INTO items VALUES (5, 'x', 'y', 1.0)"),
            ("insert", "SELECT * FROM items"),
            ("update", "DROP TABLE items"),
            ("delete", "UPDATE items SET price = 0"),
        ],
    )
    def test_smuggled_action_rejected(self, manager_bridge, tool, sql):
        result = manager_bridge.invoke(tool, sql=sql)
        assert result.is_error
        assert result.error_code == "SecurityViolation"

    def test_transaction_statement_rejected_in_sql_tools(self, manager_bridge):
        result = manager_bridge.invoke("select", sql="BEGIN")
        assert result.is_error

    def test_database_unchanged_after_rejection(self, db, manager_bridge):
        before = db.snapshot()
        manager_bridge.invoke("select", sql="DELETE FROM items")
        assert db.snapshot() == before


class TestObjectLevelVerification:
    def test_unauthorized_table_intercepted(self, viewer_bridge):
        result = viewer_bridge.invoke("select", sql="SELECT * FROM items")
        assert result.is_error
        assert result.error_code == "SecurityViolation"
        assert "permission denied" in result.content

    def test_join_smuggling_unauthorized_table(self, viewer_bridge):
        result = viewer_bridge.invoke(
            "select",
            sql="SELECT s.amount, i.price FROM sales s JOIN items i "
            "ON s.item_id = i.item_id",
        )
        assert result.is_error

    def test_subquery_smuggling_intercepted(self, policy_bridge):
        result = policy_bridge.invoke(
            "select",
            sql="SELECT * FROM sales WHERE amount > (SELECT MAX(pay) FROM salaries)",
        )
        assert result.is_error
        assert "salaries" in result.content

    def test_policy_blocked_action_through_allowed_tool(self, policy_bridge):
        # DELETE is policy-blocked, so no delete tool; try via update tool
        result = policy_bridge.invoke("update", sql="DELETE FROM sales")
        assert result.is_error

    def test_grant_revoke_never_allowed(self, admin_bridge):
        result = admin_bridge.invoke("select", sql="GRANT SELECT ON items TO viewer")
        assert result.is_error

    def test_verifier_counters(self, db):
        binding = MinidbBinding.for_user(db, "manager")
        verifier = SqlVerifier(binding, SecurityPolicy.permissive())
        verifier.verify("SELECT * FROM items", expected_action="SELECT")
        with pytest.raises(SecurityViolation):
            verifier.verify("SELECT * FROM salaries", expected_action="SELECT")
        assert verifier.verified == 1
        assert verifier.rejected == 1

    def test_column_grant_whole_object_rejected(self, db):
        admin = db.connect("admin")
        db.create_user("partial")
        admin.execute("GRANT SELECT (region) ON sales TO partial")
        bridge = BridgeScope(MinidbBinding.for_user(db, "partial"))
        ok = bridge.invoke("select", sql="SELECT region FROM sales")
        assert not ok.is_error
        denied = bridge.invoke("select", sql="SELECT * FROM sales")
        assert denied.is_error

    def test_create_requires_database_wide_privilege(self, manager_bridge, db):
        result = manager_bridge.invoke("create", sql="CREATE TABLE t2 (x INT)")
        assert result.is_error  # manager lacks database-wide CREATE
        db.connect("admin").execute("GRANT CREATE ON * TO manager")
        bridge = BridgeScope(MinidbBinding.for_user(db, "manager"))
        assert not bridge.invoke("create", sql="CREATE TABLE t2 (x INT)").is_error


class TestTransactionTools:
    def test_begin_commit_persists(self, manager_bridge, db):
        manager_bridge.invoke("begin")
        manager_bridge.invoke(
            "insert", sql="INSERT INTO items VALUES (7, 'belt', 'accessories', 9.0)"
        )
        manager_bridge.invoke("commit")
        assert db.table_row_count("items") == 4

    def test_rollback_reverts(self, manager_bridge, db):
        manager_bridge.invoke("begin")
        manager_bridge.invoke("delete", sql="DELETE FROM sales")
        manager_bridge.invoke("rollback")
        assert db.table_row_count("sales") == 3

    def test_commit_without_begin_errors(self, manager_bridge):
        result = manager_bridge.invoke("commit")
        assert result.is_error

    def test_atomic_multi_insert(self, manager_bridge, db):
        manager_bridge.invoke("begin")
        manager_bridge.invoke(
            "insert", sql="INSERT INTO sales VALUES (20, 1, 5.0, 'Midwest')"
        )
        manager_bridge.invoke(
            "insert", sql="INSERT INTO sales VALUES (21, 2, 6.0, 'Midwest')"
        )
        manager_bridge.invoke("rollback")
        assert db.table_row_count("sales") == 3
