"""Tests for the hierarchical context-retrieval flow on large databases.

With many objects, get_schema() returns only names and the agent drills
down with get_object() — the paper's token-saving strategy for scale.
"""

import pytest

from repro.core import BridgeScope, BridgeScopeConfig, MinidbBinding
from repro.llm.tokenizer import count_tokens
from repro.minidb import Database


@pytest.fixture
def wide_db():
    """A database with 30 tables."""
    db = Database(owner="admin")
    session = db.connect("admin")
    for index in range(30):
        session.execute(
            f"CREATE TABLE table_{index:02d} (id INT PRIMARY KEY, "
            f"payload_{index} TEXT, note TEXT)"
        )
    return db


class TestHierarchicalFlow:
    def test_default_threshold_switches_to_names_only(self, wide_db):
        bridge = BridgeScope(MinidbBinding.for_user(wide_db, "admin"))
        assert bridge.context.schema_mode() == "hierarchical"
        out = bridge.invoke("get_schema").content
        assert "table_07" in out
        assert "CREATE TABLE" not in out

    def test_drill_down_with_get_object(self, wide_db):
        bridge = BridgeScope(MinidbBinding.for_user(wide_db, "admin"))
        out = bridge.invoke("get_object", name="table_07").content
        assert "CREATE TABLE table_07" in out
        assert "payload_7" in out

    def test_hierarchical_saves_tokens(self, wide_db):
        binding = MinidbBinding.for_user(wide_db, "admin")
        hierarchical = BridgeScope(
            binding, BridgeScopeConfig(schema_detail_threshold=5)
        )
        full = BridgeScope(
            MinidbBinding.for_user(wide_db, "admin"),
            BridgeScopeConfig(schema_detail_threshold=100),
        )
        hier_tokens = count_tokens(str(hierarchical.invoke("get_schema").content))
        full_tokens = count_tokens(str(full.invoke("get_schema").content))
        assert hier_tokens < full_tokens / 3

    def test_names_plus_one_object_cheaper_than_full(self, wide_db):
        """The intended access pattern: list names, fetch one object."""
        bridge = BridgeScope(MinidbBinding.for_user(wide_db, "admin"))
        names = count_tokens(str(bridge.invoke("get_schema").content))
        one = count_tokens(str(bridge.invoke("get_object", name="table_00").content))
        full = BridgeScope(
            MinidbBinding.for_user(wide_db, "admin"),
            BridgeScopeConfig(schema_detail_threshold=100),
        )
        everything = count_tokens(str(full.invoke("get_schema").content))
        assert names + one < everything

    def test_threshold_boundary_exact(self, wide_db):
        bridge = BridgeScope(
            MinidbBinding.for_user(wide_db, "admin"),
            BridgeScopeConfig(schema_detail_threshold=30),
        )
        assert bridge.context.schema_mode() == "full"
        bridge2 = BridgeScope(
            MinidbBinding.for_user(wide_db, "admin"),
            BridgeScopeConfig(schema_detail_threshold=29),
        )
        assert bridge2.context.schema_mode() == "hierarchical"

    def test_policy_filtering_affects_mode(self, wide_db):
        from repro.core import SecurityPolicy

        visible = frozenset({f"table_{i:02d}" for i in range(3)})
        bridge = BridgeScope(
            MinidbBinding.for_user(wide_db, "admin"),
            BridgeScopeConfig(
                schema_detail_threshold=5,
                policy=SecurityPolicy(object_whitelist=visible),
            ),
        )
        # only 3 permitted objects -> full mode despite 30 tables
        assert bridge.context.schema_mode() == "full"
        out = bridge.invoke("get_schema").content
        assert out.count("CREATE TABLE") == 3
