"""Tests for F1 context retrieval: get_schema / get_object / get_value."""

import pytest

from repro.core import BridgeScope, BridgeScopeConfig, MinidbBinding, SecurityPolicy
from repro.minidb import Database


class TestGetSchema:
    def test_full_mode_renders_ddl(self, manager_bridge):
        out = manager_bridge.invoke("get_schema").content
        assert "CREATE TABLE items" in out
        assert "CREATE TABLE sales" in out

    def test_privilege_annotations_present(self, manager_bridge):
        out = manager_bridge.invoke("get_schema").content
        assert "-- Access: True, Privileges: ALL" in out

    def test_no_access_annotation(self, manager_bridge):
        # manager has no grant on salaries
        out = manager_bridge.invoke("get_schema").content
        blocks = out.split("\n\n")
        salary_block = next(b for b in blocks if "salaries" in b)
        assert "-- Access: False" in salary_block

    def test_partial_privileges_listed(self, viewer_bridge):
        out = viewer_bridge.invoke("get_schema").content
        blocks = out.split("\n\n")
        sales_block = next(b for b in blocks if "CREATE TABLE sales" in b)
        assert "Privileges: SELECT" in sales_block

    def test_policy_hides_blacklisted_objects(self, policy_bridge):
        out = policy_bridge.invoke("get_schema").content
        assert "salaries" not in out

    def test_whitelist_limits_objects(self, db):
        bridge = BridgeScope(
            MinidbBinding.for_user(db, "manager"),
            BridgeScopeConfig(
                policy=SecurityPolicy(object_whitelist=frozenset({"items"}))
            ),
        )
        out = bridge.invoke("get_schema").content
        assert "items" in out
        assert "CREATE TABLE sales" not in out

    def test_hierarchical_mode_above_threshold(self, db):
        bridge = BridgeScope(
            MinidbBinding.for_user(db, "manager"),
            BridgeScopeConfig(schema_detail_threshold=1),
        )
        out = bridge.invoke("get_schema").content
        assert "listing names only" in out
        assert "CREATE TABLE" not in out
        assert bridge.context.schema_mode() == "hierarchical"

    def test_hierarchical_lists_privileges(self, db):
        bridge = BridgeScope(
            MinidbBinding.for_user(db, "viewer"),
            BridgeScopeConfig(schema_detail_threshold=0),
        )
        out = bridge.invoke("get_schema").content
        assert "[privileges:" in out

    def test_empty_database(self):
        empty = Database(owner="admin")
        bridge = BridgeScope(MinidbBinding.for_user(empty, "admin"))
        assert "empty" in bridge.invoke("get_schema").content

    def test_deterministic_output(self, manager_bridge):
        first = manager_bridge.invoke("get_schema").content
        second = manager_bridge.invoke("get_schema").content
        assert first == second


class TestGetObject:
    def test_returns_single_object(self, manager_bridge):
        out = manager_bridge.invoke("get_object", name="items").content
        assert "CREATE TABLE items" in out
        assert "sales" not in out

    def test_unknown_object(self, manager_bridge):
        out = manager_bridge.invoke("get_object", name="ghost").content
        assert "does not exist" in out

    def test_policy_hidden_object_indistinguishable_from_absent(self, policy_bridge):
        hidden = policy_bridge.invoke("get_object", name="salaries").content
        absent = policy_bridge.invoke("get_object", name="zzz_missing").content
        assert hidden.replace("salaries", "X") == absent.replace("zzz_missing", "X")

    def test_case_insensitive_lookup(self, manager_bridge):
        out = manager_bridge.invoke("get_object", name="ITEMS").content
        assert "CREATE TABLE items" in out

    def test_view_rendered(self, db, admin_bridge):
        db.connect("admin").execute("CREATE VIEW big AS SELECT * FROM sales")
        out = admin_bridge.invoke("get_object", name="big").content
        assert "CREATE VIEW big" in out


class TestGetValue:
    def test_finds_stored_surface_form(self, manager_bridge):
        out = manager_bridge.invoke(
            "get_value", col="items.category", key="women", k=2
        ).content
        assert "women's wear" in out

    def test_top_k_ordering(self, manager_bridge):
        out = manager_bridge.invoke(
            "get_value", col="items.category", key="women", k=3
        ).content
        lines = [l for l in out.splitlines() if l.startswith("  ")]
        assert "women's wear" in lines[0]

    def test_default_k_from_config(self, manager_bridge):
        out = manager_bridge.invoke(
            "get_value", col="items.category", key="wear"
        ).content
        # only 3 distinct values exist
        assert out.startswith("top-3")

    def test_requires_qualified_column(self, manager_bridge):
        out = manager_bridge.invoke("get_value", col="category", key="x").content
        assert "ERROR" in out

    def test_permission_denied_without_select(self, viewer_bridge):
        out = viewer_bridge.invoke(
            "get_value", col="items.category", key="women"
        ).content
        assert "permission denied" in out

    def test_policy_hidden_table(self, policy_bridge):
        out = policy_bridge.invoke("get_value", col="salaries.emp", key="a").content
        assert "does not exist" in out

    def test_column_restriction_enforced(self, db):
        admin = db.connect("admin")
        db.create_user("partial")
        admin.execute("GRANT SELECT (region) ON sales TO partial")
        bridge = BridgeScope(MinidbBinding.for_user(db, "partial"))
        ok = bridge.invoke("get_value", col="sales.region", key="west").content
        denied = bridge.invoke("get_value", col="sales.amount", key="30").content
        assert "West Coast" in ok
        assert "permission denied" in denied

    def test_unknown_column(self, manager_bridge):
        out = manager_bridge.invoke("get_value", col="items.ghost", key="x").content
        assert "ERROR" in out

    def test_empty_column(self, db, admin_bridge):
        db.connect("admin").execute("CREATE TABLE empty_t (c TEXT)")
        out = admin_bridge.invoke("get_value", col="empty_t.c", key="x").content
        assert "no values" in out
