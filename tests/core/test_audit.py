"""Tests for the verifier's security audit trail."""

import pytest

from repro.core.verification import AuditLog, AuditRecord


class TestAuditViaBridge:
    def test_allowed_call_logged(self, manager_bridge):
        manager_bridge.invoke("select", sql="SELECT * FROM items")
        records = manager_bridge.verifier.audit.records
        assert len(records) == 1
        assert records[0].allowed
        assert records[0].user == "manager"
        assert records[0].objects == ["items"]

    def test_denied_call_logged_with_reason(self, manager_bridge):
        manager_bridge.invoke("select", sql="SELECT * FROM salaries")
        rejections = manager_bridge.verifier.audit.rejections()
        assert len(rejections) == 1
        assert "permission denied" in rejections[0].reason
        assert rejections[0].sql == "SELECT * FROM salaries"

    def test_action_mismatch_logged(self, manager_bridge):
        manager_bridge.invoke("select", sql="DELETE FROM items")
        rejection = manager_bridge.verifier.audit.rejections()[0]
        assert rejection.action == "DELETE"
        assert not rejection.allowed

    def test_chronological_order(self, manager_bridge):
        manager_bridge.invoke("select", sql="SELECT * FROM items")
        manager_bridge.invoke("select", sql="SELECT * FROM salaries")
        manager_bridge.invoke("select", sql="SELECT * FROM sales")
        flags = [r.allowed for r in manager_bridge.verifier.audit.records]
        assert flags == [True, False, True]

    def test_render(self, manager_bridge):
        manager_bridge.invoke("select", sql="SELECT * FROM items")
        manager_bridge.invoke("select", sql="SELECT * FROM salaries")
        text = manager_bridge.verifier.audit.render()
        assert "ALLOW manager: SELECT on items" in text
        assert "DENY " in text

    def test_proxy_producers_audited(self, manager_bridge):
        manager_bridge.invoke(
            "proxy",
            target_tool="select",
            tool_args={
                "sql": {
                    "__tool__": "select",
                    "__args__": {"sql": "SELECT 'SELECT COUNT(*) FROM items'"},
                    "__transform__": "lambda rows: rows[0][0]",
                }
            },
        )
        assert len(manager_bridge.verifier.audit.records) == 2  # producer + consumer


class TestAuditLogUnit:
    def make(self, allowed=True):
        return AuditRecord(
            user="u", sql="SELECT 1", action="SELECT", objects=[], allowed=allowed
        )

    def test_capacity_trimming(self):
        log = AuditLog(max_records=10)
        for _ in range(15):
            log.append(self.make())
        assert len(log.records) <= 11

    def test_render_last_n(self):
        log = AuditLog()
        for index in range(5):
            log.append(
                AuditRecord("u", "s", "SELECT", [f"t{index}"], allowed=True)
            )
        rendered = log.render(last=2)
        assert "t4" in rendered
        assert "t0" not in rendered

    def test_rejections_filter(self):
        log = AuditLog()
        log.append(self.make(True))
        log.append(self.make(False))
        assert len(log.rejections()) == 1
