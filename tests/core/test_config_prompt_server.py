"""Tests for SecurityPolicy, BridgeScopeConfig, prompt, and server assembly."""

import pytest

from repro.core import (
    BRIDGESCOPE_PROMPT,
    BridgeScope,
    BridgeScopeConfig,
    MinidbBinding,
    SecurityPolicy,
    build_prompt,
)
from repro.minidb import Database


class TestSecurityPolicy:
    def test_permissive_allows_everything(self):
        policy = SecurityPolicy.permissive()
        assert policy.permits_object("anything")
        assert policy.permits_action("DROP")

    def test_read_only_preset(self):
        policy = SecurityPolicy.read_only()
        assert policy.permits_action("SELECT")
        for action in ("INSERT", "UPDATE", "DELETE", "DROP", "CREATE", "ALTER"):
            assert not policy.permits_action(action)

    def test_no_ddl_preset(self):
        policy = SecurityPolicy.no_ddl()
        assert policy.permits_action("SELECT")
        assert policy.permits_action("DELETE")
        assert not policy.permits_action("DROP")

    def test_object_blacklist_case_insensitive(self):
        policy = SecurityPolicy(object_blacklist=frozenset({"Salaries"}))
        assert not policy.permits_object("SALARIES")
        assert not policy.permits_object("salaries")

    def test_whitelist_and_blacklist_compose(self):
        policy = SecurityPolicy(
            object_whitelist=frozenset({"a", "b"}),
            object_blacklist=frozenset({"b"}),
        )
        assert policy.permits_object("a")
        assert not policy.permits_object("b")
        assert not policy.permits_object("c")

    def test_action_whitelist_uppercased(self):
        policy = SecurityPolicy(action_whitelist=frozenset({"select"}))
        assert policy.permits_action("SELECT")
        assert not policy.permits_action("INSERT")


class TestConfigDefaults:
    def test_defaults(self):
        config = BridgeScopeConfig()
        assert config.schema_detail_threshold == 20
        assert config.exemplar_top_k == 5
        assert config.max_result_rows == 50
        assert not config.parallel_producers

    def test_policy_default_is_permissive(self):
        assert BridgeScopeConfig().policy.permits_action("DROP")


class TestPrompt:
    def test_prompt_covers_all_rules(self):
        for keyword in ("get_schema", "get_value", "begin()", "proxy", "abort"):
            assert keyword in BRIDGESCOPE_PROMPT

    def test_build_prompt_lists_tools_sorted(self):
        prompt = build_prompt(["select", "begin", "proxy"])
        assert "begin, proxy, select" in prompt

    def test_prompt_deterministic(self):
        assert build_prompt(["a"]) == build_prompt(["a"])


class TestServerAssembly:
    @pytest.fixture
    def db(self):
        database = Database(owner="admin")
        session = database.connect("admin")
        session.execute("CREATE TABLE t (a INT)")
        database.create_user("reader")
        session.execute("GRANT SELECT ON t TO reader")
        return database

    def test_system_prompt_mentions_exposed_tools(self, db):
        bridge = BridgeScope(MinidbBinding.for_user(db, "reader"))
        prompt = bridge.system_prompt()
        assert "select" in prompt
        assert "get_schema" in prompt

    def test_tool_names_unique(self, db):
        bridge = BridgeScope(MinidbBinding.for_user(db, "admin"))
        names = bridge.tool_names()
        assert len(names) == len(set(names))

    def test_render_tool_list_nonempty(self, db):
        bridge = BridgeScope(MinidbBinding.for_user(db, "admin"))
        assert "get_schema" in bridge.render_tool_list()

    def test_extra_server_tools_reachable_via_proxy(self, db):
        from repro.mcp import ParamSpec, ToolServer, tool

        class Doubler(ToolServer):
            @tool(description="double", params=[ParamSpec("x", "any")])
            def double(self, x):
                return [v * 2 for v in x]

        bridge = BridgeScope(
            MinidbBinding.for_user(db, "admin"), extra_servers=[Doubler()]
        )
        db.connect("admin").execute("INSERT INTO t VALUES (1), (2)")
        result = bridge.invoke(
            "proxy",
            target_tool="double",
            tool_args={
                "x": {
                    "__tool__": "select",
                    "__args__": {"sql": "SELECT a FROM t"},
                    "__transform__": "lambda rows: [r[0] for r in rows]",
                }
            },
        )
        assert result.content == [2, 4]

    def test_verifier_shared_between_server_and_execution(self, db):
        bridge = BridgeScope(MinidbBinding.for_user(db, "admin"))
        bridge.invoke("select", sql="SELECT * FROM t")
        assert bridge.verifier.verified == 1
