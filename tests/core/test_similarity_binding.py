"""Tests for the similarity scorer and the DatabaseBinding abstraction."""

import pytest

from repro.core import MinidbBinding, similarity, top_k
from repro.core.interfaces import (
    AccessFootprint,
    DatabaseBinding,
    ObjectInfo,
    SqlOutcome,
)
from repro.minidb import Database


class TestSimilarity:
    def test_exact_match_scores_one(self):
        assert similarity("women", "women") == 1.0

    def test_case_and_punctuation_insensitive(self):
        assert similarity("West Coast", "west coast") == 1.0

    def test_substring_containment_ranks_high(self):
        assert similarity("women", "women's wear") > 0.5

    def test_synonym_match(self):
        assert similarity("women", "female apparel") > 0.3

    def test_unrelated_scores_low(self):
        assert similarity("women", "quarterly earnings") < 0.2

    def test_misspelling_tolerated(self):
        misspelled = similarity("sportswear", "sportwear")
        unrelated = similarity("sportswear", "balance sheet")
        assert misspelled > 0.25
        assert misspelled > unrelated

    def test_empty_inputs(self):
        assert similarity("", "x") == 0.0
        assert similarity("x", "") == 0.0

    def test_trigram_padding_is_symmetric(self):
        from repro.core.similarity import _trigrams

        # two pad spaces on each side: "ab" -> {"  a", " ab", "ab ", "b  "}
        assert _trigrams("ab") == {"  a", " ab", "ab ", "b  "}

    def test_suffix_matches_not_penalized_in_ranking(self):
        # Regression: asymmetric padding (two leading spaces, one trailing)
        # gave an n-character prefix match n shared trigrams but an
        # n-character suffix match only n-1, so "abcyz" (3-char prefix
        # overlap) outranked "zcde" (3-char suffix overlap in a shorter
        # value). With symmetric padding the suffix match wins.
        suffix_score = similarity("abcde", "zcde")
        prefix_score = similarity("abcde", "abcyz")
        assert suffix_score > prefix_score
        ranked = top_k("abcde", ["abcyz", "zcde"], 2)
        assert [value for value, _ in ranked] == ["zcde", "abcyz"]

    def test_non_string_values(self):
        assert similarity("100", 100) == 1.0

    def test_ordering_women_vs_men(self):
        assert similarity("women", "women's wear") > similarity("women", "men's wear")

    def test_top_k_returns_k(self):
        values = ["a", "b", "c", "d"]
        assert len(top_k("a", values, 2)) == 2

    def test_top_k_best_first(self):
        ranked = top_k("women", ["men's wear", "women's wear", "shoes"], 3)
        assert ranked[0][0] == "women's wear"

    def test_top_k_deterministic_tie_break(self):
        first = top_k("zzz", ["aa", "bb", "cc"], 3)
        second = top_k("zzz", ["cc", "aa", "bb"], 3)
        assert [v for v, _ in first] == [v for v, _ in second]

    def test_custom_synonyms(self):
        table = {"cat": frozenset({"feline"})}
        assert similarity("cat", "feline friend", synonyms=table) > 0.3

    def test_scores_bounded(self):
        for value in ("women", "wom", "women's wear", "x"):
            assert 0.0 <= similarity("women", value) <= 1.0


class ToyBinding(DatabaseBinding):
    """Minimal second binding proving core's database-agnosticism."""

    def __init__(self):
        self.tables = {"t": [{"a": 1}, {"a": 2}]}

    def run_sql(self, sql):
        if "t" not in sql:
            raise ValueError("only knows table t")
        return SqlOutcome(columns=["a"], rows=[(1,), (2,)], rowcount=2, status="SELECT")

    def analyze_sql(self, sql):
        return AccessFootprint(action="SELECT", accesses=[("SELECT", "t", None)])

    def list_objects(self):
        return ["t"]

    def object_info(self, name):
        return ObjectInfo(name="t", kind="table", ddl="CREATE TABLE t (a INT);")

    def distinct_values(self, table, column, limit):
        return [1, 2]

    def user_actions_on(self, obj):
        return {"SELECT"} if obj == "t" else set()

    def user_column_restrictions(self, action, obj):
        return None

    def all_actions(self):
        return ("SELECT", "INSERT", "UPDATE", "DELETE", "CREATE", "DROP", "ALTER")

    def in_transaction(self):
        return False

    @property
    def user(self):
        return "toy"


class TestDatabaseAgnosticism:
    def test_bridgescope_over_toy_binding(self):
        from repro.core import BridgeScope

        bridge = BridgeScope(ToyBinding())
        assert bridge.exposed_sql_actions() == ["SELECT"]
        out = bridge.invoke("get_schema").content
        assert "CREATE TABLE t" in out
        result = bridge.invoke("select", sql="SELECT a FROM t")
        assert not result.is_error


class TestMinidbBinding:
    @pytest.fixture
    def binding(self, db):
        return MinidbBinding.for_user(db, "manager")

    def test_run_sql(self, binding):
        outcome = binding.run_sql("SELECT COUNT(*) FROM items")
        assert outcome.rows == [(3,)]

    def test_analyze_sql(self, binding):
        footprint = binding.analyze_sql("SELECT item_name FROM items")
        assert footprint.action == "SELECT"
        assert footprint.accesses[0][1] == "items"

    def test_list_objects_sorted(self, binding):
        assert binding.list_objects() == sorted(binding.list_objects())

    def test_object_info_structure(self, binding):
        info = binding.object_info("items")
        assert info.kind == "table"
        assert info.primary_key == ["item_id"]
        assert any(c["name"] == "price" for c in info.columns)

    def test_distinct_values_excludes_nulls(self, db, binding):
        db.connect("admin").execute(
            "INSERT INTO items VALUES (99, NULL, NULL, 1.0)"
        )
        values = binding.distinct_values("items", "category", 100)
        assert None not in values

    def test_distinct_values_limit(self, binding):
        assert len(binding.distinct_values("items", "category", 2)) == 2

    def test_user_actions(self, binding):
        assert binding.user_actions_on("items") == {
            "SELECT", "INSERT", "UPDATE", "DELETE", "CREATE", "DROP", "ALTER",
        }
        assert binding.user_actions_on("salaries") == set()

    def test_in_transaction_tracks_session(self, binding):
        assert not binding.in_transaction()
        binding.run_sql("BEGIN")
        assert binding.in_transaction()
        binding.run_sql("ROLLBACK")

    def test_user_property(self, binding):
        assert binding.user == "manager"
