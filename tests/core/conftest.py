"""Shared fixtures for BridgeScope core tests."""

import pytest

from repro.core import BridgeScope, BridgeScopeConfig, MinidbBinding, SecurityPolicy
from repro.minidb import Database


@pytest.fixture
def db():
    """A small retail database with three users: admin, manager, viewer."""
    database = Database(owner="admin")
    admin = database.connect("admin")
    admin.execute(
        "CREATE TABLE items (item_id INT PRIMARY KEY, item_name TEXT, "
        "category TEXT, price FLOAT)"
    )
    admin.execute(
        "CREATE TABLE sales (order_id INT PRIMARY KEY, item_id INT "
        "REFERENCES items(item_id), amount FLOAT, region TEXT)"
    )
    admin.execute("CREATE TABLE salaries (emp TEXT, pay FLOAT)")
    admin.execute(
        "INSERT INTO items VALUES (1, 'dress', 'women''s wear', 30.0), "
        "(2, 'boots', 'footwear', 80.0), (3, 'tie', 'men''s wear', 15.0)"
    )
    admin.execute(
        "INSERT INTO sales VALUES (10, 1, 30.0, 'West Coast'), "
        "(11, 2, 160.0, 'East Coast'), (12, 1, 60.0, 'West Coast')"
    )
    admin.execute("INSERT INTO salaries VALUES ('alice', 9000.0)")
    database.create_user("manager")
    admin.execute("GRANT ALL ON items TO manager")
    admin.execute("GRANT ALL ON sales TO manager")
    database.create_user("viewer")
    admin.execute("GRANT SELECT ON sales TO viewer")
    return database


@pytest.fixture
def manager_bridge(db):
    return BridgeScope(MinidbBinding.for_user(db, "manager"))


@pytest.fixture
def viewer_bridge(db):
    return BridgeScope(MinidbBinding.for_user(db, "viewer"))


@pytest.fixture
def admin_bridge(db):
    return BridgeScope(MinidbBinding.for_user(db, "admin"))


@pytest.fixture
def policy_bridge(db):
    """Manager further restricted by a user-side policy: no salaries table,
    no DROP/DELETE actions."""
    policy = SecurityPolicy(
        object_blacklist=frozenset({"salaries"}),
        action_blacklist=frozenset({"DROP", "DELETE"}),
    )
    return BridgeScope(
        MinidbBinding.for_user(db, "manager"),
        BridgeScopeConfig(policy=policy),
    )
