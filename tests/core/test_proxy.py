"""Tests for F4: the proxy mechanism and transform safety."""

import pytest

from repro.core import (
    BridgeScope,
    BridgeScopeConfig,
    MinidbBinding,
    TransformError,
    compile_transform,
)
from repro.mcp import ParamSpec, ToolServer, tool
from repro.mltools import MLToolServer


class SinkServer(ToolServer):
    """Records what it receives, for asserting proxy routing."""

    name = "sink"

    def __init__(self):
        super().__init__()
        self.received = []

    @tool(description="consume data", params=[ParamSpec("data", "any")])
    def consume(self, data):
        self.received.append(data)
        return {"n": len(data) if hasattr(data, "__len__") else 1}

    @tool(
        description="combine two inputs",
        params=[ParamSpec("left", "any"), ParamSpec("right", "any")],
    )
    def combine(self, left, right):
        self.received.append((left, right))
        return {"left_n": len(left), "right_n": len(right)}


@pytest.fixture
def sink():
    return SinkServer()


@pytest.fixture
def bridge(db, sink):
    return BridgeScope(
        MinidbBinding.for_user(db, "manager"),
        extra_servers=[sink, MLToolServer()],
    )


def producer(sql, transform=""):
    spec = {"__tool__": "select", "__args__": {"sql": sql}}
    if transform:
        spec["__transform__"] = transform
    return spec


class TestProxyBasics:
    def test_routes_rows_to_consumer(self, bridge, sink):
        result = bridge.invoke(
            "proxy",
            target_tool="consume",
            tool_args={"data": producer("SELECT amount FROM sales")},
        )
        assert not result.is_error
        assert result.content == {"n": 3}
        assert sink.received[0] == [(30.0,), (160.0,), (60.0,)]

    def test_literal_args_pass_through(self, bridge, sink):
        bridge.invoke(
            "proxy", target_tool="consume", tool_args={"data": [1, 2, 3, 4]}
        )
        assert sink.received[0] == [1, 2, 3, 4]

    def test_multiple_producers(self, bridge, sink):
        result = bridge.invoke(
            "proxy",
            target_tool="combine",
            tool_args={
                "left": producer("SELECT amount FROM sales"),
                "right": producer("SELECT price FROM items"),
            },
        )
        assert result.content == {"left_n": 3, "right_n": 3}

    def test_producer_list_yields_list(self, bridge, sink):
        bridge.invoke(
            "proxy",
            target_tool="consume",
            tool_args={
                "data": [
                    producer("SELECT amount FROM sales"),
                    producer("SELECT price FROM items"),
                ]
            },
        )
        assert len(sink.received[0]) == 2

    def test_transform_applied(self, bridge, sink):
        bridge.invoke(
            "proxy",
            target_tool="consume",
            tool_args={
                "data": producer(
                    "SELECT amount FROM sales", "lambda rows: [r[0] for r in rows]"
                )
            },
        )
        assert sink.received[0] == [30.0, 160.0, 60.0]

    def test_unknown_target_tool(self, bridge):
        result = bridge.invoke("proxy", target_tool="ghost", tool_args={})
        assert result.is_error

    def test_unknown_producer_tool(self, bridge):
        result = bridge.invoke(
            "proxy",
            target_tool="consume",
            tool_args={"data": {"__tool__": "ghost", "__args__": {}}},
        )
        assert result.is_error

    def test_producer_failure_propagates(self, bridge):
        result = bridge.invoke(
            "proxy",
            target_tool="consume",
            tool_args={"data": producer("SELECT nope FROM sales")},
        )
        assert result.is_error
        assert "select" in result.content

    def test_consumer_failure_propagates(self, bridge):
        result = bridge.invoke(
            "proxy",
            target_tool="consume",
            tool_args={},  # missing required arg
        )
        assert result.is_error

    def test_security_applies_inside_proxy(self, bridge):
        result = bridge.invoke(
            "proxy",
            target_tool="consume",
            tool_args={"data": producer("SELECT * FROM salaries")},
        )
        assert result.is_error  # manager has no grant on salaries


class TestRecursiveUnits:
    def test_nested_units_execute_bottom_up(self, bridge, sink):
        nested = {
            "__tool__": "consume",
            "__args__": {"data": producer("SELECT amount FROM sales")},
            "__transform__": "lambda out: [out['n']] * out['n']",
        }
        result = bridge.invoke(
            "proxy", target_tool="consume", tool_args={"data": nested}
        )
        assert result.content == {"n": 3}
        assert sink.received == [[(30.0,), (160.0,), (60.0,)], [3, 3, 3]]

    def test_three_level_pipeline(self, bridge):
        # select -> zscore_normalize -> train_linear, all inside the proxy
        unit = {
            "__tool__": "zscore_normalize",
            "__args__": {"data": producer("SELECT amount, price FROM sales s JOIN items i ON s.item_id = i.item_id")},
        }
        result = bridge.invoke(
            "proxy", target_tool="train_linear", tool_args={"data": unit}
        )
        assert not result.is_error
        assert result.content["type"] == "linear"

    def test_depth_tracked(self, bridge):
        nested = {
            "__tool__": "consume",
            "__args__": {"data": producer("SELECT amount FROM sales")},
        }
        bridge.invoke("proxy", target_tool="consume", tool_args={"data": nested})
        assert bridge.proxy.stats.max_depth >= 2

    def test_stats_counters(self, bridge):
        bridge.invoke(
            "proxy",
            target_tool="consume",
            tool_args={"data": producer("SELECT amount FROM sales")},
        )
        stats = bridge.proxy.stats
        assert stats.units_executed == 1
        assert stats.producer_calls == 1
        assert stats.values_routed >= 3


class TestParallelProducers:
    def test_parallel_matches_serial(self, db, sink):
        serial = BridgeScope(
            MinidbBinding.for_user(db, "manager"),
            BridgeScopeConfig(parallel_producers=False),
            extra_servers=[SinkServer()],
        )
        parallel_sink = SinkServer()
        parallel = BridgeScope(
            MinidbBinding.for_user(db, "manager"),
            BridgeScopeConfig(parallel_producers=True),
            extra_servers=[parallel_sink],
        )
        args = {
            "left": producer("SELECT amount FROM sales"),
            "right": producer("SELECT price FROM items"),
        }
        r1 = serial.invoke("proxy", target_tool="combine", tool_args=dict(args))
        r2 = parallel.invoke("proxy", target_tool="combine", tool_args=dict(args))
        assert r1.content == r2.content
        assert parallel.proxy.stats.last_parallel_batch == 2


class TestTransforms:
    def test_identity_default(self):
        fn = compile_transform("")
        assert fn([1, 2]) == [1, 2]

    def test_lambda_basic(self):
        fn = compile_transform("lambda x: x * 2")
        assert fn(3) == 6

    def test_bare_expression_over_x(self):
        fn = compile_transform("x[0] + x[1]")
        assert fn([1, 2]) == 3

    def test_comprehension(self):
        fn = compile_transform("lambda rows: [r[0] for r in rows if r[0] > 1]")
        assert fn([(1,), (2,), (3,)]) == [2, 3]

    def test_dict_comprehension(self):
        fn = compile_transform("lambda rows: {r[0]: r[1] for r in rows}")
        assert fn([("a", 1)]) == {"a": 1}

    def test_builtins_whitelisted(self):
        fn = compile_transform("lambda x: sorted(set(x), reverse=True)")
        assert fn([3, 1, 3, 2]) == [3, 2, 1]

    def test_nested_lambda(self):
        fn = compile_transform("lambda xs: list(map(lambda v: v + 1, xs))")
        assert fn([1, 2]) == [2, 3]

    def test_string_methods(self):
        fn = compile_transform("lambda s: s.upper().strip()")
        assert fn(" hi ") == "HI"

    def test_conditional(self):
        fn = compile_transform("lambda x: 'big' if x > 10 else 'small'")
        assert fn(11) == "big"

    def test_multi_arg_lambda(self):
        fn = compile_transform("lambda a, b: a + b")
        assert fn(1, 2) == 3

    def test_wrong_arity_rejected(self):
        fn = compile_transform("lambda a, b: a + b")
        with pytest.raises(TransformError):
            fn(1)

    @pytest.mark.parametrize(
        "source",
        [
            "__import__('os')",
            "lambda x: x.__class__",
            "lambda x: open('/etc/passwd')",
            "lambda x: eval('1')",
            "lambda x: exec('pass')",
            "lambda x: getattr(x, 'foo')",
            "lambda x: x.denominator.bit_length()",  # non-whitelisted method
            "import os",
            "lambda x: (lambda: __builtins__)()",
        ],
    )
    def test_dangerous_constructs_rejected(self, source):
        with pytest.raises(TransformError):
            fn = compile_transform(source)
            fn(1)

    def test_syntax_error_rejected(self):
        with pytest.raises(TransformError):
            compile_transform("lambda x:")

    def test_runtime_error_wrapped(self):
        fn = compile_transform("lambda x: x[99]")
        with pytest.raises(TransformError):
            fn([1])

    def test_walrus_rejected(self):
        with pytest.raises(TransformError):
            compile_transform("(y := 1)")
