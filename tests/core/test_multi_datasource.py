"""Tests for multi-datasource composition via namespaced BridgeScope
instances (the Section 2.6 scenario)."""

import pytest

from repro.core import BridgeScope, MinidbBinding, combine_bridges
from repro.minidb import Database


def make_db(table: str, values: list[int]) -> Database:
    db = Database(owner="admin")
    session = db.connect("admin")
    session.execute(f"CREATE TABLE {table} (v INT)")
    for value in values:
        session.execute(f"INSERT INTO {table} VALUES ({value})")
    return db


@pytest.fixture
def combined():
    sales_db = make_db("sales", [1, 2, 3])
    hr_db = make_db("people", [10, 20])
    sales = BridgeScope(
        MinidbBinding.for_user(sales_db, "admin"), namespace="sales"
    )
    hr = BridgeScope(MinidbBinding.for_user(hr_db, "admin"), namespace="hr")
    registry = combine_bridges([sales, hr])
    return registry, sales, hr


class TestNamespacing:
    def test_tool_names_prefixed(self, combined):
        registry, sales, hr = combined
        names = set(registry.tool_names())
        assert "sales__select" in names
        assert "hr__select" in names
        assert "sales__get_schema" in names
        assert "select" not in names

    def test_no_collisions(self, combined):
        registry, *_ = combined
        names = registry.tool_names()
        assert len(names) == len(set(names))

    def test_each_namespace_hits_its_database(self, combined):
        registry, *_ = combined
        sales_count = registry.invoke(
            "sales__select", sql="SELECT COUNT(*) FROM sales"
        )
        hr_count = registry.invoke("hr__select", sql="SELECT COUNT(*) FROM people")
        assert sales_count.metadata["rows"] == [(3,)]
        assert hr_count.metadata["rows"] == [(2,)]

    def test_wrong_namespace_fails_cleanly(self, combined):
        registry, *_ = combined
        result = registry.invoke("sales__select", sql="SELECT * FROM people")
        assert result.is_error  # people doesn't exist in the sales database

    def test_cross_source_proxy(self, combined):
        """One proxy call can combine producers from both databases."""
        registry, sales, hr = combined
        result = registry.invoke(
            "sales__proxy",
            target_tool="sales__select",
            tool_args={
                "sql": {
                    "__tool__": "hr__select",
                    "__args__": {"sql": "SELECT 'SELECT SUM(v) FROM sales'"},
                    "__transform__": "lambda rows: rows[0][0]",
                }
            },
        )
        assert not result.is_error
        assert result.metadata["rows"] == [(6,)]

    def test_namespaced_transactions_independent(self, combined):
        registry, sales, hr = combined
        registry.invoke("sales__begin")
        registry.invoke("sales__delete", sql="DELETE FROM sales")
        # hr database unaffected and not in a transaction
        assert not hr.binding.in_transaction()
        registry.invoke("sales__rollback")
        count = registry.invoke("sales__select", sql="SELECT COUNT(*) FROM sales")
        assert count.metadata["rows"] == [(3,)]

    def test_domain_servers_keep_plain_names(self):
        from repro.mltools import MLToolServer

        db = make_db("t", [1])
        bridge = BridgeScope(
            MinidbBinding.for_user(db, "admin"),
            namespace="ns",
            extra_servers=[MLToolServer()],
        )
        names = set(bridge.tool_names())
        assert "ns__select" in names
        assert "train_linear" in names  # ML tools shared across sources
