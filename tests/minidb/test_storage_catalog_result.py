"""Unit tests for storage, catalog, ResultSet, and SQL generation."""

import pytest

from repro.minidb import Database, UniqueViolation, parse
from repro.minidb.catalog import Catalog, Column, TableSchema
from repro.minidb.errors import DuplicateObjectError, UnknownTableError
from repro.minidb.result import ResultSet
from repro.minidb.sqlgen import expr_to_sql
from repro.minidb.storage import HashIndex, HeapTable
from repro.minidb.types import ColumnType


class TestHeapTable:
    @pytest.fixture
    def heap(self):
        return HeapTable("t")

    def test_insert_assigns_monotonic_rids(self, heap):
        first = heap.insert({"a": 1})
        second = heap.insert({"a": 2})
        assert second == first + 1

    def test_rows_in_rid_order(self, heap):
        heap.insert({"a": 2})
        heap.insert({"a": 1})
        assert [row["a"] for _, row in heap.rows()] == [2, 1]

    def test_insert_copies_row(self, heap):
        row = {"a": 1}
        rid = heap.insert(row)
        row["a"] = 99
        assert heap.get(rid)["a"] == 1

    def test_delete_returns_old_row(self, heap):
        rid = heap.insert({"a": 1})
        assert heap.delete(rid) == {"a": 1}
        assert heap.get(rid) is None

    def test_restore_reuses_rid(self, heap):
        rid = heap.insert({"a": 1})
        old = heap.delete(rid)
        heap.restore(rid, old)
        assert heap.get(rid) == {"a": 1}

    def test_update_returns_previous(self, heap):
        rid = heap.insert({"a": 1})
        previous = heap.update(rid, {"a": 2})
        assert previous == {"a": 1}
        assert heap.get(rid) == {"a": 2}

    def test_unique_index_blocks_duplicates(self, heap):
        heap.add_index(HashIndex("ux", ("a",), unique=True))
        heap.insert({"a": 1})
        with pytest.raises(UniqueViolation):
            heap.insert({"a": 1})
        assert len(heap) == 1  # heap untouched after failed insert

    def test_unique_index_allows_nulls(self, heap):
        heap.add_index(HashIndex("ux", ("a",), unique=True))
        heap.insert({"a": None})
        heap.insert({"a": None})
        assert len(heap) == 2

    def test_index_probe(self, heap):
        index = HashIndex("ix", ("a",))
        heap.add_index(index)
        rid = heap.insert({"a": 7})
        assert index.probe((7,)) == {rid}
        assert index.probe((8,)) == set()

    def test_index_maintained_on_update_delete(self, heap):
        index = HashIndex("ix", ("a",))
        heap.add_index(index)
        rid = heap.insert({"a": 1})
        heap.update(rid, {"a": 2})
        assert index.probe((1,)) == set()
        assert index.probe((2,)) == {rid}
        heap.delete(rid)
        assert index.probe((2,)) == set()

    def test_backfill_on_add_index(self, heap):
        heap.insert({"a": 1})
        heap.insert({"a": 1})
        index = HashIndex("ix", ("a",))
        heap.add_index(index)
        assert len(index.probe((1,))) == 2

    def test_composite_index(self, heap):
        index = HashIndex("ix", ("a", "b"), unique=True)
        heap.add_index(index)
        heap.insert({"a": 1, "b": 1})
        heap.insert({"a": 1, "b": 2})  # differs in second column
        with pytest.raises(UniqueViolation):
            heap.insert({"a": 1, "b": 1})

    def test_column_operations(self, heap):
        heap.insert({"a": 1})
        heap.add_column("b", default=0)
        assert heap.get(1)["b"] == 0
        heap.rename_column("b", "c")
        assert "c" in heap.get(1)
        heap.drop_column("c")
        assert "c" not in heap.get(1)

    def test_would_violate(self, heap):
        index = HashIndex("ux", ("a",), unique=True)
        heap.add_index(index)
        rid = heap.insert({"a": 1})
        assert index.would_violate({"a": 1})
        assert not index.would_violate({"a": 1}, ignore_rid=rid)
        assert not index.would_violate({"a": 2})

    def test_add_index_rolls_back_partial_backfill(self, heap):
        heap.insert({"a": 1, "b": 1})
        heap.insert({"a": 2, "b": 2})
        heap.insert({"a": 3, "b": 1})  # duplicate b: backfill fails mid-way
        index = HashIndex("ux", ("b",), unique=True)
        with pytest.raises(UniqueViolation):
            heap.add_index(index)
        assert "ux" not in heap.indexes
        # earlier rids must have been removed from the buckets again
        assert len(index) == 0
        assert index.probe((1,)) == set()
        assert index.probe((2,)) == set()


class TestCatalog:
    def make_schema(self, name="t"):
        return TableSchema(
            name=name,
            columns=[Column("id", ColumnType("INTEGER")), Column("s", ColumnType("TEXT"))],
            primary_key=("id",),
        )

    def test_add_and_lookup_case_insensitive(self):
        catalog = Catalog()
        catalog.add_table(self.make_schema("Orders"))
        assert catalog.table("orders").name == "Orders"
        assert catalog.has_object("ORDERS")

    def test_duplicate_rejected(self):
        catalog = Catalog()
        catalog.add_table(self.make_schema())
        with pytest.raises(DuplicateObjectError):
            catalog.add_table(self.make_schema())

    def test_unknown_lookup(self):
        with pytest.raises(UnknownTableError):
            Catalog().table("ghost")

    def test_object_names_sorted(self):
        catalog = Catalog()
        catalog.add_table(self.make_schema("zz"))
        catalog.add_table(self.make_schema("aa"))
        assert catalog.object_names() == ["aa", "zz"]

    def test_rename_updates_indexes(self):
        db = Database(owner="a")
        session = db.connect("a")
        session.execute("CREATE TABLE t (a INT)")
        session.execute("CREATE INDEX ix ON t (a)")
        session.execute("ALTER TABLE t RENAME TO u")
        assert db.catalog.index("ix").table == "u"

    def test_render_create_round_trips(self):
        db = Database(owner="a")
        session = db.connect("a")
        session.execute(
            "CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR(10) NOT NULL, "
            "price FLOAT DEFAULT 1.5 CHECK (price >= 0), UNIQUE (name))"
        )
        rendered = db.catalog.table("t").render_create()
        db2 = Database(owner="a")
        db2.connect("a").execute(rendered)
        schema = db2.catalog.table("t")
        assert schema.primary_key == ("id",)
        assert schema.column("name").not_null
        assert schema.column("price").default == 1.5
        assert len(schema.checks) == 1


class TestResultSet:
    def test_scalar_empty(self):
        assert ResultSet().scalar() is None

    def test_first(self):
        result = ResultSet(columns=["a"], rows=[(1,), (2,)])
        assert result.first() == (1,)

    def test_to_dicts(self):
        result = ResultSet(columns=["a", "b"], rows=[(1, 2)])
        assert result.to_dicts() == [{"a": 1, "b": 2}]

    def test_iteration_and_len(self):
        result = ResultSet(columns=["a"], rows=[(1,), (2,)])
        assert list(result) == [(1,), (2,)]
        assert len(result) == 2

    def test_render_with_truncation(self):
        result = ResultSet(columns=["a"], rows=[(i,) for i in range(10)])
        text = result.render(max_rows=3)
        assert "7 more rows" in text
        assert "(10 rows)" in text

    def test_render_status_only(self):
        assert ResultSet(status="INSERT 2").render() == "INSERT 2"

    def test_render_null(self):
        text = ResultSet(columns=["a"], rows=[(None,)]).render()
        assert "NULL" in text


class TestSqlGen:
    @pytest.mark.parametrize(
        "sql",
        [
            "a + b * 2",
            "price >= 0 AND qty < 10",
            "name LIKE 'a%'",
            "x IS NOT NULL",
            "v BETWEEN 1 AND 5",
            "c IN (1, 2, 3)",
            "CASE WHEN a > 0 THEN 'p' ELSE 'n' END",
            "UPPER(name) || '!'",
            "CAST(a AS INTEGER)",
            "NOT (a = 1)",
        ],
    )
    def test_round_trip_parses(self, sql):
        expr = parse(f"SELECT * FROM t WHERE {sql}").where
        regenerated = expr_to_sql(expr)
        reparsed = parse(f"SELECT * FROM t WHERE {regenerated}").where
        assert expr_to_sql(reparsed) == regenerated

    def test_literal_escaping(self):
        expr = parse("SELECT 'it''s'").items[0].expr
        assert expr_to_sql(expr) == "'it''s'"

    def test_null_and_bool_literals(self):
        stmt = parse("SELECT NULL, TRUE, FALSE")
        rendered = [expr_to_sql(i.expr) for i in stmt.items]
        assert rendered == ["NULL", "TRUE", "FALSE"]
