"""Column-batch (vectorized) execution over the compiled-predicate seam.

The batch pipeline is a pure execution-strategy change: for every
statement it admits, results must match the row-at-a-time plan byte for
byte — including which error is raised, and when. The Hypothesis
property at the bottom drives random data (NULLs, duplicates, text)
through random statements (WHERE with three-valued AND/OR, arithmetic,
LIKE, IS NULL; aggregates; GROUP BY/HAVING; DISTINCT; ORDER BY;
LIMIT/OFFSET) with ``enable_batch_execution`` on and off. The targeted
tests pin the deferred-error contract, planner counters, EXPLAIN's
``(batched)`` annotation, tracer scan-event parity, and the storage
batch iterators.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.minidb import Database
from repro.minidb.batch import DEFAULT_BATCH_SIZE, BatchError, RowBatch
from repro.minidb.errors import (
    DivisionByZeroError,
    ExecutionError,
    MiniDBError,
    UnknownColumnError,
)


@pytest.fixture
def s():
    db = Database(owner="a")
    session = db.connect("a")
    session.execute(
        "CREATE TABLE t (id INT PRIMARY KEY, a INT, b INT, c TEXT)"
    )
    heap = db.heap("t")
    for i in range(50):
        heap.insert(
            {
                "id": i,
                "a": i % 7 if i % 11 else None,
                "b": (i * 3) % 10,
                "c": f"s{i % 5}" if i % 13 else None,
            }
        )
    return session


def both(session, sql):
    """Run ``sql`` batched and row-at-a-time; both legs must agree on
    (columns, rows) or on (error type, error message)."""
    options = session.db.planner_options
    outcomes = []
    for enabled in (True, False):
        options["enable_batch_execution"] = enabled
        try:
            result = session.execute(sql)
            outcomes.append(("ok", result.columns, result.rows))
        except MiniDBError as exc:
            outcomes.append(("err", type(exc).__name__, str(exc)))
    options["enable_batch_execution"] = True
    assert outcomes[0] == outcomes[1], sql
    return outcomes[0]


# ---------------------------------------------------------------- results


class TestEquivalence:
    def test_projection_filter(self, s):
        kind, _, rows = both(
            s, "SELECT id, a + b, c FROM t WHERE a >= 2 AND b < 8"
        )
        assert kind == "ok" and rows

    def test_star_projection(self, s):
        kind, columns, rows = both(s, "SELECT * FROM t WHERE b <> 4")
        assert kind == "ok" and columns == ["id", "a", "b", "c"] and rows

    def test_like_and_null_semantics(self, s):
        kind, _, rows = both(
            s, "SELECT id FROM t WHERE c LIKE 's%' AND a IS NOT NULL"
        )
        assert kind == "ok" and rows

    def test_grouped_aggregates(self, s):
        kind, _, rows = both(
            s,
            "SELECT b, COUNT(*), SUM(a), MIN(a), MAX(a), AVG(a) FROM t"
            " GROUP BY b ORDER BY b",
        )
        assert kind == "ok" and len(rows) == 10

    def test_ungrouped_aggregate(self, s):
        kind, _, rows = both(s, "SELECT COUNT(*), SUM(b) FROM t")
        assert kind == "ok" and len(rows) == 1

    def test_having_and_distinct(self, s):
        assert both(s, "SELECT DISTINCT a FROM t ORDER BY a")[0] == "ok"
        assert (
            both(s, "SELECT b, COUNT(*) FROM t GROUP BY b HAVING COUNT(*) > 4")[0]
            == "ok"
        )

    def test_order_by_alias_ordinal_and_expr(self, s):
        for sql in (
            "SELECT a + b AS x FROM t ORDER BY x, id LIMIT 7",
            "SELECT id, b FROM t ORDER BY 2 DESC LIMIT 5 OFFSET 3",
            "SELECT id FROM t WHERE b > 1 ORDER BY a * 2, id",
        ):
            assert both(s, sql)[0] == "ok"

    def test_case_in_between(self, s):
        kind, _, _ = both(
            s,
            "SELECT CASE WHEN a > 3 THEN 'hi' ELSE 'lo' END FROM t"
            " WHERE b IN (1, 2, 5) AND id BETWEEN 4 AND 40",
        )
        assert kind == "ok"

    def test_subquery_falls_back_per_row_inside_batch(self, s):
        s.execute("CREATE TABLE u (k INT PRIMARY KEY)")
        for k in (1, 3, 5):
            s.execute(f"INSERT INTO u (k) VALUES ({k})")
        kind, _, rows = both(
            s, "SELECT id FROM t WHERE a IN (SELECT k FROM u) ORDER BY id"
        )
        assert kind == "ok" and rows

    def test_custom_batch_size(self, s):
        s.db.planner_options["batch_size"] = 3
        try:
            kind, _, rows = both(
                s, "SELECT id, a FROM t WHERE b >= 2 ORDER BY id"
            )
            assert kind == "ok" and rows
        finally:
            s.db.planner_options["batch_size"] = DEFAULT_BATCH_SIZE

    def test_batched_under_interpreter_mode(self, s):
        # compiled predicates off: the batch pipeline still runs, with
        # per-row interpretation inside each batch
        s.db.planner_options["enable_compiled_predicates"] = False
        try:
            kind, _, rows = both(s, "SELECT id FROM t WHERE a = 2 ORDER BY id")
            assert kind == "ok" and rows
        finally:
            s.db.planner_options["enable_compiled_predicates"] = True


# ----------------------------------------------------- deferred-error contract


class TestErrorContract:
    def test_short_circuit_skips_erroring_rows(self, s):
        # b is never NULL, so b < -1 is false on every row and the lazy
        # AND never evaluates the 1/0 conjunct: the batch plan must not
        # raise either (deferred errors are discarded for short-circuited
        # elements)
        kind, _, rows = both(
            s, "SELECT id FROM t WHERE b < -1 AND 1 / (b - b) > 0"
        )
        assert (kind, rows) == ("ok", [])
        # with a NULL left operand, NULL AND <error> must surface the
        # error — on both plans
        outcome = both(s, "SELECT id FROM t WHERE a < -1 AND 1 / (b - b) > 0")
        assert outcome[:2] == ("err", DivisionByZeroError.__name__)

    def test_error_raised_when_row_reaches_conjunct(self, s):
        outcome = both(s, "SELECT id FROM t WHERE b >= 0 AND 1 / (b - b) > 0")
        assert outcome[0] == "err"
        assert outcome[1] == DivisionByZeroError.__name__

    def test_where_error_beats_projection_error(self, s):
        # the WHERE type mismatch must surface, not the projection's
        # division by zero: filters run before projection in both plans
        outcome = both(s, "SELECT 1 / (b - b) FROM t WHERE c < 5")
        assert outcome[0] == "err"
        assert outcome[1] == ExecutionError.__name__

    def test_unknown_column_defers_until_a_row_is_scanned(self, s):
        s.execute("CREATE TABLE empty_t (x INT)")
        kind, _, rows = both(s, "SELECT x FROM empty_t WHERE nosuch = 1")
        assert (kind, rows) == ("ok", [])
        outcome = both(s, "SELECT id FROM t WHERE nosuch = 1")
        assert outcome[0] == "err"
        assert outcome[1] == UnknownColumnError.__name__

    def test_projection_error_parity(self, s):
        outcome = both(s, "SELECT 1 / a FROM t WHERE id = 45")
        # id 45 has a = 45 % 7 = 3: fine; id 7 has a = 0 but is filtered
        assert outcome[0] == "ok"
        outcome = both(s, "SELECT 1 / (a - a) FROM t WHERE id = 45")
        assert outcome[1] == DivisionByZeroError.__name__

    def test_aggregate_argument_error_parity(self, s):
        outcome = both(s, "SELECT SUM(c) FROM t")
        assert outcome[0] == "err"
        outcome = both(s, "SELECT b, SUM(1 / (a - a)) FROM t GROUP BY b")
        assert outcome[1] == DivisionByZeroError.__name__


# ------------------------------------------------- counters, EXPLAIN, tracing


class TestObservability:
    def test_batch_scans_counter(self, s):
        stats = s.db.planner_stats
        before = (stats["batch_scans"], stats["seq_scans"])
        s.execute("SELECT COUNT(*) FROM t WHERE b > 100")
        # the batched seq scan bumps both the access-path counter and the
        # pipeline counter
        assert stats["batch_scans"] == before[0] + 1
        assert stats["seq_scans"] == before[1] + 1

    def test_counter_untouched_when_disabled(self, s):
        stats = s.db.planner_stats
        s.db.planner_options["enable_batch_execution"] = False
        try:
            before = stats["batch_scans"]
            s.execute("SELECT COUNT(*) FROM t")
            assert stats["batch_scans"] == before
        finally:
            s.db.planner_options["enable_batch_execution"] = True

    def test_counter_untouched_for_joins(self, s):
        s.execute("CREATE TABLE u (k INT PRIMARY KEY)")
        s.execute("INSERT INTO u (k) VALUES (1)")
        before = s.db.planner_stats["batch_scans"]
        s.execute("SELECT t.id FROM t JOIN u ON t.a = u.k")
        assert s.db.planner_stats["batch_scans"] == before

    def test_explain_annotation(self, s):
        rows = s.execute("EXPLAIN SELECT id FROM t WHERE b = 3").rows
        assert any(line.endswith("(batched)") for (line,) in rows)
        s.db.planner_options["enable_batch_execution"] = False
        try:
            rows = s.execute("EXPLAIN SELECT id FROM t WHERE b = 3").rows
            assert not any("(batched)" in line for (line,) in rows)
        finally:
            s.db.planner_options["enable_batch_execution"] = True

    def test_explain_no_annotation_for_joins_or_ordered_scans(self, s):
        s.execute("CREATE TABLE u (k INT PRIMARY KEY)")
        rows = s.execute(
            "EXPLAIN SELECT t.id FROM t JOIN u ON t.a = u.k"
        ).rows
        assert not any("(batched)" in line for (line,) in rows)
        # ORDER BY id is served by the ordered-scan fast path, which
        # preempts the batch pipeline
        s.execute("CREATE INDEX ix_tid ON t USING BTREE (id)")
        rows = s.execute("EXPLAIN SELECT id FROM t ORDER BY id LIMIT 3").rows
        assert any("Ordered Index Scan" in line for (line,) in rows)
        assert not any("(batched)" in line for (line,) in rows)

    def test_explain_analyze_actuals_follow_annotation(self, s):
        rows = s.execute(
            "EXPLAIN ANALYZE SELECT id FROM t WHERE b = 3"
        ).rows
        assert any("(batched) (actual rows=" in line for (line,) in rows)

    def test_scan_event_parity(self, s):
        """Batched scans report identical binding/kind/rows/examined
        through the tracer as the row path (timings aside)."""
        tracer = s.db.tracer
        events = {}
        for enabled in (True, False):
            s.db.planner_options["enable_batch_execution"] = enabled
            probe = tracer.probe()
            try:
                s.execute("SELECT id FROM t WHERE b > 5")
                s.execute("SELECT COUNT(*) FROM t WHERE id = 7")
            finally:
                tracer.release(probe)
            events[enabled] = [
                {k: e[k] for k in ("binding", "kind", "rows", "examined")}
                for e in probe.scans
            ]
        s.db.planner_options["enable_batch_execution"] = True
        assert events[True] == events[False]
        assert [e["kind"] for e in events[True]] == ["seq", "index"]


# ------------------------------------------------------------ storage batches


class TestStorageBatches:
    def test_rows_batch_slices(self, s):
        heap = s.db.heap("t")
        batches = list(heap.rows_batch(16, ["id", "a"]))
        assert [b.length for b in batches] == [16, 16, 16, 2]
        assert all(set(b.columns) == {"id", "a"} for b in batches)
        ids = [v for b in batches for v in b.columns["id"]]
        assert ids == sorted(ids) and len(ids) == 50
        rids = [rid for rid, _ in heap.rows()]
        assert batches[0].rids == rids[:16]

    def test_rows_batch_copies_are_snapshots(self, s):
        heap = s.db.heap("t")
        batch = next(heap.rows_batch(10, ["b"]))
        batch.columns["b"][0] = "mutated"
        assert heap.get(batch.rids[0])["b"] != "mutated"

    def test_fetch_batch_skips_missing_rids(self, s):
        heap = s.db.heap("t")
        rids = list(dict(heap.rows()).keys())[:3]
        batch = heap.fetch_batch([rids[0], 10**9, rids[2]], ["id"])
        assert batch.length == 2
        assert batch.rids == [rids[0], rids[2]]

    def test_row_batch_and_error_repr(self):
        err = BatchError(ExecutionError("boom"))
        assert "boom" in repr(err)
        batch = RowBatch([1, 2], {"x": [10, 20]}, 2)
        assert batch.length == 2 and batch.columns["x"] == [10, 20]


# ----------------------------------------------------------- property testing


values = st.one_of(st.none(), st.integers(min_value=-3, max_value=9))
texts = st.one_of(st.none(), st.sampled_from(["ab", "ba", "a%b", "s1", ""]))
rows_strategy = st.lists(st.tuples(values, values, texts), max_size=40)

PREDICATES = [
    "a > 2",
    "a = b",
    "a <> 3",
    "b IS NULL",
    "c IS NOT NULL",
    "a + b >= 4",
    "a * b < 6",
    "c LIKE 'a%'",
    "c LIKE '%b'",
    "a IN (1, 2, NULL)",
    "b BETWEEN 0 AND 5",
    "CASE WHEN a > b THEN 1 ELSE 0 END = 1",
]
where_strategy = st.one_of(
    st.none(),
    st.lists(st.sampled_from(PREDICATES), min_size=1, max_size=3).map(
        lambda ps: " AND ".join(ps)
    ),
    st.lists(st.sampled_from(PREDICATES), min_size=2, max_size=3).map(
        lambda ps: " OR ".join(ps)
    ),
)
SELECTS = [
    "id, a, b, c",
    "id, a + b AS x",
    "DISTINCT a, b",
    "COUNT(*), SUM(a), AVG(b)",
    "a, COUNT(*), MIN(b), MAX(c) GROUP BY a",
    "b, COUNT(*) GROUP BY b HAVING COUNT(*) > 1",
]
order_strategy = st.sampled_from(
    [None, "ORDER BY 1", "ORDER BY a, id", "ORDER BY b DESC, id"]
)
limit_strategy = st.one_of(
    st.none(), st.tuples(st.integers(0, 10), st.integers(0, 3))
)


def build_statement(select, where, order, limit):
    if "GROUP BY" in select:
        items, group = select.split(" GROUP BY", 1)
        sql = f"SELECT {items} FROM t"
        if where:
            sql += f" WHERE {where}"
        sql += " GROUP BY" + group
        sql += " ORDER BY 1"  # aggregate outputs: positional order only
    else:
        sql = f"SELECT {select} FROM t"
        if where:
            sql += f" WHERE {where}"
        if "COUNT" in select:
            order = None
        if order:
            sql += f" {order}"
    if limit is not None:
        count, offset = limit
        sql += f" LIMIT {count}"
        if offset:
            sql += f" OFFSET {offset}"
    return sql


@settings(max_examples=60, deadline=None)
@given(
    rows=rows_strategy,
    statements=st.lists(
        st.tuples(
            st.sampled_from(SELECTS), where_strategy, order_strategy,
            limit_strategy,
        ),
        min_size=1,
        max_size=4,
    ),
    batch_size=st.sampled_from([1, 2, 7, DEFAULT_BATCH_SIZE]),
)
def test_batched_execution_equivalent_to_row_plan(rows, statements, batch_size):
    """Random data + random statements: the batch pipeline must match the
    row plan byte for byte — results, column names, and raised errors."""
    db = Database(owner="a")
    session = db.connect("a")
    session.execute("CREATE TABLE t (id INT PRIMARY KEY, a INT, b INT, c TEXT)")
    heap = db.heap("t")
    for i, (a, b, c) in enumerate(rows):
        heap.insert({"id": i, "a": a, "b": b, "c": c})
    db.planner_options["batch_size"] = batch_size
    for select, where, order, limit in statements:
        both(session, build_statement(select, where, order, limit))
