"""Edge-case and failure-injection tests for the minidb engine."""

import pytest

from repro.minidb import Database
from repro.minidb.errors import (
    ExecutionError,
    SQLSyntaxError,
    TypeMismatchError,
    UnknownColumnError,
)


@pytest.fixture
def s():
    return Database(owner="a").connect("a")


class TestThreeValuedLogic:
    @pytest.mark.parametrize(
        "sql,expected",
        [
            ("SELECT NULL AND TRUE", None),
            ("SELECT NULL AND FALSE", False),
            ("SELECT NULL OR TRUE", True),
            ("SELECT NULL OR FALSE", None),
            ("SELECT NOT NULL", None),
            ("SELECT NULL = NULL", None),
            ("SELECT NULL <> NULL", None),
            ("SELECT NULL IS NULL", True),
            ("SELECT NULL IS NOT NULL", False),
            ("SELECT 1 + NULL", None),
            ("SELECT NULL || 'x'", None),
            ("SELECT NULL BETWEEN 1 AND 2", None),
            ("SELECT NULL LIKE 'a%'", None),
            ("SELECT 1 IN (NULL)", None),
            ("SELECT 1 IN (1, NULL)", True),
            ("SELECT 1 NOT IN (2, NULL)", None),
        ],
    )
    def test_null_semantics(self, s, sql, expected):
        assert s.scalar(sql) == expected

    def test_where_null_excludes_row(self, s):
        s.execute("CREATE TABLE t (a INT)")
        s.execute("INSERT INTO t VALUES (NULL), (1)")
        assert len(s.execute("SELECT * FROM t WHERE a = a")) == 1


class TestEmptyAndDegenerate:
    def test_select_from_empty_table(self, s):
        s.execute("CREATE TABLE t (a INT)")
        assert s.execute("SELECT * FROM t").rows == []

    def test_aggregate_over_empty_grouped(self, s):
        s.execute("CREATE TABLE t (a INT, b INT)")
        assert s.execute("SELECT a, SUM(b) FROM t GROUP BY a").rows == []

    def test_join_with_empty_side(self, s):
        s.execute("CREATE TABLE a (x INT)")
        s.execute("CREATE TABLE b (x INT)")
        s.execute("INSERT INTO a VALUES (1)")
        assert s.execute("SELECT * FROM a JOIN b ON a.x = b.x").rows == []
        assert s.execute("SELECT * FROM a LEFT JOIN b ON a.x = b.x").rows == [(1, None)]

    def test_update_no_matches(self, s):
        s.execute("CREATE TABLE t (a INT)")
        assert s.execute("UPDATE t SET a = 1 WHERE a = 99").rowcount == 0

    def test_delete_from_empty(self, s):
        s.execute("CREATE TABLE t (a INT)")
        assert s.execute("DELETE FROM t").rowcount == 0

    def test_table_with_single_null_row(self, s):
        s.execute("CREATE TABLE t (a INT, b TEXT)")
        s.execute("INSERT INTO t VALUES (NULL, NULL)")
        assert s.execute("SELECT * FROM t").rows == [(None, None)]

    def test_group_by_null_key_groups_together(self, s):
        s.execute("CREATE TABLE t (k TEXT, v INT)")
        s.execute("INSERT INTO t VALUES (NULL, 1), (NULL, 2), ('a', 3)")
        rows = dict(s.execute("SELECT k, SUM(v) FROM t GROUP BY k").rows)
        assert rows[None] == 3
        assert rows["a"] == 3


class TestMixedTypeBehavior:
    def test_int_float_comparison(self, s):
        assert s.scalar("SELECT 1 = 1.0") is True
        assert s.scalar("SELECT 2 > 1.5") is True

    def test_string_number_equality_is_false(self, s):
        assert s.scalar("SELECT '1' = 1") is False

    def test_string_number_ordering_rejected(self, s):
        with pytest.raises(ExecutionError):
            s.execute("SELECT 'a' < 1")

    def test_group_key_distinguishes_types(self, s):
        s.execute("CREATE TABLE t (v TEXT)")
        s.execute("INSERT INTO t VALUES ('1')")
        s.execute("CREATE TABLE u (v INT)")
        s.execute("INSERT INTO u VALUES (1)")
        rows = s.execute(
            "SELECT v FROM t UNION SELECT v FROM u"
        ).rows
        assert len(rows) == 2  # '1' and 1 are distinct


class TestErrorRecovery:
    def test_session_usable_after_syntax_error(self, s):
        with pytest.raises(SQLSyntaxError):
            s.execute("SELEKT 1")
        assert s.scalar("SELECT 1") == 1

    def test_session_usable_after_type_error(self, s):
        s.execute("CREATE TABLE t (a INT)")
        with pytest.raises(TypeMismatchError):
            s.execute("INSERT INTO t VALUES ('zzz')")
        s.execute("INSERT INTO t VALUES (1)")
        assert s.scalar("SELECT COUNT(*) FROM t") == 1

    def test_failed_ddl_in_transaction_keeps_tx(self, s):
        s.execute("CREATE TABLE t (a INT)")
        s.execute("BEGIN")
        s.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(Exception):
            s.execute("CREATE TABLE t (a INT)")  # duplicate
        assert s.in_transaction
        s.execute("COMMIT")
        assert s.scalar("SELECT COUNT(*) FROM t") == 1

    def test_statement_log_records_attempts(self, s):
        with pytest.raises(SQLSyntaxError):
            s.execute("BROKEN")
        assert "BROKEN" in s.statement_log


class TestIdentifierResolution:
    def test_alias_shadows_table_name(self, s):
        s.execute("CREATE TABLE t (a INT)")
        s.execute("INSERT INTO t VALUES (5)")
        assert s.execute("SELECT x.a FROM t x").rows == [(5,)]

    def test_original_name_unavailable_when_aliased(self, s):
        s.execute("CREATE TABLE t (a INT)")
        s.execute("INSERT INTO t VALUES (5)")
        with pytest.raises(UnknownColumnError):
            s.execute("SELECT t.a FROM t x")

    def test_case_insensitive_columns(self, s):
        s.execute("CREATE TABLE t (MyCol INT)")
        s.execute("INSERT INTO t VALUES (1)")
        assert s.scalar("SELECT mycol FROM t") == 1
        assert s.scalar("SELECT MYCOL FROM t") == 1

    def test_quoted_identifier_preserves_case(self, s):
        s.execute('CREATE TABLE t ("Weird Name" INT)')
        s.execute("INSERT INTO t VALUES (1)")
        assert s.scalar('SELECT "Weird Name" FROM t') == 1

    def test_correlated_name_resolution_prefers_inner(self, s):
        s.execute("CREATE TABLE outer_t (v INT)")
        s.execute("CREATE TABLE inner_t (v INT)")
        s.execute("INSERT INTO outer_t VALUES (1)")
        s.execute("INSERT INTO inner_t VALUES (2)")
        # unqualified v inside the subquery binds to inner_t
        assert s.execute(
            "SELECT (SELECT MAX(v) FROM inner_t) FROM outer_t"
        ).rows == [(2,)]


class TestLargerScans:
    def test_thousand_row_aggregate(self, s):
        s.execute("CREATE TABLE t (a INT)")
        heap = s.db.heap("t")
        for i in range(1000):
            heap.insert({"a": i})
        assert s.scalar("SELECT SUM(a) FROM t") == sum(range(1000))
        assert s.scalar("SELECT COUNT(*) FROM t WHERE a % 7 = 0") == len(
            [i for i in range(1000) if i % 7 == 0]
        )

    def test_self_join_quadratic_but_correct(self, s):
        s.execute("CREATE TABLE t (a INT)")
        for i in range(30):
            s.db.heap("t").insert({"a": i})
        count = s.scalar(
            "SELECT COUNT(*) FROM t x JOIN t y ON x.a < y.a"
        )
        assert count == 30 * 29 // 2
