"""Integration tests for SELECT execution."""

import pytest

from repro.minidb import Database
from repro.minidb.errors import ExecutionError, UnknownColumnError, UnknownTableError


@pytest.fixture
def db():
    database = Database(owner="admin")
    s = database.connect("admin")
    s.execute("CREATE TABLE dept (id INT PRIMARY KEY, name TEXT NOT NULL)")
    s.execute(
        "CREATE TABLE emp (id INT PRIMARY KEY, name TEXT, salary FLOAT, "
        "dept_id INT REFERENCES dept(id))"
    )
    s.execute("INSERT INTO dept VALUES (1, 'eng'), (2, 'sales'), (3, 'empty')")
    s.execute(
        "INSERT INTO emp VALUES (1, 'alice', 100.0, 1), (2, 'bob', 80.0, 1), "
        "(3, 'carol', 90.0, 2), (4, 'dave', NULL, 2)"
    )
    return database


@pytest.fixture
def s(db):
    return db.connect("admin")


class TestProjection:
    def test_select_star(self, s):
        result = s.execute("SELECT * FROM dept")
        assert result.columns == ["id", "name"]
        assert len(result) == 3

    def test_select_columns(self, s):
        result = s.execute("SELECT name, id FROM dept ORDER BY id")
        assert result.columns == ["name", "id"]
        assert result.rows[0] == ("eng", 1)

    def test_expression_projection(self, s):
        result = s.execute("SELECT salary * 2 AS double FROM emp WHERE id = 1")
        assert result.rows == [(200.0,)]
        assert result.columns == ["double"]

    def test_constant_select_no_from(self, s):
        assert s.execute("SELECT 1 + 1").rows == [(2,)]

    def test_qualified_star(self, s):
        result = s.execute(
            "SELECT e.* FROM emp e JOIN dept d ON e.dept_id = d.id WHERE d.id = 2"
        )
        assert result.columns == ["id", "name", "salary", "dept_id"]
        assert len(result) == 2

    def test_default_column_names(self, s):
        result = s.execute("SELECT 1 + 1, UPPER('x')")
        assert result.columns == ["column1", "upper"]

    def test_unknown_column_raises(self, s):
        with pytest.raises(UnknownColumnError):
            s.execute("SELECT missing FROM dept")

    def test_unknown_table_raises(self, s):
        with pytest.raises(UnknownTableError):
            s.execute("SELECT * FROM nope")

    def test_ambiguous_column_raises(self, s):
        with pytest.raises(UnknownColumnError, match="ambiguous"):
            s.execute("SELECT id FROM emp, dept")


class TestFilters:
    def test_where_comparison(self, s):
        assert len(s.execute("SELECT * FROM emp WHERE salary >= 90")) == 2

    def test_null_comparison_filters_row(self, s):
        # dave has NULL salary -> comparison is UNKNOWN -> excluded
        names = [r[0] for r in s.execute("SELECT name FROM emp WHERE salary < 1000")]
        assert "dave" not in names

    def test_is_null(self, s):
        assert s.execute("SELECT name FROM emp WHERE salary IS NULL").rows == [("dave",)]

    def test_is_not_null_count(self, s):
        assert s.scalar("SELECT COUNT(*) FROM emp WHERE salary IS NOT NULL") == 3

    def test_in_list(self, s):
        assert len(s.execute("SELECT * FROM emp WHERE id IN (1, 3)")) == 2

    def test_not_in_with_null_candidate_excludes_all(self, s):
        assert len(s.execute("SELECT * FROM emp WHERE id NOT IN (1, NULL)")) == 0

    def test_between(self, s):
        assert len(s.execute("SELECT * FROM emp WHERE salary BETWEEN 80 AND 90")) == 2

    def test_like(self, s):
        rows = s.execute("SELECT name FROM emp WHERE name LIKE '%a%' ORDER BY name").rows
        assert rows == [("alice",), ("carol",), ("dave",)]

    def test_like_underscore(self, s):
        assert s.execute("SELECT name FROM emp WHERE name LIKE 'b_b'").rows == [("bob",)]

    def test_ilike(self, s):
        assert len(s.execute("SELECT * FROM emp WHERE name ILIKE 'ALICE'")) == 1

    def test_and_or(self, s):
        rows = s.execute(
            "SELECT name FROM emp WHERE dept_id = 1 AND salary > 90 OR name = 'carol' "
            "ORDER BY name"
        ).rows
        assert rows == [("alice",), ("carol",)]


class TestJoins:
    def test_inner_join(self, s):
        result = s.execute(
            "SELECT e.name, d.name FROM emp e JOIN dept d ON e.dept_id = d.id "
            "ORDER BY e.name"
        )
        assert len(result) == 4

    def test_left_join_keeps_unmatched(self, s):
        result = s.execute(
            "SELECT d.name, e.name FROM dept d LEFT JOIN emp e ON e.dept_id = d.id "
            "WHERE e.id IS NULL"
        )
        assert result.rows == [("empty", None)]

    def test_right_join(self, s):
        result = s.execute(
            "SELECT e.name, d.name FROM emp e RIGHT JOIN dept d ON e.dept_id = d.id"
        )
        # 4 matches + 1 unmatched dept
        assert len(result) == 5

    def test_cross_join(self, s):
        assert len(s.execute("SELECT * FROM dept CROSS JOIN dept d2")) == 9

    def test_implicit_cross_join(self, s):
        assert len(s.execute("SELECT * FROM dept, emp")) == 12

    def test_join_condition_with_extra_predicate(self, s):
        result = s.execute(
            "SELECT d.name, e.name FROM dept d "
            "LEFT JOIN emp e ON e.dept_id = d.id AND e.salary > 95 ORDER BY d.id"
        )
        assert result.rows == [("eng", "alice"), ("sales", None), ("empty", None)]

    def test_self_join(self, s):
        result = s.execute(
            "SELECT a.name, b.name FROM emp a JOIN emp b "
            "ON a.dept_id = b.dept_id AND a.id < b.id ORDER BY a.id"
        )
        assert ("alice", "bob") in result.rows


class TestAggregation:
    def test_count_star(self, s):
        assert s.scalar("SELECT COUNT(*) FROM emp") == 4

    def test_count_column_skips_nulls(self, s):
        assert s.scalar("SELECT COUNT(salary) FROM emp") == 3

    def test_count_distinct(self, s):
        assert s.scalar("SELECT COUNT(DISTINCT dept_id) FROM emp") == 2

    def test_sum_avg_min_max(self, s):
        row = s.execute(
            "SELECT SUM(salary), AVG(salary), MIN(salary), MAX(salary) FROM emp"
        ).rows[0]
        assert row == (270.0, 90.0, 80.0, 100.0)

    def test_aggregates_on_empty_input(self, s):
        row = s.execute(
            "SELECT COUNT(*), SUM(salary), AVG(salary) FROM emp WHERE id > 99"
        ).rows[0]
        assert row == (0, None, None)

    def test_group_by(self, s):
        result = s.execute(
            "SELECT dept_id, COUNT(*) FROM emp GROUP BY dept_id ORDER BY dept_id"
        )
        assert result.rows == [(1, 2), (2, 2)]

    def test_group_by_expression_key(self, s):
        result = s.execute(
            "SELECT salary > 85, COUNT(*) FROM emp WHERE salary IS NOT NULL "
            "GROUP BY salary > 85 ORDER BY 2"
        )
        assert sorted(result.rows) == [(False, 1), (True, 2)]

    def test_having(self, s):
        result = s.execute(
            "SELECT dept_id FROM emp GROUP BY dept_id HAVING SUM(salary) > 100"
        )
        assert result.rows == [(1,)]

    def test_group_by_with_join(self, s):
        result = s.execute(
            "SELECT d.name, COUNT(e.id) AS n FROM dept d "
            "LEFT JOIN emp e ON e.dept_id = d.id GROUP BY d.name ORDER BY d.name"
        )
        assert result.rows == [("empty", 0), ("eng", 2), ("sales", 2)]

    def test_stddev(self, s):
        value = s.scalar("SELECT STDDEV(salary) FROM emp WHERE dept_id = 1")
        assert value == pytest.approx(14.1421356, rel=1e-6)

    def test_group_concat(self, s):
        value = s.scalar(
            "SELECT GROUP_CONCAT(name) FROM emp WHERE dept_id = 1"
        )
        assert value == "alice,bob"

    def test_aggregate_in_where_rejected(self, s):
        with pytest.raises(ExecutionError):
            s.execute("SELECT * FROM emp WHERE COUNT(*) > 1")


class TestOrderingAndPaging:
    def test_order_by_asc(self, s):
        rows = s.execute("SELECT name FROM emp ORDER BY name").rows
        assert rows == [("alice",), ("bob",), ("carol",), ("dave",)]

    def test_order_by_desc(self, s):
        rows = s.execute("SELECT salary FROM emp ORDER BY salary DESC").rows
        # NULL sorts last in both directions (NULLS LAST policy)
        assert rows == [(100.0,), (90.0,), (80.0,), (None,)]

    def test_nulls_last_ascending(self, s):
        rows = s.execute("SELECT salary FROM emp ORDER BY salary").rows
        assert rows[-1] == (None,)

    def test_order_by_ordinal(self, s):
        rows = s.execute("SELECT name, salary FROM emp ORDER BY 2 DESC LIMIT 1").rows
        assert rows == [("alice", 100.0)]

    def test_order_by_alias(self, s):
        rows = s.execute("SELECT salary * 2 AS d FROM emp ORDER BY d LIMIT 1").rows
        assert rows == [(160.0,)]

    def test_order_by_aggregate(self, s):
        rows = s.execute(
            "SELECT dept_id FROM emp GROUP BY dept_id ORDER BY AVG(salary) DESC"
        ).rows
        assert rows == [(1,), (2,)]

    def test_limit(self, s):
        assert len(s.execute("SELECT * FROM emp LIMIT 2")) == 2

    def test_limit_zero(self, s):
        assert len(s.execute("SELECT * FROM emp LIMIT 0")) == 0

    def test_offset(self, s):
        rows = s.execute("SELECT name FROM emp ORDER BY name LIMIT 2 OFFSET 1").rows
        assert rows == [("bob",), ("carol",)]

    def test_ordinal_out_of_range(self, s):
        with pytest.raises(ExecutionError):
            s.execute("SELECT name FROM emp ORDER BY 9")


class TestDistinctAndSetOps:
    def test_distinct(self, s):
        assert len(s.execute("SELECT DISTINCT dept_id FROM emp")) == 2

    def test_distinct_with_null(self, s):
        s.execute("INSERT INTO emp VALUES (5, 'eve', NULL, NULL)")
        assert len(s.execute("SELECT DISTINCT dept_id FROM emp")) == 3

    def test_union_dedups(self, s):
        result = s.execute("SELECT dept_id FROM emp UNION SELECT id FROM dept")
        assert len(result) == 3

    def test_union_all_keeps_duplicates(self, s):
        result = s.execute("SELECT dept_id FROM emp UNION ALL SELECT id FROM dept")
        assert len(result) == 7

    def test_intersect(self, s):
        result = s.execute("SELECT id FROM dept INTERSECT SELECT dept_id FROM emp")
        assert sorted(result.rows) == [(1,), (2,)]

    def test_except(self, s):
        result = s.execute("SELECT id FROM dept EXCEPT SELECT dept_id FROM emp")
        assert result.rows == [(3,)]

    def test_union_column_count_mismatch(self, s):
        with pytest.raises(ExecutionError):
            s.execute("SELECT id, name FROM dept UNION SELECT id FROM dept")


class TestSubqueries:
    def test_scalar_subquery(self, s):
        rows = s.execute(
            "SELECT name FROM emp WHERE salary = (SELECT MAX(salary) FROM emp)"
        ).rows
        assert rows == [("alice",)]

    def test_in_subquery(self, s):
        rows = s.execute(
            "SELECT name FROM dept WHERE id IN (SELECT dept_id FROM emp) ORDER BY id"
        ).rows
        assert rows == [("eng",), ("sales",)]

    def test_correlated_exists(self, s):
        rows = s.execute(
            "SELECT name FROM dept d WHERE EXISTS "
            "(SELECT 1 FROM emp e WHERE e.dept_id = d.id) ORDER BY d.id"
        ).rows
        assert rows == [("eng",), ("sales",)]

    def test_not_exists(self, s):
        rows = s.execute(
            "SELECT name FROM dept d WHERE NOT EXISTS "
            "(SELECT 1 FROM emp e WHERE e.dept_id = d.id)"
        ).rows
        assert rows == [("empty",)]

    def test_correlated_scalar_subquery(self, s):
        rows = s.execute(
            "SELECT d.name, (SELECT COUNT(*) FROM emp e WHERE e.dept_id = d.id) "
            "FROM dept d ORDER BY d.id"
        ).rows
        assert rows == [("eng", 2), ("sales", 2), ("empty", 0)]

    def test_derived_table(self, s):
        rows = s.execute(
            "SELECT big.name FROM (SELECT name, salary FROM emp WHERE salary > 85) big "
            "ORDER BY big.name"
        ).rows
        assert rows == [("alice",), ("carol",)]

    def test_scalar_subquery_multiple_rows_rejected(self, s):
        with pytest.raises(ExecutionError):
            s.execute("SELECT (SELECT id FROM emp)")


class TestViews:
    def test_view_queries_like_table(self, s):
        s.execute("CREATE VIEW rich AS SELECT name, salary FROM emp WHERE salary > 85")
        rows = s.execute("SELECT name FROM rich ORDER BY name").rows
        assert rows == [("alice",), ("carol",)]

    def test_view_reflects_underlying_changes(self, s):
        s.execute("CREATE VIEW rich AS SELECT name FROM emp WHERE salary > 85")
        s.execute("UPDATE emp SET salary = 200 WHERE name = 'bob'")
        assert ("bob",) in s.execute("SELECT * FROM rich").rows

    def test_view_on_view(self, s):
        s.execute("CREATE VIEW a_names AS SELECT name FROM emp WHERE name LIKE 'a%'")
        s.execute("CREATE VIEW upper_a AS SELECT UPPER(name) AS n FROM a_names")
        assert s.execute("SELECT * FROM upper_a").rows == [("ALICE",)]
