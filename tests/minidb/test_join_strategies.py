"""Tests for hash-join execution, join planning, and predicate pushdown.

Every query here is checked against the nested-loop fallback
(``db.planner_options["enable_hash_join"] = False``), which preserves the
seed executor's semantics, so hash joins are proven drop-in equivalent.
"""

import pytest

from repro.minidb import Database, parse
from repro.minidb.planner import extract_pushdown_filter, plan_join, plan_select_joins


@pytest.fixture
def s():
    db = Database(owner="a")
    session = db.connect("a")
    session.execute("CREATE TABLE dept (id INT PRIMARY KEY, name TEXT, region TEXT)")
    session.execute(
        "CREATE TABLE emp (id INT PRIMARY KEY, dept_id INT, name TEXT, salary INT)"
    )
    session.execute(
        "INSERT INTO dept VALUES (1,'eng','west'),(2,'ops','east'),(3,'lab','west')"
    )
    session.execute(
        "INSERT INTO emp VALUES "
        "(1,1,'ann',100),(2,1,'bob',90),(3,2,'cal',80),(4,NULL,'dot',70),(5,9,'eve',60)"
    )
    return session


def both_strategies(session, sql):
    """Run ``sql`` with hash joins enabled and disabled; assert equal rows."""
    options = session.db.planner_options
    options["enable_hash_join"] = True
    hashed = session.execute(sql).rows
    options["enable_hash_join"] = False
    looped = session.execute(sql).rows
    options["enable_hash_join"] = True
    assert sorted(hashed, key=repr) == sorted(looped, key=repr)
    return hashed


class TestHashJoinEquivalence:
    def test_inner_join(self, s):
        rows = both_strategies(
            s, "SELECT e.name, d.name FROM emp e JOIN dept d ON e.dept_id = d.id"
        )
        assert sorted(rows) == [("ann", "eng"), ("bob", "eng"), ("cal", "ops")]

    def test_inner_join_uses_hash_strategy(self, s):
        before = s.db.planner_stats["hash_joins"]
        s.execute("SELECT * FROM emp e JOIN dept d ON e.dept_id = d.id")
        assert s.db.planner_stats["hash_joins"] == before + 1

    def test_left_join_null_extension(self, s):
        rows = both_strategies(
            s,
            "SELECT d.name, e.name FROM dept d LEFT JOIN emp e "
            "ON e.dept_id = d.id ORDER BY d.id, e.id",
        )
        assert rows == [
            ("eng", "ann"),
            ("eng", "bob"),
            ("ops", "cal"),
            ("lab", None),
        ]

    def test_right_join_null_extension(self, s):
        rows = both_strategies(
            s,
            "SELECT e.name, d.name FROM emp e RIGHT JOIN dept d "
            "ON e.dept_id = d.id ORDER BY d.id",
        )
        assert ("ann", "eng") in rows
        assert (None, "lab") in rows

    def test_right_join_with_empty_left_relation(self, s):
        s.execute("CREATE TABLE nobody (id INT PRIMARY KEY, dept_id INT)")
        rows = both_strategies(
            s,
            "SELECT n.id, d.name FROM nobody n RIGHT JOIN dept d "
            "ON n.dept_id = d.id ORDER BY d.id",
        )
        assert rows == [(None, "eng"), (None, "ops"), (None, "lab")]

    def test_null_keys_never_match(self, s):
        # dot has dept_id NULL: excluded from INNER, NULL-extended in LEFT
        inner = both_strategies(
            s, "SELECT e.name FROM emp e JOIN dept d ON e.dept_id = d.id"
        )
        assert ("dot",) not in inner
        left = both_strategies(
            s,
            "SELECT e.name, d.name FROM emp e LEFT JOIN dept d ON e.dept_id = d.id",
        )
        assert ("dot", None) in left

    def test_mixed_condition_hash_with_residual(self, s):
        before = s.db.planner_stats["hash_joins"]
        rows = both_strategies(
            s,
            "SELECT d.name, e.name FROM dept d LEFT JOIN emp e "
            "ON e.dept_id = d.id AND e.salary > 95 ORDER BY d.id",
        )
        assert rows == [("eng", "ann"), ("ops", None), ("lab", None)]
        assert s.db.planner_stats["hash_joins"] > before

    def test_non_equi_condition_falls_back_to_nested_loop(self, s):
        before = dict(s.db.planner_stats)
        rows = s.execute(
            "SELECT e.name, d.name FROM emp e JOIN dept d ON e.dept_id < d.id"
        ).rows
        assert s.db.planner_stats["nested_loop_joins"] == before["nested_loop_joins"] + 1
        assert s.db.planner_stats["hash_joins"] == before["hash_joins"]
        assert ("ann", "ops") in rows and ("cal", "lab") in rows

    def test_implicit_join_hashes_on_where_equality(self, s):
        before = s.db.planner_stats["hash_joins"]
        rows = both_strategies(
            s,
            "SELECT e.name, d.name FROM emp e, dept d WHERE e.dept_id = d.id",
        )
        assert sorted(rows) == [("ann", "eng"), ("bob", "eng"), ("cal", "ops")]
        assert s.db.planner_stats["hash_joins"] == before + 1

    def test_cross_join_still_cross(self, s):
        before = dict(s.db.planner_stats)
        assert len(s.execute("SELECT * FROM dept CROSS JOIN dept d2").rows) == 9
        assert s.db.planner_stats["hash_joins"] == before["hash_joins"]
        assert s.db.planner_stats["nested_loop_joins"] == before["nested_loop_joins"]

    def test_self_join(self, s):
        rows = both_strategies(
            s,
            "SELECT a.name, b.name FROM emp a JOIN emp b "
            "ON a.dept_id = b.dept_id AND a.id < b.id",
        )
        assert rows == [("ann", "bob")]

    def test_subquery_source_hash_join(self, s):
        rows = both_strategies(
            s,
            "SELECT d.name, t.n FROM dept d "
            "JOIN (SELECT dept_id, COUNT(*) AS n FROM emp GROUP BY dept_id) t "
            "ON t.dept_id = d.id ORDER BY d.id",
        )
        assert rows == [("eng", 2), ("ops", 1)]

    def test_view_source_join(self, s):
        s.execute("CREATE VIEW west_depts AS SELECT * FROM dept WHERE region = 'west'")
        rows = both_strategies(
            s,
            "SELECT e.name FROM emp e JOIN west_depts w ON e.dept_id = w.id "
            "ORDER BY e.id",
        )
        assert rows == [("ann",), ("bob",)]

    def test_join_then_group_by(self, s):
        rows = both_strategies(
            s,
            "SELECT d.name, COUNT(e.id) FROM dept d LEFT JOIN emp e "
            "ON e.dept_id = d.id GROUP BY d.name ORDER BY d.name",
        )
        assert rows == [("eng", 2), ("lab", 0), ("ops", 1)]


class TestWherePushdown:
    def test_left_join_pushdown_on_nullable_side(self, s):
        # WHERE equality on the NULL-extended side must still drop
        # NULL-extended rows, exactly as without pushdown
        rows = both_strategies(
            s,
            "SELECT d.name, e.name FROM dept d LEFT JOIN emp e "
            "ON e.dept_id = d.id WHERE e.salary = 90",
        )
        assert rows == [("eng", "bob")]

    def test_left_join_pushdown_on_preserved_side(self, s):
        rows = both_strategies(
            s,
            "SELECT d.name, e.name FROM dept d LEFT JOIN emp e "
            "ON e.dept_id = d.id WHERE d.region = 'west' ORDER BY d.id, e.id",
        )
        assert rows == [("eng", "ann"), ("eng", "bob"), ("lab", None)]

    def test_is_null_predicate_not_pushed(self, s):
        # IS NULL is not null-rejecting: the NULL-extended rows must survive
        rows = both_strategies(
            s,
            "SELECT d.name FROM dept d LEFT JOIN emp e ON e.dept_id = d.id "
            "WHERE e.id IS NULL",
        )
        assert rows == [("lab",)]

    def test_pushdown_filter_extraction(self):
        where = parse("SELECT * FROM t WHERE a = 1 AND t.b > 2 AND c IS NULL").where
        sources = [("t", ["a", "b", "c"]), ("u", ["x"])]
        predicate = extract_pushdown_filter(where, "t", ["a", "b", "c"], sources)
        from repro.minidb.sqlgen import expr_to_sql

        sql = expr_to_sql(predicate)
        assert "a = 1" in sql and "b > 2" in sql
        assert "IS NULL" not in sql

    def test_pushdown_ignores_other_sources_columns(self):
        where = parse("SELECT * FROM t WHERE u.a = 1 AND b = 2").where
        sources = [("t", ["b"]), ("u", ["a"])]
        predicate = extract_pushdown_filter(where, "t", ["b"], sources)
        from repro.minidb.sqlgen import expr_to_sql

        assert expr_to_sql(predicate) == "(b = 2)"

    def test_pushdown_skips_statement_ambiguous_unqualified(self):
        # "b" exists in both sources: pushing it could empty a scan and mask
        # the ambiguity error the WHERE evaluator must raise
        where = parse("SELECT * FROM t WHERE b = 2").where
        sources = [("t", ["b"]), ("u", ["b"])]
        assert extract_pushdown_filter(where, "t", ["b"], sources) is None

    def test_pushdown_skips_unqualified_with_unknown_source(self):
        where = parse("SELECT * FROM t WHERE b = 2").where
        sources = [("t", ["b"]), ("v", None)]  # view: columns unknown
        assert extract_pushdown_filter(where, "t", ["b"], sources) is None

    def test_ambiguous_unqualified_where_still_raises(self, s):
        # regression: both tables have "name"; the pushed-down filter and
        # the hash-key planner must not swallow the ambiguity error by
        # emptying the relation first
        s.execute("DELETE FROM emp WHERE salary < 95")  # make matches scarce
        from repro.minidb.errors import UnknownColumnError

        for enabled in (True, False):
            s.db.planner_options["enable_hash_join"] = enabled
            with pytest.raises(UnknownColumnError):
                s.execute("SELECT * FROM emp e, dept d WHERE name = 'zzz'")
        s.db.planner_options["enable_hash_join"] = True

    def test_ambiguous_with_later_source_not_hashed(self, s):
        # "x" lives in tables a and c; at fold time of b only a is joined,
        # but the key must still be rejected so WHERE raises like the seed
        s.execute("CREATE TABLE a (x INT)")
        s.execute("CREATE TABLE b (w INT)")
        s.execute("CREATE TABLE c (x INT)")
        s.execute("INSERT INTO a VALUES (1)")
        s.execute("INSERT INTO b VALUES (2)")
        s.execute("INSERT INTO c VALUES (9)")
        from repro.minidb.errors import UnknownColumnError

        for enabled in (True, False):
            s.db.planner_options["enable_hash_join"] = enabled
            with pytest.raises(UnknownColumnError):
                s.execute("SELECT * FROM a, b, c WHERE x = b.w")
        s.db.planner_options["enable_hash_join"] = True

    def test_index_probe_respects_statement_ambiguity(self, s):
        # both tables have an indexed "id"; an unqualified probe must not
        # empty the scan and mask the ambiguity error (which would make the
        # error value-dependent: raised for matches, silent [] for misses)
        s.execute("CREATE TABLE t1 (id INT PRIMARY KEY)")
        s.execute("CREATE TABLE t2 (id INT PRIMARY KEY)")
        s.execute("INSERT INTO t1 VALUES (1)")
        s.execute("INSERT INTO t2 VALUES (1)")
        from repro.minidb.errors import UnknownColumnError

        for probe in (1, 999):  # hit and miss must behave identically
            with pytest.raises(UnknownColumnError):
                s.execute(f"SELECT * FROM t1, t2 WHERE id = {probe}")

    def test_duplicate_alias_in_derived_table_not_hashed(self, s):
        # a derived table exposing the same output name twice must raise
        # the ambiguity error, not silently hash-join on one of the columns
        s.execute("CREATE TABLE t (x INT, y INT)")
        s.execute("CREATE TABLE u (k INT)")
        s.execute("INSERT INTO t VALUES (1, 2)")
        s.execute("INSERT INTO u VALUES (1), (2)")
        from repro.minidb.errors import UnknownColumnError

        for enabled in (True, False):
            s.db.planner_options["enable_hash_join"] = enabled
            with pytest.raises(UnknownColumnError):
                s.execute(
                    "SELECT u.k FROM (SELECT x AS w, y AS w FROM t) d "
                    "JOIN u ON w = u.k"
                )
        s.db.planner_options["enable_hash_join"] = True

    def test_prefilter_type_error_deferred_to_where(self, s):
        # seed semantics: WHERE is only evaluated on joined rows, so a
        # type-mismatched comparison over an empty product returns [] ...
        s.execute("CREATE TABLE lone (v INT)")
        s.execute("CREATE TABLE empty_t (w INT)")
        s.execute("INSERT INTO lone VALUES (1)")
        rows = both_strategies(
            s, "SELECT * FROM lone, empty_t WHERE lone.v < 'zzz'"
        )
        assert rows == []
        # ... and still raises once rows actually reach the WHERE filter
        s.execute("INSERT INTO empty_t VALUES (2)")
        from repro.minidb.errors import ExecutionError

        with pytest.raises(ExecutionError):
            s.execute("SELECT * FROM lone, empty_t WHERE lone.v < 'zzz'")

    def test_explain_shows_pushdown_filter(self, s):
        result = s.execute(
            "EXPLAIN SELECT * FROM emp e JOIN dept d ON e.dept_id = d.id "
            "WHERE e.salary > 75"
        )
        plans = "\n".join(r[0] for r in result.rows)
        assert "filter: (e.salary > 75)" in plans


class TestJoinPlanning:
    def test_plan_join_extracts_on_keys(self):
        stmt = parse("SELECT * FROM a JOIN b ON a.x = b.y AND a.z > b.w")
        join = stmt.joins[0]
        plan = plan_join(
            join.kind, join.condition, stmt.where,
            [("a", ["x", "z"])], "b", ["y", "w"],
        )
        assert plan.strategy == "hash"
        assert [(k.left_binding, k.left_column, k.right_column) for k in plan.keys] == [
            ("a", "x", "y")
        ]
        assert plan.residual is not None

    def test_plan_join_where_keys_added(self):
        stmt = parse("SELECT * FROM a JOIN b ON a.x = b.y WHERE a.z = b.w")
        join = stmt.joins[0]
        plan = plan_join(
            join.kind, join.condition, stmt.where,
            [("a", ["x", "z"])], "b", ["y", "w"],
        )
        assert len(plan.keys) == 2

    def test_plan_join_disallow_hash(self):
        stmt = parse("SELECT * FROM a JOIN b ON a.x = b.y")
        join = stmt.joins[0]
        plan = plan_join(
            join.kind, join.condition, stmt.where,
            [("a", ["x"])], "b", ["y"], allow_hash=False,
        )
        assert plan.strategy == "nested-loop"

    def test_plan_select_joins_spans_implicit_and_explicit(self):
        stmt = parse(
            "SELECT * FROM a, b JOIN c ON c.k = a.x WHERE a.x = b.y"
        )
        plans = plan_select_joins(
            stmt, {"a": ["x"], "b": ["y"], "c": ["k"]}
        )
        assert [p.strategy for p in plans] == ["hash", "hash"]

    def test_explain_reports_hash_join(self, s):
        result = s.execute(
            "EXPLAIN SELECT * FROM emp e JOIN dept d ON e.dept_id = d.id"
        )
        plans = "\n".join(r[0] for r in result.rows)
        assert "Hash Join (INNER) on d (keys: e.dept_id = d.id)" in plans

    def test_explain_reports_nested_loop(self, s):
        result = s.execute(
            "EXPLAIN SELECT * FROM emp e JOIN dept d ON e.dept_id < d.id"
        )
        plans = "\n".join(r[0] for r in result.rows)
        assert "Nested Loop Join (INNER) on d" in plans

    def test_explain_respects_disabled_hash_join(self, s):
        s.db.planner_options["enable_hash_join"] = False
        try:
            result = s.execute(
                "EXPLAIN SELECT * FROM emp e JOIN dept d ON e.dept_id = d.id"
            )
            plans = "\n".join(r[0] for r in result.rows)
            assert "Nested Loop Join" in plans
            assert "Hash Join" not in plans
        finally:
            s.db.planner_options["enable_hash_join"] = True

    def test_explain_reports_cross_join(self, s):
        result = s.execute("EXPLAIN SELECT * FROM emp, dept")
        plans = "\n".join(r[0] for r in result.rows)
        assert "Cross Join on dept" in plans


class TestScanAliasing:
    def test_seq_scan_returns_copies(self, s):
        from repro.minidb import ast_nodes as ast

        source = s.db.executor._resolve_source(ast.TableRef("emp"), s, None, None)
        heap = s.db.heap("emp")
        heap.add_column("extra", 1)  # in-place row mutation (schema change)
        try:
            assert all("extra" not in row for row in source.rows)
        finally:
            heap.drop_column("extra")

    def test_index_scan_returns_copies(self, s):
        stmt = parse("SELECT * FROM emp WHERE id = 1").where
        source = s.db.executor._resolve_source(
            __import__("repro.minidb.ast_nodes", fromlist=["TableRef"]).TableRef("emp"),
            s, None, stmt,
        )
        source.rows[0]["name"] = "mutated"
        assert s.db.heap("emp").get(1)["name"] == "ann"
