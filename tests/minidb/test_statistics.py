"""ANALYZE and the statistics subsystem: parsing, collection math,
payload round trips, and the executor lifecycle.

The planner-facing half (cost-based path choice, EXPLAIN estimates,
staleness) lives in ``test_range_scans.py::TestCostBasedPlanning``;
durability (snapshots, WAL replay, torn tails) in
``test_btree_persistence.py``.
"""

import pytest

from repro.minidb import Database, UnknownTableError, parse
from repro.minidb.ast_nodes import AnalyzeStatement
from repro.minidb.sqlgen import analyze_to_sql
from repro.minidb.statistics import (
    ColumnStats,
    TableStatistics,
    build_table_statistics,
)


@pytest.fixture
def s():
    db = Database(owner="a")
    session = db.connect("a")
    session.execute("CREATE TABLE t (id INT PRIMARY KEY, grp INT, name TEXT)")
    for i in range(70):
        db.heap("t").insert(
            {"id": i, "grp": i % 7, "name": None if i % 5 == 0 else f"n{i}"}
        )
    return session


class TestParserAndSqlgen:
    def test_parse_bare_analyze(self):
        assert parse("ANALYZE") == AnalyzeStatement(table=None)

    def test_parse_analyze_table(self):
        assert parse("ANALYZE events") == AnalyzeStatement(table="events")

    @pytest.mark.parametrize(
        "stmt",
        [AnalyzeStatement(table=None), AnalyzeStatement(table="events")],
    )
    def test_sqlgen_round_trip(self, stmt):
        assert parse(analyze_to_sql(stmt)) == stmt


class TestColumnStats:
    def test_empty_column(self):
        stats = ColumnStats.from_values([])
        assert (stats.ndv, stats.null_frac) == (0, 0.0)
        assert stats.eq_fraction(1) == 0.0
        assert stats.range_fraction(0, 10) == 0.0

    def test_all_null_column(self):
        stats = ColumnStats.from_values([None, None, None])
        assert (stats.ndv, stats.null_frac) == (0, 1.0)
        assert stats.eq_fraction(1) == 0.0

    def test_uniform_distribution(self):
        stats = ColumnStats.from_values(list(range(1000)))
        assert stats.ndv == 1000
        assert stats.eq_fraction(500) == pytest.approx(1 / 1000)
        assert stats.range_fraction(250, 750) == pytest.approx(0.5, abs=0.05)
        assert stats.range_fraction() == pytest.approx(1.0)

    def test_heavy_hitter_is_seen_not_averaged(self):
        # one value fills 90% of the rows: a uniform 1/ndv guess would say
        # ~1%, the boundary-multiplicity estimate must say ~90%
        values = [7] * 900 + list(range(100, 200))
        stats = ColumnStats.from_values(values)
        assert stats.eq_fraction(7) == pytest.approx(0.9, abs=0.05)
        assert stats.eq_fraction(150) == pytest.approx(1 / stats.ndv)

    def test_null_fraction_scales_estimates(self):
        stats = ColumnStats.from_values([1, 2, 3, 4, None, None, None, None])
        assert stats.null_frac == pytest.approx(0.5)
        assert stats.eq_fraction(2) == pytest.approx(0.5 / 4)
        assert stats.range_fraction() == pytest.approx(0.5)

    def test_eq_fraction_of_null_is_zero(self):
        stats = ColumnStats.from_values([1, 2, None])
        assert stats.eq_fraction(None) == 0.0

    def test_range_fraction_clamps_outside_domain(self):
        stats = ColumnStats.from_values(list(range(100)))
        assert stats.range_fraction(low=1000) == 0.0
        assert stats.range_fraction(high=-5) == 0.0
        assert stats.range_fraction(low=-50, high=500) == pytest.approx(1.0)

    def test_payload_round_trip(self):
        stats = ColumnStats.from_values([5, 1, None, 5, "x", 2])
        clone = ColumnStats.from_payload(stats.to_payload())
        assert clone == stats


class TestBuildTableStatistics:
    def test_scan_stamps_heap_identity(self, s):
        heap = s.db.heap("t")
        schema = s.db.catalog.tables["t"]
        stats = build_table_statistics(schema, heap)
        assert stats.table == "t"
        assert stats.row_count == 70
        assert (stats.uid, stats.version) == (heap.uid, heap.version)
        assert stats.column("id").ndv == 70
        assert stats.column("grp").ndv == 7
        assert stats.column("name").null_frac == pytest.approx(14 / 70)
        assert stats.column("missing") is None

    def test_table_payload_round_trip(self, s):
        stats = build_table_statistics(
            s.db.catalog.tables["t"], s.db.heap("t")
        )
        clone = TableStatistics.from_payload(stats.to_payload())
        assert clone == stats


class TestAnalyzeExecution:
    def test_analyze_one_table(self, s):
        result = s.execute("ANALYZE t")
        assert result.status == "ANALYZE 1"
        stats = s.db.catalog.statistics["t"]
        assert stats.row_count == 70

    def test_bare_analyze_covers_all_tables(self, s):
        s.execute("CREATE TABLE other (x INT)")
        assert s.execute("ANALYZE").status == "ANALYZE 2"
        assert set(s.db.catalog.statistics) == {"t", "other"}

    def test_unknown_table_raises(self, s):
        with pytest.raises(UnknownTableError):
            s.execute("ANALYZE nope")

    def test_statistics_keyed_case_insensitively(self, s):
        s.execute("ANALYZE T")
        assert "t" in s.db.catalog.statistics

    def test_reanalyze_refreshes_the_snapshot(self, s):
        s.execute("ANALYZE t")
        before = s.db.catalog.statistics["t"]
        s.execute("INSERT INTO t VALUES (100, 100, 'new')")
        s.execute("ANALYZE t")
        after = s.db.catalog.statistics["t"]
        assert after.row_count == before.row_count + 1
        assert after.version > before.version

    def test_rollback_restores_previous_statistics(self, s):
        s.execute("ANALYZE t")
        before = s.db.catalog.statistics["t"]
        s.execute("INSERT INTO t VALUES (100, 100, 'new')")
        s.execute("BEGIN")
        s.execute("ANALYZE t")
        assert s.db.catalog.statistics["t"].row_count == 71
        s.execute("ROLLBACK")
        assert s.db.catalog.statistics["t"] is before

    def test_rollback_removes_first_time_statistics(self, s):
        s.execute("BEGIN")
        s.execute("ANALYZE t")
        s.execute("ROLLBACK")
        assert "t" not in s.db.catalog.statistics

    def test_drop_table_leaves_stats_ignored_via_uid(self, s):
        # statistics for a dropped-and-recreated table must never apply:
        # the heap uid changes, which the planner checks before costing
        s.execute("ANALYZE t")
        stale = s.db.catalog.statistics["t"]
        s.execute("DROP TABLE t")
        s.execute("CREATE TABLE t (id INT PRIMARY KEY, grp INT, name TEXT)")
        assert stale.uid != s.db.heap("t").uid
