"""Unit tests for the type system and builtin SQL functions."""

import pytest

from repro.minidb import Database
from repro.minidb.errors import ExecutionError, TypeMismatchError
from repro.minidb.functions import (
    AvgAggregate,
    CountAggregate,
    GroupConcatAggregate,
    MaxAggregate,
    MinAggregate,
    StddevAggregate,
    SumAggregate,
    make_aggregate,
)
from repro.minidb.types import BOOLEAN, ColumnType, INTEGER, TEXT, canonical_type, coerce


class TestTypeCanonicalization:
    @pytest.mark.parametrize(
        "declared,expected",
        [
            ("INT", "INTEGER"),
            ("int", "INTEGER"),
            ("BIGINT", "INTEGER"),
            ("REAL", "FLOAT"),
            ("double", "FLOAT"),
            ("NUMERIC", "FLOAT"),
            ("VARCHAR", "TEXT"),
            ("varchar(40)", "TEXT"),
            ("CHAR(1)", "TEXT"),
            ("BOOL", "BOOLEAN"),
            ("TIMESTAMP", "DATE"),
        ],
    )
    def test_aliases(self, declared, expected):
        assert canonical_type(declared) == expected

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeMismatchError):
            canonical_type("BLOB")

    def test_column_type_parse_length(self):
        ctype = ColumnType.parse("VARCHAR(12)")
        assert ctype.name == TEXT
        assert ctype.length == 12
        assert str(ctype) == "TEXT(12)"

    def test_length_ignored_for_non_text(self):
        assert ColumnType.parse("NUMERIC(10)").length is None


class TestCoercion:
    def test_int_passthrough(self):
        assert coerce(5, INTEGER) == 5

    def test_string_to_int(self):
        assert coerce(" 42 ", INTEGER) == 42

    def test_float_to_int_when_integral(self):
        assert coerce(3.0, INTEGER) == 3

    def test_fractional_float_to_int_rejected(self):
        with pytest.raises(TypeMismatchError):
            coerce(3.5, INTEGER)

    def test_int_to_float_widens(self):
        assert coerce(2, "FLOAT") == 2.0

    def test_bool_coercions(self):
        assert coerce("true", BOOLEAN) is True
        assert coerce("f", BOOLEAN) is False
        assert coerce(1, BOOLEAN) is True

    def test_bad_bool_rejected(self):
        with pytest.raises(TypeMismatchError):
            coerce("maybe", BOOLEAN)

    def test_none_passthrough(self):
        assert coerce(None, INTEGER) is None

    def test_number_to_text(self):
        assert coerce(7, TEXT) == "7"

    def test_varchar_length_enforced(self):
        with pytest.raises(TypeMismatchError, match="too long"):
            coerce("abcdef", ColumnType(TEXT, 3), "c")

    def test_date_format_checked(self):
        assert coerce("2025-01-31", "DATE") == "2025-01-31"
        with pytest.raises(TypeMismatchError):
            coerce("31/01/2025", "DATE")


@pytest.fixture
def s():
    return Database(owner="a").connect("a")


class TestScalarFunctions:
    @pytest.mark.parametrize(
        "sql,expected",
        [
            ("SELECT UPPER('abc')", "ABC"),
            ("SELECT LOWER('ABC')", "abc"),
            ("SELECT LENGTH('hello')", 5),
            ("SELECT TRIM('  x  ')", "x"),
            ("SELECT ABS(-4)", 4),
            ("SELECT CEIL(1.2)", 2),
            ("SELECT FLOOR(1.8)", 1),
            ("SELECT SQRT(9)", 3.0),
            ("SELECT POWER(2, 10)", 1024.0),
            ("SELECT MOD(7, 3)", 1),
            ("SELECT SIGN(-9)", -1),
            ("SELECT ROUND(2.567, 2)", 2.57),
            ("SELECT ROUND(2.5)", 2),
            ("SELECT SUBSTR('hello', 2, 3)", "ell"),
            ("SELECT SUBSTR('hello', 2)", "ello"),
            ("SELECT REPLACE('aXbX', 'X', '-')", "a-b-"),
            ("SELECT INSTR('hello', 'll')", 3),
            ("SELECT REVERSE('abc')", "cba"),
            ("SELECT COALESCE(NULL, NULL, 5)", 5),
            ("SELECT IFNULL(NULL, 'd')", "d"),
            ("SELECT NULLIF(3, 3)", None),
            ("SELECT NULLIF(3, 4)", 3),
            ("SELECT CONCAT('a', NULL, 'b')", "ab"),
            ("SELECT DATE_PART('year', '2024-05-06')", 2024),
            ("SELECT DATE_PART('month', '2024-05-06')", 5),
        ],
    )
    def test_function_values(self, s, sql, expected):
        assert s.scalar(sql) == expected

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT UPPER(NULL)",
            "SELECT LENGTH(NULL)",
            "SELECT ABS(NULL)",
            "SELECT ROUND(NULL)",
        ],
    )
    def test_null_propagation(self, s, sql):
        assert s.scalar(sql) is None

    def test_sqrt_negative_rejected(self, s):
        with pytest.raises(ExecutionError):
            s.execute("SELECT SQRT(-1)")

    def test_unknown_function(self, s):
        with pytest.raises(ExecutionError, match="unknown function"):
            s.execute("SELECT FROBNICATE(1)")

    def test_division_by_zero(self, s):
        with pytest.raises(ExecutionError):
            s.execute("SELECT 1 / 0")

    def test_integer_division_truncates(self, s):
        assert s.scalar("SELECT 7 / 2") == 3
        assert s.scalar("SELECT 7.0 / 2") == 3.5

    def test_concat_operator(self, s):
        assert s.scalar("SELECT 'a' || 'b' || 'c'") == "abc"

    def test_cast(self, s):
        assert s.scalar("SELECT CAST('42' AS INT)") == 42
        assert s.scalar("SELECT CAST(3 AS TEXT)") == "3"


class TestAggregateAccumulators:
    def test_count_skips_nulls(self):
        acc = CountAggregate()
        for value in (1, None, 2):
            acc.add(value)
        assert acc.result() == 2

    def test_count_distinct(self):
        acc = CountAggregate(distinct=True)
        for value in (1, 1, 2, None):
            acc.add(value)
        assert acc.result() == 2

    def test_sum_empty_is_null(self):
        assert SumAggregate().result() is None

    def test_sum_distinct(self):
        acc = SumAggregate(distinct=True)
        for value in (2, 2, 3):
            acc.add(value)
        assert acc.result() == 5

    def test_avg(self):
        acc = AvgAggregate()
        for value in (2, 4, None):
            acc.add(value)
        assert acc.result() == 3.0

    def test_min_max(self):
        low, high = MinAggregate(), MaxAggregate()
        for value in (5, 1, 9, None):
            low.add(value)
            high.add(value)
        assert low.result() == 1
        assert high.result() == 9

    def test_stddev_needs_two_values(self):
        acc = StddevAggregate()
        acc.add(5.0)
        assert acc.result() is None

    def test_variance(self):
        acc = StddevAggregate(variance=True)
        for value in (1.0, 3.0):
            acc.add(value)
        assert acc.result() == pytest.approx(2.0)

    def test_group_concat(self):
        acc = GroupConcatAggregate()
        for value in ("a", None, "b"):
            acc.add(value)
        assert acc.result() == "a,b"

    def test_sum_rejects_text(self):
        acc = SumAggregate()
        with pytest.raises(ExecutionError):
            acc.add("x")

    def test_factory(self):
        for name in ("COUNT", "SUM", "AVG", "MIN", "MAX", "STDDEV", "VARIANCE",
                     "GROUP_CONCAT"):
            assert make_aggregate(name, False) is not None
        with pytest.raises(ExecutionError):
            make_aggregate("MEDIAN", False)
