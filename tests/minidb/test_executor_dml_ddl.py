"""Integration tests for DML, DDL, and constraint enforcement."""

import pytest

from repro.minidb import Database
from repro.minidb.errors import (
    CheckViolation,
    DuplicateObjectError,
    ExecutionError,
    ForeignKeyViolation,
    NotNullViolation,
    TypeMismatchError,
    UniqueViolation,
    UnknownColumnError,
    UnknownTableError,
)


@pytest.fixture
def db():
    return Database(owner="admin")


@pytest.fixture
def s(db):
    return db.connect("admin")


@pytest.fixture
def store(s):
    s.execute(
        "CREATE TABLE items (id INT PRIMARY KEY, sku TEXT UNIQUE, "
        "price FLOAT NOT NULL CHECK (price >= 0), qty INT DEFAULT 0)"
    )
    s.execute(
        "CREATE TABLE orders (id INT PRIMARY KEY, item_id INT NOT NULL, "
        "n INT CHECK (n > 0), FOREIGN KEY (item_id) REFERENCES items(id))"
    )
    s.execute("INSERT INTO items VALUES (1, 'A-1', 9.5, 3), (2, 'A-2', 5.0, 0)")
    return s


class TestInsert:
    def test_basic_insert(self, store):
        result = store.execute("INSERT INTO items VALUES (3, 'A-3', 1.0, 1)")
        assert result.rowcount == 1
        assert store.scalar("SELECT COUNT(*) FROM items") == 3

    def test_multi_row_insert(self, store):
        result = store.execute(
            "INSERT INTO items VALUES (3, 'A-3', 1.0, 1), (4, 'A-4', 2.0, 2)"
        )
        assert result.rowcount == 2

    def test_insert_with_column_list(self, store):
        store.execute("INSERT INTO items (id, price) VALUES (3, 2.5)")
        row = store.query("SELECT * FROM items WHERE id = 3")[0]
        assert row["sku"] is None
        assert row["qty"] == 0  # default applied

    def test_insert_select(self, store):
        store.execute("CREATE TABLE archive (id INT, price FLOAT)")
        store.execute("INSERT INTO archive SELECT id, price FROM items")
        assert store.scalar("SELECT COUNT(*) FROM archive") == 2

    def test_value_count_mismatch(self, store):
        with pytest.raises(ExecutionError, match="values"):
            store.execute("INSERT INTO items (id, price) VALUES (3)")

    def test_unknown_target_column(self, store):
        with pytest.raises(UnknownColumnError):
            store.execute("INSERT INTO items (id, nope) VALUES (3, 1)")

    def test_type_coercion_string_to_int(self, store):
        store.execute("INSERT INTO items VALUES ('7', 'A-7', '2.5', 1)")
        assert store.scalar("SELECT price FROM items WHERE id = 7") == 2.5

    def test_type_mismatch_rejected(self, store):
        with pytest.raises(TypeMismatchError):
            store.execute("INSERT INTO items VALUES ('x', 'A-9', 1.0, 1)")

    def test_multi_row_insert_is_atomic(self, store):
        # second row violates the PK; first row must not survive
        with pytest.raises(UniqueViolation):
            store.execute("INSERT INTO items VALUES (9, 'A-9', 1.0, 1), (1, 'dup', 1.0, 1)")
        assert store.scalar("SELECT COUNT(*) FROM items WHERE id = 9") == 0


class TestConstraints:
    def test_primary_key_duplicate(self, store):
        with pytest.raises(UniqueViolation):
            store.execute("INSERT INTO items VALUES (1, 'B-1', 2.0, 1)")

    def test_unique_constraint(self, store):
        with pytest.raises(UniqueViolation):
            store.execute("INSERT INTO items VALUES (3, 'A-1', 2.0, 1)")

    def test_unique_allows_multiple_nulls(self, store):
        store.execute("INSERT INTO items (id, price) VALUES (3, 1.0), (4, 1.0)")
        assert store.scalar("SELECT COUNT(*) FROM items") == 4

    def test_not_null_violation(self, store):
        with pytest.raises(NotNullViolation):
            store.execute("INSERT INTO items (id) VALUES (3)")

    def test_primary_key_implies_not_null(self, store):
        with pytest.raises(NotNullViolation):
            store.execute("INSERT INTO items (sku, price) VALUES ('A-3', 1.0)")

    def test_check_violation(self, store):
        with pytest.raises(CheckViolation):
            store.execute("INSERT INTO items VALUES (3, 'A-3', -1.0, 1)")

    def test_check_with_null_passes(self, store):
        store.execute("INSERT INTO orders (id, item_id) VALUES (1, 1)")  # n NULL
        assert store.scalar("SELECT COUNT(*) FROM orders") == 1

    def test_fk_violation_on_insert(self, store):
        with pytest.raises(ForeignKeyViolation):
            store.execute("INSERT INTO orders VALUES (1, 99, 1)")

    def test_fk_satisfied(self, store):
        store.execute("INSERT INTO orders VALUES (1, 2, 5)")
        assert store.scalar("SELECT COUNT(*) FROM orders") == 1

    def test_fk_null_passes(self, store):
        store.execute("CREATE TABLE notes (id INT PRIMARY KEY, item_id INT REFERENCES items(id))")
        store.execute("INSERT INTO notes VALUES (1, NULL)")
        assert store.scalar("SELECT COUNT(*) FROM notes") == 1

    def test_delete_referenced_row_blocked(self, store):
        store.execute("INSERT INTO orders VALUES (1, 1, 2)")
        with pytest.raises(ForeignKeyViolation):
            store.execute("DELETE FROM items WHERE id = 1")

    def test_delete_unreferenced_row_ok(self, store):
        store.execute("INSERT INTO orders VALUES (1, 1, 2)")
        store.execute("DELETE FROM items WHERE id = 2")
        assert store.scalar("SELECT COUNT(*) FROM items") == 1

    def test_update_referenced_key_blocked(self, store):
        store.execute("INSERT INTO orders VALUES (1, 1, 2)")
        with pytest.raises(ForeignKeyViolation):
            store.execute("UPDATE items SET id = 50 WHERE id = 1")

    def test_update_to_violate_fk_blocked(self, store):
        store.execute("INSERT INTO orders VALUES (1, 1, 2)")
        with pytest.raises(ForeignKeyViolation):
            store.execute("UPDATE orders SET item_id = 77 WHERE id = 1")


class TestUpdateDelete:
    def test_update_rowcount(self, store):
        result = store.execute("UPDATE items SET qty = qty + 1")
        assert result.rowcount == 2

    def test_update_with_where(self, store):
        store.execute("UPDATE items SET price = 99.0 WHERE sku = 'A-1'")
        assert store.scalar("SELECT price FROM items WHERE id = 1") == 99.0

    def test_update_expression_uses_old_values(self, store):
        store.execute("UPDATE items SET price = price * 2, qty = qty + 1 WHERE id = 1")
        row = store.query("SELECT price, qty FROM items WHERE id = 1")[0]
        assert (row["price"], row["qty"]) == (19.0, 4)

    def test_update_check_violation_atomic(self, store):
        with pytest.raises(CheckViolation):
            store.execute("UPDATE items SET price = price - 20")
        # nothing changed (statement-level atomicity)
        assert store.scalar("SELECT MIN(price) FROM items") == 5.0

    def test_delete_with_where(self, store):
        result = store.execute("DELETE FROM items WHERE qty = 0")
        assert result.rowcount == 1

    def test_delete_all(self, store):
        assert store.execute("DELETE FROM items").rowcount == 2

    def test_update_unknown_column(self, store):
        with pytest.raises(UnknownColumnError):
            store.execute("UPDATE items SET ghost = 1")

    def test_update_pk_uniqueness_enforced(self, store):
        with pytest.raises(UniqueViolation):
            store.execute("UPDATE items SET id = 1 WHERE id = 2")


class TestDDL:
    def test_create_and_drop_table(self, s):
        s.execute("CREATE TABLE t (a INT)")
        s.execute("DROP TABLE t")
        with pytest.raises(UnknownTableError):
            s.execute("SELECT * FROM t")

    def test_create_duplicate_rejected(self, s):
        s.execute("CREATE TABLE t (a INT)")
        with pytest.raises(DuplicateObjectError):
            s.execute("CREATE TABLE t (a INT)")

    def test_if_not_exists(self, s):
        s.execute("CREATE TABLE t (a INT)")
        s.execute("CREATE TABLE IF NOT EXISTS t (a INT)")  # no error

    def test_drop_if_exists(self, s):
        s.execute("DROP TABLE IF EXISTS ghost")  # no error

    def test_drop_missing_table_raises(self, s):
        with pytest.raises(UnknownTableError):
            s.execute("DROP TABLE ghost")

    def test_drop_referenced_table_requires_cascade(self, store):
        with pytest.raises(ForeignKeyViolation, match="CASCADE"):
            store.execute("DROP TABLE items")

    def test_drop_cascade_removes_referencing(self, store):
        store.execute("DROP TABLE items CASCADE")
        with pytest.raises(UnknownTableError):
            store.execute("SELECT * FROM orders")

    def test_alter_add_column(self, store):
        store.execute("ALTER TABLE items ADD COLUMN note TEXT DEFAULT 'n/a'")
        assert store.scalar("SELECT note FROM items WHERE id = 1") == "n/a"

    def test_alter_add_not_null_without_default_on_nonempty(self, store):
        with pytest.raises(NotNullViolation):
            store.execute("ALTER TABLE items ADD COLUMN req TEXT NOT NULL")

    def test_alter_drop_column(self, store):
        store.execute("ALTER TABLE items DROP COLUMN qty")
        with pytest.raises(UnknownColumnError):
            store.execute("SELECT qty FROM items")

    def test_alter_drop_pk_column_rejected(self, store):
        with pytest.raises(ExecutionError):
            store.execute("ALTER TABLE items DROP COLUMN id")

    def test_alter_rename_column(self, store):
        store.execute("ALTER TABLE items RENAME COLUMN qty TO quantity")
        assert store.scalar("SELECT quantity FROM items WHERE id = 1") == 3

    def test_alter_rename_table(self, store):
        store.execute("ALTER TABLE items RENAME TO products")
        assert store.scalar("SELECT COUNT(*) FROM products") == 2

    def test_create_index_and_unique_enforcement(self, store):
        store.execute("CREATE UNIQUE INDEX ix_price ON items (price)")
        with pytest.raises(UniqueViolation):
            store.execute("INSERT INTO items VALUES (3, 'A-3', 9.5, 1)")

    def test_create_index_on_duplicate_data_fails(self, store):
        store.execute("INSERT INTO items VALUES (3, 'A-3', 9.5, 1)")
        with pytest.raises(UniqueViolation):
            store.execute("CREATE UNIQUE INDEX ix_price ON items (price)")
        # catalog must not keep a half-created index
        assert "ix_price" not in store.db.catalog.indexes

    def test_drop_index(self, store):
        store.execute("CREATE INDEX ix ON items (sku)")
        store.execute("DROP INDEX ix")
        store.execute("DROP INDEX IF EXISTS ix")

    def test_create_view_and_drop(self, store):
        store.execute("CREATE VIEW cheap AS SELECT * FROM items WHERE price < 6")
        assert store.scalar("SELECT COUNT(*) FROM cheap") == 1
        store.execute("DROP VIEW cheap")
        with pytest.raises(UnknownTableError):
            store.execute("SELECT * FROM cheap")

    def test_create_or_replace_view(self, store):
        store.execute("CREATE VIEW v AS SELECT id FROM items")
        store.execute("CREATE OR REPLACE VIEW v AS SELECT sku FROM items")
        assert store.execute("SELECT * FROM v").columns == ["sku"]

    def test_view_name_collision_with_table(self, store):
        with pytest.raises(DuplicateObjectError):
            store.execute("CREATE VIEW items AS SELECT 1")


class TestSnapshotHelpers:
    def test_snapshot(self, store):
        snap = store.db.snapshot()
        assert set(snap) == {"items", "orders"}
        assert len(snap["items"]) == 2

    def test_row_count_helper(self, store):
        assert store.db.table_row_count("items") == 2
