"""Tests for view-based access control and view semantics."""

import pytest

from repro.minidb import Database, PermissionDenied


@pytest.fixture
def db():
    database = Database(owner="admin")
    admin = database.connect("admin")
    admin.execute(
        "CREATE TABLE employees (id INT PRIMARY KEY, name TEXT, salary FLOAT, "
        "dept TEXT)"
    )
    admin.execute(
        "INSERT INTO employees VALUES (1, 'alice', 9000.0, 'eng'), "
        "(2, 'bob', 7000.0, 'eng'), (3, 'carol', 8000.0, 'sales')"
    )
    # a view exposing only non-sensitive columns
    admin.execute("CREATE VIEW directory AS SELECT id, name, dept FROM employees")
    database.create_user("staff")
    admin.execute("GRANT SELECT ON directory TO staff")
    return database


class TestViewBasedAccessControl:
    def test_view_grant_without_table_grant(self, db):
        """PostgreSQL-style definer views: SELECT on the view suffices."""
        staff = db.connect("staff")
        rows = staff.execute("SELECT name FROM directory ORDER BY id").rows
        assert rows == [("alice",), ("bob",), ("carol",)]

    def test_underlying_table_still_denied(self, db):
        staff = db.connect("staff")
        with pytest.raises(PermissionDenied):
            staff.execute("SELECT * FROM employees")

    def test_view_hides_sensitive_column(self, db):
        staff = db.connect("staff")
        result = staff.execute("SELECT * FROM directory")
        assert "salary" not in result.columns

    def test_salary_not_reachable_through_view(self, db):
        staff = db.connect("staff")
        with pytest.raises(Exception):
            staff.execute("SELECT salary FROM directory")


class TestViewSemantics:
    def test_view_with_aggregation(self, db):
        admin = db.connect("admin")
        admin.execute(
            "CREATE VIEW dept_pay AS SELECT dept, AVG(salary) AS avg_pay "
            "FROM employees GROUP BY dept"
        )
        rows = dict(admin.execute("SELECT dept, avg_pay FROM dept_pay").rows)
        assert rows["eng"] == 8000.0

    def test_view_joins_with_table(self, db):
        admin = db.connect("admin")
        rows = admin.execute(
            "SELECT d.name, e.salary FROM directory d "
            "JOIN employees e ON e.id = d.id WHERE d.dept = 'sales'"
        ).rows
        assert rows == [("carol", 8000.0)]

    def test_view_aliased(self, db):
        admin = db.connect("admin")
        rows = admin.execute("SELECT v.name FROM directory v WHERE v.id = 1").rows
        assert rows == [("alice",)]

    def test_view_filtered_and_ordered(self, db):
        admin = db.connect("admin")
        rows = admin.execute(
            "SELECT name FROM directory WHERE dept = 'eng' ORDER BY name DESC"
        ).rows
        assert rows == [("bob",), ("alice",)]

    def test_dml_against_view_rejected(self, db):
        admin = db.connect("admin")
        with pytest.raises(Exception):
            admin.execute("INSERT INTO directory VALUES (9, 'x', 'y')")

    def test_view_over_dropped_table_errors(self, db):
        admin = db.connect("admin")
        admin.execute("CREATE TABLE tmp (x INT)")
        admin.execute("CREATE VIEW vtmp AS SELECT * FROM tmp")
        admin.execute("DROP TABLE tmp")
        with pytest.raises(Exception):
            admin.execute("SELECT * FROM vtmp")

    def test_drop_view_via_drop_table_statement(self, db):
        admin = db.connect("admin")
        admin.execute("DROP TABLE directory")  # DROP TABLE works on views too
        assert not db.catalog.has_view("directory")
