"""Direct unit tests for the expression evaluator and scope resolution."""

import pytest

from repro.minidb import ast_nodes as ast
from repro.minidb.errors import ExecutionError, UnknownColumnError
from repro.minidb.expressions import Evaluator, Scope


def scope(unqualified=None, qualified=None, ambiguous=(), outer=None):
    return Scope(
        qualified or {},
        unqualified or {},
        frozenset(ambiguous),
        outer,
    )


@pytest.fixture
def ev():
    return Evaluator()


def col(name, table=None):
    return ast.ColumnRef(name, table)


def lit(value):
    return ast.Literal(value)


class TestScopeResolution:
    def test_unqualified_lookup(self, ev):
        assert ev.evaluate(col("x"), scope({"x": 5})) == 5

    def test_qualified_lookup(self, ev):
        s = scope(qualified={"t.x": 7})
        assert ev.evaluate(col("x", "t"), s) == 7

    def test_qualified_lookup_case_insensitive(self, ev):
        s = scope(qualified={"t.x": 7})
        assert ev.evaluate(col("X", "T"), s) == 7

    def test_ambiguous_raises(self, ev):
        s = scope({"x": 1}, ambiguous=("x",))
        with pytest.raises(UnknownColumnError, match="ambiguous"):
            ev.evaluate(col("x"), s)

    def test_outer_scope_fallback(self, ev):
        outer = scope({"y": 9})
        inner = scope({"x": 1}, outer=outer)
        assert ev.evaluate(col("y"), inner) == 9

    def test_inner_shadows_outer(self, ev):
        outer = scope({"x": 9})
        inner = scope({"x": 1}, outer=outer)
        assert ev.evaluate(col("x"), inner) == 1

    def test_missing_column(self, ev):
        with pytest.raises(UnknownColumnError):
            ev.evaluate(col("ghost"), scope())


class TestOperators:
    def test_short_circuit_and(self, ev):
        # right side would error, but left FALSE short-circuits
        expr = ast.BinaryOp("AND", lit(False), ast.BinaryOp("/", lit(1), lit(0)))
        assert ev.evaluate(expr, scope()) is False

    def test_short_circuit_or(self, ev):
        expr = ast.BinaryOp("OR", lit(True), ast.BinaryOp("/", lit(1), lit(0)))
        assert ev.evaluate(expr, scope()) is True

    def test_and_error_when_needed(self, ev):
        expr = ast.BinaryOp("AND", lit(True), ast.BinaryOp("/", lit(1), lit(0)))
        with pytest.raises(ExecutionError):
            ev.evaluate(expr, scope())

    def test_numeric_truthiness(self, ev):
        expr = ast.BinaryOp("AND", lit(1), lit(2))
        assert ev.evaluate(expr, scope()) is True

    def test_string_not_boolean(self, ev):
        expr = ast.UnaryOp("NOT", lit("x"))
        with pytest.raises(ExecutionError):
            ev.evaluate(expr, scope())

    def test_unary_minus_requires_number(self, ev):
        with pytest.raises(ExecutionError):
            ev.evaluate(ast.UnaryOp("-", lit("a")), scope())

    def test_concat_coerces(self, ev):
        expr = ast.BinaryOp("||", lit(1), lit("x"))
        assert ev.evaluate(expr, scope()) == "1x"

    def test_modulo(self, ev):
        assert ev.evaluate(ast.BinaryOp("%", lit(7), lit(3)), scope()) == 1


class TestPredicateHelpers:
    def test_evaluate_predicate_null_is_false(self, ev):
        assert ev.evaluate_predicate(lit(None), scope()) is False

    def test_evaluate_predicate_true(self, ev):
        assert ev.evaluate_predicate(ast.BinaryOp("<", lit(1), lit(2)), scope())

    def test_between_inclusive(self, ev):
        expr = ast.BetweenExpr(lit(5), lit(5), lit(10))
        assert ev.evaluate(expr, scope()) is True

    def test_like_special_chars_escaped(self, ev):
        # regex metacharacters in the pattern are literal
        expr = ast.LikeExpr(lit("a.b"), lit("a.b"))
        assert ev.evaluate(expr, scope()) is True
        expr2 = ast.LikeExpr(lit("axb"), lit("a.b"))
        assert ev.evaluate(expr2, scope()) is False

    def test_like_percent_matches_empty(self, ev):
        assert ev.evaluate(ast.LikeExpr(lit("ab"), lit("ab%")), scope()) is True

    def test_case_without_match_or_default(self, ev):
        expr = ast.CaseExpr(lit(5), [(lit(1), lit("one"))], None)
        assert ev.evaluate(expr, scope()) is None

    def test_searched_case_null_condition_skipped(self, ev):
        expr = ast.CaseExpr(None, [(lit(None), lit("a"))], lit("b"))
        assert ev.evaluate(expr, scope()) == "b"

    def test_in_empty_candidates(self, ev):
        expr = ast.InExpr(lit(1), [])
        assert ev.evaluate(expr, scope()) is False

    def test_subquery_without_runner_rejected(self, ev):
        sub = ast.SelectStatement(items=[ast.SelectItem(lit(1))])
        with pytest.raises(ExecutionError):
            ev.evaluate(ast.ScalarSubquery(sub), scope())

    def test_aggregate_outside_grouping_rejected(self, ev):
        expr = ast.FunctionCall("COUNT", [ast.Star()])
        with pytest.raises(ExecutionError):
            ev.evaluate(expr, scope())

    def test_cast_in_evaluator(self, ev):
        expr = ast.CastExpr(lit("12"), "INT")
        assert ev.evaluate(expr, scope()) == 12
