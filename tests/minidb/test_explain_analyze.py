"""EXPLAIN ANALYZE: plan shape matches plain EXPLAIN, actual rows match
the statement's real cardinality, and the probe never leaks events."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.minidb import Database


@pytest.fixture
def session():
    db = Database(owner="admin")
    s = db.connect("admin")
    s.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    s.execute("CREATE TABLE u (id INT PRIMARY KEY, t_id INT)")
    s.execute("CREATE INDEX ix_t_v ON t USING BTREE (v)")
    for n in range(20):
        s.execute(f"INSERT INTO t VALUES ({n}, {n % 5})")
        s.execute(f"INSERT INTO u VALUES ({n}, {n})")
    return s


def plan_lines(session, sql):
    return [row[0] for row in session.execute(sql).rows]


def result_rows_line(lines):
    return next(int(line.split(":")[1]) for line in lines
                if line.startswith("Result rows:"))


class TestShape:
    def test_plain_explain_has_no_actuals(self, session):
        lines = plan_lines(session, "EXPLAIN SELECT v FROM t WHERE id = 1")
        assert lines == ["Index Scan using pk_t on t (key: id) (batched)"]

    def test_analyze_lines_extend_plain_plan(self, session):
        sql = "SELECT t.v FROM t JOIN u ON t.id = u.t_id WHERE u.id < 5"
        plain = plan_lines(session, "EXPLAIN " + sql)
        analyzed = plan_lines(session, "EXPLAIN ANALYZE " + sql)
        assert len(analyzed) == len(plain) + 2  # Result rows + Execution time
        for plain_line, analyzed_line in zip(plain, analyzed):
            assert analyzed_line.startswith(plain_line)
            assert "actual rows=" in analyzed_line
        assert analyzed[-2].startswith("Result rows:")
        assert analyzed[-1].startswith("Execution time:")

    def test_status_is_explain(self, session):
        result = session.execute("EXPLAIN ANALYZE SELECT v FROM t WHERE id = 1")
        assert result.status == "EXPLAIN"


class TestActualRows:
    def test_point_lookup(self, session):
        lines = plan_lines(session, "EXPLAIN ANALYZE SELECT v FROM t WHERE id = 1")
        assert "(actual rows=1," in lines[0]
        assert result_rows_line(lines) == 1

    def test_secondary_index_matches_cardinality(self, session):
        real = len(session.execute("SELECT id FROM t WHERE v = 3").rows)
        lines = plan_lines(session, "EXPLAIN ANALYZE SELECT id FROM t WHERE v = 3")
        assert f"(actual rows={real}," in lines[0]
        assert result_rows_line(lines) == real

    def test_join_rows_annotated_per_node(self, session):
        sql = "SELECT t.v FROM t JOIN u ON t.id = u.t_id WHERE u.id < 5"
        real = len(session.execute(sql).rows)
        lines = plan_lines(session, "EXPLAIN ANALYZE " + sql)
        seq_t = next(line for line in lines if line.startswith("Seq Scan on t"))
        seq_u = next(line for line in lines if line.startswith("Seq Scan on u"))
        join = next(line for line in lines if line.startswith("Hash Join"))
        assert "(actual rows=20," in seq_t  # build side scans everything
        assert "(actual rows=5," in seq_u  # filter pushed down
        assert f"(actual rows={real}," in join
        assert result_rows_line(lines) == real

    def test_ordered_scan_respects_limit(self, session):
        lines = plan_lines(
            session, "EXPLAIN ANALYZE SELECT id FROM t ORDER BY v LIMIT 4"
        )
        assert lines[0].startswith("Ordered Index Scan using ix_t_v")
        assert "(actual rows=4," in lines[0]
        assert result_rows_line(lines) == 4

    def test_system_view_scan(self, session):
        real = len(session.execute("SELECT name FROM system.metrics").rows)
        lines = plan_lines(
            session, "EXPLAIN ANALYZE SELECT name FROM system.metrics"
        )
        assert lines[0].startswith("System View Scan on system.metrics")
        assert f"(actual rows={real}," in lines[0]

    def test_no_base_tables(self, session):
        lines = plan_lines(session, "EXPLAIN ANALYZE SELECT 1 + 1")
        assert lines[0] == "Result (no base tables)"
        assert result_rows_line(lines) == 1


class TestProbeIsolation:
    def test_analyze_events_never_leak_into_outer_trace(self, session):
        db = session.db
        db.observability_options["tracing"] = True
        session.execute("EXPLAIN ANALYZE SELECT v FROM t WHERE id = 1")
        trace = db.tracer.recent()[-1]
        assert trace.sql.startswith("EXPLAIN ANALYZE")
        # the inner execution ran under a probe: its scan events belong to
        # the probe, not to the EXPLAIN statement's own trace
        assert trace.scans == []
        db.observability_options["tracing"] = False


# ----------------------------------------------------- hypothesis parity

_PARITY_DB: Database | None = None


def parity_session():
    global _PARITY_DB
    if _PARITY_DB is None:
        _PARITY_DB = Database(owner="admin")
        s = _PARITY_DB.connect("admin")
        s.execute("CREATE TABLE p (id INT PRIMARY KEY, a INT, b INT)")
        s.execute("CREATE INDEX ix_p_a ON p USING BTREE (a)")
        for n in range(30):
            s.execute(f"INSERT INTO p VALUES ({n}, {n % 7}, {(n * 3) % 11})")
    return _PARITY_DB.connect("admin")


comparisons = st.tuples(
    st.sampled_from(["id", "a", "b"]),
    st.sampled_from(["=", "<", ">", "<=", ">="]),
    st.integers(min_value=-2, max_value=32),
)


@st.composite
def select_statements(draw):
    sql = "SELECT id FROM p"
    conjuncts = draw(st.lists(comparisons, min_size=0, max_size=2))
    if conjuncts:
        sql += " WHERE " + " AND ".join(
            f"{col} {op} {value}" for col, op, value in conjuncts
        )
    if draw(st.booleans()):
        sql += f" ORDER BY {draw(st.sampled_from(['id', 'a', 'b']))}"
        if draw(st.booleans()):
            sql += f" LIMIT {draw(st.integers(min_value=0, max_value=40))}"
    return sql


@settings(max_examples=60, deadline=None)
@given(sql=select_statements())
def test_analyze_vs_execute_row_parity(sql):
    session = parity_session()
    real = len(session.execute(sql).rows)
    lines = [row[0] for row in session.execute("EXPLAIN ANALYZE " + sql).rows]
    reported = next(int(line.split(":")[1]) for line in lines
                    if line.startswith("Result rows:"))
    assert reported == real, f"{sql}: analyze reported {reported}, got {real}"
