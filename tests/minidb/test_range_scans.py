"""Range-scan planning, ordered-scan/top-N execution, DML access paths,
and compiled predicates.

Every optimized plan must be a pure scan/sort reduction: the Hypothesis
property at the bottom executes random range/equality/ORDER BY/LIMIT
statements over random data (NULLs, duplicate keys, ties included) with
the fast paths enabled and with ``planner_options`` forcing the seed
behavior — results must match byte for byte, mirroring
``tests/minidb/test_join_strategies.py``'s hash-vs-nested-loop contract.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.minidb import Database, parse
from repro.minidb.planner import (
    RangeBinding,
    choose_access_path,
    extract_equality_bindings,
    extract_range_bindings,
    extract_union_bindings,
)

BASELINE = {
    "enable_index_scan": False,
    "enable_topn": False,
    "enable_compiled_predicates": False,
}


def both_plans(session, sql):
    """Run ``sql`` with fast paths on and forced off; assert equal rows."""
    options = session.db.planner_options
    saved = {k: options[k] for k in BASELINE}
    fast = session.execute(sql).rows
    options.update(BASELINE)
    try:
        slow = session.execute(sql).rows
    finally:
        options.update(saved)
    assert fast == slow, sql
    return fast


@pytest.fixture
def s():
    db = Database(owner="a")
    session = db.connect("a")
    session.execute(
        "CREATE TABLE t (id INT PRIMARY KEY, grp INT, val INT, name TEXT)"
    )
    heap = db.heap("t")
    for i in range(200):
        heap.insert(
            {
                "id": i,
                "grp": i % 10,
                "val": (i * 37) % 100 if i % 17 else None,
                "name": f"n{i % 7}",
            }
        )
    session.execute("CREATE INDEX ix_val ON t USING BTREE (val)")
    session.execute("CREATE INDEX ix_grp_val ON t USING BTREE (grp, val)")
    return session


class TestRangeExtraction:
    def where(self, sql):
        return parse(f"SELECT * FROM t WHERE {sql}").where

    def test_all_four_operators(self):
        ranges = extract_range_bindings(
            self.where("a > 1 AND b >= 2 AND c < 3 AND d <= 4"), "t"
        )
        assert (ranges["a"].low, ranges["a"].incl_low) == (1, False)
        assert (ranges["b"].low, ranges["b"].incl_low) == (2, True)
        assert (ranges["c"].high, ranges["c"].incl_high) == (3, False)
        assert (ranges["d"].high, ranges["d"].incl_high) == (4, True)

    def test_reversed_operands_flip_direction(self):
        ranges = extract_range_bindings(self.where("5 < a AND 9 >= a"), "t")
        assert (ranges["a"].low, ranges["a"].incl_low) == (5, False)
        assert (ranges["a"].high, ranges["a"].incl_high) == (9, True)

    def test_between_binds_both_sides(self):
        ranges = extract_range_bindings(self.where("a BETWEEN 2 AND 8"), "t")
        assert (ranges["a"].low, ranges["a"].high) == (2, 8)
        assert ranges["a"].incl_low and ranges["a"].incl_high

    def test_not_between_ignored(self):
        assert extract_range_bindings(self.where("a NOT BETWEEN 2 AND 8"), "t") == {}

    def test_conjuncts_tighten(self):
        ranges = extract_range_bindings(
            self.where("a >= 2 AND a > 3 AND a < 10 AND a < 8"), "t"
        )
        assert (ranges["a"].low, ranges["a"].incl_low) == (3, False)
        assert (ranges["a"].high, ranges["a"].incl_high) == (8, False)

    def test_or_and_null_literals_ignored(self):
        assert extract_range_bindings(self.where("a > 1 OR a < 5"), "t") == {}
        assert extract_range_bindings(self.where("a > NULL"), "t") == {}

    def test_other_binding_qualifier_ignored(self):
        assert extract_range_bindings(self.where("u.a > 1"), "t") == {}


class TestRangePathChoice:
    def test_range_path_on_btree(self, s):
        heap = s.db.heap("t")
        where = parse("SELECT * FROM t WHERE val >= 10 AND val < 20").where
        path, index, key = choose_access_path(
            "t", heap, [], extract_range_bindings(where, "t")
        )
        assert path.kind == "range"
        assert index.name == "ix_val"
        assert key is None
        assert "Index Range Scan using ix_val on t" in path.describe()
        assert "val >= 10 AND val < 20" in path.describe()

    def test_equality_prefix_plus_range(self, s):
        heap = s.db.heap("t")
        stmt = parse("SELECT * FROM t WHERE grp = 3 AND val > 50")
        path, index, _ = choose_access_path(
            "t",
            heap,
            extract_equality_bindings(stmt.where, "t"),
            extract_range_bindings(stmt.where, "t"),
        )
        assert path.kind == "range"
        assert index.name == "ix_grp_val"
        assert path.prefix_values == (3,)
        assert path.range_column == "val"

    def test_full_equality_probe_beats_range(self, s):
        heap = s.db.heap("t")
        stmt = parse("SELECT * FROM t WHERE id = 7 AND val > 2")
        path, index, key = choose_access_path(
            "t",
            heap,
            extract_equality_bindings(stmt.where, "t"),
            extract_range_bindings(stmt.where, "t"),
        )
        assert path.kind == "index"
        assert index.unique

    def test_allow_index_false_forces_seq(self, s):
        heap = s.db.heap("t")
        where = parse("SELECT * FROM t WHERE val > 2").where
        path, index, _ = choose_access_path(
            "t", heap, [], extract_range_bindings(where, "t"), allow_index=False
        )
        assert path.kind == "seq"
        assert index is None

    def test_hash_indexes_never_serve_ranges(self, s):
        s.execute("CREATE TABLE h (x INT)")
        s.execute("CREATE INDEX ix_h ON h (x)")  # hash
        where = parse("SELECT * FROM h WHERE x > 2").where
        path, _, _ = choose_access_path(
            "h", s.db.heap("h"), [], extract_range_bindings(where, "h")
        )
        assert path.kind == "seq"


class TestRangeExecution:
    def test_range_scan_equivalence_and_stats(self, s):
        before = dict(s.db.planner_stats)
        rows = both_plans(s, "SELECT id FROM t WHERE val >= 10 AND val < 40")
        assert rows  # the window is populated
        assert s.db.planner_stats["range_scans"] == before["range_scans"] + 1

    def test_between_uses_range_scan(self, s):
        before = s.db.planner_stats["range_scans"]
        both_plans(s, "SELECT id FROM t WHERE val BETWEEN 20 AND 30")
        assert s.db.planner_stats["range_scans"] > before

    def test_residual_predicate_still_applied(self, s):
        rows = both_plans(
            s, "SELECT id, name FROM t WHERE val > 50 AND name = 'n3'"
        )
        assert all(name == "n3" for _, name in rows)

    def test_null_vals_never_in_bounded_range(self, s):
        rows = both_plans(s, "SELECT val FROM t WHERE val >= 0")
        assert all(val is not None for (val,) in rows)

    def test_cross_type_bound_follows_error_contract(self, s):
        # documented error-surfacing contract (planner module docstring):
        # the btree slice prunes exactly the rows whose evaluation would
        # raise, so the indexed plan returns empty where the seq-scan plan
        # raises the per-row comparison error
        from repro.minidb import ExecutionError

        assert s.execute("SELECT id FROM t WHERE val >= 'abc'").rows == []
        s.db.planner_options["enable_index_scan"] = False
        try:
            with pytest.raises(ExecutionError):
                s.execute("SELECT id FROM t WHERE val >= 'abc'")
        finally:
            s.db.planner_options["enable_index_scan"] = True

    def test_explain_shows_range_plan(self, s):
        result = s.execute("EXPLAIN SELECT * FROM t WHERE val >= 5 AND val < 9")
        assert "Index Range Scan using ix_val on t (val >= 5 AND val < 9)" in (
            result.rows[0][0]
        )

    def test_explain_respects_disabled_index_scans(self, s):
        s.db.planner_options["enable_index_scan"] = False
        try:
            result = s.execute("EXPLAIN SELECT * FROM t WHERE val > 5")
            assert "Seq Scan on t" in result.rows[0][0]
        finally:
            s.db.planner_options["enable_index_scan"] = True


class TestOrderedScan:
    def test_order_by_limit_uses_ordered_scan(self, s):
        before = s.db.planner_stats["ordered_scans"]
        rows = both_plans(s, "SELECT id, val FROM t ORDER BY val LIMIT 5")
        assert len(rows) == 5
        assert s.db.planner_stats["ordered_scans"] == before + 1

    def test_desc_and_offset(self, s):
        both_plans(s, "SELECT id, val FROM t ORDER BY val DESC LIMIT 5")
        both_plans(s, "SELECT id, val FROM t ORDER BY val DESC LIMIT 5 OFFSET 3")

    def test_nulls_last_in_both_directions(self, s):
        asc = both_plans(s, "SELECT val FROM t ORDER BY val")
        desc = both_plans(s, "SELECT val FROM t ORDER BY val DESC")
        assert asc[-1][0] is None and desc[-1][0] is None

    def test_equality_prefix_ordered_scan(self, s):
        before = s.db.planner_stats["ordered_scans"]
        both_plans(s, "SELECT id FROM t WHERE grp = 4 ORDER BY val LIMIT 3")
        assert s.db.planner_stats["ordered_scans"] == before + 1

    def test_range_on_order_column_combines(self, s):
        both_plans(
            s, "SELECT id, val FROM t WHERE val > 20 ORDER BY val LIMIT 4"
        )

    def test_where_residual_filters_during_scan(self, s):
        rows = both_plans(
            s, "SELECT id FROM t WHERE name = 'n1' ORDER BY val LIMIT 3"
        )
        assert len(rows) == 3

    def test_alias_shadowing_declines_fast_path(self, s):
        # "val" in ORDER BY names the output item (id AS val), not the column
        before = s.db.planner_stats["ordered_scans"]
        both_plans(s, "SELECT id AS val FROM t ORDER BY val LIMIT 3")
        assert s.db.planner_stats["ordered_scans"] == before

    def test_mixed_directions_decline_fast_path(self, s):
        before = s.db.planner_stats["ordered_scans"]
        both_plans(s, "SELECT id FROM t ORDER BY grp, val DESC LIMIT 3")
        assert s.db.planner_stats["ordered_scans"] == before

    def test_multi_column_desc_declines_fast_path(self, s):
        before = s.db.planner_stats["ordered_scans"]
        both_plans(s, "SELECT id FROM t ORDER BY grp DESC, val DESC LIMIT 3")
        assert s.db.planner_stats["ordered_scans"] == before

    def test_point_probe_beats_ordered_scan(self, s):
        before = dict(s.db.planner_stats)
        both_plans(s, "SELECT id FROM t WHERE id = 7 ORDER BY val LIMIT 1")
        assert s.db.planner_stats["ordered_scans"] == before["ordered_scans"]
        assert s.db.planner_stats["index_scans"] > before["index_scans"]

    def test_explain_shows_ordered_plan(self, s):
        result = s.execute("EXPLAIN SELECT id FROM t ORDER BY val LIMIT 10")
        assert "Ordered Index Scan using ix_val on t (ORDER BY val)" in (
            result.rows[0][0]
        )
        assert "(limit 10)" in result.rows[0][0]

    def test_limit_early_exit_skips_later_row_errors(self, s):
        # rows past the early exit are never evaluated (error contract):
        # the seq-scan plan raises on the poisoned rows, the ordered scan
        # stops before reaching them
        from repro.minidb import DivisionByZeroError

        sql = (
            "SELECT id FROM t WHERE "
            "CASE WHEN val < 50 THEN 1 ELSE 1 / (grp - grp) END = 1 "
            "ORDER BY val LIMIT 2"
        )
        assert len(s.execute(sql).rows) == 2
        s.db.planner_options["enable_index_scan"] = False
        try:
            with pytest.raises(DivisionByZeroError):
                s.execute(sql)
        finally:
            s.db.planner_options["enable_index_scan"] = True

    def test_ordered_scan_without_limit_still_ordered(self, s):
        before = s.db.planner_stats["ordered_scans"]
        both_plans(s, "SELECT id, val FROM t ORDER BY val")
        assert s.db.planner_stats["ordered_scans"] == before + 1


class TestTopN:
    def test_heap_topn_on_unindexed_order(self, s):
        before = s.db.planner_stats["topn_limits"]
        rows = both_plans(s, "SELECT id FROM t ORDER BY name, id LIMIT 5")
        assert len(rows) == 5
        assert s.db.planner_stats["topn_limits"] == before + 1

    def test_topn_with_offset(self, s):
        both_plans(s, "SELECT id FROM t ORDER BY name, id LIMIT 5 OFFSET 4")

    def test_topn_ties_match_stable_sort(self, s):
        # name has only 7 distinct values: LIMIT lands mid-tie
        both_plans(s, "SELECT id, name FROM t ORDER BY name LIMIT 40")

    def test_expression_order_keys_still_topn(self, s):
        before = s.db.planner_stats["topn_limits"]
        both_plans(s, "SELECT id FROM t ORDER BY grp * 2, id DESC LIMIT 6")
        assert s.db.planner_stats["topn_limits"] == before + 1


class TestDMLAccessPaths:
    def test_update_uses_index_probe(self, s):
        before = dict(s.db.planner_stats)
        result = s.execute("UPDATE t SET name = 'z' WHERE id = 11")
        assert result.rowcount == 1
        assert s.db.planner_stats["index_scans"] == before["index_scans"] + 1
        assert s.db.planner_stats["seq_scans"] == before["seq_scans"]

    def test_update_uses_range_scan(self, s):
        before = dict(s.db.planner_stats)
        s.execute("UPDATE t SET name = 'hi' WHERE val >= 90 AND val < 95")
        assert s.db.planner_stats["range_scans"] == before["range_scans"] + 1
        assert s.db.planner_stats["seq_scans"] == before["seq_scans"]
        assert [r for (r,) in s.execute(
            "SELECT name FROM t WHERE val >= 90 AND val < 95"
        ).rows] == ["hi"] * s.execute(
            "SELECT COUNT(*) FROM t WHERE val >= 90 AND val < 95"
        ).scalar()

    def test_delete_uses_range_scan(self, s):
        count = s.execute("SELECT COUNT(*) FROM t WHERE val > 95").scalar()
        before = dict(s.db.planner_stats)
        result = s.execute("DELETE FROM t WHERE val > 95")
        assert result.rowcount == count
        assert s.db.planner_stats["range_scans"] == before["range_scans"] + 1
        assert s.db.planner_stats["seq_scans"] == before["seq_scans"]

    def test_dml_without_where_stays_seq(self, s):
        before = dict(s.db.planner_stats)
        s.execute("UPDATE t SET name = name")
        assert s.db.planner_stats["seq_scans"] == before["seq_scans"] + 1
        assert s.db.planner_stats["index_scans"] == before["index_scans"]

    def test_dml_respects_disabled_index_scans(self, s):
        s.db.planner_options["enable_index_scan"] = False
        try:
            before = dict(s.db.planner_stats)
            s.execute("DELETE FROM t WHERE id = 3")
            assert s.db.planner_stats["seq_scans"] == before["seq_scans"] + 1
            assert s.db.planner_stats["index_scans"] == before["index_scans"]
        finally:
            s.db.planner_options["enable_index_scan"] = True

    def test_update_results_identical_to_seq_plan(self, s):
        fast_db = s.db
        s.execute("UPDATE t SET name = 'upd' WHERE grp = 3 AND val > 40")
        fast = fast_db.snapshot()

        db2 = Database(owner="a")
        s2 = db2.connect("a")
        s2.execute(
            "CREATE TABLE t (id INT PRIMARY KEY, grp INT, val INT, name TEXT)"
        )
        heap = db2.heap("t")
        for i in range(200):
            heap.insert(
                {
                    "id": i,
                    "grp": i % 10,
                    "val": (i * 37) % 100 if i % 17 else None,
                    "name": f"n{i % 7}",
                }
            )
        db2.planner_options.update(BASELINE)
        s2.execute("UPDATE t SET name = 'upd' WHERE grp = 3 AND val > 40")
        assert db2.snapshot() == fast

    def test_update_undo_through_range_plan(self, s):
        before = s.db.snapshot()
        s.execute("BEGIN")
        s.execute("UPDATE t SET name = 'tmp' WHERE val >= 10 AND val < 60")
        s.execute("DELETE FROM t WHERE val >= 60")
        s.execute("ROLLBACK")
        assert s.db.snapshot() == before

    def test_subquery_where_falls_back(self, s):
        expected = s.execute("SELECT COUNT(*) FROM t WHERE val > 90").scalar()
        result = s.execute(
            "DELETE FROM t WHERE id IN (SELECT id FROM t WHERE val > 90)"
        )
        assert result.rowcount == expected > 0
        assert s.execute("SELECT COUNT(*) FROM t WHERE val > 90").scalar() == 0


class TestUnionExtraction:
    def where(self, sql):
        return parse(f"SELECT * FROM t WHERE {sql}").where

    def test_in_list_collects_points(self):
        unions = extract_union_bindings(self.where("a IN (1, 2, 3)"), "t")
        assert unions["a"].points == [1, 2, 3]
        assert unions["a"].ranges == []

    def test_in_list_drops_nulls_and_duplicates(self):
        unions = extract_union_bindings(
            self.where("a IN (5, NULL, 5, 2, 2)"), "t"
        )
        assert unions["a"].points == [5, 2]

    def test_negated_and_subquery_in_ignored(self):
        assert extract_union_bindings(self.where("a NOT IN (1, 2)"), "t") == {}
        assert (
            extract_union_bindings(
                self.where("a IN (SELECT a FROM t)"), "t"
            )
            == {}
        )

    def test_or_chain_of_ranges_and_points(self):
        unions = extract_union_bindings(
            self.where("a < 2 OR a BETWEEN 5 AND 7 OR a = 11"), "t"
        )
        entry = unions["a"]
        assert entry.points == [11]
        assert len(entry.ranges) == 2
        assert (entry.ranges[0].high, entry.ranges[0].incl_high) == (2, False)
        assert (entry.ranges[1].low, entry.ranges[1].high) == (5, 7)

    def test_or_across_columns_rejected(self):
        assert extract_union_bindings(self.where("a = 1 OR b = 2"), "t") == {}

    def test_one_bad_disjunct_disqualifies_the_chain(self):
        assert (
            extract_union_bindings(
                self.where("a = 1 OR a = 2 OR a LIKE 'x'"), "t"
            )
            == {}
        )

    def test_tighter_conjunct_wins(self):
        unions = extract_union_bindings(
            self.where("a IN (1, 2, 3) AND a IN (2, 3)"), "t"
        )
        assert unions["a"].points == [2, 3]

    def test_other_binding_qualifier_ignored(self):
        assert extract_union_bindings(self.where("u.a IN (1, 2)"), "t") == {}


class TestUnionExecution:
    def test_in_list_uses_union_scan(self, s):
        before = dict(s.db.planner_stats)
        rows = both_plans(s, "SELECT id FROM t WHERE val IN (10, 20, 30)")
        assert rows
        assert s.db.planner_stats["union_scans"] == before["union_scans"] + 1
        # exactly one seq scan: the forced-baseline leg of both_plans
        assert s.db.planner_stats["seq_scans"] == before["seq_scans"] + 1

    def test_or_of_ranges_uses_union_scan(self, s):
        before = s.db.planner_stats["union_scans"]
        both_plans(
            s, "SELECT id FROM t WHERE val < 5 OR val BETWEEN 90 AND 95"
        )
        assert s.db.planner_stats["union_scans"] == before + 1

    def test_union_with_nulls_and_duplicates_identical(self, s):
        both_plans(s, "SELECT id FROM t WHERE val IN (1, NULL, 1, 99, 99)")
        both_plans(s, "SELECT id FROM t WHERE val IN (NULL)")

    def test_residual_predicate_still_applied(self, s):
        rows = both_plans(
            s, "SELECT id, name FROM t WHERE val IN (10, 20) AND name = 'n1'"
        )
        assert all(name == "n1" for _, name in rows)

    def test_hash_index_serves_point_only_union(self, s):
        s.execute("CREATE TABLE h (x INT, y INT)")
        s.execute("CREATE INDEX ix_h ON h (x)")  # hash
        for i in range(50):
            s.execute(f"INSERT INTO h VALUES ({i % 5}, {i})")
        before = s.db.planner_stats["union_scans"]
        rows = both_plans(s, "SELECT y FROM h WHERE x IN (1, 3)")
        assert len(rows) == 20
        assert s.db.planner_stats["union_scans"] == before + 1
        # ranges disqualify the hash index: no btree on x -> seq scan
        unions = extract_union_bindings(
            parse("SELECT * FROM h WHERE x = 1 OR x > 3").where, "h"
        )
        path, _, _ = choose_access_path("h", s.db.heap("h"), [], unions=unions)
        assert path.kind == "seq"

    def test_explain_shows_union_plan(self, s):
        result = s.execute("EXPLAIN SELECT * FROM t WHERE val IN (1, 2)")
        assert "Index Union Scan using ix_val on t (val IN (1, 2))" in (
            result.rows[0][0]
        )

    def test_full_equality_probe_beats_union(self, s):
        before = dict(s.db.planner_stats)
        both_plans(s, "SELECT id FROM t WHERE id = 7 AND val IN (1, 2)")
        assert s.db.planner_stats["index_scans"] > before["index_scans"]
        assert s.db.planner_stats["union_scans"] == before["union_scans"]

    def test_union_respects_disabled_index_scans(self, s):
        s.db.planner_options["enable_index_scan"] = False
        try:
            before = dict(s.db.planner_stats)
            s.execute("SELECT id FROM t WHERE val IN (1, 2)")
            assert s.db.planner_stats["seq_scans"] == before["seq_scans"] + 1
            assert s.db.planner_stats["union_scans"] == before["union_scans"]
        finally:
            s.db.planner_options["enable_index_scan"] = True


class TestDMLUnionAndCounterParity:
    """DML target resolution must bump the same planner_stats counters as
    the equivalent SELECT — the regression this PR pins."""

    def test_update_through_union_scan(self, s):
        before = dict(s.db.planner_stats)
        s.execute("UPDATE t SET name = 'u' WHERE val IN (10, 20, 30)")
        assert s.db.planner_stats["union_scans"] == before["union_scans"] + 1
        assert s.db.planner_stats["seq_scans"] == before["seq_scans"]

    def test_delete_through_union_scan(self, s):
        count = s.execute(
            "SELECT COUNT(*) FROM t WHERE val IN (97, 98, 99)"
        ).scalar()
        before = dict(s.db.planner_stats)
        result = s.execute("DELETE FROM t WHERE val IN (97, 98, 99)")
        assert result.rowcount == count > 0
        assert s.db.planner_stats["union_scans"] == before["union_scans"] + 1
        assert s.db.planner_stats["seq_scans"] == before["seq_scans"]

    def test_select_and_dml_bump_same_counters(self, s):
        for sql_select, sql_dml, counter in (
            (
                "SELECT id FROM t WHERE val >= 10 AND val < 20",
                "UPDATE t SET name = 'x' WHERE val >= 10 AND val < 20",
                "range_scans",
            ),
            (
                "SELECT id FROM t WHERE id = 3",
                "UPDATE t SET name = 'x' WHERE id = 3",
                "index_scans",
            ),
            (
                "SELECT id FROM t WHERE val IN (1, 2)",
                "DELETE FROM t WHERE val IN (1, 2)",
                "union_scans",
            ),
        ):
            before = dict(s.db.planner_stats)
            s.execute(sql_select)
            mid = dict(s.db.planner_stats)
            assert mid[counter] == before[counter] + 1, counter
            s.execute(sql_dml)
            after = dict(s.db.planner_stats)
            assert after[counter] == mid[counter] + 1, counter
            assert after["seq_scans"] == before["seq_scans"], counter

    def test_union_dml_undo_through_rollback(self, s):
        before = s.db.snapshot()
        s.execute("BEGIN")
        s.execute("UPDATE t SET name = 'tmp' WHERE val IN (10, 20)")
        s.execute("DELETE FROM t WHERE val IN (30, 40)")
        s.execute("ROLLBACK")
        assert s.db.snapshot() == before


class TestCostBasedPlanning:
    @pytest.fixture
    def skewed(self):
        db = Database(owner="a")
        session = db.connect("a")
        session.execute(
            "CREATE TABLE k (id INT PRIMARY KEY, hot INT, val INT)"
        )
        heap = db.heap("k")
        for i in range(1000):
            heap.insert(
                {
                    "id": i,
                    # 90% of rows share hot=0, the rest are distinct
                    "hot": i if i % 10 == 0 else 0,
                    "val": (i * 7919) % 1000,
                }
            )
        session.execute("CREATE INDEX ix_hot ON k (hot)")  # hash
        session.execute("CREATE INDEX ix_kval ON k USING BTREE (val)")
        return session

    SKEW_SQL = "SELECT COUNT(*) FROM k WHERE hot = 0 AND val >= 100 AND val < 120"

    def test_static_order_picks_the_heavy_probe(self, skewed):
        plan = skewed.execute(f"EXPLAIN {self.SKEW_SQL}").rows[0][0]
        assert "Index Scan using ix_hot" in plan
        assert "est. rows" not in plan  # no statistics yet

    def test_stats_switch_to_the_cheaper_range(self, skewed):
        """The regression pin: with ANALYZE statistics the cost model must
        override the static preference for the fully-bound hash probe."""
        without = skewed.execute(self.SKEW_SQL).scalar()
        skewed.execute("ANALYZE k")
        plan = skewed.execute(f"EXPLAIN {self.SKEW_SQL}").rows[0][0]
        assert "Index Range Scan using ix_kval" in plan
        assert "est. rows" in plan
        assert skewed.execute(self.SKEW_SQL).scalar() == without

    def test_stale_uid_statistics_are_ignored(self, skewed):
        skewed.execute("ANALYZE k")
        skewed.execute("DROP TABLE k")
        skewed.execute("CREATE TABLE k (id INT PRIMARY KEY, hot INT, val INT)")
        skewed.execute("CREATE INDEX ix_hot ON k (hot)")
        skewed.execute("CREATE INDEX ix_kval ON k USING BTREE (val)")
        # recreation dropped the stats with the table; but even a manually
        # restored entry with the old uid must not influence planning
        plan = skewed.execute(f"EXPLAIN {self.SKEW_SQL}").rows[0][0]
        assert "est. rows" not in plan

    def test_unanalyzed_plans_match_static_order(self, skewed):
        # no ANALYZE anywhere: the static preference order is untouched
        for sql, expected in (
            (self.SKEW_SQL, "Index Scan using ix_hot"),
            ("SELECT * FROM k WHERE val > 5", "Index Range Scan"),
            ("SELECT * FROM k WHERE val IN (1, 2)", "Index Union Scan"),
        ):
            assert expected in skewed.execute(f"EXPLAIN {sql}").rows[0][0]

    def test_estimates_appear_after_analyze(self, skewed):
        skewed.execute("ANALYZE")
        for sql in (
            "SELECT * FROM k WHERE id = 5",
            "SELECT * FROM k WHERE val IN (1, 2, 3)",
            "SELECT * FROM k",
        ):
            assert "est. rows" in skewed.execute(f"EXPLAIN {sql}").rows[0][0]

    def test_unique_probe_estimate_clamps_to_one(self, skewed):
        skewed.execute("ANALYZE k")
        plan = skewed.execute("EXPLAIN SELECT * FROM k WHERE id = 5").rows[0][0]
        assert "est. rows=1" in plan


class TestCompiledPredicates:
    def test_seq_scan_where_equivalence(self, s):
        both_plans(
            s,
            "SELECT id FROM t WHERE grp * 10 + 1 > 35 AND name LIKE 'n%' "
            "AND val IS NOT NULL",
        )

    def test_case_in_between_like(self, s):
        both_plans(
            s,
            "SELECT id FROM t WHERE CASE WHEN grp > 5 THEN val ELSE grp END "
            "BETWEEN 3 AND 80 AND grp IN (1, 3, 5, 7, 9)",
        )

    def test_correlated_subquery_falls_back(self, s):
        both_plans(
            s,
            "SELECT id FROM t WHERE EXISTS "
            "(SELECT 1 FROM t u WHERE u.id = t.id AND u.grp = 3)",
        )

    def test_division_error_surfaces_identically(self, s):
        from repro.minidb import DivisionByZeroError

        for enabled in (True, False):
            s.db.planner_options["enable_compiled_predicates"] = enabled
            try:
                with pytest.raises(DivisionByZeroError):
                    s.execute("SELECT id FROM t WHERE 1 / (grp - grp) > 0")
            finally:
                s.db.planner_options["enable_compiled_predicates"] = True

    def test_join_residual_compiled(self, s):
        s.execute("CREATE TABLE u (id INT PRIMARY KEY, lo INT, hi INT)")
        s.execute("INSERT INTO u VALUES (1, 10, 40), (2, 50, 80)")
        both_plans(
            s,
            "SELECT t.id, u.id FROM t JOIN u "
            "ON t.grp = u.id AND t.val > u.lo ORDER BY t.id, u.id",
        )


# ---------------------------------------------------------------------------
# Hypothesis equivalence property
# ---------------------------------------------------------------------------

COLUMNS = ("a", "b", "c")

rows_strategy = st.lists(
    st.tuples(
        st.one_of(st.none(), st.integers(0, 6)),
        st.one_of(st.none(), st.integers(0, 12)),
        st.one_of(st.none(), st.sampled_from(["x", "y", "zz", "a b"])),
    ),
    min_size=0,
    max_size=60,
)

comparison = st.tuples(
    st.sampled_from(COLUMNS),
    st.sampled_from([">", ">=", "<", "<=", "=", "BETWEEN"]),
    st.integers(0, 12),
    st.integers(0, 12),
)

# IN-lists keep NULL members and duplicates on purpose: the union path
# must drop/dedup them while staying byte-identical to the seq scan
in_conjunct = st.tuples(
    st.just("IN"),
    st.sampled_from(COLUMNS),
    st.lists(st.one_of(st.none(), st.integers(0, 12)), min_size=1, max_size=6),
)

# OR-of-ranges over one column — eligible for the union path when every
# disjunct qualifies, a plain filter otherwise
or_conjunct = st.tuples(
    st.just("OR"),
    st.sampled_from(COLUMNS),
    st.lists(
        st.tuples(
            st.sampled_from([">", ">=", "<", "<=", "=", "BETWEEN"]),
            st.integers(0, 12),
            st.integers(0, 12),
        ),
        min_size=2,
        max_size=3,
    ),
)

where_strategy = st.lists(
    st.one_of(comparison, in_conjunct, or_conjunct), min_size=0, max_size=3
)

order_strategy = st.one_of(
    st.none(),
    st.tuples(
        st.lists(st.sampled_from(COLUMNS), min_size=1, max_size=2, unique=True),
        st.booleans(),
    ),
)

limit_strategy = st.one_of(
    st.none(), st.tuples(st.integers(0, 20), st.integers(0, 5))
)


def conjunct_column(entry):
    return entry[1] if entry[0] in ("IN", "OR") else entry[0]


def render_conjunct(entry):
    if entry[0] == "IN":
        _, column, members = entry
        body = ", ".join("NULL" if m is None else str(m) for m in members)
        return f"{column} IN ({body})"
    if entry[0] == "OR":
        _, column, disjuncts = entry
        parts = []
        for op, lo, hi in disjuncts:
            if op == "BETWEEN":
                parts.append(f"{column} BETWEEN {min(lo, hi)} AND {max(lo, hi)}")
            else:
                parts.append(f"{column} {op} {lo}")
        return "(" + " OR ".join(parts) + ")"
    column, op, lo, hi = entry
    if op == "BETWEEN":
        return f"{column} BETWEEN {min(lo, hi)} AND {max(lo, hi)}"
    return f"{column} {op} {lo}"


def build_statement(conjuncts, order, limit):
    sql = "SELECT id, a, b, c FROM t"
    if conjuncts:
        sql += " WHERE " + " AND ".join(
            render_conjunct(entry) for entry in conjuncts
        )
    if order is not None:
        columns, descending = order
        suffix = " DESC" if descending else ""
        sql += " ORDER BY " + ", ".join(f"{c}{suffix}" for c in columns)
    if limit is not None:
        count, offset = limit
        sql += f" LIMIT {count}"
        if offset:
            sql += f" OFFSET {offset}"
    return sql


@settings(max_examples=60, deadline=None)
@given(rows=rows_strategy, statements=st.lists(
    st.tuples(where_strategy, order_strategy, limit_strategy),
    min_size=1, max_size=4,
))
def test_indexed_execution_equivalent_to_seq_scan(rows, statements):
    """Random data + random statements: fast paths vs forced seq scans
    must match byte for byte — NULL ordering, duplicate keys,
    LIMIT-straddling ties, IN-lists with NULL/duplicate members, and
    OR-of-ranges included. Text columns use integer-free values so both
    plans stay inside comparable-type territory."""
    db = Database(owner="a")
    session = db.connect("a")
    session.execute("CREATE TABLE t (id INT PRIMARY KEY, a INT, b INT, c TEXT)")
    heap = db.heap("t")
    for i, (a, b, c) in enumerate(rows):
        heap.insert({"id": i, "a": a, "b": b, "c": c})
    session.execute("CREATE INDEX ix_a ON t USING BTREE (a)")
    session.execute("CREATE INDEX ix_ab ON t USING BTREE (a, b)")
    session.execute("CREATE INDEX ix_c ON t USING BTREE (c)")
    for conjuncts, order, limit in statements:
        # c is TEXT: integer comparisons against it would raise (a
        # data-dependent error the access-path contract lets plans skip);
        # it still participates via ORDER BY c and the ix_c ordered scan
        text_free = [
            entry for entry in conjuncts if conjunct_column(entry) != "c"
        ]
        sql = build_statement(text_free, order, limit)
        fast = session.execute(sql).rows
        db.planner_options.update(BASELINE)
        try:
            slow = session.execute(sql).rows
        finally:
            db.planner_options.update(
                enable_index_scan=True, enable_topn=True,
                enable_compiled_predicates=True,
            )
        assert fast == slow, sql
