"""Tests for access-path planning and EXPLAIN."""

import pytest

from repro.minidb import Database, parse
from repro.minidb.planner import (
    choose_access_path,
    extract_equality_bindings,
    plan_select_paths,
)


@pytest.fixture
def s():
    db = Database(owner="a")
    session = db.connect("a")
    session.execute(
        "CREATE TABLE t (id INT PRIMARY KEY, grp INT, name TEXT, val FLOAT)"
    )
    session.execute("CREATE INDEX ix_grp ON t (grp)")
    for i in range(200):
        session.db.heap("t").insert(
            {"id": i, "grp": i % 10, "name": f"n{i}", "val": float(i)}
        )
    return session


class TestEqualityExtraction:
    def where(self, sql):
        return parse(f"SELECT * FROM t WHERE {sql}").where

    def test_simple_equality(self):
        bindings = extract_equality_bindings(self.where("grp = 3"), "t")
        assert [(b.column, b.value) for b in bindings] == [("grp", 3)]

    def test_reversed_operands(self):
        bindings = extract_equality_bindings(self.where("5 = id"), "t")
        assert bindings[0].column == "id"

    def test_and_conjuncts_collected(self):
        bindings = extract_equality_bindings(
            self.where("grp = 1 AND name = 'x' AND val > 2"), "t"
        )
        assert {b.column for b in bindings} == {"grp", "name"}

    def test_or_not_extracted(self):
        assert extract_equality_bindings(self.where("grp = 1 OR grp = 2"), "t") == []

    def test_qualified_other_binding_ignored(self):
        bindings = extract_equality_bindings(self.where("u.grp = 1"), "t")
        assert bindings == []

    def test_null_equality_ignored(self):
        assert extract_equality_bindings(self.where("grp = NULL"), "t") == []

    def test_none_where(self):
        assert extract_equality_bindings(None, "t") == []


class TestAccessPathChoice:
    def test_index_chosen_for_bound_column(self, s):
        heap = s.db.heap("t")
        bindings = extract_equality_bindings(
            parse("SELECT * FROM t WHERE grp = 3").where, "t"
        )
        path, index, key = choose_access_path("t", heap, bindings)
        assert path.kind == "index"
        assert index.name == "ix_grp"
        assert key == (3,)

    def test_unique_index_preferred(self, s):
        heap = s.db.heap("t")
        bindings = extract_equality_bindings(
            parse("SELECT * FROM t WHERE grp = 3 AND id = 7").where, "t"
        )
        path, index, _ = choose_access_path("t", heap, bindings)
        assert index.unique  # the PK index wins over ix_grp

    def test_seq_scan_without_match(self, s):
        heap = s.db.heap("t")
        bindings = extract_equality_bindings(
            parse("SELECT * FROM t WHERE name = 'x'").where, "t"
        )
        path, index, _ = choose_access_path("t", heap, bindings)
        assert path.kind == "seq"
        assert index is None


class TestPlannedExecution:
    def test_results_identical_with_and_without_index(self, s):
        indexed = s.execute("SELECT id FROM t WHERE grp = 4 ORDER BY id").rows
        s.execute("DROP INDEX ix_grp")
        scanned = s.execute("SELECT id FROM t WHERE grp = 4 ORDER BY id").rows
        assert indexed == scanned
        assert len(indexed) == 20

    def test_planner_stats_updated(self, s):
        before = dict(s.db.planner_stats)
        s.execute("SELECT * FROM t WHERE grp = 1")
        assert s.db.planner_stats["index_scans"] == before["index_scans"] + 1
        s.execute("SELECT * FROM t WHERE val > 5")
        assert s.db.planner_stats["seq_scans"] > before["seq_scans"]

    def test_pk_point_lookup(self, s):
        rows = s.execute("SELECT name FROM t WHERE id = 42").rows
        assert rows == [("n42",)]

    def test_residual_predicate_still_applied(self, s):
        rows = s.execute("SELECT id FROM t WHERE grp = 4 AND val > 100").rows
        assert all(rid > 100 for (rid,) in rows)

    def test_join_with_pushdown(self, s):
        s.execute("CREATE TABLE u (id INT PRIMARY KEY, t_grp INT)")
        s.execute("INSERT INTO u VALUES (1, 4)")
        rows = s.execute(
            "SELECT COUNT(*) FROM u JOIN t ON t.grp = u.t_grp WHERE t.grp = 4"
        ).rows
        assert rows == [(20,)]

    def test_empty_probe(self, s):
        assert s.execute("SELECT * FROM t WHERE id = 99999").rows == []


class TestExplain:
    def test_explain_index_scan(self, s):
        result = s.execute("EXPLAIN SELECT * FROM t WHERE grp = 3")
        assert result.columns == ["QUERY PLAN"]
        assert "Index Scan using ix_grp on t" in result.rows[0][0]

    def test_explain_seq_scan(self, s):
        result = s.execute("EXPLAIN SELECT * FROM t WHERE val > 1")
        assert "Seq Scan on t" in result.rows[0][0]

    def test_explain_join_lists_both_tables(self, s):
        s.execute("CREATE TABLE u (a INT)")
        result = s.execute("EXPLAIN SELECT * FROM t JOIN u ON t.id = u.a")
        plans = "\n".join(r[0] for r in result.rows)
        assert "on t" in plans
        assert "on u" in plans

    def test_explain_does_not_execute(self, s):
        before = s.db.snapshot()
        s.execute("EXPLAIN SELECT * FROM t WHERE grp = 1")
        assert s.db.snapshot() == before

    def test_explain_requires_select_privilege(self, s):
        s.db.create_user("nobody")
        session = s.db.connect("nobody")
        with pytest.raises(Exception):
            session.execute("EXPLAIN SELECT * FROM t")

    def test_explain_no_base_tables(self, s):
        result = s.execute("EXPLAIN SELECT 1")
        assert "no base tables" in result.rows[0][0]

    def test_plan_select_paths_helper(self, s):
        stmt = parse("SELECT * FROM t WHERE grp = 2")
        paths = plan_select_paths(stmt, {"t": "t"}, s.db.heap)
        assert paths[0].kind == "index"
        assert "Index Scan" in paths[0].describe()
