"""SQL conformance battery: dozens of query/result pairs on one database.

Modeled after SQLite's logic tests: a fixed dataset and a long parametrized
list of (query, expected) cases covering clause interactions the dedicated
unit tests don't combine.
"""

import pytest

from repro.minidb import Database


@pytest.fixture(scope="module")
def s():
    db = Database(owner="a")
    session = db.connect("a")
    session.execute(
        "CREATE TABLE nums (n INT PRIMARY KEY, parity TEXT, flt FLOAT)"
    )
    for n in range(1, 11):
        session.execute(
            f"INSERT INTO nums VALUES ({n}, "
            f"'{'even' if n % 2 == 0 else 'odd'}', {n * 1.5})"
        )
    session.execute("CREATE TABLE pets (id INT, owner TEXT, kind TEXT)")
    session.execute(
        "INSERT INTO pets VALUES (1, 'ann', 'cat'), (2, 'ann', 'dog'), "
        "(3, 'bob', 'cat'), (4, NULL, 'fish')"
    )
    return session


CASES = [
    # scalar expressions
    ("SELECT 2 + 3 * 4", [(14,)]),
    ("SELECT (2 + 3) * 4", [(20,)]),
    ("SELECT -2 * -3", [(6,)]),
    ("SELECT 10 % 4", [(2,)]),
    ("SELECT 1 < 2 AND 2 < 3", [(True,)]),
    ("SELECT NOT FALSE", [(True,)]),
    ("SELECT 'a' || 'b' = 'ab'", [(True,)]),
    ("SELECT CASE 2 WHEN 1 THEN 'one' WHEN 2 THEN 'two' END", [("two",)]),
    # filters
    ("SELECT COUNT(*) FROM nums WHERE n BETWEEN 3 AND 5", [(3,)]),
    ("SELECT COUNT(*) FROM nums WHERE n NOT BETWEEN 3 AND 5", [(7,)]),
    ("SELECT COUNT(*) FROM nums WHERE parity = 'even'", [(5,)]),
    ("SELECT COUNT(*) FROM nums WHERE parity LIKE 'e%'", [(5,)]),
    ("SELECT COUNT(*) FROM nums WHERE n IN (1, 2, 3, 99)", [(3,)]),
    ("SELECT COUNT(*) FROM nums WHERE n NOT IN (1, 2)", [(8,)]),
    ("SELECT n FROM nums WHERE n > 8 ORDER BY n", [(9,), (10,)]),
    ("SELECT n FROM nums WHERE flt = 4.5", [(3,)]),
    # aggregates
    ("SELECT SUM(n) FROM nums", [(55,)]),
    ("SELECT AVG(n) FROM nums", [(5.5,)]),
    ("SELECT MIN(n), MAX(n) FROM nums", [(1, 10)]),
    ("SELECT COUNT(DISTINCT parity) FROM nums", [(2,)]),
    (
        "SELECT parity, SUM(n) FROM nums GROUP BY parity ORDER BY parity",
        [("even", 30), ("odd", 25)],
    ),
    (
        "SELECT parity FROM nums GROUP BY parity HAVING SUM(n) > 27",
        [("even",)],
    ),
    ("SELECT COUNT(*) FROM nums GROUP BY parity HAVING COUNT(*) = 5",
     [(5,), (5,)]),
    # ordering / paging
    ("SELECT n FROM nums ORDER BY n DESC LIMIT 3", [(10,), (9,), (8,)]),
    ("SELECT n FROM nums ORDER BY parity, n LIMIT 2", [(2,), (4,)]),
    ("SELECT n FROM nums ORDER BY 1 DESC LIMIT 1", [(10,)]),
    ("SELECT n * 2 AS d FROM nums ORDER BY d LIMIT 2", [(2,), (4,)]),
    ("SELECT n FROM nums ORDER BY n LIMIT 3 OFFSET 8", [(9,), (10,)]),
    # distinct & set ops
    ("SELECT DISTINCT parity FROM nums ORDER BY parity", [("even",), ("odd",)]),
    (
        "SELECT parity FROM nums UNION SELECT kind FROM pets ORDER BY parity",
        [("cat",), ("dog",), ("even",), ("fish",), ("odd",)],
    ),
    (
        "SELECT n FROM nums WHERE n < 4 INTERSECT SELECT n FROM nums WHERE n > 2",
        [(3,)],
    ),
    (
        "SELECT n FROM nums WHERE n < 4 EXCEPT SELECT n FROM nums WHERE n = 2 "
        "ORDER BY n",
        [(1,), (3,)],
    ),
    ("SELECT COUNT(*) FROM (SELECT parity FROM nums UNION ALL "
     "SELECT parity FROM nums) u", [(20,)]),
    # joins
    (
        "SELECT COUNT(*) FROM pets a JOIN pets b ON a.owner = b.owner",
        [(5,)],  # ann x ann (2x2) + bob x bob (1); NULL owner never matches
    ),
    (
        "SELECT a.kind, b.kind FROM pets a JOIN pets b "
        "ON a.owner = b.owner AND a.id < b.id",
        [("cat", "dog")],
    ),
    (
        "SELECT owner, COUNT(*) FROM pets WHERE owner IS NOT NULL "
        "GROUP BY owner ORDER BY owner",
        [("ann", 2), ("bob", 1)],
    ),
    # subqueries
    ("SELECT COUNT(*) FROM nums WHERE n > (SELECT AVG(n) FROM nums)", [(5,)]),
    (
        "SELECT kind FROM pets WHERE id = (SELECT MAX(id) FROM pets)",
        [("fish",)],
    ),
    (
        "SELECT n FROM nums x WHERE EXISTS "
        "(SELECT 1 FROM pets p WHERE p.id = x.n AND p.kind = 'cat') ORDER BY n",
        [(1,), (3,)],
    ),
    (
        "SELECT (SELECT COUNT(*) FROM pets p WHERE p.id <= x.n) FROM nums x "
        "WHERE x.n = 2",
        [(2,)],
    ),
    # NULL interactions
    ("SELECT COUNT(owner) FROM pets", [(3,)]),
    ("SELECT COUNT(*) FROM pets WHERE owner IS NULL", [(1,)]),
    ("SELECT COALESCE(owner, 'nobody') FROM pets WHERE id = 4", [("nobody",)]),
    ("SELECT kind FROM pets WHERE owner IS NULL OR owner = 'bob' ORDER BY kind",
     [("cat",), ("fish",)]),
    # functions in clauses
    ("SELECT UPPER(parity) FROM nums WHERE n = 1", [("ODD",)]),
    ("SELECT COUNT(*) FROM nums WHERE LENGTH(parity) = 3", [(5,)]),
    ("SELECT SUM(CASE WHEN parity = 'odd' THEN n ELSE 0 END) FROM nums", [(25,)]),
    ("SELECT ROUND(AVG(flt), 2) FROM nums", [(8.25,)]),
    ("SELECT MAX(LENGTH(kind)) FROM pets", [(4,)]),
]

@pytest.mark.parametrize("sql,expected", CASES, ids=[c[0][:48] for c in CASES])
def test_conformance(s, sql, expected):
    assert s.execute(sql).rows == expected
