"""Tests for transaction semantics: atomicity, rollback, savepoints."""

import pytest

from repro.minidb import Database
from repro.minidb.errors import TransactionError, UniqueViolation


@pytest.fixture
def s():
    db = Database(owner="admin")
    session = db.connect("admin")
    session.execute("CREATE TABLE acct (id INT PRIMARY KEY, balance FLOAT NOT NULL)")
    session.execute("INSERT INTO acct VALUES (1, 100.0), (2, 50.0)")
    return session


class TestExplicitTransactions:
    def test_commit_persists(self, s):
        s.execute("BEGIN")
        s.execute("UPDATE acct SET balance = balance - 10 WHERE id = 1")
        s.execute("UPDATE acct SET balance = balance + 10 WHERE id = 2")
        s.execute("COMMIT")
        assert s.scalar("SELECT balance FROM acct WHERE id = 1") == 90.0
        assert s.scalar("SELECT balance FROM acct WHERE id = 2") == 60.0

    def test_rollback_reverts_updates(self, s):
        s.execute("BEGIN")
        s.execute("UPDATE acct SET balance = 0")
        s.execute("ROLLBACK")
        assert s.scalar("SELECT SUM(balance) FROM acct") == 150.0

    def test_rollback_reverts_inserts(self, s):
        s.execute("BEGIN")
        s.execute("INSERT INTO acct VALUES (3, 1.0)")
        s.execute("ROLLBACK")
        assert s.scalar("SELECT COUNT(*) FROM acct") == 2

    def test_rollback_reverts_deletes(self, s):
        s.execute("BEGIN")
        s.execute("DELETE FROM acct")
        s.execute("ROLLBACK")
        assert s.scalar("SELECT COUNT(*) FROM acct") == 2

    def test_rollback_restores_indexes(self, s):
        s.execute("BEGIN")
        s.execute("DELETE FROM acct WHERE id = 1")
        s.execute("ROLLBACK")
        # PK index must have the row back: duplicate insert still rejected
        with pytest.raises(UniqueViolation):
            s.execute("INSERT INTO acct VALUES (1, 5.0)")

    def test_rollback_reverts_ddl(self, s):
        s.execute("BEGIN")
        s.execute("CREATE TABLE temp (x INT)")
        s.execute("INSERT INTO temp VALUES (1)")
        s.execute("ROLLBACK")
        assert not s.db.catalog.has_table("temp")

    def test_rollback_restores_dropped_table(self, s):
        s.execute("BEGIN")
        s.execute("DROP TABLE acct")
        s.execute("ROLLBACK")
        assert s.scalar("SELECT COUNT(*) FROM acct") == 2

    def test_mixed_operations_rollback_in_reverse_order(self, s):
        s.execute("BEGIN")
        s.execute("INSERT INTO acct VALUES (3, 10.0)")
        s.execute("UPDATE acct SET balance = balance * 2 WHERE id = 3")
        s.execute("DELETE FROM acct WHERE id = 1")
        s.execute("ROLLBACK")
        snap = {r["id"]: r["balance"] for r in s.query("SELECT * FROM acct")}
        assert snap == {1: 100.0, 2: 50.0}


class TestTransactionStateMachine:
    def test_nested_begin_rejected(self, s):
        s.execute("BEGIN")
        with pytest.raises(TransactionError):
            s.execute("BEGIN")

    def test_commit_without_begin_rejected(self, s):
        with pytest.raises(TransactionError):
            s.execute("COMMIT")

    def test_rollback_without_begin_rejected(self, s):
        with pytest.raises(TransactionError):
            s.execute("ROLLBACK")

    def test_in_transaction_flag(self, s):
        assert not s.in_transaction
        s.execute("BEGIN")
        assert s.in_transaction
        s.execute("COMMIT")
        assert not s.in_transaction

    def test_transaction_counters(self, s):
        s.execute("BEGIN")
        s.execute("COMMIT")
        s.execute("BEGIN")
        s.execute("ROLLBACK")
        assert s.tx.begun == 2
        assert s.tx.committed == 1
        assert s.tx.rolled_back == 1


class TestStatementAtomicity:
    def test_failed_statement_inside_tx_keeps_tx_open(self, s):
        s.execute("BEGIN")
        s.execute("UPDATE acct SET balance = 77 WHERE id = 1")
        with pytest.raises(UniqueViolation):
            s.execute("INSERT INTO acct VALUES (2, 1.0)")
        # earlier work still present, transaction still open
        assert s.in_transaction
        assert s.scalar("SELECT balance FROM acct WHERE id = 1") == 77.0
        s.execute("COMMIT")
        assert s.scalar("SELECT balance FROM acct WHERE id = 1") == 77.0

    def test_failed_multirow_insert_in_tx_undone_but_tx_survives(self, s):
        s.execute("BEGIN")
        with pytest.raises(UniqueViolation):
            s.execute("INSERT INTO acct VALUES (3, 1.0), (3, 2.0)")
        assert s.scalar("SELECT COUNT(*) FROM acct WHERE id = 3") == 0
        assert s.in_transaction
        s.execute("ROLLBACK")

    def test_autocommit_failure_rolls_back(self, s):
        with pytest.raises(UniqueViolation):
            s.execute("INSERT INTO acct VALUES (4, 1.0), (1, 2.0)")
        assert s.scalar("SELECT COUNT(*) FROM acct") == 2


class TestSavepoints:
    def test_rollback_to_savepoint(self, s):
        s.execute("BEGIN")
        s.execute("UPDATE acct SET balance = 10 WHERE id = 1")
        s.execute("SAVEPOINT sp1")
        s.execute("UPDATE acct SET balance = 20 WHERE id = 1")
        s.execute("ROLLBACK TO SAVEPOINT sp1")
        assert s.scalar("SELECT balance FROM acct WHERE id = 1") == 10.0
        s.execute("COMMIT")
        assert s.scalar("SELECT balance FROM acct WHERE id = 1") == 10.0

    def test_nested_savepoints(self, s):
        s.execute("BEGIN")
        s.execute("SAVEPOINT a")
        s.execute("INSERT INTO acct VALUES (3, 1.0)")
        s.execute("SAVEPOINT b")
        s.execute("INSERT INTO acct VALUES (4, 1.0)")
        s.execute("ROLLBACK TO SAVEPOINT a")
        assert s.scalar("SELECT COUNT(*) FROM acct") == 2
        # savepoint b no longer valid
        with pytest.raises(TransactionError):
            s.execute("ROLLBACK TO SAVEPOINT b")
        s.execute("ROLLBACK")

    def test_release_savepoint(self, s):
        s.execute("BEGIN")
        s.execute("SAVEPOINT sp")
        s.execute("RELEASE SAVEPOINT sp")
        with pytest.raises(TransactionError):
            s.execute("ROLLBACK TO SAVEPOINT sp")
        s.execute("ROLLBACK")

    def test_savepoint_outside_transaction_rejected(self, s):
        with pytest.raises(TransactionError):
            s.execute("SAVEPOINT sp")

    def test_unknown_savepoint(self, s):
        s.execute("BEGIN")
        with pytest.raises(TransactionError):
            s.execute("ROLLBACK TO SAVEPOINT ghost")


class TestCrossSessionVisibility:
    def test_committed_changes_visible_to_other_sessions(self):
        db = Database(owner="admin")
        s1 = db.connect("admin")
        s1.execute("CREATE TABLE t (x INT)")
        s2 = db.connect("admin")
        s1.execute("INSERT INTO t VALUES (1)")
        assert s2.scalar("SELECT COUNT(*) FROM t") == 1

    def test_sessions_have_independent_transactions(self):
        db = Database(owner="admin")
        s1 = db.connect("admin")
        s1.execute("CREATE TABLE t (x INT)")
        s2 = db.connect("admin")
        s1.execute("BEGIN")
        assert not s2.in_transaction
        s1.execute("ROLLBACK")
