"""Unit tests for :class:`SortedIndex` and the ``USING BTREE`` DDL surface.

The ordered index must mirror :class:`HashIndex`'s equality/uniqueness
semantics exactly (NULL keys invisible to probes and constraints) while
adding the ordered-access contract the executor's fast paths rely on:
``range_rids``/``slice_bounds`` return key-ordered candidates, and
``ordered_rids`` yields ORDER BY order — including the non-obvious DESC
order (rank classes forward, values backward, ties in rid order).
"""

import random

import pytest

from repro.minidb import Database, UniqueViolation, parse
from repro.minidb import ast_nodes as ast
from repro.minidb.sqlgen import create_index_to_sql
from repro.minidb.storage import (
    BTREE_FANOUT,
    HashIndex,
    HeapTable,
    SortedIndex,
    ordering_key,
    ordering_key_element,
)


def make_index(rows, columns=("a",), unique=False):
    index = SortedIndex("ix", columns, unique=unique)
    for rid, row in rows:
        index.insert(rid, row)
    return index


class TestOrderingKey:
    def test_numbers_before_text_before_null(self):
        elements = [ordering_key_element(v) for v in (3, "b", None)]
        assert elements == sorted(elements)

    def test_bool_orders_as_int(self):
        assert ordering_key_element(True) == ordering_key_element(1)
        assert ordering_key_element(False) < ordering_key_element(0.5)

    def test_composite(self):
        assert ordering_key((1, "x")) < ordering_key((1, None))


class TestEqualitySurface:
    def test_probe_exact_matches(self):
        index = make_index([(1, {"a": 5}), (2, {"a": 5}), (3, {"a": 6})])
        assert index.probe((5,)) == {1, 2}
        assert index.probe((7,)) == set()

    def test_null_keys_invisible_to_probe(self):
        index = make_index([(1, {"a": None}), (2, {"a": 1})])
        assert index.probe((None,)) == set()
        assert len(index) == 2  # stored (for ordered scans), not probeable

    def test_unique_violation_on_insert(self):
        index = make_index([(1, {"a": 5})], unique=True)
        with pytest.raises(UniqueViolation):
            index.insert(2, {"a": 5})

    def test_unique_allows_duplicate_nulls(self):
        index = make_index([(1, {"a": None})], unique=True)
        index.insert(2, {"a": None})  # NULL != NULL
        assert len(index) == 2

    def test_would_violate_ignores_own_rid(self):
        index = make_index([(1, {"a": 5})], unique=True)
        assert index.would_violate({"a": 5})
        assert not index.would_violate({"a": 5}, ignore_rid=1)

    def test_remove_then_reinsert(self):
        index = make_index([(1, {"a": 5}), (2, {"a": 5})])
        index.remove(1, {"a": 5})
        assert index.probe((5,)) == {2}
        index.insert(1, {"a": 5})
        assert index.probe((5,)) == {1, 2}

    def test_backfill_detects_adjacent_duplicates(self):
        index = SortedIndex("ix", ("a",), unique=True)
        with pytest.raises(UniqueViolation):
            index.backfill([(1, {"a": 3}), (2, {"a": 3})].__iter__())
        assert len(index) == 0  # left detached-clean

    def test_backfill_unique_tolerates_nulls(self):
        index = SortedIndex("ix", ("a",), unique=True)
        index.backfill(iter([(1, {"a": None}), (2, {"a": None}), (3, {"a": 1})]))
        assert len(index) == 3


class TestRangeAccess:
    def rows(self):
        return [(rid, {"a": value}) for rid, value in
                [(1, 5), (2, 3), (3, 8), (4, 3), (5, None), (6, 1)]]

    def test_inclusive_and_exclusive_bounds(self):
        index = make_index(self.rows())
        assert index.range_rids(low=3, high=5) == [2, 4, 1]
        assert index.range_rids(low=3, high=5, incl_low=False) == [1]
        assert index.range_rids(low=3, high=5, incl_high=False) == [2, 4]
        assert index.range_rids(low=3, high=3) == [2, 4]

    def test_unbounded_sides(self):
        index = make_index(self.rows())
        assert index.range_rids(low=5) == [1, 3, 5]  # NULL sorts past numbers
        assert index.range_rids(high=3) == [6, 2, 4]
        assert index.range_rids() == [6, 2, 4, 1, 3, 5]

    def test_equality_prefix_slice(self):
        rows = [(1, {"a": 1, "b": 9}), (2, {"a": 1, "b": 2}),
                (3, {"a": 2, "b": 1}), (4, {"a": 1, "b": 5})]
        index = make_index(rows, columns=("a", "b"))
        assert index.range_rids(prefix=(1,)) == [2, 4, 1]
        assert index.range_rids(prefix=(1,), low=3, high=9, incl_high=False) == [4]
        assert index.range_rids(prefix=(2,)) == [3]
        assert index.range_rids(prefix=(3,)) == []

    def test_duplicate_keys_keep_rid_order(self):
        index = make_index([(9, {"a": 1}), (2, {"a": 1}), (5, {"a": 1})])
        assert index.range_rids(low=1, high=1) == [2, 5, 9]


class TestOrderedIteration:
    def test_forward_is_entry_order(self):
        index = make_index([(1, {"a": "b"}), (2, {"a": 2}), (3, {"a": None}),
                            (4, {"a": 1}), (5, {"a": "a"})])
        assert list(index.ordered_rids()) == [4, 2, 5, 1, 3]

    def test_reverse_keeps_rank_classes_and_rid_ties(self):
        # DESC order: numbers descending, then text descending, NULLs last
        # — and equal keys stay in ascending-rid (stable-sort) order
        index = make_index([(1, {"a": "b"}), (2, {"a": 2}), (3, {"a": None}),
                            (4, {"a": 1}), (5, {"a": "a"}), (6, {"a": 2})])
        assert list(index.ordered_rids(reverse=True)) == [2, 6, 4, 1, 5, 3]

    def test_reverse_within_slice_and_prefix(self):
        rows = [(1, {"a": 1, "b": 3}), (2, {"a": 1, "b": 7}),
                (3, {"a": 1, "b": 3}), (4, {"a": 2, "b": 9})]
        index = make_index(rows, columns=("a", "b"))
        start, end = index.slice_bounds((1,))
        assert list(index.ordered_rids(True, start, end, (1,))) == [2, 1, 3]


class TestHeapIntegration:
    def heap_with_btree(self):
        heap = HeapTable("t")
        for value in (5, 3, None, 3):
            heap.insert({"a": value, "b": "x"})
        index = SortedIndex("ix", ("a",))
        heap.add_index(index)
        return heap, index

    def test_backfill_then_maintenance(self):
        heap, index = self.heap_with_btree()
        assert index.range_rids(low=3, high=5) == [2, 4, 1]
        rid = heap.insert({"a": 4, "b": "y"})
        assert index.range_rids(low=3, high=5) == [2, 4, rid, 1]
        heap.delete(2)
        assert index.range_rids(low=3, high=5) == [4, rid, 1]
        heap.update(4, {"a": 9, "b": "x"})
        assert index.range_rids(low=3, high=5) == [rid, 1]

    def test_add_unique_index_rolls_back_on_violation(self):
        heap = HeapTable("t")
        heap.insert({"a": 1})
        heap.insert({"a": 1})
        with pytest.raises(UniqueViolation):
            heap.add_index(SortedIndex("u", ("a",), unique=True))
        assert "u" not in heap.indexes

    def test_rename_column_tracked_by_both_kinds(self):
        heap = HeapTable("t")
        heap.insert({"a": 1})
        heap.add_index(SortedIndex("s", ("a",)))
        heap.add_index(HashIndex("h", ("a",)))
        heap.rename_column("a", "z")
        assert heap.indexes["s"].columns == ("z",)
        assert heap.indexes["h"].columns == ("z",)
        assert heap.indexes["s"].probe((1,)) == {1}
        assert heap.indexes["h"].probe((1,)) == {1}

    def test_find_index_prefers_hash(self):
        heap = HeapTable("t")
        heap.add_index(SortedIndex("s", ("a",)))
        heap.add_index(HashIndex("h", ("a",)))
        assert heap.find_index(("a",)).name == "h"
        heap.drop_index("h")
        assert heap.find_index(("a",)).name == "s"


class TestNodeSplitsAndMerges:
    """The B+tree shape under mutation: every scenario drives the index
    through enough entries to force multi-level splits (several times the
    fanout), checks the full structural invariant set (`check_invariants`:
    fill bounds, equal leaf depth, subtree sizes, separator partitions),
    and confirms the logical contents stayed a sorted array."""

    N = BTREE_FANOUT * 6 + 17  # three levels deep, with a ragged tail

    def expected(self, rows):
        return sorted((ordering_key((row["a"],)), rid) for rid, row in rows)

    def contents(self, index):
        return list(index._iter_entries(0, len(index)))

    def fill(self, order):
        index = SortedIndex("ix", ("a",))
        rows = [(rid, {"a": value}) for rid, value in order]
        for rid, row in rows:
            index.insert(rid, row)
            index.check_invariants()
        assert self.contents(index) == self.expected(rows)
        return index, rows

    def test_ascending_insertion_splits(self):
        index, _ = self.fill((i, i) for i in range(self.N))
        assert len(index) == self.N

    def test_descending_insertion_splits(self):
        index, _ = self.fill((i, self.N - i) for i in range(self.N))
        assert len(index) == self.N

    def test_random_insertion_splits(self):
        rng = random.Random(8)
        values = list(range(self.N))
        rng.shuffle(values)
        index, _ = self.fill(enumerate(values))
        assert len(index) == self.N

    def test_duplicate_heavy_insertion(self):
        # dozens of rids per key: equal runs span node boundaries
        index, rows = self.fill((i, i % 5) for i in range(self.N))
        assert index.probe((3,)) == {
            rid for rid, row in rows if row["a"] == 3
        }

    def test_deletion_down_to_empty_ascending(self):
        index, rows = self.fill((i, i) for i in range(self.N))
        for rid, row in rows:
            index.remove(rid, row)
            index.check_invariants()
        assert len(index) == 0
        assert self.contents(index) == []
        # an emptied tree accepts inserts again
        index.insert(1, {"a": 9})
        assert index.probe((9,)) == {1}

    def test_deletion_down_to_empty_descending(self):
        index, rows = self.fill((i, i) for i in range(self.N))
        for rid, row in reversed(rows):
            index.remove(rid, row)
            index.check_invariants()
        assert len(index) == 0

    def test_deletion_down_to_empty_random(self):
        rng = random.Random(15)
        index, rows = self.fill((i, i % 7) for i in range(self.N))
        shuffled = list(rows)
        rng.shuffle(shuffled)
        for rid, row in shuffled:
            index.remove(rid, row)
            index.check_invariants()
        assert len(index) == 0

    def test_mixed_churn_matches_flat_model(self):
        rng = random.Random(77)
        index = SortedIndex("ix", ("a",))
        live = {}
        for step in range(self.N * 2):
            if rng.random() < 0.6 or not live:
                value = rng.choice([None, rng.randint(0, 40), "s%d" % (step % 9)])
                index.insert(step, {"a": value})
                live[step] = {"a": value}
            else:
                rid = rng.choice(list(live))
                index.remove(rid, live.pop(rid))
        index.check_invariants()
        assert self.contents(index) == self.expected(live.items())

    def test_bulk_load_shape_and_idempotent_reinsert(self):
        rows = [(i, {"a": (i * 13) % 101}) for i in range(self.N)]
        index = SortedIndex("ix", ("a",))
        index.bulk_load(rows)
        index.check_invariants()
        assert self.contents(index) == self.expected(rows)
        before = self.contents(index)
        index.insert(5, dict(rows[5][1]))  # same (key, rid): a no-op
        assert self.contents(index) == before
        assert len(index) == self.N


class TestBtreeDDL:
    @pytest.fixture
    def s(self):
        db = Database(owner="a")
        session = db.connect("a")
        session.execute("CREATE TABLE t (id INT PRIMARY KEY, a INT, b TEXT)")
        session.execute("INSERT INTO t VALUES (1, 5, 'x'), (2, 3, 'y')")
        return session

    def test_using_btree_builds_sorted_index(self, s):
        s.execute("CREATE INDEX ix ON t USING BTREE (a)")
        index = s.db.heap("t").indexes["ix"]
        assert isinstance(index, SortedIndex)
        assert s.db.catalog.index("ix").kind == "btree"
        assert "USING BTREE" in s.db.catalog.index("ix").describe()

    def test_using_hash_and_default_build_hash_index(self, s):
        s.execute("CREATE INDEX ih ON t USING HASH (a)")
        s.execute("CREATE INDEX id2 ON t (b)")
        assert isinstance(s.db.heap("t").indexes["ih"], HashIndex)
        assert isinstance(s.db.heap("t").indexes["id2"], HashIndex)
        assert s.db.catalog.index("ih").kind == "hash"

    def test_unknown_method_rejected(self, s):
        with pytest.raises(Exception):
            s.execute("CREATE INDEX ix ON t USING GIN (a)")

    def test_unique_btree_enforced_through_sql(self, s):
        s.execute("CREATE UNIQUE INDEX ux ON t USING BTREE (a)")
        with pytest.raises(UniqueViolation):
            s.execute("INSERT INTO t VALUES (3, 5, 'z')")
        with pytest.raises(UniqueViolation):
            s.execute("UPDATE t SET a = 5 WHERE id = 2")
        s.execute("INSERT INTO t VALUES (3, NULL, 'z')")  # NULLs exempt

    def test_create_index_rollback_detaches(self, s):
        s.execute("BEGIN")
        s.execute("CREATE INDEX ix ON t USING BTREE (a)")
        s.execute("ROLLBACK")
        assert "ix" not in s.db.heap("t").indexes
        assert "ix" not in s.db.catalog.indexes

    def test_drop_index_undo_reattaches_sorted(self, s):
        s.execute("CREATE INDEX ix ON t USING BTREE (a)")
        s.execute("BEGIN")
        s.execute("DROP INDEX ix")
        s.execute("ROLLBACK")
        index = s.db.heap("t").indexes["ix"]
        assert isinstance(index, SortedIndex)
        assert index.range_rids(low=3, high=5) == [2, 1]

    def test_parser_sqlgen_round_trip(self):
        sql = "CREATE UNIQUE INDEX IF NOT EXISTS ix ON t USING BTREE (a, b)"
        stmt = parse(sql)
        assert isinstance(stmt, ast.CreateIndexStatement)
        assert stmt.using == "BTREE"
        rendered = create_index_to_sql(stmt)
        assert parse(rendered) == stmt

    def test_round_trip_without_using_clause(self):
        stmt = parse("CREATE INDEX ix ON t (a)")
        assert stmt.using is None
        assert parse(create_index_to_sql(stmt)) == stmt
