"""Durability of ``USING BTREE`` indexes: snapshot, WAL replay, torn tail.

Sorted indexes persist as *definitions* (name/columns/unique/kind) in both
the snapshot and ``create_index`` WAL records; recovery rebuilds the
sorted arrays from rows via the bulk loader. These tests pin the whole
contract: a recovered database plans and executes the same range/ordered
scans as the one that crashed, and a torn ``create_index`` record is
discarded whole. ``ANALYZE`` statistics ride the same machinery — the
snapshot carries their computed payloads, ``analyze`` WAL records replay
without rescanning, and pre-statistics snapshots still open.
"""

from __future__ import annotations

import gc
import os

import pytest

from repro.minidb import Database, UniqueViolation
from repro.minidb.storage import SortedIndex


@pytest.fixture
def dbdir(tmp_path):
    return str(tmp_path / "db")


def reopen(path: str) -> Database:
    return Database.open(path)


def seeded(path: str) -> Database:
    db = Database.open(path)
    session = db.connect("admin")
    session.execute("CREATE TABLE t (id INT PRIMARY KEY, val INT, name TEXT)")
    session.execute(
        "INSERT INTO t VALUES (1, 30, 'a'), (2, 10, 'b'), (3, NULL, 'c'), "
        "(4, 20, 'd')"
    )
    session.execute("CREATE INDEX ix_val ON t USING BTREE (val)")
    return db


class TestSnapshotRoundTrip:
    def test_kind_and_order_survive_checkpointed_reopen(self, dbdir):
        db = seeded(dbdir)
        db.checkpoint()
        db.close()
        db2 = reopen(dbdir)
        index = db2.heap("t").indexes["ix_val"]
        assert isinstance(index, SortedIndex)
        assert db2.catalog.index("ix_val").kind == "btree"
        assert index.range_rids(low=10, high=25) == [2, 4]
        db2.close()

    def test_recovered_planner_uses_range_and_ordered_scans(self, dbdir):
        seeded(dbdir).close()
        db2 = reopen(dbdir)
        session = db2.connect("admin")
        plan = session.execute(
            "EXPLAIN SELECT * FROM t WHERE val >= 10 AND val < 25"
        ).rows[0][0]
        assert "Index Range Scan using ix_val on t" in plan
        assert session.execute(
            "SELECT id FROM t WHERE val >= 10 AND val < 25"
        ).rows == [(2,), (4,)]
        assert session.execute(
            "SELECT id FROM t ORDER BY val LIMIT 2"
        ).rows == [(2,), (4,)]
        assert db2.planner_stats["range_scans"] == 1
        assert db2.planner_stats["ordered_scans"] == 1
        db2.close()

    def test_pre_kind_snapshot_defaults_to_hash(self, dbdir):
        # forward-compat check for PR-3/4 directories: index dumps without
        # a "kind" field must come back as hash indexes
        import json

        db = seeded(dbdir)
        db.checkpoint()
        db.close()
        snapshot_path = os.path.join(dbdir, "snapshot.json")
        with open(snapshot_path) as fh:
            data = json.load(fh)
        for table in data["tables"]:
            for index in table["indexes"]:
                index.pop("kind", None)
        for index in data["indexes"]:
            index.pop("kind", None)
        with open(snapshot_path, "w") as fh:
            json.dump(data, fh)
        db2 = reopen(dbdir)
        assert db2.catalog.index("ix_val").kind == "hash"
        assert not isinstance(db2.heap("t").indexes["ix_val"], SortedIndex)
        db2.close()


class TestStatisticsDurability:
    SKEWED_ROWS = 400

    def skewed(self, path: str) -> Database:
        """90% of ``hot`` is 0 while ``val`` stays ~unique: statically the
        hash probe on hot wins, with statistics the range slice must."""
        db = Database.open(path)
        session = db.connect("admin")
        session.execute("CREATE TABLE k (id INT PRIMARY KEY, hot INT, val INT)")
        heap = db.heap("k")
        for i in range(self.SKEWED_ROWS):
            heap.insert(
                {
                    "id": i,
                    "hot": i if i % 10 == 0 else 0,
                    "val": (i * 7919) % self.SKEWED_ROWS,
                }
            )
        session.execute("CREATE INDEX ix_hot ON k (hot)")
        session.execute("CREATE INDEX ix_kval ON k USING BTREE (val)")
        return db

    SKEW_SQL = "SELECT COUNT(*) FROM k WHERE hot = 0 AND val >= 100 AND val < 120"

    def assert_cost_based(self, db: Database) -> None:
        plan = db.connect("admin").execute(
            f"EXPLAIN {self.SKEW_SQL}"
        ).rows[0][0]
        assert "Index Range Scan using ix_kval" in plan
        assert "est. rows" in plan

    def test_analyze_survives_checkpointed_reopen(self, dbdir):
        db = self.skewed(dbdir)
        db.connect("admin").execute("ANALYZE k")
        db.checkpoint()
        db.close()
        db2 = reopen(dbdir)
        stats = db2.catalog.statistics["k"]
        assert stats.row_count == self.SKEWED_ROWS
        # the snapshot restores the exact payload, uid stamp included, so
        # recovered statistics still drive cost-based planning
        assert stats.uid == db2.heap("k").uid
        self.assert_cost_based(db2)
        db2.close()

    def test_analyze_replays_from_wal_after_crash(self, dbdir):
        db = self.skewed(dbdir)
        db.checkpoint()
        db.connect("admin").execute("ANALYZE k")
        del db  # simulated crash: the analyze record only lives in the WAL
        gc.collect()
        db2 = reopen(dbdir)
        # replay restores the *computed* statistics payload — never rescans
        assert db2.catalog.statistics["k"].row_count == self.SKEWED_ROWS
        self.assert_cost_based(db2)
        db2.close()

    def test_rolled_back_analyze_not_durable(self, dbdir):
        db = self.skewed(dbdir)
        session = db.connect("admin")
        session.execute("BEGIN")
        session.execute("ANALYZE k")
        session.execute("ROLLBACK")
        db.close()
        db2 = reopen(dbdir)
        assert "k" not in db2.catalog.statistics
        db2.close()

    def test_pre_statistics_snapshot_opens_and_replans(self, dbdir):
        # PR-7-and-earlier snapshots have no "statistics" key: they must
        # open cleanly and plan by static preference until ANALYZE runs
        import json

        db = self.skewed(dbdir)
        db.connect("admin").execute("ANALYZE k")
        db.checkpoint()
        db.close()
        snapshot_path = os.path.join(dbdir, "snapshot.json")
        with open(snapshot_path) as fh:
            data = json.load(fh)
        del data["statistics"]
        with open(snapshot_path, "w") as fh:
            json.dump(data, fh)
        db2 = reopen(dbdir)
        assert db2.catalog.statistics == {}
        session = db2.connect("admin")
        plan = session.execute(f"EXPLAIN {self.SKEW_SQL}").rows[0][0]
        assert "Index Scan using ix_hot" in plan
        assert "est. rows" not in plan
        # a fresh ANALYZE restores cost-based planning
        session.execute("ANALYZE k")
        self.assert_cost_based(db2)
        db2.close()


class TestWalReplay:
    def test_create_index_after_checkpoint_survives_crash(self, dbdir):
        db = Database.open(dbdir)
        session = db.connect("admin")
        session.execute("CREATE TABLE t (id INT PRIMARY KEY, val INT)")
        session.execute("INSERT INTO t VALUES (1, 5), (2, 3)")
        db.checkpoint()
        session.execute("INSERT INTO t VALUES (3, 9)")
        session.execute("CREATE UNIQUE INDEX ux ON t USING BTREE (val)")
        del db, session  # simulated crash: no close(), no checkpoint
        gc.collect()
        db2 = reopen(dbdir)
        index = db2.heap("t").indexes["ux"]
        assert isinstance(index, SortedIndex)
        assert index.unique
        assert index.range_rids() == [2, 1, 3]
        # the rebuilt unique index still enforces
        with pytest.raises(UniqueViolation):
            db2.connect("admin").execute("INSERT INTO t VALUES (4, 9)")
        db2.close()

    def test_dropped_btree_stays_dropped(self, dbdir):
        db = seeded(dbdir)
        db.connect("admin").execute("DROP INDEX ix_val")
        del db  # simulated crash
        gc.collect()
        db2 = reopen(dbdir)
        assert "ix_val" not in db2.heap("t").indexes
        assert "ix_val" not in db2.catalog.indexes
        db2.close()

    def test_rolled_back_create_index_not_durable(self, dbdir):
        db = seeded(dbdir)
        session = db.connect("admin")
        session.execute("BEGIN")
        session.execute("CREATE INDEX ix2 ON t USING BTREE (name)")
        session.execute("ROLLBACK")
        db.close()
        db2 = reopen(dbdir)
        assert "ix2" not in db2.heap("t").indexes
        db2.close()

    def test_index_tracks_post_checkpoint_dml(self, dbdir):
        db = seeded(dbdir)
        db.checkpoint()
        session = db.connect("admin")
        session.execute("INSERT INTO t VALUES (5, 15, 'e')")
        session.execute("DELETE FROM t WHERE id = 2")
        session.execute("UPDATE t SET val = 40 WHERE id = 4")
        del db, session  # simulated crash
        gc.collect()
        db2 = reopen(dbdir)
        index = db2.heap("t").indexes["ix_val"]
        assert index.range_rids(low=0, high=100) == [5, 1, 4]
        db2.close()


class TestTornTail:
    def test_torn_create_index_discarded_whole(self, dbdir):
        db = seeded(dbdir)
        db.checkpoint()
        session = db.connect("admin")
        session.execute("CREATE INDEX ix2 ON t USING BTREE (name)")
        db.close()
        wal_path = os.path.join(dbdir, "wal.jsonl")
        with open(wal_path, "rb") as fh:
            data = fh.read()
        # tear the final (create_index) record a few bytes short of its
        # newline: recovery must truncate it, not half-apply it
        with open(wal_path, "wb") as fh:
            fh.write(data[:-3])
        db2 = reopen(dbdir)
        assert "ix2" not in db2.heap("t").indexes
        assert "ix2" not in db2.catalog.indexes
        # the surviving snapshot-borne index still works
        assert db2.heap("t").indexes["ix_val"].range_rids(low=10, high=30) == [
            2, 4, 1,
        ]
        db2.close()

    def test_torn_analyze_discarded_whole(self, dbdir):
        db = seeded(dbdir)
        db.checkpoint()
        db.connect("admin").execute("ANALYZE t")
        db.close()
        wal_path = os.path.join(dbdir, "wal.jsonl")
        with open(wal_path, "rb") as fh:
            data = fh.read()
        with open(wal_path, "wb") as fh:
            fh.write(data[:-3])
        db2 = reopen(dbdir)
        assert "t" not in db2.catalog.statistics
        db2.close()

    def test_garbage_tail_after_create_index(self, dbdir):
        db = seeded(dbdir)
        db.checkpoint()
        session = db.connect("admin")
        session.execute("CREATE INDEX ix2 ON t USING BTREE (name)")
        db.close()
        wal_path = os.path.join(dbdir, "wal.jsonl")
        with open(wal_path, "ab") as fh:
            fh.write(b'{"seq": not json\n')
        db2 = reopen(dbdir)
        # the complete create_index record replays; the garbage is gone
        assert isinstance(db2.heap("t").indexes["ix2"], SortedIndex)
        with open(wal_path, "rb") as fh:
            assert b"not json" not in fh.read()
        db2.close()
