"""Tests for the privilege system and static SQL analysis."""

import pytest

from repro.minidb import Database, PermissionDenied, analyze, parse
from repro.minidb.privileges import PrivilegeManager


@pytest.fixture
def db():
    database = Database(owner="admin")
    admin = database.connect("admin")
    admin.execute("CREATE TABLE sales (id INT PRIMARY KEY, amount FLOAT, region TEXT)")
    admin.execute("CREATE TABLE salaries (id INT PRIMARY KEY, who TEXT, pay FLOAT)")
    admin.execute("INSERT INTO sales VALUES (1, 10.0, 'west'), (2, 20.0, 'east')")
    admin.execute("INSERT INTO salaries VALUES (1, 'alice', 9000.0)")
    database.create_user("analyst")
    database.create_user("clerk")
    return database


@pytest.fixture
def admin(db):
    return db.connect("admin")


class TestPrivilegeManagerUnit:
    def test_owner_has_everything(self):
        pm = PrivilegeManager("root")
        assert pm.allows("root", "DROP", "anything")

    def test_unknown_user_denied(self):
        pm = PrivilegeManager("root")
        assert not pm.allows("ghost", "SELECT", "t")

    def test_grant_and_check(self):
        pm = PrivilegeManager("root")
        pm.grant("u", "SELECT", "t")
        assert pm.allows("u", "SELECT", "t")
        assert not pm.allows("u", "INSERT", "t")

    def test_grant_all_expands(self):
        pm = PrivilegeManager("root")
        pm.grant("u", "ALL", "t")
        for action in ("SELECT", "INSERT", "UPDATE", "DELETE", "CREATE", "DROP", "ALTER"):
            assert pm.allows("u", action, "t")

    def test_revoke(self):
        pm = PrivilegeManager("root")
        pm.grant("u", "SELECT", "t")
        pm.revoke("u", "SELECT", "t")
        assert not pm.allows("u", "SELECT", "t")

    def test_wildcard_object_grant(self):
        pm = PrivilegeManager("root")
        pm.grant("u", "SELECT", "*")
        assert pm.allows("u", "SELECT", "whatever")

    def test_public_grants_apply_to_all(self):
        pm = PrivilegeManager("root")
        pm.create_user("u")
        pm.grant("public", "SELECT", "t")
        assert pm.allows("u", "SELECT", "t")

    def test_column_level_grant(self):
        pm = PrivilegeManager("root")
        pm.grant("u", "SELECT", "t", columns=["a", "b"])
        assert pm.allows("u", "SELECT", "t", {"a"})
        assert pm.allows("u", "SELECT", "t", {"a", "b"})
        assert not pm.allows("u", "SELECT", "t", {"a", "c"})
        # whole-object access not allowed with only a column grant
        assert not pm.allows("u", "SELECT", "t", None)

    def test_column_restrictions_reporting(self):
        pm = PrivilegeManager("root")
        pm.grant("u", "SELECT", "t", columns=["a"])
        pm.grant("u", "SELECT", "t", columns=["b"])
        assert pm.column_restrictions("u", "SELECT", "t") == {"a", "b"}
        pm.grant("u", "SELECT", "t")
        assert pm.column_restrictions("u", "SELECT", "t") is None

    def test_actions_on(self):
        pm = PrivilegeManager("root")
        pm.grant("u", "SELECT", "t")
        pm.grant("u", "INSERT", "t")
        assert pm.actions_on("u", "t") == {"SELECT", "INSERT"}

    def test_accessible_objects_filter(self):
        pm = PrivilegeManager("root")
        pm.grant("u", "SELECT", "a")
        assert pm.accessible_objects("u", ["a", "b"]) == ["a"]

    def test_check_raises_with_detail(self):
        pm = PrivilegeManager("root")
        pm.create_user("u")
        with pytest.raises(PermissionDenied, match="SELECT on t"):
            pm.check("u", "SELECT", "t")


class TestDatabaseEnforcement:
    def test_select_requires_grant(self, db, admin):
        analyst = db.connect("analyst")
        with pytest.raises(PermissionDenied):
            analyst.execute("SELECT * FROM sales")
        admin.execute("GRANT SELECT ON sales TO analyst")
        assert analyst.scalar("SELECT COUNT(*) FROM sales") == 2

    def test_write_requires_grant(self, db, admin):
        admin.execute("GRANT SELECT ON sales TO analyst")
        analyst = db.connect("analyst")
        with pytest.raises(PermissionDenied):
            analyst.execute("INSERT INTO sales VALUES (3, 1.0, 'n')")
        with pytest.raises(PermissionDenied):
            analyst.execute("UPDATE sales SET amount = 0")
        with pytest.raises(PermissionDenied):
            analyst.execute("DELETE FROM sales")

    def test_join_requires_grants_on_both_tables(self, db, admin):
        admin.execute("GRANT SELECT ON sales TO analyst")
        analyst = db.connect("analyst")
        with pytest.raises(PermissionDenied):
            analyst.execute(
                "SELECT s.amount, p.pay FROM sales s JOIN salaries p ON s.id = p.id"
            )

    def test_subquery_tables_checked(self, db, admin):
        admin.execute("GRANT SELECT ON sales TO analyst")
        analyst = db.connect("analyst")
        with pytest.raises(PermissionDenied):
            analyst.execute(
                "SELECT * FROM sales WHERE id IN (SELECT id FROM salaries)"
            )

    def test_column_level_enforcement(self, db, admin):
        admin.execute("GRANT SELECT (region) ON sales TO clerk")
        clerk = db.connect("clerk")
        assert clerk.execute("SELECT region FROM sales").rowcount == 2
        with pytest.raises(PermissionDenied):
            clerk.execute("SELECT amount FROM sales")
        with pytest.raises(PermissionDenied):
            clerk.execute("SELECT * FROM sales")

    def test_update_column_grant(self, db, admin):
        admin.execute("GRANT UPDATE (amount) ON sales TO clerk")
        admin.execute("GRANT SELECT ON sales TO clerk")
        clerk = db.connect("clerk")
        clerk.execute("UPDATE sales SET amount = 0 WHERE id = 1")
        with pytest.raises(PermissionDenied):
            clerk.execute("UPDATE sales SET region = 'x' WHERE id = 1")

    def test_grant_only_by_owner(self, db, admin):
        admin.execute("GRANT SELECT ON sales TO analyst")
        analyst = db.connect("analyst")
        with pytest.raises(PermissionDenied):
            analyst.execute("GRANT SELECT ON sales TO clerk")

    def test_drop_requires_privilege(self, db, admin):
        admin.execute("GRANT SELECT ON sales TO analyst")
        analyst = db.connect("analyst")
        with pytest.raises(PermissionDenied):
            analyst.execute("DROP TABLE sales")

    def test_create_is_database_wide(self, db, admin):
        analyst = db.connect("analyst")
        with pytest.raises(PermissionDenied):
            analyst.execute("CREATE TABLE mine (x INT)")
        admin.execute("GRANT CREATE ON * TO analyst")
        analyst.execute("CREATE TABLE mine (x INT)")

    def test_unknown_user_cannot_connect(self, db):
        with pytest.raises(PermissionDenied):
            db.connect("ghost")

    def test_transaction_control_needs_no_privilege(self, db):
        analyst = db.connect("analyst")
        analyst.execute("BEGIN")
        analyst.execute("ROLLBACK")


class TestStatementAnalysis:
    def test_select_objects_and_columns(self):
        stmt = parse("SELECT a, b FROM t WHERE c > 1")
        analysis = analyze(stmt)
        assert analysis.action == "SELECT"
        assert analysis.is_read_only
        access = analysis.accesses[0]
        assert access.obj == "t"
        assert access.columns == {"a", "b", "c"}

    def test_select_star_claims_whole_object(self):
        analysis = analyze(parse("SELECT * FROM t"))
        assert analysis.accesses[0].whole_object

    def test_join_collects_all_tables(self):
        analysis = analyze(parse(
            "SELECT t.a FROM t JOIN u ON t.id = u.id WHERE u.x = 1"
        ))
        assert set(analysis.objects()) == {"t", "u"}

    def test_qualified_columns_attributed_to_alias_table(self):
        analysis = analyze(parse("SELECT e.a FROM emp e"))
        access = analysis.accesses[0]
        assert access.obj == "emp"
        assert access.columns == {"a"}

    def test_insert_analysis(self):
        analysis = analyze(parse("INSERT INTO t (a, b) VALUES (1, 2)"))
        assert analysis.action == "INSERT"
        assert not analysis.is_read_only
        assert analysis.accesses[0].columns == {"a", "b"}

    def test_insert_without_columns_needs_whole_object(self):
        assert analyze(parse("INSERT INTO t VALUES (1)")).accesses[0].whole_object

    def test_insert_select_includes_source(self):
        analysis = analyze(parse("INSERT INTO t SELECT * FROM u"))
        actions = {(a.action, a.obj) for a in analysis.accesses}
        assert ("INSERT", "t") in actions
        assert ("SELECT", "u") in actions

    def test_update_read_and_write_columns(self):
        analysis = analyze(parse("UPDATE t SET a = b + 1 WHERE c = 2"))
        update = next(a for a in analysis.accesses if a.action == "UPDATE")
        select = next(a for a in analysis.accesses if a.action == "SELECT")
        assert update.columns == {"a"}
        assert select.columns == {"b", "c"}

    def test_delete_analysis(self):
        analysis = analyze(parse("DELETE FROM t WHERE x = 1"))
        assert analysis.action == "DELETE"
        assert analysis.accesses[0].action == "DELETE"

    def test_ddl_flags(self):
        assert analyze(parse("CREATE TABLE t (a INT)")).is_ddl
        assert analyze(parse("DROP TABLE t")).is_ddl
        assert analyze(parse("ALTER TABLE t RENAME TO u")).is_ddl

    def test_create_table_with_fk_reads_referenced(self):
        analysis = analyze(parse(
            "CREATE TABLE t (a INT, FOREIGN KEY (a) REFERENCES u(id))"
        ))
        actions = {(a.action, a.obj) for a in analysis.accesses}
        assert ("SELECT", "u") in actions

    def test_transaction_control_flagged(self):
        assert analyze(parse("BEGIN")).is_transaction_control
        assert analyze(parse("COMMIT")).is_transaction_control

    def test_correlated_subquery_attribution(self):
        analysis = analyze(parse(
            "SELECT name FROM dept d WHERE EXISTS "
            "(SELECT 1 FROM emp e WHERE e.dept_id = d.id)"
        ))
        objects = set(analysis.objects())
        assert {"dept", "emp"} <= objects

    def test_set_op_both_sides(self):
        analysis = analyze(parse("SELECT a FROM t UNION SELECT b FROM u"))
        assert set(analysis.objects()) == {"t", "u"}
