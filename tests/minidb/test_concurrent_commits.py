"""Durability under concurrency: WAL ordering, recovery, lock stealing.

Covers the two concurrency-hardening changes in the durable engine:

* ``append_commit`` serializes sequence allocation and the physical
  write, so the WAL of a multi-threaded run is strictly increasing in
  ``seq``, batch-atomic, and replays to exactly the live state;
* stale-``LOCK`` takeover is atomic (rename-aside + pid re-check), so
  two processes racing to steal a dead owner's lock cannot both win.
"""

import json
import os
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.minidb import Database
from repro.minidb.engines.durable import DurableEngine
from repro.minidb.errors import PersistenceError
from repro.service import SessionManager


def read_wal(path):
    records = []
    with open(os.path.join(path, "wal.jsonl"), "r", encoding="utf-8") as fh:
        for line in fh:
            records.append(json.loads(line))
    return records


class TestConcurrentCommitOrdering:
    @settings(max_examples=8, deadline=None)
    @given(
        threads=st.integers(min_value=2, max_value=5),
        rows_per_thread=st.integers(min_value=3, max_value=12),
    )
    def test_wal_seq_strictly_increasing_and_recovery_matches(
        self, tmp_path_factory, threads, rows_per_thread
    ):
        """N sessions commit concurrently (each into its own table, so the
        heap traffic genuinely overlaps); the WAL must come out strictly
        sequential and batch-terminated, and a reopened database must
        equal the live one exactly."""
        path = str(
            tmp_path_factory.mktemp("wal") / f"db-{threads}-{rows_per_thread}"
        )
        db = Database.open(path, auto_checkpoint_records=0)
        admin = db.connect("admin")
        for n in range(threads):
            admin.execute(f"CREATE TABLE t{n} (id INT PRIMARY KEY, v TEXT)")
        SessionManager(db)  # installs the lock manager

        failures = []

        def writer(index):
            session = db.connect("admin")
            try:
                for row in range(rows_per_thread):
                    session.execute(
                        f"INSERT INTO t{index} VALUES ({row}, 'w{index}r{row}')"
                    )
                session.execute("BEGIN")
                session.execute(
                    f"UPDATE t{index} SET v = 'batch' WHERE id = 0"
                )
                session.execute(
                    f"INSERT INTO t{index} VALUES (10000, 'tail{index}')"
                )
                session.execute("COMMIT")
            except Exception as exc:  # pragma: no cover - diagnostic
                failures.append(exc)

        workers = [
            threading.Thread(target=writer, args=(n,), daemon=True)
            for n in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120.0)
        assert not failures
        live_state = db.snapshot()

        records = read_wal(path)
        seqs = [record["seq"] for record in records]
        # strictly increasing AND contiguous: no interleaved or lost seq
        assert seqs == list(range(seqs[0], seqs[0] + len(seqs)))
        # every batch is commit-terminated (replayability invariant)
        assert records[-1].get("commit") is True

        db.close()
        reopened = Database.open(path)
        assert reopened.snapshot() == live_state
        # per-table row counts: all commits landed, none duplicated
        for n in range(threads):
            assert reopened.table_row_count(f"t{n}") == rows_per_thread + 1
        reopened.close()

    def test_interleaved_commit_batches_replay_whole(self, tmp_path):
        """Two sessions' explicit transactions commit back to back from
        different threads; each batch must replay atomically."""
        path = str(tmp_path / "db")
        db = Database.open(path, auto_checkpoint_records=0)
        admin = db.connect("admin")
        admin.execute("CREATE TABLE a (id INT PRIMARY KEY)")
        admin.execute("CREATE TABLE b (id INT PRIMARY KEY)")
        SessionManager(db)
        barrier = threading.Barrier(2)

        def batch(table):
            session = db.connect("admin")
            barrier.wait(timeout=30.0)
            session.execute("BEGIN")
            for n in range(20):
                session.execute(f"INSERT INTO {table} VALUES ({n})")
            session.execute("COMMIT")

        threads = [
            threading.Thread(target=batch, args=(t,), daemon=True)
            for t in ("a", "b")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)

        records = read_wal(path)
        # a batch's records must be contiguous in the file: once a batch
        # starts, no foreign record appears until its commit marker
        current_table = None
        for record in records:
            if record["op"] != "insert":
                continue
            if current_table is None:
                current_table = record["table"]
            assert record["table"] == current_table
            if record.get("commit"):
                current_table = None
        db.close()
        reopened = Database.open(path)
        assert reopened.table_row_count("a") == 20
        assert reopened.table_row_count("b") == 20
        reopened.close()


class TestLockStealRace:
    """Regression: two engines racing to steal one stale LOCK file."""

    @staticmethod
    def fake_process_engine(path, pid, live_pids):
        """An engine that believes it runs as ``pid`` and can see which
        of ``live_pids`` are alive (simulating separate processes in one
        test process)."""
        engine = DurableEngine(path)
        engine._pid = lambda: pid
        engine._pid_alive = lambda candidate: candidate in live_pids
        return engine

    def test_forced_interleaving_single_winner(self, tmp_path):
        """Both contenders observe the stale lock *before* either steals
        (the exact double-win interleaving of the old unlink+create
        protocol); exactly one may end up owning the directory."""
        path = str(tmp_path)
        dead_pid = 999_999_999
        with open(os.path.join(path, "LOCK"), "w") as fh:
            fh.write(f"{dead_pid}\n")

        live = {111, 222}
        engine_a = self.fake_process_engine(path, 111, live)
        engine_b = self.fake_process_engine(path, 222, live)

        barrier = threading.Barrier(2)
        for engine in (engine_a, engine_b):
            original = engine._steal_stale_lock

            def synced_steal(original=original):
                # force both contenders to the steal point together
                try:
                    barrier.wait(timeout=10.0)
                except threading.BrokenBarrierError:
                    pass  # the loser already errored out of its loop
                return original()

            engine._steal_stale_lock = synced_steal

        outcomes = {}

        def contend(name, engine):
            try:
                engine._acquire_lock()
                outcomes[name] = "acquired"
            except PersistenceError:
                outcomes[name] = "refused"

        threads = [
            threading.Thread(target=contend, args=("a", engine_a), daemon=True),
            threading.Thread(target=contend, args=("b", engine_b), daemon=True),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)

        assert sorted(outcomes.values()) == ["acquired", "refused"]
        # the lock file names the winner
        with open(os.path.join(path, "LOCK")) as fh:
            owner = int(fh.read().strip())
        winner = next(n for n, o in outcomes.items() if o == "acquired")
        assert owner == {"a": 111, "b": 222}[winner]
        # no stale-aside litter left behind
        assert [n for n in os.listdir(path) if n.startswith("LOCK.stale")] == []

    def test_steal_restores_lock_that_went_live_under_us(self, tmp_path):
        """If the lock's owner becomes live between the staleness read and
        the rename, the steal must put the live lock back and the acquire
        must refuse."""
        path = str(tmp_path)
        live_owner = 333
        # the engine's lock records are newline-terminated; an unterminated
        # pid would read as torn and be stolen without the liveness check
        with open(os.path.join(path, "LOCK"), "w") as fh:
            fh.write(f"{live_owner}\n")

        engine = self.fake_process_engine(path, 111, {111, 333})
        # engine initially believes 333 is dead (simulates the stale read),
        # but the aside re-check sees it alive
        liveness = {"checks": 0}

        def flaky_alive(candidate):
            if candidate == live_owner:
                liveness["checks"] += 1
                return liveness["checks"] > 1  # dead on first look, then live
            return candidate == 111

        engine._pid_alive = flaky_alive
        with pytest.raises(PersistenceError, match="locked by running process"):
            engine._acquire_lock()
        # the live owner's lock survived the attempted steal
        with open(os.path.join(path, "LOCK")) as fh:
            assert int(fh.read().strip()) == live_owner

    def test_plain_stale_steal_still_works(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database.open(path)
        db.connect("admin").execute("CREATE TABLE t (id INT PRIMARY KEY)")
        db.close()
        # a dead process's lock lingers
        with open(os.path.join(path, "LOCK"), "w") as fh:
            fh.write("999999999\n")
        reopened = Database.open(path)  # steals and recovers
        assert reopened.table_row_count("t") == 0
        reopened.close()
