"""Durable storage engine: WAL + snapshot persistence and crash recovery.

Covers the PR-3 tentpole contract end to end:

* kill-and-reopen round trips restore tables, rows, secondary indexes,
  views, users/grants, rid counters, and ``(uid, version)`` change
  counters exactly;
* rolled-back transactions never reach disk;
* a torn final WAL record (crash mid-append) is detected and truncated,
  never half-applied — verified at *every byte boundary* of the final
  record, against an independent shadow replay of the WAL;
* checkpoints compact the WAL atomically and refuse to run while a
  transaction holds uncommitted changes in the heaps.
"""

from __future__ import annotations

import json
import os
import shutil

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.minidb import (
    Database,
    PersistenceError,
    TransactionError,
    UniqueViolation,
)


def reopen(path: str) -> Database:
    return Database.open(path)


@pytest.fixture
def dbdir(tmp_path):
    return str(tmp_path / "db")


def seeded(path: str) -> Database:
    db = Database.open(path)
    session = db.connect("admin")
    session.execute(
        "CREATE TABLE items (id INT PRIMARY KEY, name TEXT, qty INT DEFAULT 0)"
    )
    session.execute(
        "INSERT INTO items VALUES (1, 'alpha', 5), (2, 'beta', 7)"
    )
    return db


class TestRoundTrip:
    def test_rows_and_schema_survive_reopen(self, dbdir):
        db = seeded(dbdir)
        expected = db.snapshot()
        db.close()
        db2 = reopen(dbdir)
        assert db2.snapshot() == expected
        schema = db2.catalog.table("items")
        assert schema.column_names() == ["id", "name", "qty"]
        assert schema.primary_key == ("id",)
        assert schema.column("qty").default == 0

    def test_counters_restored_exactly(self, dbdir):
        db = seeded(dbdir)
        heap = db.heap("items")
        uid, version, next_rid = heap.uid, heap.version, heap._next_rid
        db.close()
        heap2 = reopen(dbdir).heap("items")
        assert (heap2.uid, heap2.version, heap2._next_rid) == (
            uid, version, next_rid,
        )

    def test_crash_without_close_is_durable(self, dbdir):
        db = seeded(dbdir)
        expected = db.snapshot()
        del db  # simulated crash: no close(), no checkpoint
        assert reopen(dbdir).snapshot() == expected

    def test_rolled_back_transaction_not_durable(self, dbdir):
        db = seeded(dbdir)
        session = db.connect("admin")
        session.execute("BEGIN")
        session.execute("INSERT INTO items VALUES (3, 'ghost', 0)")
        session.execute("UPDATE items SET qty = 99 WHERE id = 1")
        session.execute("ROLLBACK")
        session.execute("INSERT INTO items VALUES (4, 'real', 1)")
        db.close()
        rows = reopen(dbdir).snapshot()["items"]
        names = [row["name"] for row in rows]
        assert "ghost" not in names
        assert "real" in names
        assert rows[0]["qty"] == 5

    def test_failed_statement_not_durable(self, dbdir):
        db = seeded(dbdir)
        session = db.connect("admin")
        with pytest.raises(UniqueViolation):
            # second row violates the PK: the whole statement rolls back
            session.execute(
                "INSERT INTO items VALUES (3, 'partial', 0), (1, 'dup', 0)"
            )
        db.close()
        names = [r["name"] for r in reopen(dbdir).snapshot()["items"]]
        assert "partial" not in names

    def test_savepoint_partial_rollback_durable(self, dbdir):
        db = seeded(dbdir)
        session = db.connect("admin")
        session.execute("BEGIN")
        session.execute("INSERT INTO items VALUES (3, 'kept', 0)")
        session.execute("SAVEPOINT sp")
        session.execute("INSERT INTO items VALUES (4, 'dropped', 0)")
        session.execute("ROLLBACK TO SAVEPOINT sp")
        session.execute("COMMIT")
        db.close()
        names = [r["name"] for r in reopen(dbdir).snapshot()["items"]]
        assert "kept" in names
        assert "dropped" not in names

    def test_secondary_indexes_rebuilt(self, dbdir):
        db = seeded(dbdir)
        db.connect("admin").execute("CREATE INDEX idx_name ON items (name)")
        db.close()
        db2 = reopen(dbdir)
        heap = db2.heap("items")
        assert set(heap.indexes) == {"pk_items", "idx_name"}
        assert heap.indexes["idx_name"].probe(("beta",)) == {2}
        assert db2.catalog.index("idx_name").columns == ("name",)
        # the index is live, not just cataloged: uniqueness still enforced
        with pytest.raises(UniqueViolation):
            db2.connect("admin").execute(
                "INSERT INTO items VALUES (1, 'clash', 0)"
            )

    def test_dropped_index_stays_dropped(self, dbdir):
        db = seeded(dbdir)
        session = db.connect("admin")
        session.execute("CREATE INDEX idx_name ON items (name)")
        session.execute("DROP INDEX idx_name")
        db.close()
        db2 = reopen(dbdir)
        assert set(db2.heap("items").indexes) == {"pk_items"}
        assert "idx_name" not in db2.catalog.indexes

    def test_views_roundtrip_through_sql(self, dbdir):
        db = seeded(dbdir)
        session = db.connect("admin")
        session.execute(
            "CREATE VIEW busy AS SELECT name, qty FROM items "
            "WHERE qty > 5 ORDER BY qty DESC"
        )
        session.execute(
            "CREATE VIEW stats AS SELECT COUNT(*) AS n, SUM(qty) AS total "
            "FROM items"
        )
        expected_busy = session.query("SELECT * FROM busy")
        expected_stats = session.query("SELECT * FROM stats")
        db.close()
        session2 = reopen(dbdir).connect("admin")
        assert session2.query("SELECT * FROM busy") == expected_busy
        assert session2.query("SELECT * FROM stats") == expected_stats

    def test_users_and_grants_survive(self, dbdir):
        db = seeded(dbdir)
        db.create_user("analyst")
        session = db.connect("admin")
        session.execute("GRANT SELECT (id, name) ON items TO analyst")
        db.close()
        db2 = reopen(dbdir)
        analyst = db2.connect("analyst")
        assert analyst.query("SELECT name FROM items WHERE id = 1") == [
            {"name": "alpha"}
        ]
        from repro.minidb import PermissionDenied

        with pytest.raises(PermissionDenied):
            analyst.execute("SELECT qty FROM items")

    def test_revoke_survives(self, dbdir):
        db = seeded(dbdir)
        db.create_user("analyst")
        session = db.connect("admin")
        session.execute("GRANT SELECT ON items TO analyst")
        session.execute("REVOKE SELECT ON items FROM analyst")
        db.close()
        from repro.minidb import PermissionDenied

        with pytest.raises(PermissionDenied):
            reopen(dbdir).connect("analyst").execute("SELECT id FROM items")

    def test_alter_table_roundtrip(self, dbdir):
        db = seeded(dbdir)
        session = db.connect("admin")
        session.execute("ALTER TABLE items ADD COLUMN tag TEXT DEFAULT 'x'")
        session.execute("ALTER TABLE items RENAME COLUMN qty TO amount")
        session.execute("ALTER TABLE items RENAME TO stock")
        session.execute("ALTER TABLE stock DROP COLUMN name")
        expected = db.snapshot()
        db.close()
        db2 = reopen(dbdir)
        assert db2.snapshot() == expected
        assert db2.catalog.table("stock").column_names() == [
            "id", "amount", "tag",
        ]

    def test_drop_table_and_recreate_changes_uid(self, dbdir):
        db = seeded(dbdir)
        session = db.connect("admin")
        old_uid = db.heap("items").uid
        session.execute("DROP TABLE items")
        session.execute("CREATE TABLE items (id INT PRIMARY KEY)")
        session.execute("INSERT INTO items VALUES (10)")
        new_uid = db.heap("items").uid
        assert new_uid != old_uid
        db.close()
        db2 = reopen(dbdir)
        assert db2.heap("items").uid == new_uid
        assert db2.snapshot()["items"] == [{"id": 10}]


class TestEngineLifecycle:
    def test_in_memory_remains_default(self):
        db = Database(owner="admin")
        assert db.engine.durable is False
        assert db.engine.catalog_dir is None
        # no redo overhead: the transaction manager skips record building
        assert db.connect("admin").tx.redo_enabled is False

    def test_checkpoint_compacts_wal(self, dbdir):
        db = seeded(dbdir)
        wal_path = db.engine.wal_path
        assert os.path.getsize(wal_path) > 0
        db.checkpoint()
        assert os.path.getsize(wal_path) == 0
        expected = db.snapshot()
        db.close()
        db2 = reopen(dbdir)
        assert db2.snapshot() == expected
        assert db2.engine.stats["snapshot_loaded"] is True
        assert db2.engine.stats["wal_replayed"] == 0

    def test_checkpoint_refused_inside_transaction(self, dbdir):
        db = seeded(dbdir)
        session = db.connect("admin")
        session.execute("BEGIN")
        session.execute("INSERT INTO items VALUES (9, 'open', 0)")
        with pytest.raises(TransactionError):
            db.checkpoint()
        session.execute("ROLLBACK")
        db.checkpoint()  # fine once the transaction is gone
        db.close()

    def test_auto_checkpoint_by_record_count(self, tmp_path):
        path = str(tmp_path / "auto")
        db = Database.open(path, auto_checkpoint_records=5)
        session = db.connect("admin")
        session.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        for i in range(8):
            session.execute(f"INSERT INTO t VALUES ({i})")
        # 1 DDL + 8 inserts crossed the threshold at least once
        assert db.engine.stats["checkpoints"] >= 2  # initial + automatic
        with open(db.engine.wal_path, "rb") as fh:
            remaining = [line for line in fh.read().split(b"\n") if line]
        assert len(remaining) < 5  # compaction kept the log short
        db.close()
        assert reopen(path).table_row_count("t") == 8

    def test_auto_checkpoint_deferred_during_transaction(self, tmp_path):
        path = str(tmp_path / "defer")
        db = Database.open(path, auto_checkpoint_records=3)
        session = db.connect("admin")
        session.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        checkpoints_before = db.engine.stats["checkpoints"]
        session.execute("BEGIN")
        for i in range(6):
            session.execute(f"INSERT INTO t VALUES ({i})")
        session.execute("COMMIT")  # threshold crossed mid-commit: deferred
        assert db.engine.stats["checkpoints"] > checkpoints_before
        db.close()
        assert reopen(path).table_row_count("t") == 6

    def test_closed_engine_rejects_writes(self, dbdir):
        db = seeded(dbdir)
        session = db.connect("admin")
        db.close()
        with pytest.raises(PersistenceError):
            session.execute("INSERT INTO items VALUES (5, 'late', 0)")

    def test_lock_file_guards_against_second_writer(self, dbdir):
        db = seeded(dbdir)
        assert os.path.exists(db.engine.lock_path)
        # fake another live process holding the lock (pid 1 is always up)
        db.close()
        assert not os.path.exists(db.engine.lock_path)
        os.makedirs(dbdir, exist_ok=True)
        with open(os.path.join(dbdir, "LOCK"), "w") as fh:
            fh.write("1\n")
        with pytest.raises(PersistenceError, match="locked by running process"):
            Database.open(dbdir)
        os.unlink(os.path.join(dbdir, "LOCK"))

    def test_same_process_double_open_refused(self, dbdir):
        db = seeded(dbdir)
        with pytest.raises(PersistenceError, match="already open in this"):
            Database.open(dbdir)
        db.close()
        db2 = reopen(dbdir)  # fine once the first handle is closed
        db2.close()

    def test_failed_recovery_releases_lock(self, dbdir):
        db = seeded(dbdir)
        db.checkpoint()
        db.close()
        snapshot_path = os.path.join(dbdir, "snapshot.json")
        with open(snapshot_path, "r+") as fh:
            fh.write("garbage")  # corrupt the snapshot header
        with pytest.raises(PersistenceError):
            Database.open(dbdir)
        # the failed open must not hold the directory hostage
        assert not os.path.exists(os.path.join(dbdir, "LOCK"))

    def test_stale_lock_from_dead_process_is_stolen(self, dbdir):
        db = seeded(dbdir)
        expected = db.snapshot()
        db.close()
        with open(os.path.join(dbdir, "LOCK"), "w") as fh:
            fh.write("999999999\n")  # beyond pid_max: never a live process
        db2 = reopen(dbdir)  # steals the stale lock instead of failing
        assert db2.snapshot() == expected
        db2.close()

    def test_open_seeds_owner_only_when_fresh(self, dbdir):
        db = Database.open(dbdir, owner="creator")
        db.create_user("other")
        db.close()
        db2 = Database.open(dbdir, owner="impostor")
        assert db2.privileges.owner == "creator"
        assert db2.privileges.has_user("other")


def wal_bytes(path: str) -> bytes:
    with open(os.path.join(path, "wal.jsonl"), "rb") as fh:
        return fh.read()


def shadow_replay(data: bytes) -> dict[int, dict]:
    """Independent oracle: apply committed WAL batches to a dict model.

    Mirrors the durability contract, not the implementation: only whole
    batches terminated by a commit-marked record count; a trailing batch
    whose commit marker is missing (torn away) is ignored entirely.
    """
    rows: dict[int, dict] = {}
    pending: list[dict] = []
    # the final split element is either b"" (file ends with a newline) or
    # a torn fragment — both are outside the durable prefix
    for line in data.split(b"\n")[:-1]:
        if not line:
            continue
        try:
            pending.append(json.loads(line))
        except ValueError:
            break
        if not pending[-1].get("commit"):
            continue
        for record in pending:
            if record["op"] in ("insert", "update"):
                rows[record["rid"]] = dict(record["row"])
            elif record["op"] == "delete":
                del rows[record["rid"]]
        pending = []
    return rows


def durable_prefix(data: bytes) -> bytes:
    """Bytes recovery must keep: up to the last complete committed batch."""
    end = 0
    position = 0
    while True:
        newline = data.find(b"\n", position)
        if newline == -1:
            break
        try:
            record = json.loads(data[position:newline])
        except ValueError:
            break
        position = newline + 1
        if isinstance(record, dict) and record.get("commit"):
            end = position
    return data[:end]


def copy_db(src: str, dst: str, wal: bytes) -> None:
    if os.path.exists(dst):
        shutil.rmtree(dst)
    os.makedirs(dst)
    shutil.copy2(os.path.join(src, "snapshot.json"), dst)
    with open(os.path.join(dst, "wal.jsonl"), "wb") as fh:
        fh.write(wal)


class TestTornWal:
    def _fixture(self, tmp_path) -> str:
        path = str(tmp_path / "db")
        db = Database.open(path)
        session = db.connect("admin")
        session.execute("CREATE TABLE t (id INT PRIMARY KEY, name TEXT)")
        db.checkpoint()  # WAL now contains exactly the DML below
        session.execute("INSERT INTO t VALUES (1, 'one'), (2, 'two')")
        session.execute("UPDATE t SET name = 'TWO' WHERE id = 2")
        # final transaction is multi-record: tearing its last record must
        # discard the *whole* batch, not leave rid 3 half-applied
        session.execute("INSERT INTO t VALUES (3, 'three'), (4, 'four')")
        db.close()
        return path

    def test_truncation_at_every_byte_of_final_record(self, tmp_path):
        path = self._fixture(tmp_path)
        data = wal_bytes(path)
        final_start = data.rstrip(b"\n").rfind(b"\n") + 1
        scratch = str(tmp_path / "scratch")
        for cut in range(final_start, len(data) + 1):
            truncated = data[:cut]
            copy_db(path, scratch, truncated)
            db = reopen(scratch)
            got = {rid: row for rid, row in db.heap("t").rows()}
            assert got == shadow_replay(truncated), f"mismatch at cut={cut}"
            # a torn final record takes its whole uncommitted batch with
            # it: rid 3 must never appear without rid 4
            if cut < len(data):
                assert 3 not in got and 4 not in got
            # bytes past the last committed batch are physically gone
            assert wal_bytes(scratch) == durable_prefix(truncated)
            db.close()

    def test_garbage_tail_truncated(self, tmp_path):
        path = self._fixture(tmp_path)
        data = wal_bytes(path)
        scratch = str(tmp_path / "scratch")
        copy_db(path, scratch, data + b'{"seq": nope\n')
        db = reopen(scratch)
        assert db.engine.stats["wal_truncated_bytes"] > 0
        assert {rid for rid, _ in db.heap("t").rows()} == {1, 2, 3, 4}
        assert wal_bytes(scratch) == data
        db.close()

    def test_sequence_gap_ends_replay(self, tmp_path):
        path = self._fixture(tmp_path)
        data = wal_bytes(path)
        gap = json.dumps(
            {"seq": 999, "op": "insert", "table": "t", "rid": 9,
             "row": {"id": 9, "name": "gap"}, "uid": 1, "version": 99,
             "commit": True}
        ).encode() + b"\n"
        scratch = str(tmp_path / "scratch")
        copy_db(path, scratch, data + gap)
        db = reopen(scratch)
        assert {rid for rid, _ in db.heap("t").rows()} == {1, 2, 3, 4}
        assert wal_bytes(scratch) == data
        db.close()

    def test_torn_commit_never_half_applies_transaction(self, tmp_path):
        """A multi-statement explicit transaction whose commit batch is
        torn mid-way recovers to the pre-transaction state entirely."""
        path = str(tmp_path / "db")
        db = Database.open(path)
        session = db.connect("admin")
        session.execute("CREATE TABLE t (id INT PRIMARY KEY, name TEXT)")
        db.checkpoint()
        session.execute("BEGIN")
        session.execute("INSERT INTO t VALUES (1, 'first')")
        session.execute("INSERT INTO t VALUES (2, 'second')")
        session.execute("UPDATE t SET name = 'FIRST' WHERE id = 1")
        session.execute("COMMIT")  # one batch, three records
        db.close()
        data = wal_bytes(path)
        lines = data.rstrip(b"\n").split(b"\n")
        assert len(lines) == 3
        scratch = str(tmp_path / "scratch")
        # keep 1 or 2 complete records of the 3-record batch: recovery
        # must apply none of them
        for keep in (1, 2):
            partial = b"\n".join(lines[:keep]) + b"\n"
            copy_db(path, scratch, partial)
            recovered = reopen(scratch)
            assert len(recovered.heap("t")) == 0
            assert wal_bytes(scratch) == b""  # uncommitted batch truncated
            recovered.close()


# one statement of a random committed history; ids collide on purpose so
# failed statements (PK violations) exercise the undo path too
_VALUES = st.integers(min_value=0, max_value=6)
_STATEMENTS = st.one_of(
    st.tuples(st.just("insert"), _VALUES, st.text("abc", max_size=4)),
    st.tuples(st.just("update"), _VALUES, st.text("abc", max_size=4)),
    st.tuples(st.just("delete"), _VALUES, st.just("")),
)


@st.composite
def histories(draw):
    """A list of (in_tx, commit, statements) blocks."""
    blocks = draw(
        st.lists(
            st.tuples(
                st.booleans(),  # wrap in BEGIN .. COMMIT/ROLLBACK
                st.booleans(),  # commit (vs rollback) when wrapped
                st.lists(_STATEMENTS, min_size=1, max_size=4),
            ),
            min_size=1,
            max_size=5,
        )
    )
    return blocks


class TestCrashRecoveryProperty:
    # tmp_path reuse across examples is handled explicitly (rmtree per run)
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(history=histories())
    def test_truncated_wal_recovers_durable_prefix(self, history, tmp_path):
        """Replay a random committed history, truncate the WAL at every byte
        boundary of the final record, reopen, and check the recovered heap
        equals an independent shadow replay of the durable prefix."""
        path = str(tmp_path / "db")
        if os.path.exists(path):
            shutil.rmtree(path)
        db = Database.open(path)
        session = db.connect("admin")
        session.execute("CREATE TABLE t (id INT PRIMARY KEY, name TEXT)")
        db.checkpoint()

        def run(statement):
            op, key, text = statement
            try:
                if op == "insert":
                    session.execute(
                        f"INSERT INTO t VALUES ({key}, '{text}')"
                    )
                elif op == "update":
                    session.execute(
                        f"UPDATE t SET name = '{text}' WHERE id = {key}"
                    )
                else:
                    session.execute(f"DELETE FROM t WHERE id = {key}")
            except UniqueViolation:
                pass  # failed statement: undo ran, nothing durable

        for in_tx, commit, statements in history:
            if in_tx:
                session.execute("BEGIN")
            for statement in statements:
                run(statement)
            if in_tx:
                session.execute("COMMIT" if commit else "ROLLBACK")

        live = {rid: row for rid, row in db.heap("t").rows()}
        del db, session  # crash: no close()

        data = wal_bytes(path)
        # full-file recovery equals the live state and the shadow model
        assert shadow_replay(data) == live
        scratch = str(tmp_path / "scratch")
        if not data:
            return
        final_start = data.rstrip(b"\n").rfind(b"\n") + 1
        for cut in range(final_start, len(data) + 1):
            truncated = data[:cut]
            copy_db(path, scratch, truncated)
            recovered = reopen(scratch)
            got = {rid: row for rid, row in recovered.heap("t").rows()}
            # the commit-aware shadow drops any torn trailing batch, so
            # one expression covers every cut point
            assert got == shadow_replay(truncated), f"cut={cut}"
            assert wal_bytes(scratch) == durable_prefix(truncated)
            recovered.close()
