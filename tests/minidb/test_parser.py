"""Unit tests for the SQL parser."""

import pytest

from repro.minidb import ast_nodes as ast
from repro.minidb.errors import SQLSyntaxError
from repro.minidb.parser import parse, parse_script, statement_action


class TestSelectParsing:
    def test_simple_select(self):
        stmt = parse("SELECT a, b FROM t")
        assert isinstance(stmt, ast.SelectStatement)
        assert len(stmt.items) == 2
        assert stmt.from_sources[0].name == "t"

    def test_select_star(self):
        stmt = parse("SELECT * FROM t")
        assert isinstance(stmt.items[0].expr, ast.Star)

    def test_select_qualified_star(self):
        stmt = parse("SELECT t.* FROM t")
        assert stmt.items[0].expr.table == "t"

    def test_select_without_from(self):
        stmt = parse("SELECT 1 + 2")
        assert stmt.from_sources == []

    def test_alias_with_as(self):
        stmt = parse("SELECT a AS x FROM t")
        assert stmt.items[0].alias == "x"

    def test_alias_without_as(self):
        stmt = parse("SELECT a x FROM t")
        assert stmt.items[0].alias == "x"

    def test_table_alias(self):
        stmt = parse("SELECT e.name FROM employees e")
        assert stmt.from_sources[0].alias == "e"
        assert stmt.from_sources[0].binding == "e"

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct is True

    def test_where_clause(self):
        stmt = parse("SELECT a FROM t WHERE a > 5")
        assert isinstance(stmt.where, ast.BinaryOp)
        assert stmt.where.op == ">"

    def test_group_by_having(self):
        stmt = parse("SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1")
        assert len(stmt.group_by) == 1
        assert stmt.having is not None

    def test_order_by_asc_desc(self):
        stmt = parse("SELECT a FROM t ORDER BY a DESC, b ASC, c")
        assert [o.descending for o in stmt.order_by] == [True, False, False]

    def test_limit_offset(self):
        stmt = parse("SELECT a FROM t LIMIT 10 OFFSET 5")
        assert stmt.limit == 10
        assert stmt.offset == 5

    def test_offset_alone(self):
        assert parse("SELECT a FROM t OFFSET 3").offset == 3

    def test_limit_must_be_integer(self):
        with pytest.raises(SQLSyntaxError):
            parse("SELECT a FROM t LIMIT x")

    def test_multiple_from_sources(self):
        stmt = parse("SELECT * FROM a, b")
        assert len(stmt.from_sources) == 2

    def test_subquery_in_from(self):
        stmt = parse("SELECT x FROM (SELECT a AS x FROM t) sub")
        assert isinstance(stmt.from_sources[0], ast.SubqueryRef)
        assert stmt.from_sources[0].alias == "sub"

    def test_subquery_in_from_requires_alias(self):
        with pytest.raises(SQLSyntaxError):
            parse("SELECT x FROM (SELECT a FROM t)")


class TestJoins:
    def test_inner_join(self):
        stmt = parse("SELECT * FROM a JOIN b ON a.id = b.id")
        assert stmt.joins[0].kind == "INNER"
        assert stmt.joins[0].condition is not None

    def test_explicit_inner_join(self):
        assert parse("SELECT * FROM a INNER JOIN b ON a.x = b.x").joins[0].kind == "INNER"

    def test_left_join(self):
        assert parse("SELECT * FROM a LEFT JOIN b ON a.x=b.x").joins[0].kind == "LEFT"

    def test_left_outer_join(self):
        assert parse("SELECT * FROM a LEFT OUTER JOIN b ON a.x=b.x").joins[0].kind == "LEFT"

    def test_right_join(self):
        assert parse("SELECT * FROM a RIGHT JOIN b ON a.x=b.x").joins[0].kind == "RIGHT"

    def test_cross_join_has_no_condition(self):
        stmt = parse("SELECT * FROM a CROSS JOIN b")
        assert stmt.joins[0].kind == "CROSS"
        assert stmt.joins[0].condition is None

    def test_chained_joins(self):
        stmt = parse(
            "SELECT * FROM a JOIN b ON a.x=b.x LEFT JOIN c ON b.y=c.y"
        )
        assert [j.kind for j in stmt.joins] == ["INNER", "LEFT"]

    def test_full_join_rejected(self):
        with pytest.raises(SQLSyntaxError, match="FULL"):
            parse("SELECT * FROM a FULL OUTER JOIN b ON a.x=b.x")

    def test_join_missing_on(self):
        with pytest.raises(SQLSyntaxError):
            parse("SELECT * FROM a JOIN b")


class TestExpressions:
    def test_operator_precedence(self):
        stmt = parse("SELECT 1 + 2 * 3")
        expr = stmt.items[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parentheses_override_precedence(self):
        expr = parse("SELECT (1 + 2) * 3").items[0].expr
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_and_or_precedence(self):
        expr = parse("SELECT a OR b AND c FROM t").items[0].expr
        assert expr.op == "OR"
        assert expr.right.op == "AND"

    def test_not(self):
        expr = parse("SELECT * FROM t WHERE NOT a = 1").where
        assert isinstance(expr, ast.UnaryOp)
        assert expr.op == "NOT"

    def test_unary_minus(self):
        expr = parse("SELECT -5").items[0].expr
        assert isinstance(expr, ast.UnaryOp)

    def test_string_concat(self):
        expr = parse("SELECT a || b FROM t").items[0].expr
        assert expr.op == "||"

    def test_in_list(self):
        expr = parse("SELECT * FROM t WHERE a IN (1, 2, 3)").where
        assert isinstance(expr, ast.InExpr)
        assert len(expr.candidates) == 3
        assert not expr.negated

    def test_not_in(self):
        expr = parse("SELECT * FROM t WHERE a NOT IN (1)").where
        assert expr.negated

    def test_in_subquery(self):
        expr = parse("SELECT * FROM t WHERE a IN (SELECT b FROM u)").where
        assert isinstance(expr.candidates, ast.SelectStatement)

    def test_between(self):
        expr = parse("SELECT * FROM t WHERE a BETWEEN 1 AND 10").where
        assert isinstance(expr, ast.BetweenExpr)

    def test_not_between(self):
        assert parse("SELECT * FROM t WHERE a NOT BETWEEN 1 AND 2").where.negated

    def test_like(self):
        expr = parse("SELECT * FROM t WHERE name LIKE 'a%'").where
        assert isinstance(expr, ast.LikeExpr)
        assert not expr.case_insensitive

    def test_ilike(self):
        assert parse("SELECT * FROM t WHERE n ILIKE 'A%'").where.case_insensitive

    def test_is_null(self):
        expr = parse("SELECT * FROM t WHERE a IS NULL").where
        assert isinstance(expr, ast.IsNullExpr)
        assert not expr.negated

    def test_is_not_null(self):
        assert parse("SELECT * FROM t WHERE a IS NOT NULL").where.negated

    def test_exists(self):
        expr = parse("SELECT * FROM t WHERE EXISTS (SELECT 1 FROM u)").where
        assert isinstance(expr, ast.ExistsExpr)

    def test_scalar_subquery(self):
        expr = parse("SELECT (SELECT MAX(x) FROM u)").items[0].expr
        assert isinstance(expr, ast.ScalarSubquery)

    def test_case_searched(self):
        expr = parse("SELECT CASE WHEN a > 1 THEN 'x' ELSE 'y' END FROM t").items[0].expr
        assert isinstance(expr, ast.CaseExpr)
        assert expr.operand is None
        assert expr.default is not None

    def test_case_with_operand(self):
        expr = parse("SELECT CASE a WHEN 1 THEN 'one' END FROM t").items[0].expr
        assert expr.operand is not None
        assert expr.default is None

    def test_case_requires_when(self):
        with pytest.raises(SQLSyntaxError):
            parse("SELECT CASE END FROM t")

    def test_cast(self):
        expr = parse("SELECT CAST(a AS INTEGER) FROM t").items[0].expr
        assert isinstance(expr, ast.CastExpr)
        assert expr.target_type == "INTEGER"

    def test_function_call(self):
        expr = parse("SELECT UPPER(name) FROM t").items[0].expr
        assert isinstance(expr, ast.FunctionCall)
        assert expr.name == "UPPER"

    def test_count_star(self):
        expr = parse("SELECT COUNT(*) FROM t").items[0].expr
        assert isinstance(expr.args[0], ast.Star)

    def test_count_distinct(self):
        expr = parse("SELECT COUNT(DISTINCT a) FROM t").items[0].expr
        assert expr.distinct

    def test_literals(self):
        stmt = parse("SELECT NULL, TRUE, FALSE, 'txt', 7, 1.5")
        values = [item.expr.value for item in stmt.items]
        assert values == [None, True, False, "txt", 7, 1.5]

    def test_qualified_column(self):
        expr = parse("SELECT t.a FROM t").items[0].expr
        assert expr.table == "t"
        assert expr.name == "a"

    def test_inequality_normalized(self):
        assert parse("SELECT * FROM t WHERE a != 1").where.op == "<>"


class TestSetOperations:
    def test_union(self):
        stmt = parse("SELECT a FROM t UNION SELECT b FROM u")
        assert stmt.set_op[0] == "UNION"

    def test_union_all(self):
        assert parse("SELECT a FROM t UNION ALL SELECT a FROM u").set_op[0] == "UNION ALL"

    def test_intersect_except(self):
        assert parse("SELECT a FROM t INTERSECT SELECT a FROM u").set_op[0] == "INTERSECT"
        assert parse("SELECT a FROM t EXCEPT SELECT a FROM u").set_op[0] == "EXCEPT"

    def test_order_by_hoisted_to_outer(self):
        stmt = parse("SELECT a FROM t UNION SELECT a FROM u ORDER BY a LIMIT 3")
        assert stmt.order_by
        assert stmt.limit == 3
        assert not stmt.set_op[1].order_by
        assert stmt.set_op[1].limit is None


class TestDML:
    def test_insert_values(self):
        stmt = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert stmt.table == "t"
        assert stmt.columns == ["a", "b"]
        assert len(stmt.rows) == 2

    def test_insert_without_columns(self):
        assert parse("INSERT INTO t VALUES (1)").columns is None

    def test_insert_select(self):
        stmt = parse("INSERT INTO t SELECT * FROM u")
        assert stmt.select is not None
        assert stmt.rows is None

    def test_update(self):
        stmt = parse("UPDATE t SET a = 1, b = b + 1 WHERE id = 3")
        assert stmt.table == "t"
        assert [c for c, _ in stmt.assignments] == ["a", "b"]
        assert stmt.where is not None

    def test_update_without_where(self):
        assert parse("UPDATE t SET a = 1").where is None

    def test_delete(self):
        stmt = parse("DELETE FROM t WHERE a < 0")
        assert stmt.table == "t"
        assert stmt.where is not None

    def test_delete_all(self):
        assert parse("DELETE FROM t").where is None


class TestDDL:
    def test_create_table_columns(self):
        stmt = parse(
            "CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR(40) NOT NULL, "
            "price FLOAT DEFAULT 0.0, ok BOOLEAN)"
        )
        assert stmt.table == "t"
        assert len(stmt.columns) == 4
        assert stmt.columns[0].primary_key
        assert stmt.columns[1].not_null
        assert stmt.columns[1].declared_type == "VARCHAR(40)"
        assert stmt.columns[2].default.value == 0.0

    def test_create_table_constraints(self):
        stmt = parse(
            "CREATE TABLE t (a INT, b INT, PRIMARY KEY (a), UNIQUE (a, b), "
            "FOREIGN KEY (b) REFERENCES u(id), CHECK (a > 0))"
        )
        assert stmt.primary_key == ["a"]
        assert stmt.uniques == [["a", "b"]]
        assert stmt.foreign_keys[0].ref_table == "u"
        assert len(stmt.checks) == 1

    def test_column_level_references(self):
        stmt = parse("CREATE TABLE t (a INT REFERENCES u(id))")
        assert stmt.columns[0].references == ("u", "id")

    def test_column_check(self):
        stmt = parse("CREATE TABLE t (a INT CHECK (a >= 0))")
        assert stmt.columns[0].check is not None

    def test_if_not_exists(self):
        assert parse("CREATE TABLE IF NOT EXISTS t (a INT)").if_not_exists

    def test_drop_table(self):
        stmt = parse("DROP TABLE t1, t2")
        assert stmt.tables == ["t1", "t2"]
        assert not stmt.cascade

    def test_drop_table_if_exists_cascade(self):
        stmt = parse("DROP TABLE IF EXISTS t CASCADE")
        assert stmt.if_exists
        assert stmt.cascade

    def test_drop_database_parses_as_cascade_drop(self):
        stmt = parse("DROP DATABASE prod")
        assert stmt.cascade

    def test_alter_add_column(self):
        stmt = parse("ALTER TABLE t ADD COLUMN c INT NOT NULL")
        assert stmt.action == "ADD_COLUMN"
        assert stmt.column.not_null

    def test_alter_drop_column(self):
        stmt = parse("ALTER TABLE t DROP COLUMN c")
        assert stmt.action == "DROP_COLUMN"
        assert stmt.old_name == "c"

    def test_alter_rename_column(self):
        stmt = parse("ALTER TABLE t RENAME COLUMN a TO b")
        assert stmt.action == "RENAME_COLUMN"
        assert (stmt.old_name, stmt.new_name) == ("a", "b")

    def test_alter_rename_table(self):
        stmt = parse("ALTER TABLE t RENAME TO u")
        assert stmt.action == "RENAME_TABLE"

    def test_create_index(self):
        stmt = parse("CREATE UNIQUE INDEX ix ON t (a, b)")
        assert stmt.unique
        assert stmt.columns == ["a", "b"]

    def test_drop_index(self):
        assert parse("DROP INDEX IF EXISTS ix").if_exists

    def test_create_view(self):
        stmt = parse("CREATE VIEW v AS SELECT a FROM t")
        assert stmt.name == "v"

    def test_create_or_replace_view(self):
        assert parse("CREATE OR REPLACE VIEW v AS SELECT 1").or_replace

    def test_drop_view(self):
        assert parse("DROP VIEW v1, v2").names == ["v1", "v2"]


class TestTransactionsAndPrivileges:
    def test_begin_variants(self):
        assert isinstance(parse("BEGIN"), ast.BeginStatement)
        assert isinstance(parse("BEGIN TRANSACTION"), ast.BeginStatement)
        assert isinstance(parse("START TRANSACTION"), ast.BeginStatement)

    def test_commit_rollback(self):
        assert isinstance(parse("COMMIT"), ast.CommitStatement)
        assert isinstance(parse("ROLLBACK"), ast.RollbackStatement)

    def test_savepoints(self):
        assert parse("SAVEPOINT sp1").name == "sp1"
        assert parse("ROLLBACK TO SAVEPOINT sp1").savepoint == "sp1"
        assert parse("RELEASE SAVEPOINT sp1").name == "sp1"

    def test_grant(self):
        stmt = parse("GRANT SELECT, INSERT ON t1, t2 TO bob")
        assert stmt.actions == ["SELECT", "INSERT"]
        assert stmt.objects == ["t1", "t2"]
        assert stmt.grantee == "bob"

    def test_grant_all(self):
        assert parse("GRANT ALL PRIVILEGES ON t TO bob").actions == ["ALL"]

    def test_grant_column_level(self):
        stmt = parse("GRANT SELECT (a, b) ON t TO bob")
        assert stmt.columns == ["a", "b"]

    def test_revoke(self):
        stmt = parse("REVOKE DELETE ON t FROM bob")
        assert isinstance(stmt, ast.RevokeStatement)

    def test_unknown_privilege_action(self):
        with pytest.raises(SQLSyntaxError):
            parse("GRANT FLY ON t TO bob")


class TestScriptsAndErrors:
    def test_parse_script(self):
        stmts = parse_script("SELECT 1; SELECT 2; ;")
        assert len(stmts) == 2

    def test_trailing_semicolon_ok(self):
        assert isinstance(parse("SELECT 1;"), ast.SelectStatement)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse("SELECT 1 SELECT 2")

    def test_empty_statement_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse("")

    def test_statement_action_mapping(self):
        assert statement_action(parse("SELECT 1")) == "SELECT"
        assert statement_action(parse("INSERT INTO t VALUES (1)")) == "INSERT"
        assert statement_action(parse("UPDATE t SET a=1")) == "UPDATE"
        assert statement_action(parse("DELETE FROM t")) == "DELETE"
        assert statement_action(parse("CREATE TABLE t (a INT)")) == "CREATE"
        assert statement_action(parse("DROP TABLE t")) == "DROP"
        assert statement_action(parse("ALTER TABLE t RENAME TO u")) == "ALTER"
        assert statement_action(parse("BEGIN")) == "OTHER"
