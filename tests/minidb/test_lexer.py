"""Unit tests for the SQL lexer."""

import pytest

from repro.minidb.errors import SQLSyntaxError
from repro.minidb.lexer import EOF, IDENT, NUMBER, OP, PUNCT, STRING, tokenize


def kinds(sql):
    return [t.kind for t in tokenize(sql)]


def values(sql):
    return [t.value for t in tokenize(sql)[:-1]]


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == EOF

    def test_whitespace_only(self):
        assert kinds("  \n\t ") == [EOF]

    def test_identifier(self):
        tokens = tokenize("employees")
        assert tokens[0].kind == IDENT
        assert tokens[0].value == "employees"

    def test_identifier_with_underscore_and_digits(self):
        assert values("brand_A_sales2") == ["brand_A_sales2"]

    def test_integer_literal(self):
        tokens = tokenize("42")
        assert tokens[0].kind == NUMBER
        assert tokens[0].value == "42"

    def test_float_literal(self):
        assert values("3.14") == ["3.14"]

    def test_scientific_notation(self):
        assert values("1e5 2.5E-3") == ["1e5", "2.5E-3"]

    def test_leading_dot_number(self):
        assert values(".5") == [".5"]

    def test_string_literal(self):
        tokens = tokenize("'hello'")
        assert tokens[0].kind == STRING
        assert tokens[0].value == "hello"

    def test_string_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_empty_string_literal(self):
        assert tokenize("''")[0].value == ""

    def test_quoted_identifier(self):
        tokens = tokenize('"My Table"')
        assert tokens[0].kind == IDENT
        assert tokens[0].value == "My Table"


class TestOperators:
    @pytest.mark.parametrize("op", ["<=", ">=", "<>", "!=", "||"])
    def test_two_char_operators(self, op):
        tokens = tokenize(f"a {op} b")
        assert tokens[1].kind == OP
        assert tokens[1].value == op

    @pytest.mark.parametrize("op", list("+-*/%<>="))
    def test_single_char_operators(self, op):
        tokens = tokenize(f"a {op} b")
        assert tokens[1].value == op

    def test_punctuation(self):
        tokens = tokenize("(a, b);")
        assert [t.value for t in tokens if t.kind == PUNCT] == ["(", ",", ")", ";"]

    def test_adjacent_operators_not_merged(self):
        # "a<-1" is "<" then unary "-"
        assert values("a<-1") == ["a", "<", "-", "1"]


class TestComments:
    def test_line_comment_skipped(self):
        assert values("SELECT -- comment\n 1") == ["SELECT", "1"]

    def test_line_comment_at_end(self):
        assert values("SELECT 1 -- trailing") == ["SELECT", "1"]

    def test_block_comment_skipped(self):
        assert values("SELECT /* stuff \n more */ 1") == ["SELECT", "1"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT /* oops")


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(SQLSyntaxError, match="unterminated string"):
            tokenize("'abc")

    def test_unterminated_quoted_identifier(self):
        with pytest.raises(SQLSyntaxError):
            tokenize('"abc')

    def test_illegal_character(self):
        with pytest.raises(SQLSyntaxError, match="illegal character"):
            tokenize("SELECT #")

    def test_keyword_matching_is_case_insensitive(self):
        token = tokenize("select")[0]
        assert token.matches_keyword("SELECT")
        assert token.matches_keyword("select")

    def test_positions_recorded(self):
        tokens = tokenize("ab cd")
        assert tokens[0].pos == 0
        assert tokens[1].pos == 3
