"""Systematic fault-injection torture of the durable engine (PR 7).

The harness runs one mixed DML/DDL workload through a
:class:`repro.faults.FaultyFilesystem` and, at *every* filesystem
operation index the workload performs, injects in turn

* a :class:`~repro.faults.SimulatedCrash` (process death at that exact
  syscall) — the directory is then reopened with the real filesystem and
  the recovered state must equal a **unit boundary** of an independent
  shadow replay: either the state before or the state after the unit the
  crash interrupted, never anything in between;
* a one-shot ``EIO`` — the engine must then honor the fail-stop
  contract: a poisoned WAL latches panic mode (writes refuse with the
  non-retryable :class:`~repro.minidb.StorageFailedError`, in-memory
  reads keep serving, ``close`` stays idempotent), a failed checkpoint
  stays *recoverable* (previous snapshot + WAL remain authoritative,
  compaction deferred), and a failed open leaves a directory a clean
  retry can open. After the contract checks the directory is reopened
  and must again sit on a shadow unit boundary.

A second crash sweep targets *recovery itself*: every operation index of
an open-with-existing-state run is crashed, and the subsequent clean
reopen must still recover the exact pre-crash state.

The degradation-semantics tests (panic-mode reads, ENOSPC-deferred
checkpoints retrying to success, torn-write determinism) live at the
bottom of the file.
"""

from __future__ import annotations

import errno
import gc
import os
import shutil

import pytest

from repro.faults import FaultPlan, FaultyFilesystem, SimulatedCrash
from repro.minidb import (
    Database,
    MiniDBError,
    PersistenceError,
    StorageFailedError,
)

# --------------------------------------------------------------------------
# workload: a list of units, each an atomic step of the torture script.
# Unit kinds:
#   sql        one autocommit statement
#   txn        BEGIN; <statements>; COMMIT  (one commit batch)
#   rollback   BEGIN; <statements>; ROLLBACK  (must never reach disk)
#   user       db.create_user(name)
#   checkpoint explicit snapshot + WAL truncation
# --------------------------------------------------------------------------

UNITS = [
    ("sql", "CREATE TABLE t (id INT PRIMARY KEY, name TEXT, qty INT)"),
    ("sql", "INSERT INTO t VALUES (1, 'ada', 10)"),
    ("sql", "INSERT INTO t VALUES (2, 'bob', 20), (3, 'cyd', 30)"),
    (
        "txn",
        (
            "UPDATE t SET qty = 99 WHERE id = 2",
            "INSERT INTO t VALUES (4, 'dee', 40)",
        ),
    ),
    ("sql", "CREATE INDEX idx_t_qty ON t (qty)"),
    ("checkpoint", None),
    ("rollback", ("DELETE FROM t WHERE id = 1",)),
    ("user", "bob"),
    ("sql", "GRANT SELECT ON t TO bob"),
    ("sql", "ALTER TABLE t ADD COLUMN note TEXT DEFAULT 'x'"),
    ("sql", "CREATE VIEW busy AS SELECT id, qty FROM t WHERE qty > 15"),
    ("sql", "UPDATE t SET qty = qty + 1 WHERE qty > 15"),
    ("sql", "DELETE FROM t WHERE id = 3"),
    ("checkpoint", None),
    ("sql", "INSERT INTO t VALUES (5, 'eve', 50, 'y')"),
]


def run_unit(db: Database, session, unit) -> None:
    kind, payload = unit
    if kind == "sql":
        session.execute(payload)
    elif kind == "txn":
        session.execute("BEGIN")
        for sql in payload:
            session.execute(sql)
        session.execute("COMMIT")
    elif kind == "rollback":
        session.execute("BEGIN")
        for sql in payload:
            session.execute(sql)
        session.execute("ROLLBACK")
    elif kind == "user":
        db.create_user(payload)
    elif kind == "checkpoint":
        db.checkpoint()
    else:  # pragma: no cover - workload typo guard
        raise AssertionError(f"unknown unit kind {kind!r}")


def logical_state(db: Database) -> dict:
    """Engine-independent summary of everything the workload mutates."""
    rows = {
        table: sorted(
            tuple(sorted(row.items())) for row in table_rows
        )
        for table, table_rows in db.snapshot().items()
    }
    return {
        "rows": rows,
        "tables": sorted(db.catalog.tables),
        "views": sorted(db.catalog.views),
        "indexes": sorted(db.catalog.indexes),
        "users": sorted(
            name for name in ("admin", "bob") if db.privileges.has_user(name)
        ),
    }


def shadow_states() -> list[dict]:
    """Replay the workload on an in-memory engine; state per unit boundary.

    ``states[0]`` is the fresh-database state; ``states[i + 1]`` is the
    state after ``UNITS[i]``. This is the recovery oracle: any crash or
    fail-stop during unit *i* must recover to ``states[i]`` or
    ``states[i + 1]``.
    """
    db = Database(owner="admin")
    session = db.connect("admin")
    states = [logical_state(db)]
    for unit in UNITS:
        run_unit(db, session, unit)
        states.append(logical_state(db))
    return states


SHADOW = shadow_states()


def scrub(exc: BaseException | None) -> None:
    """Strip traceback chains so a caught injected failure cannot keep the
    crashed engine alive through frame references (the reopen would then
    see a same-process double-open instead of a stale crashed lock)."""
    seen: set[int] = set()
    while exc is not None and id(exc) not in seen:
        seen.add(id(exc))
        exc.__traceback__ = None
        exc = exc.__cause__ or exc.__context__


def run_workload(path: str, fs: FaultyFilesystem):
    """Run the full workload; returns (db, completed_units, failure).

    ``completed_units`` counts fully applied units; ``-1`` means the
    failure struck during ``Database.open`` itself. ``failure`` is the
    injected exception (or ``None`` for a clean run). Checkpoint units
    absorb recoverable ``PersistenceError`` — deferred compaction is
    in-contract, the workload continues — but any *other* error stops
    the run, exactly like an application crashing out.
    """
    completed = -1
    db = None
    try:
        db = Database.open(path, auto_checkpoint_records=0, filesystem=fs)
        session = db.connect("admin")
        completed = 0
        for index, unit in enumerate(UNITS):
            try:
                run_unit(db, session, unit)
            except StorageFailedError:
                raise
            except PersistenceError:
                if unit[0] != "checkpoint":
                    raise
                # recoverable checkpoint failure: compaction deferred,
                # previous snapshot + WAL stay authoritative; the unit
                # changed no logical state, so it still counts
            completed = index + 1
        return db, completed, None
    except (SimulatedCrash, MiniDBError, OSError) as exc:
        scrub(exc)
        return db, completed, exc


def assert_on_boundary(path: str, completed: int, context: str) -> None:
    """Reopen ``path`` cleanly; recovered state must be a unit boundary."""
    recovered = Database.open(path)
    try:
        state = logical_state(recovered)
        if completed < 0:
            # the failure struck during open of a fresh directory: only
            # the base state can exist
            allowed = SHADOW[0:1]
        else:
            # failure during unit `completed`: before-or-after that unit
            allowed = SHADOW[completed : completed + 2]
        assert state in allowed, (
            f"{context}: recovered state is not a unit boundary "
            f"(last completed unit {completed})"
        )
        # satellite: a failed checkpoint must never leak its temp file
        assert not os.path.exists(
            os.path.join(recovered.engine.path, "snapshot.json.tmp")
        ), f"{context}: stale snapshot temp file survived recovery"
    finally:
        recovered.close()


def baseline_op_count(tmp_path) -> int:
    """Ops of one clean workload run (and oracle-vs-durable agreement)."""
    path = str(tmp_path / "baseline")
    fs = FaultyFilesystem(FaultPlan())
    db, completed, failure = run_workload(path, fs)
    assert failure is None and completed == len(UNITS)
    assert logical_state(db) == SHADOW[-1]
    total = fs.ops  # before close(): the sweep never reaches close
    db.close()
    return total


# --------------------------------------------------------------------------
# sweep 1: crash at every operation index of the workload
# --------------------------------------------------------------------------


class TestCrashSweep:
    def test_crash_at_every_operation_recovers_a_unit_boundary(self, tmp_path):
        total = baseline_op_count(tmp_path)
        assert total > 40, "workload too small to be a meaningful sweep"
        for at in range(total):
            path = str(tmp_path / f"crash{at}")
            fs = FaultyFilesystem(FaultPlan(crash_at=at, seed=at))
            db, completed, failure = run_workload(path, fs)
            assert isinstance(failure, SimulatedCrash), (
                f"crash_at={at}: expected a crash, got {failure!r}"
            )
            assert fs.injected
            db = failure = None  # simulated process death: no close()
            gc.collect()
            assert_on_boundary(path, completed, f"crash_at={at}")


# --------------------------------------------------------------------------
# sweep 2: crash at every operation index of *recovery*
# --------------------------------------------------------------------------


class TestRecoveryCrashSweep:
    def test_crash_during_recovery_is_itself_recoverable(self, tmp_path):
        path = str(tmp_path / "db")
        db, completed, failure = run_workload(path, FaultyFilesystem(FaultPlan()))
        assert failure is None
        # leave WAL records behind the snapshot so recovery has real work
        session = db.connect("admin")
        session.execute("INSERT INTO t VALUES (6, 'fin', 60, 'z')")
        final = logical_state(db)
        # no close(): recovery must also steal our own stale LOCK
        db = session = None
        gc.collect()
        # freeze the crashed directory: each sweep iteration recovers an
        # identical copy, so the operation sequence is identical too
        pristine = str(tmp_path / "pristine")
        shutil.copytree(path, pristine)

        def restore() -> None:
            shutil.rmtree(path)
            shutil.copytree(pristine, path)

        # learn how many operations a clean recovery performs
        probe = FaultyFilesystem(FaultPlan())
        recovered = Database.open(path, filesystem=probe)
        assert logical_state(recovered) == final
        reopen_ops = probe.ops  # before close(): the sweep crashes in open
        recovered.close()
        assert reopen_ops > 5

        for at in range(reopen_ops):
            restore()
            fs = FaultyFilesystem(FaultPlan(crash_at=at, seed=at))
            try:
                db2 = Database.open(path, filesystem=fs)
            except SimulatedCrash:
                gc.collect()
            else:
                db2.close()
                pytest.fail(f"recovery crash_at={at} did not fire")
            recovered = Database.open(path)
            try:
                assert logical_state(recovered) == final, (
                    f"recovery crash_at={at}: state changed across a "
                    "crashed recovery"
                )
            finally:
                recovered.close()


# --------------------------------------------------------------------------
# sweep 3: EIO at every operation index — the fail-stop contract
# --------------------------------------------------------------------------


class TestErrorSweep:
    def test_eio_at_every_operation_honors_the_failstop_contract(
        self, tmp_path
    ):
        total = baseline_op_count(tmp_path)
        panics = checkpoint_deferrals = open_failures = clean = 0
        for at in range(total):
            path = str(tmp_path / f"eio{at}")
            fs = FaultyFilesystem(FaultPlan(error_at=at, seed=at))
            db, completed, failure = run_workload(path, fs)
            assert fs.injected, f"error_at={at} never fired"
            if failure is None:
                # the error was absorbed in-contract (deferred checkpoint
                # compaction, or tolerated cleanup failure); the workload
                # must then have completed exactly
                clean += 1
                if db.engine.stats["checkpoint_failures"]:
                    checkpoint_deferrals += 1
                assert completed == len(UNITS)
                assert logical_state(db) == SHADOW[-1]
                assert not db.engine.panicked
                db.close()
            elif completed == -1:
                # failed open: nothing to degrade — a clean retry must work
                open_failures += 1
                db = failure = None
                gc.collect()
            else:
                # mid-workload storage failure: fail-stop panic mode
                panics += 1
                assert isinstance(failure, StorageFailedError), (
                    f"error_at={at}: expected fail-stop, got {failure!r}"
                )
                assert failure.retryable is False
                assert db is not None and db.engine.panicked
                # reads keep serving from memory
                reader = db.connect("admin")
                if "t" in db.catalog.tables:
                    reader.execute("SELECT * FROM t")
                # writes refuse, without touching the heaps
                before = logical_state(db)
                with pytest.raises(StorageFailedError):
                    reader.execute("INSERT INTO t VALUES (97, 'x', 1)")
                with pytest.raises(StorageFailedError):
                    reader.execute("CREATE TABLE panic_probe (id INT)")
                assert logical_state(db) == before
                # close is idempotent and never raises
                db.close()
                db.close()
                db = failure = None
                gc.collect()
            assert_on_boundary(path, max(completed, -1), f"error_at={at}")
        # the sweep must actually exercise each contract arm
        assert panics > 0
        assert open_failures > 0
        assert clean > 0


# --------------------------------------------------------------------------
# degradation semantics (satellite): targeted contract tests
# --------------------------------------------------------------------------


def seeded_db(path: str, fs: FaultyFilesystem) -> tuple[Database, object]:
    db = Database.open(path, auto_checkpoint_records=0, filesystem=fs)
    session = db.connect("admin")
    session.execute("CREATE TABLE kv (k TEXT PRIMARY KEY, v INT)")
    session.execute("INSERT INTO kv VALUES ('a', 1), ('b', 2)")
    return db, session


class TestDegradationSemantics:
    def test_panic_mode_serves_reads_and_refuses_writes(self, tmp_path):
        fs = FaultyFilesystem(FaultPlan())
        db, session = seeded_db(str(tmp_path / "db"), fs)
        # poison the very next filesystem operation: the WAL append of
        # the following INSERT
        fs.plan = FaultPlan(error_at=fs.ops, error_errno=errno.EIO)
        with pytest.raises(StorageFailedError) as excinfo:
            session.execute("INSERT INTO kv VALUES ('c', 3)")
        assert excinfo.value.retryable is False
        assert db.engine.panicked
        assert db.engine.stats["storage_failures"] == 1

        # reads still serve the in-memory state (which may include the
        # torn commit's in-memory effect — memory is ahead of disk now)
        rows = session.execute("SELECT k FROM kv ORDER BY k").rows
        assert [r[0] for r in rows] in (["a", "b"], ["a", "b", "c"])
        # every write path refuses with the same non-retryable error
        for sql in (
            "INSERT INTO kv VALUES ('d', 4)",
            "UPDATE kv SET v = 9 WHERE k = 'a'",
            "DELETE FROM kv WHERE k = 'a'",
            "CREATE TABLE other (id INT)",
            "GRANT SELECT ON kv TO admin",
        ):
            with pytest.raises(StorageFailedError):
                session.execute(sql)
        with pytest.raises(StorageFailedError):
            db.create_user("late")
        with pytest.raises(StorageFailedError):
            db.checkpoint()
        # transaction control stays allowed (ROLLBACK escape hatch)
        session.execute("BEGIN")
        session.execute("ROLLBACK")
        # close after panic: idempotent, never raises, releases the LOCK
        db.close()
        db.close()
        db2 = Database.open(str(tmp_path / "db"))
        assert sorted(
            row["k"] for row in db2.snapshot()["kv"]
        ) == ["a", "b"], "the failed append must not be half-durable"
        db2.close()

    def test_explicit_transaction_commit_failure_panics(self, tmp_path):
        fs = FaultyFilesystem(FaultPlan())
        db, session = seeded_db(str(tmp_path / "db"), fs)
        session.execute("BEGIN")
        session.execute("UPDATE kv SET v = 100 WHERE k = 'a'")
        fs.plan = FaultPlan(error_at=fs.ops, error_errno=errno.EIO)
        with pytest.raises(StorageFailedError):
            session.execute("COMMIT")
        assert db.engine.panicked
        db.close()
        db2 = Database.open(str(tmp_path / "db"))
        values = {row["k"]: row["v"] for row in db2.snapshot()["kv"]}
        assert values["a"] in (1, 100), "commit batch must be all-or-nothing"
        db2.close()

    def test_enospc_checkpoint_defers_then_succeeds_on_retry(self, tmp_path):
        fs = FaultyFilesystem(FaultPlan())
        db, session = seeded_db(str(tmp_path / "db"), fs)
        # ENOSPC on the snapshot temp-file *write* (ops: open is next,
        # then the single serialized write)
        fs.plan = FaultPlan(error_at=fs.ops + 1, error_errno=errno.ENOSPC)
        with pytest.raises(PersistenceError) as excinfo:
            db.checkpoint()
        assert not isinstance(excinfo.value, StorageFailedError)
        assert "deferred" in str(excinfo.value)
        assert not db.engine.panicked
        assert db.engine.stats["checkpoint_failures"] == 1
        tmp = db.engine.snapshot_path + ".tmp"
        assert not os.path.exists(tmp), "failed checkpoint leaked its temp"
        # the engine is still fully writable...
        session.execute("INSERT INTO kv VALUES ('c', 3)")
        # ...and the retry (fault was one-shot) compacts successfully
        before = db.engine.stats["checkpoints"]
        db.checkpoint()
        assert db.engine.stats["checkpoints"] == before + 1
        db.close()
        db2 = Database.open(str(tmp_path / "db"))
        assert sorted(row["k"] for row in db2.snapshot()["kv"]) == [
            "a",
            "b",
            "c",
        ]
        db2.close()

    def test_enospc_defers_automatic_checkpoints_without_failing_dml(
        self, tmp_path
    ):
        fs = FaultyFilesystem(FaultPlan())
        db = Database.open(
            str(tmp_path / "db"), auto_checkpoint_records=3, filesystem=fs
        )
        engine = db.engine
        session = db.connect("admin")
        session.execute("CREATE TABLE kv (k TEXT PRIMARY KEY, v INT)")
        session.execute("INSERT INTO kv VALUES ('a', 1)")
        # third record: this statement's epilogue runs an auto-checkpoint
        session.execute("INSERT INTO kv VALUES ('b', 2)")
        checkpoints = engine.stats["checkpoints"]
        assert checkpoints >= 1 and not engine._checkpoint_pending
        session.execute("INSERT INTO kv VALUES ('c', 3)")
        session.execute("INSERT INTO kv VALUES ('d', 4)")
        # the next INSERT is the third record since the last compaction;
        # its ops are [WAL write, WAL flush, tmp open, tmp write, ...] —
        # exhaust the "disk" for exactly the snapshot temp write
        fs.plan = FaultPlan(error_at=fs.ops + 3, error_errno=errno.ENOSPC)
        # the DML that triggers the auto-checkpoint must itself succeed —
        # compaction is advisory, durability comes from the WAL
        session.execute("INSERT INTO kv VALUES ('e', 5)")
        assert fs.injected and fs.injected[0][2] == "write"
        assert engine.stats["checkpoint_failures"] == 1
        assert engine._checkpoint_pending, "failed auto-checkpoint re-defers"
        assert not engine.panicked
        # next statement's epilogue retries the checkpoint and succeeds
        session.execute("INSERT INTO kv VALUES ('f', 6)")
        assert engine.stats["checkpoints"] == checkpoints + 1
        assert not engine._checkpoint_pending
        db.close()
        db2 = Database.open(str(tmp_path / "db"))
        assert len(db2.snapshot()["kv"]) == 6
        db2.close()

    def test_orphan_temp_files_are_removed_on_open(self, tmp_path):
        path = str(tmp_path / "db")
        db, session = seeded_db(path, FaultyFilesystem(FaultPlan()))
        db.close()
        tmp = os.path.join(path, "snapshot.json.tmp")
        stale = os.path.join(path, "LOCK.stale.99999.1")
        with open(tmp, "w") as fh:
            fh.write("{garbage")
        with open(stale, "w") as fh:
            fh.write("99999")
        db2 = Database.open(path)
        assert not os.path.exists(tmp)
        assert not os.path.exists(stale)
        assert sorted(row["k"] for row in db2.snapshot()["kv"]) == ["a", "b"]
        db2.close()


# --------------------------------------------------------------------------
# FaultyFilesystem mechanics
# --------------------------------------------------------------------------


class TestFaultPlanMechanics:
    def test_torn_write_is_a_deterministic_prefix(self, tmp_path):
        target = str(tmp_path / "torn.bin")
        payload = b"0123456789abcdef"
        cuts = []
        for _ in range(2):
            fs = FaultyFilesystem(FaultPlan(crash_at=1, seed=7))
            with pytest.raises(SimulatedCrash):
                fh = fs.open(target, "wb")
                try:
                    fh.write(payload)
                finally:
                    fh.close()
            with open(target, "rb") as check:
                cuts.append(check.read())
        assert cuts[0] == cuts[1], "same seed must tear at the same byte"
        assert payload.startswith(cuts[0])

    def test_enospc_budget_allows_partial_write(self, tmp_path):
        target = str(tmp_path / "full.bin")
        fs = FaultyFilesystem(FaultPlan(enospc_after_bytes=10))
        fh = fs.open(target, "wb")
        try:
            with pytest.raises(OSError) as excinfo:
                fh.write(b"x" * 64)
        finally:
            fh.close()
        assert excinfo.value.errno == errno.ENOSPC
        assert os.path.getsize(target) == 10

    def test_fsync_counter_is_one_shot(self, tmp_path):
        target = str(tmp_path / "sync.bin")
        fs = FaultyFilesystem(FaultPlan(fail_fsync=2))
        fh = fs.open(target, "wb")
        try:
            fh.write(b"data")
            fs.fsync(fh)  # first fsync: fine
            with pytest.raises(OSError) as excinfo:
                fs.fsync(fh)  # second: injected
            assert excinfo.value.errno == errno.EIO
            fs.fsync(fh)  # one-shot: third succeeds
        finally:
            fh.close()

    def test_ops_log_names_every_operation(self, tmp_path):
        fs = FaultyFilesystem(FaultPlan())
        db, _ = seeded_db(str(tmp_path / "db"), fs)
        db.close()
        assert fs.ops == len(fs.ops_log)
        kinds = {op for _, op, _ in fs.ops_log}
        assert {"open", "write", "flush", "fsync", "replace"} <= kinds
