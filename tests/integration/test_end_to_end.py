"""Cross-module end-to-end scenarios exercising the whole stack."""

import pytest

from repro.core import (
    BridgeScope,
    BridgeScopeConfig,
    MinidbBinding,
    SecurityPolicy,
    combine_bridges,
)
from repro.minidb import Database
from repro.mltools import MLToolServer


@pytest.fixture
def store_db():
    db = Database(owner="dba")
    dba = db.connect("dba")
    dba.execute(
        "CREATE TABLE brand_a_items (id INT PRIMARY KEY, name TEXT, category TEXT)"
    )
    dba.execute(
        "CREATE TABLE brand_a_sales (order_id INT PRIMARY KEY, "
        "item_id INT REFERENCES brand_a_items(id), day INT, amount FLOAT)"
    )
    dba.execute(
        "CREATE TABLE brand_a_refunds (refund_id INT PRIMARY KEY, "
        "order_id INT REFERENCES brand_a_sales(order_id), day INT, amount FLOAT)"
    )
    dba.execute("CREATE TABLE brand_b_sales (order_id INT PRIMARY KEY, amount FLOAT)")
    dba.execute("INSERT INTO brand_a_items VALUES (1, 'dress', 'women''s wear')")
    order = 1
    for day in range(1, 8):
        dba.execute(
            f"INSERT INTO brand_a_sales VALUES ({order}, 1, {day}, {100.0 + 10 * day})"
        )
        order += 1
    dba.execute("INSERT INTO brand_a_refunds VALUES (1, 1, 2, 12.0)")
    db.create_user("manager")
    for table in ("brand_a_items", "brand_a_sales", "brand_a_refunds"):
        dba.execute(f"GRANT ALL ON {table} TO manager")
    return db


class TestChainStoreScenario:
    """The paper's Figure 3 workflow, executed step by step."""

    def test_full_workflow(self, store_db):
        bridge = BridgeScope(
            MinidbBinding.for_user(store_db, "manager"),
            extra_servers=[MLToolServer()],
        )

        # 1. schema with annotations
        schema = bridge.invoke("get_schema").content
        assert "-- Access: True, Privileges: ALL" in schema
        assert "-- Access: False" in schema  # brand_b_sales

        # 2. atomic daily insert
        assert not bridge.invoke("begin").is_error
        assert not bridge.invoke(
            "insert", sql="INSERT INTO brand_a_sales VALUES (99, 1, 8, 190.0)"
        ).is_error
        assert not bridge.invoke(
            "insert", sql="INSERT INTO brand_a_refunds VALUES (9, 99, 8, 20.0)"
        ).is_error
        assert not bridge.invoke("commit").is_error
        assert store_db.table_row_count("brand_a_sales") == 8

        # 3. trend analysis through the proxy (Figure 3's proxy unit)
        result = bridge.invoke(
            "proxy",
            target_tool="trend_analyze",
            tool_args={
                "sales": {
                    "__tool__": "select",
                    "__args__": {
                        "sql": "SELECT SUM(amount) FROM brand_a_sales "
                        "GROUP BY day ORDER BY day"
                    },
                    "__transform__": "lambda x: x",
                },
                "refunds": {
                    "__tool__": "select",
                    "__args__": {
                        "sql": "SELECT SUM(amount) FROM brand_a_refunds "
                        "GROUP BY day ORDER BY day"
                    },
                    "__transform__": "lambda x: x",
                },
            },
        )
        assert not result.is_error
        assert result.content["sales_trend"] == "rising"

    def test_failed_insert_rolls_back_whole_day(self, store_db):
        bridge = BridgeScope(MinidbBinding.for_user(store_db, "manager"))
        bridge.invoke("begin")
        bridge.invoke(
            "insert", sql="INSERT INTO brand_a_sales VALUES (99, 1, 8, 190.0)"
        )
        # second insert violates FK -> manager decides to roll back
        failed = bridge.invoke(
            "insert", sql="INSERT INTO brand_a_refunds VALUES (9, 12345, 8, 20.0)"
        )
        assert failed.is_error
        bridge.invoke("rollback")
        assert store_db.table_row_count("brand_a_sales") == 7

    def test_manager_cannot_touch_brand_b(self, store_db):
        bridge = BridgeScope(MinidbBinding.for_user(store_db, "manager"))
        result = bridge.invoke("select", sql="SELECT * FROM brand_b_sales")
        assert result.is_error
        assert result.error_code == "SecurityViolation"


class TestPolicyLayeredScenario:
    def test_read_only_policy_on_full_privilege_user(self, store_db):
        bridge = BridgeScope(
            MinidbBinding.for_user(store_db, "manager"),
            BridgeScopeConfig(policy=SecurityPolicy.read_only()),
        )
        assert bridge.exposed_sql_actions() == ["SELECT"]
        assert "begin" not in bridge.tool_names()
        denied = bridge.invoke("select", sql="DELETE FROM brand_a_sales")
        assert denied.is_error

    def test_audit_trail_across_workflow(self, store_db):
        bridge = BridgeScope(MinidbBinding.for_user(store_db, "manager"))
        bridge.invoke("select", sql="SELECT COUNT(*) FROM brand_a_sales")
        bridge.invoke("select", sql="SELECT * FROM brand_b_sales")
        audit = bridge.verifier.audit
        assert len(audit.records) == 2
        assert len(audit.rejections()) == 1


class TestFederatedScenario:
    def test_two_sources_one_agent(self, store_db):
        warehouse = Database(owner="dba")
        dba = warehouse.connect("dba")
        dba.execute("CREATE TABLE stock (item_id INT PRIMARY KEY, units INT)")
        dba.execute("INSERT INTO stock VALUES (1, 40)")

        shop = BridgeScope(
            MinidbBinding.for_user(store_db, "dba"), namespace="shop"
        )
        depot = BridgeScope(
            MinidbBinding.for_user(warehouse, "dba"), namespace="depot"
        )
        registry = combine_bridges([shop, depot])

        # cross-source proxy: count shop sales, look up stock in the depot
        result = registry.invoke(
            "depot__proxy",
            target_tool="depot__select",
            tool_args={
                "sql": {
                    "__tool__": "shop__select",
                    "__args__": {
                        "sql": "SELECT 'SELECT units FROM stock WHERE item_id = 1'"
                    },
                    "__transform__": "lambda rows: rows[0][0]",
                }
            },
        )
        assert not result.is_error
        assert result.metadata["rows"] == [(40,)]
