"""Unit tests for experiment aggregation helpers."""

from repro.agent import RunTrace
from repro.bench.bird_ext import generate_bird_ext_tasks
from repro.bench.runner import (
    BEST_ACHIEVABLE,
    CellStats,
    TaskRunResult,
    _seed_for,
    _task_subset,
)


def trace(calls=3, tokens_in=100, tokens_out=50, completed=True, aborted=False,
          began=False, committed=False):
    t = RunTrace(task_id="t", model="m", toolkit="k")
    t.llm_calls = calls
    t.input_tokens = tokens_in
    t.output_tokens = tokens_out
    t.completed = completed
    t.aborted = aborted
    t.began_transaction = began
    t.committed = committed
    return t


class TestCellStats:
    def test_averages(self):
        cell = CellStats()
        cell.add(TaskRunResult(trace(calls=2, tokens_in=100), True, True))
        cell.add(TaskRunResult(trace(calls=4, tokens_in=300), True, False))
        assert cell.n == 2
        assert cell.avg_llm_calls == 3.0
        assert cell.avg_tokens == (150 + 350) / 2

    def test_accuracy_ignores_unscored(self):
        cell = CellStats()
        cell.add(TaskRunResult(trace(), True, True))
        cell.add(TaskRunResult(trace(), False, None))  # infeasible
        assert cell.accuracy == 1.0

    def test_accuracy_empty(self):
        assert CellStats().accuracy == 0.0

    def test_completion_rate_excludes_aborts(self):
        cell = CellStats()
        cell.add(TaskRunResult(trace(completed=True), True, True))
        cell.add(TaskRunResult(trace(completed=True, aborted=True), True, None))
        assert cell.completion_rate == 0.5

    def test_transaction_ratio(self):
        cell = CellStats()
        cell.add(TaskRunResult(trace(began=True, committed=True), True, True))
        cell.add(TaskRunResult(trace(began=True, committed=False), True, True))
        cell.add(TaskRunResult(trace(), True, True))
        assert cell.transaction_ratio == 1 / 3


class TestSeeds:
    def test_deterministic(self):
        assert _seed_for("a", "m", "k") == _seed_for("a", "m", "k")

    def test_distinct_dimensions(self):
        base = _seed_for("a", "m", "k")
        assert _seed_for("b", "m", "k") != base
        assert _seed_for("a", "n", "k") != base
        assert _seed_for("a", "m", "l") != base


class TestTaskSubset:
    def test_stratified_over_actions(self):
        tasks = generate_bird_ext_tasks()
        subset = _task_subset(tasks, 12)
        actions = [t.action for t in subset]
        assert len(subset) == 12
        for action in ("SELECT", "INSERT", "UPDATE", "DELETE"):
            assert actions.count(action) == 3

    def test_full_when_limit_exceeds(self):
        tasks = generate_bird_ext_tasks()
        assert len(_task_subset(tasks, 10_000)) == len(tasks)

    def test_none_means_all(self):
        tasks = generate_bird_ext_tasks()
        assert _task_subset(tasks, None) is tasks

    def test_deterministic(self):
        tasks = generate_bird_ext_tasks()
        a = [t.task_id for t in _task_subset(tasks, 20)]
        b = [t.task_id for t in _task_subset(tasks, 20)]
        assert a == b


class TestBestAchievable:
    def test_paper_bounds(self):
        assert BEST_ACHIEVABLE["read"] == 3
        assert BEST_ACHIEVABLE["write"] == 5
        assert BEST_ACHIEVABLE["ml"] == 3
        assert BEST_ACHIEVABLE["abort_no_tool"] == 1
        assert BEST_ACHIEVABLE["abort_schema"] == 2
