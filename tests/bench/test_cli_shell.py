"""Tests for the CLI front ends (bench CLI and minidb shell)."""

import io

import pytest

from repro.bench.cli import EXPERIMENTS, main as bench_main, run_experiment
from repro.minidb import Database
from repro.minidb.__main__ import run_shell


class TestBenchCLI:
    def test_run_experiment_fig5a(self):
        report = run_experiment(
            "fig5a", tasks=4, scale=0.3, housing_rows=500, models=["gpt-4o"]
        )
        assert "Figure 5(a)" in report
        assert "gpt-4o" in report

    def test_run_experiment_fig5c(self):
        report = run_experiment(
            "fig5c", tasks=4, scale=0.3, housing_rows=500, models=["gpt-4o"]
        )
        assert "transaction" in report

    def test_unknown_experiment(self):
        with pytest.raises(ValueError):
            run_experiment("fig99", 1, 0.3, 100)

    def test_main_prints_report(self, capsys):
        code = bench_main(
            ["fig5a", "--tasks", "4", "--scale", "0.3", "--model", "gpt-4o"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 5(a)" in out

    def test_experiments_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "fig5a", "fig5b", "fig5c", "fig6", "table1", "table2", "joins",
            "retrieval", "storage", "concurrency", "query", "faults", "obs",
        }

    def test_run_experiment_query(self):
        report = run_experiment("query", 1, 0.02, 100)
        assert "Query scale" in report
        assert "Index Range Scan" in report

    def test_run_experiment_storage(self):
        report = run_experiment("storage", 1, 0.02, 100)
        assert "Storage durability" in report
        assert "warm reopen" in report

    def test_run_experiment_joins(self):
        report = run_experiment("joins", 1, 0.05, 100)
        assert "Join scale" in report
        assert "Hash Join" in report

    def test_run_experiment_retrieval(self):
        report = run_experiment("retrieval", 1, 0.02, 100)
        assert "Retrieval scale" in report
        assert "rankings: identical" in report

    def test_run_experiment_faults(self):
        report = run_experiment("faults", 1, 0.02, 100)
        assert "Fault injection" in report
        assert "recovery violations" in report
        assert "retry litmus" in report


class TestMinidbShell:
    def run(self, script: str, db: Database | None = None) -> str:
        import contextlib

        database = db or Database(owner="admin")
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            run_shell(database, "admin", stream=io.StringIO(script))
        return out.getvalue()

    def test_select(self):
        output = self.run("SELECT 1 + 1;\n")
        assert "2" in output

    def test_multiline_statement(self):
        output = self.run("SELECT\n1 + 2;\n")
        assert "3" in output

    def test_create_and_describe(self):
        output = self.run("CREATE TABLE t (a INT);\n\\d\n\\d t\n")
        assert "table  t" in output
        assert "CREATE TABLE t" in output

    def test_describe_missing(self):
        assert "no such object" in self.run("\\d ghost\n")

    def test_error_reported_not_fatal(self):
        output = self.run("SELEKT;\nSELECT 5;\n")
        assert "ERROR" in output
        assert "5" in output

    def test_du_lists_users(self):
        output = self.run("\\du\n")
        assert "admin" in output

    def test_quit_command(self):
        output = self.run("\\q\nSELECT 1;\n")
        assert "1 |" not in output  # nothing executed after \q

    def test_unknown_meta_command(self):
        assert "unknown command" in self.run("\\zzz\n")
