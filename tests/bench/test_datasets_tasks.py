"""Tests for benchmark data generation: databases and task suites."""

import pytest

from repro.bench.bird_ext import NL_FORMS, generate_bird_ext_tasks
from repro.bench.datasets import (
    ROLE_IRRELEVANT,
    ROLE_NORMAL,
    build_bird_database,
    build_housing_database,
)
from repro.bench.nl2ml import generate_nl2ml_tasks, idealized_pg_mcp_token_cost
from repro.bench.tasks import PipelineNode
from repro.minidb import PermissionDenied


class TestBirdDatabase:
    @pytest.fixture(scope="class")
    def db(self):
        return build_bird_database(scale=0.5)

    def test_all_domains_present(self, db):
        names = set(db.catalog.object_names())
        assert {
            "schools", "satscores", "brand_a_items", "brand_a_sales",
            "brand_a_refunds", "brand_b_sales", "clients", "accounts",
            "audit_log",
        } <= names

    def test_tables_populated(self, db):
        session = db.connect("admin")
        for table in ("schools", "brand_a_sales", "accounts"):
            assert session.scalar(f"SELECT COUNT(*) FROM {table}") > 0

    def test_foreign_keys_consistent(self, db):
        session = db.connect("admin")
        orphans = session.scalar(
            "SELECT COUNT(*) FROM brand_a_sales s WHERE s.item_id NOT IN "
            "(SELECT item_id FROM brand_a_items)"
        )
        assert orphans == 0

    def test_tricky_values_planted(self, db):
        session = db.connect("admin")
        categories = {
            row[0]
            for row in session.execute(
                "SELECT DISTINCT category FROM brand_a_items"
            ).rows
        }
        assert "women's wear" in categories

    def test_deterministic(self):
        a = build_bird_database(scale=0.3).snapshot()
        b = build_bird_database(scale=0.3).snapshot()
        assert a == b

    def test_scale_changes_row_counts(self):
        small = build_bird_database(scale=0.2)
        large = build_bird_database(scale=1.0)
        assert small.table_row_count("schools") < large.table_row_count("schools")

    def test_normal_role_is_read_only(self, db):
        session = db.connect(ROLE_NORMAL)
        assert session.scalar("SELECT COUNT(*) FROM schools") > 0
        with pytest.raises(PermissionDenied):
            session.execute("DELETE FROM schools")

    def test_irrelevant_role_sees_only_audit_log(self, db):
        session = db.connect(ROLE_IRRELEVANT)
        assert session.scalar("SELECT COUNT(*) FROM audit_log") > 0
        with pytest.raises(PermissionDenied):
            session.execute("SELECT * FROM schools")

    def test_normal_cannot_read_audit_log(self, db):
        session = db.connect(ROLE_NORMAL)
        with pytest.raises(PermissionDenied):
            session.execute("SELECT * FROM audit_log")


class TestBirdExtTasks:
    @pytest.fixture(scope="class")
    def tasks(self):
        return generate_bird_ext_tasks()

    def test_task_counts(self, tasks):
        assert len(tasks) == 300
        assert sum(1 for t in tasks if t.action == "SELECT") == 150
        for action in ("INSERT", "UPDATE", "DELETE"):
            assert sum(1 for t in tasks if t.action == action) == 50

    def test_unique_ids(self, tasks):
        assert len({t.task_id for t in tasks}) == len(tasks)

    def test_gold_sql_executes(self, tasks):
        db = build_bird_database(scale=0.5)
        session = db.connect("admin")
        for task in tasks[:60]:
            session.execute(task.gold_sql)  # must not raise

    def test_wrong_identifier_sql_fails(self, tasks):
        db = build_bird_database(scale=0.5)
        session = db.connect("admin")
        checked = 0
        for task in tasks:
            if task.wrong_identifier_sql is None or task.write:
                continue
            with pytest.raises(Exception):
                session.execute(task.wrong_identifier_sql)
            checked += 1
            if checked >= 20:
                break
        assert checked >= 10

    def test_value_miss_sql_runs_but_differs(self, tasks):
        db = build_bird_database(scale=0.5)
        session = db.connect("admin")
        task = next(
            t for t in tasks if t.value_miss_sql and not t.write and t.tricky
        )
        gold = session.execute(task.gold_sql).rows
        miss = session.execute(task.value_miss_sql).rows
        assert gold != miss

    def test_tricky_tasks_have_nl_forms(self, tasks):
        for task in tasks:
            if task.tricky:
                assert task.tricky.nl_form != task.tricky.stored_form
                assert task.tricky.nl_form == NL_FORMS[task.tricky.stored_form]

    def test_write_flag_consistent(self, tasks):
        for task in tasks:
            assert task.write == (task.action != "SELECT")

    def test_generation_deterministic(self):
        a = generate_bird_ext_tasks()
        b = generate_bird_ext_tasks()
        assert [t.gold_sql for t in a] == [t.gold_sql for t in b]


class TestHousingDatabase:
    @pytest.fixture(scope="class")
    def db(self):
        return build_housing_database(rows=500)

    def test_row_count(self, db):
        assert db.table_row_count("house") == 500

    def test_ten_columns(self, db):
        schema = db.catalog.table("house")
        assert len(schema.columns) == 10

    def test_value_bounds(self, db):
        session = db.connect("admin")
        low, high = session.execute(
            "SELECT MIN(median_house_value), MAX(median_house_value) FROM house"
        ).rows[0]
        assert low >= 15_000
        assert high <= 500_001

    def test_income_drives_price(self, db):
        session = db.connect("admin")
        rich = session.scalar(
            "SELECT AVG(median_house_value) FROM house WHERE median_income > 5"
        )
        poor = session.scalar(
            "SELECT AVG(median_house_value) FROM house WHERE median_income < 2"
        )
        assert rich > poor

    def test_categorical_column(self, db):
        session = db.connect("admin")
        values = {
            row[0]
            for row in session.execute(
                "SELECT DISTINCT ocean_proximity FROM house"
            ).rows
        }
        assert values <= {"<1H OCEAN", "INLAND", "NEAR OCEAN", "NEAR BAY", "ISLAND"}

    def test_deterministic(self):
        a = build_housing_database(rows=50).snapshot()
        b = build_housing_database(rows=50).snapshot()
        assert a == b


class TestNL2MLTasks:
    @pytest.fixture(scope="class")
    def tasks(self):
        return generate_nl2ml_tasks()

    def test_counts_per_level(self, tasks):
        assert len(tasks) == 30
        for level in (1, 2, 3):
            assert sum(1 for t in tasks if t.level == level) == 10

    def test_plan_depth_matches_level(self, tasks):
        for task in tasks:
            # level-1 plan: train(select) -> depth 2; +1 per extra level
            assert task.plan.depth() == task.level + 1

    def test_postorder_leaf_first(self, tasks):
        for task in tasks:
            order = task.plan.postorder()
            assert order[0].tool == "select"
            assert order[-1] is task.plan

    def test_level3_ends_with_predict(self, tasks):
        for task in tasks:
            if task.level == 3:
                assert task.plan.tool == "predict"

    def test_select_sql_valid(self, tasks):
        db = build_housing_database(rows=100)
        session = db.connect("admin")
        for task in tasks:
            leaf = task.plan.postorder()[0]
            session.execute(leaf.args["sql"])

    def test_idealized_cost_scales_with_rows(self):
        small = idealized_pg_mcp_token_cost(build_housing_database(rows=100))
        large = idealized_pg_mcp_token_cost(build_housing_database(rows=1000))
        assert large > small * 5

    def test_pipeline_node_depth(self):
        leaf = PipelineNode("select", {"sql": "SELECT 1"})
        nested = PipelineNode("train", {"data": PipelineNode("norm", {"data": leaf})})
        assert nested.depth() == 3
