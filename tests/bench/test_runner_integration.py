"""Integration tests for the experiment harness (small-scale end-to-end)."""

import pytest

from repro.baselines import PGMCP, PGMCPMinus, make_sampled_binding
from repro.bench.bird_ext import generate_bird_ext_tasks
from repro.bench.datasets import build_bird_database, build_housing_database
from repro.bench.nl2ml import generate_nl2ml_tasks
from repro.bench.runner import (
    BEST_ACHIEVABLE,
    build_toolkit,
    experiment_fig5a,
    experiment_fig5c,
    experiment_table2,
    role_feasible,
    run_db_task,
    run_ml_task,
)
from repro.core import MinidbBinding
from repro.llm import CLAUDE_4, GPT_4O
from repro.mltools import MLToolServer


class TestToolkitFactory:
    @pytest.fixture(scope="class")
    def db(self):
        return build_bird_database(scale=0.3)

    def test_bridgescope_assembly(self, db):
        registry, prompt = build_toolkit("bridgescope", db, "admin")
        assert "get_schema" in registry.tool_names()
        assert "proxy" in registry.tool_names()
        assert "BridgeScope" in prompt or "transaction" in prompt

    def test_pg_mcp_assembly(self, db):
        registry, _ = build_toolkit("pg-mcp", db, "admin")
        assert set(registry.tool_names()) == {"get_schema", "execute_sql"}

    def test_pg_mcp_minus_assembly(self, db):
        registry, _ = build_toolkit("pg-mcp-minus", db, "admin")
        assert registry.tool_names() == ["execute_sql"]

    def test_pg_mcp_s_is_sampled(self, db):
        registry, _ = build_toolkit("pg-mcp-s", db, "admin")
        result = registry.invoke("execute_sql", sql="SELECT COUNT(*) FROM schools")
        count = result.metadata["rows"][0][0]
        assert count <= 20

    def test_unknown_toolkit(self, db):
        with pytest.raises(ValueError):
            build_toolkit("nope", db, "admin")

    def test_extra_servers_attached(self, db):
        registry, _ = build_toolkit(
            "bridgescope", db, "admin", extra_servers=[MLToolServer()]
        )
        assert "train_linear" in registry.tool_names()


class TestSampledBinding:
    def test_grants_replicated(self):
        db = build_bird_database(scale=0.3)
        binding = make_sampled_binding(db, "normal")
        assert "SELECT" in binding.user_actions_on("schools")
        assert binding.user_actions_on("audit_log") == set()

    def test_schema_preserved(self):
        db = build_bird_database(scale=0.3)
        binding = make_sampled_binding(db, "admin")
        assert set(binding.list_objects()) >= {"schools", "satscores"}
        info = binding.object_info("schools")
        assert info.primary_key == ["cds_code"]


class TestPGMCPBaseline:
    def test_schema_has_no_annotations(self):
        db = build_bird_database(scale=0.3)
        server = PGMCP(MinidbBinding.for_user(db, "admin"))
        schema = server.invoke("get_schema").content
        assert "Access:" not in schema
        assert "CREATE TABLE schools" in schema

    def test_execute_sql_any_statement(self):
        db = build_bird_database(scale=0.3)
        server = PGMCP(MinidbBinding.for_user(db, "admin"))
        assert not server.invoke("execute_sql", sql="SELECT 1").is_error
        assert not server.invoke(
            "execute_sql", sql="CREATE TABLE scratch (x INT)"
        ).is_error

    def test_minus_variant_hides_schema_tool(self):
        db = build_bird_database(scale=0.3)
        server = PGMCPMinus(MinidbBinding.for_user(db, "admin"))
        assert [s.name for s in server.visible_tools()] == ["execute_sql"]

    def test_json_tool_rendering(self):
        db = build_bird_database(scale=0.3)
        server = PGMCP(MinidbBinding.for_user(db, "admin"))
        rendered = server.render_tool_list()
        assert '"inputSchema"' in rendered


class TestScoring:
    @pytest.fixture(scope="class")
    def tasks(self):
        return generate_bird_ext_tasks()

    def test_role_feasibility(self, tasks):
        db = build_bird_database(scale=0.3)
        read = next(t for t in tasks if not t.write)
        write = next(t for t in tasks if t.write)
        assert role_feasible(db, "admin", read)
        assert role_feasible(db, "normal", read)
        assert not role_feasible(db, "normal", write)
        assert not role_feasible(db, "irrelevant", read)

    def test_correct_read_scored(self, tasks):
        read = next(t for t in tasks if not t.write and t.tricky is None)
        result = run_db_task(read, "bridgescope", CLAUDE_4, scale=0.3)
        assert result.feasible
        assert result.correct is True

    def test_write_correctness_via_snapshot(self, tasks):
        write = next(t for t in tasks if t.action == "INSERT")
        result = run_db_task(write, "bridgescope", CLAUDE_4, scale=0.3)
        assert result.correct is True

    def test_infeasible_marked_intercepted(self, tasks):
        write = next(t for t in tasks if t.write)
        result = run_db_task(write, "bridgescope", CLAUDE_4, role="normal", scale=0.3)
        assert result.correct is None
        assert result.intercepted


class TestExperimentsSmallScale:
    def test_fig5a_shape(self):
        result = experiment_fig5a(models=["gpt-4o"], n_tasks=8, scale=0.3)
        row = result["gpt-4o"]
        assert row["bridgescope"] < row["pg-mcp-minus"]
        assert row["best-achievable"] == BEST_ACHIEVABLE["read"]

    def test_fig5c_shape(self):
        result = experiment_fig5c(models=["claude-4"], n_tasks=8, scale=0.3)
        row = result["claude-4"]
        assert row["bridgescope"] >= 0.8
        assert row["pg-mcp"] <= 0.4

    def test_table2_small(self):
        result = experiment_table2(models=["gpt-4o"], per_level=1, housing_rows=800)
        cells = result["cells"]
        assert cells[("gpt-4o", "bridgescope")]["completion_rate"] == 1.0
        assert cells[("gpt-4o", "pg-mcp-s")]["avg_llm_calls"] >= 4.0
        assert result["idealized_pg_mcp_tokens"] > 0


class TestNL2MLRuns:
    @pytest.fixture(scope="class")
    def housing(self):
        return build_housing_database(rows=600)

    def test_bridgescope_completes_all_levels(self, housing):
        tasks = generate_nl2ml_tasks(per_level=2)
        for task in tasks:
            result = run_ml_task(task, "bridgescope", CLAUDE_4, housing)
            assert result.trace.completed and not result.trace.aborted, task.task_id
            assert result.trace.used("proxy")

    def test_bridgescope_call_count_near_three(self, housing):
        tasks = generate_nl2ml_tasks(per_level=2)
        calls = [
            run_ml_task(t, "bridgescope", CLAUDE_4, housing).trace.llm_calls
            for t in tasks
        ]
        assert sum(calls) / len(calls) <= 4.0

    def test_pg_mcp_overflows_on_large_table(self):
        housing = build_housing_database(rows=20_000)
        task = generate_nl2ml_tasks(per_level=1)[0]
        result = run_ml_task(task, "pg-mcp", GPT_4O, housing)
        assert not result.trace.completed
        assert result.trace.failure_reason == "context_overflow"

    def test_pg_mcp_s_routes_manually(self, housing):
        task = generate_nl2ml_tasks(per_level=1)[0]
        result = run_ml_task(task, "pg-mcp-s", GPT_4O, housing)
        assert result.trace.completed
        assert not result.trace.used("proxy")
        assert result.trace.llm_calls >= 4
