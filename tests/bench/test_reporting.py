"""Tests for the reporting helpers."""

from repro.bench.reporting import (
    render_fig5a,
    render_fig5b,
    render_fig5c,
    render_fig6,
    render_table,
    render_table1,
    render_table2,
)


class TestRenderTable:
    def test_alignment_and_title(self):
        out = render_table(["col", "n"], [["x", 1], ["longer", 22]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert all(len(line) == len(lines[1]) for line in lines[1:])

    def test_float_formatting(self):
        out = render_table(["v"], [[1234.5678]])
        assert "1,234.57" in out

    def test_empty_rows(self):
        out = render_table(["a"], [])
        assert "a" in out


class TestFigureRenderers:
    def test_fig5a(self):
        out = render_fig5a(
            {"gpt-4o": {"bridgescope": 3.2, "pg-mcp-minus": 4.8, "best-achievable": 3.0}}
        )
        assert "Figure 5(a)" in out
        assert "gpt-4o" in out

    def test_fig5b(self):
        out = render_fig5b({"m": {"bridgescope": 0.9, "pg-mcp": 0.88}})
        assert "accuracy" in out

    def test_fig5c(self):
        out = render_fig5c(
            {"m": {"bridgescope": 1.0, "pg-mcp": 0.1, "best-achievable": 1.0}}
        )
        assert "transaction" in out

    def test_fig6_and_table1(self):
        data = {
            "m": {
                "(A, read)": {
                    "bridgescope": 3.0,
                    "pg-mcp": 3.1,
                    "best": 3.0,
                    "bridgescope_tokens": 5000.0,
                    "pg-mcp_tokens": 5100.0,
                }
            }
        }
        assert "(A, read)" in render_fig6(data)
        assert "Table 1" in render_table1(data)

    def test_table2_includes_idealized_footer(self):
        data = {
            "cells": {
                ("m", "bridgescope"): {
                    "completion_rate": 1.0,
                    "avg_tokens": 10_000.0,
                    "avg_llm_calls": 3.4,
                }
            },
            "idealized_pg_mcp_tokens": 1_500_000,
            "bridgescope_avg_tokens": 10_000.0,
        }
        out = render_table2(data)
        assert "Idealized" in out
        assert "150x" in out
