"""Tests for the token model and the behavior profiles."""

import dataclasses

import pytest

from repro.llm import CLAUDE_4, GPT_4O, PROFILES, count_payload_tokens, count_tokens


class TestTokenizer:
    def test_empty(self):
        assert count_tokens("") == 0

    def test_single_word(self):
        assert count_tokens("hi") == 1

    def test_long_word_splits(self):
        # 12 chars -> ceil(12/4) = 3 tokens
        assert count_tokens("abcdefghijkl") == 3

    def test_whitespace_separation(self):
        assert count_tokens("a b c") == 3

    def test_newlines_counted(self):
        assert count_tokens("a\nb") == count_tokens("a b") + 1

    def test_monotone_in_length(self):
        short = count_tokens("select * from t")
        long = count_tokens("select * from t where x > 10 order by y")
        assert long > short

    def test_roughly_four_chars_per_token(self):
        text = "x" * 4000
        assert count_tokens(text) == 1000

    def test_deterministic(self):
        text = "SELECT a, b FROM t WHERE c = 'x'"
        assert count_tokens(text) == count_tokens(text)

    def test_payload_tokens_for_structures(self):
        assert count_payload_tokens([1, 2, 3]) > 0
        assert count_payload_tokens("abc") == count_tokens("abc")

    def test_payload_scales_with_rows(self):
        small = count_payload_tokens([(1.0, 2.0)] * 10)
        large = count_payload_tokens([(1.0, 2.0)] * 1000)
        assert large > small * 50


class TestProfiles:
    def test_registry_contains_both_models(self):
        assert set(PROFILES) == {"gpt-4o", "claude-4"}

    def test_profiles_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            GPT_4O.context_window = 1

    def test_rates_are_probabilities(self):
        for profile in PROFILES.values():
            for field in dataclasses.fields(profile):
                value = getattr(profile, field.name)
                if field.name.endswith("_rate") or field.name in (
                    "privilege_reasoning",
                    "missing_tool_insight",
                    "txn_with_tools",
                    "txn_generic",
                    "value_retrieval_discipline",
                    "proxy_composition_skill",
                ):
                    assert 0.0 <= value <= 1.0, (profile.name, field.name)

    def test_claude_reasons_better_about_privileges(self):
        assert CLAUDE_4.privilege_reasoning > GPT_4O.privilege_reasoning
        assert CLAUDE_4.missing_tool_insight > GPT_4O.missing_tool_insight

    def test_claude_is_more_verbose(self):
        assert CLAUDE_4.reasoning_verbosity > GPT_4O.reasoning_verbosity

    def test_windows_match_public_specs(self):
        assert GPT_4O.context_window == 128_000
        assert CLAUDE_4.context_window == 200_000
