"""White-box tests for the simulated policy's individual mechanisms.

Each test isolates one behavioral knob by pinning the profile's other
rates to deterministic extremes, then checks the mechanism — not the
aggregate benchmark outcome.
"""

import dataclasses

import pytest

from repro.bench.bird_ext import generate_bird_ext_tasks
from repro.bench.datasets import build_bird_database
from repro.bench.runner import build_toolkit
from repro.agent import ReActAgent
from repro.llm import GPT_4O
from repro.llm.policy import SimulatedDataAgentPolicy, _annotated_access


def pinned(**overrides):
    """GPT_4O with specific rates forced to 0 or 1."""
    fields = {f: getattr(GPT_4O, f) for f in GPT_4O.__dataclass_fields__}
    fields.update(overrides)
    return dataclasses.replace(GPT_4O, **{k: v for k, v in fields.items() if k in GPT_4O.__dataclass_fields__})


@pytest.fixture(scope="module")
def tasks():
    return generate_bird_ext_tasks()


def run_with(profile, task, toolkit="bridgescope", role="admin", seed=1):
    db = build_bird_database(scale=0.3)
    registry, prompt = build_toolkit(toolkit, db, role)
    policy = SimulatedDataAgentPolicy(profile, seed=seed)
    agent = ReActAgent(policy, registry, prompt, toolkit)
    return agent.run(task), db


class TestSchemaHallucinationMechanism:
    def test_no_hallucination_when_rate_zero(self, tasks):
        task = next(t for t in tasks if not t.write and t.wrong_identifier_sql)
        profile = pinned(
            schema_hallucination_rate=0.0,
            blind_probe_rate=0.0,
            explore_values_rate=0.0,
            predicate_hallucination_rate=0.0,
            logic_error_rate=0.0,
        )
        trace, _ = run_with(profile, task, toolkit="pg-mcp-minus")
        assert trace.error_count() == 0
        assert trace.llm_calls == 2  # sql + final

    def test_certain_hallucination_forces_retry(self, tasks):
        task = next(t for t in tasks if not t.write and t.wrong_identifier_sql)
        profile = pinned(
            schema_hallucination_rate=1.0,
            blind_probe_rate=0.0,
            error_correction_rate=1.0,
            logic_error_rate=0.0,
        )
        trace, _ = run_with(profile, task, toolkit="pg-mcp-minus")
        assert trace.error_count() >= 1
        assert trace.completed

    def test_schema_tool_prevents_hallucination(self, tasks):
        task = next(t for t in tasks if not t.write and t.wrong_identifier_sql)
        profile = pinned(schema_hallucination_rate=1.0, logic_error_rate=0.0,
                         predicate_hallucination_rate=0.0)
        trace, _ = run_with(profile, task, toolkit="bridgescope")
        # schema retrieved first -> identifiers correct -> no errors
        assert trace.error_count() == 0


class TestProbingMechanism:
    def test_probing_discovers_schema(self, tasks):
        task = next(t for t in tasks if not t.write and t.wrong_identifier_sql)
        profile = pinned(
            blind_probe_rate=1.0,
            schema_hallucination_rate=1.0,
            logic_error_rate=0.0,
            predicate_hallucination_rate=0.0,
            explore_values_rate=0.0,
        )
        trace, _ = run_with(profile, task, toolkit="pg-mcp-minus", seed=3)
        sequence = trace.tool_sequence()
        # at least one probing SELECT before the real query
        assert len(sequence) >= 2
        assert trace.completed


class TestTransactionMechanism:
    def test_txn_rate_one_always_brackets(self, tasks):
        task = next(t for t in tasks if t.action == "INSERT")
        profile = pinned(txn_with_tools=1.0, logic_error_rate=0.0)
        trace, _ = run_with(profile, task)
        assert trace.began_transaction and trace.committed

    def test_txn_rate_zero_never_brackets(self, tasks):
        task = next(t for t in tasks if t.action == "INSERT")
        profile = pinned(txn_with_tools=0.0, logic_error_rate=0.0)
        trace, _ = run_with(profile, task)
        assert not trace.began_transaction
        assert trace.completed  # write still lands via autocommit

    def test_multi_statement_slip_errors_then_recovers(self, tasks):
        task = next(t for t in tasks if t.action == "INSERT")
        profile = pinned(
            multi_statement_rate=1.0, txn_generic=0.0, logic_error_rate=0.0
        )
        trace, db = run_with(profile, task, toolkit="pg-mcp")
        assert trace.error_count() >= 1  # the bundled statement was rejected
        assert trace.completed


class TestPrivilegeMechanism:
    def test_insight_one_aborts_immediately(self, tasks):
        task = next(t for t in tasks if t.write)
        profile = pinned(missing_tool_insight=1.0)
        trace, db = run_with(profile, task, role="normal")
        assert trace.aborted
        assert trace.llm_calls == 1
        assert trace.tool_calls == []

    def test_insight_zero_aborts_after_schema(self, tasks):
        task = next(t for t in tasks if t.write)
        profile = pinned(missing_tool_insight=0.0, privilege_reasoning=1.0)
        trace, _ = run_with(profile, task, role="normal")
        assert trace.aborted
        assert trace.tool_sequence() == ["get_schema"]

    def test_blind_agent_blocked_by_verifier(self, tasks):
        task = next(t for t in tasks if not t.write and not t.tricky)
        profile = pinned(privilege_reasoning=0.0, logic_error_rate=0.0)
        trace, db = run_with(profile, task, role="irrelevant")
        assert trace.aborted
        # the attempt was made and intercepted
        assert any(r.error_code == "SecurityViolation" for r in trace.tool_calls)


class TestValueRetrievalMechanism:
    def test_discipline_one_always_retrieves(self, tasks):
        task = next(t for t in tasks if t.tricky and not t.write)
        profile = pinned(value_retrieval_discipline=1.0, logic_error_rate=0.0)
        trace, _ = run_with(profile, task)
        assert trace.used("get_value")

    def test_discipline_zero_risks_wrong_predicate(self, tasks):
        task = next(
            t for t in tasks if t.tricky and not t.write and t.value_miss_sql
        )
        profile = pinned(
            value_retrieval_discipline=0.0,
            predicate_hallucination_rate=1.0,
            logic_error_rate=0.0,
        )
        trace, db = run_with(profile, task)
        assert not trace.used("get_value")
        # the query ran with the NL surface form: silently wrong result
        oracle = build_bird_database(scale=0.3)
        gold = oracle.connect("admin").execute(task.gold_sql).rows
        assert sorted(trace.last_payload or [], key=repr) != sorted(gold, key=repr)


class TestAnnotationParsing:
    SCHEMA = (
        "-- Access: True, Privileges: ALL\n"
        "CREATE TABLE a (\n    x INTEGER\n);\n\n"
        "-- Access: True, Privileges: SELECT\n"
        "CREATE TABLE b (\n    x INTEGER\n);\n\n"
        "-- Access: False\n"
        "CREATE TABLE c (\n    x INTEGER\n);"
    )

    def test_full_access(self):
        assert _annotated_access(self.SCHEMA, "a", "DELETE")

    def test_partial_access(self):
        assert _annotated_access(self.SCHEMA, "b", "SELECT")
        assert not _annotated_access(self.SCHEMA, "b", "INSERT")

    def test_no_access(self):
        assert not _annotated_access(self.SCHEMA, "c", "SELECT")

    def test_unannotated_schema_assumed_accessible(self):
        plain = "CREATE TABLE t (\n    x INTEGER\n);"
        assert _annotated_access(plain, "t", "DELETE")

    def test_unknown_table_assumed_accessible(self):
        assert _annotated_access(self.SCHEMA, "zzz", "SELECT")
