"""Behavioral tests for the simulated LLM policy over real toolkits."""

import dataclasses

import pytest

from repro.bench.bird_ext import generate_bird_ext_tasks
from repro.bench.datasets import ROLE_IRRELEVANT, ROLE_NORMAL
from repro.bench.runner import run_db_task
from repro.llm import CLAUDE_4, GPT_4O


@pytest.fixture(scope="module")
def tasks():
    return generate_bird_ext_tasks()


@pytest.fixture(scope="module")
def read_task(tasks):
    return next(t for t in tasks if not t.write and t.tricky is None)


@pytest.fixture(scope="module")
def tricky_task(tasks):
    return next(t for t in tasks if not t.write and t.tricky is not None)


@pytest.fixture(scope="module")
def insert_task(tasks):
    return next(t for t in tasks if t.action == "INSERT")


def variants(task, n):
    return [dataclasses.replace(task, task_id=f"{task.task_id}-v{i}") for i in range(n)]


class TestBridgeScopeBehavior:
    def test_schema_first(self, read_task):
        result = run_db_task(read_task, "bridgescope", GPT_4O, scale=0.3)
        assert result.trace.tool_sequence()[0] == "get_schema"

    def test_read_task_near_best_achievable(self, read_task):
        runs = [
            run_db_task(t, "bridgescope", CLAUDE_4, scale=0.3)
            for t in variants(read_task, 5)
        ]
        avg = sum(r.trace.llm_calls for r in runs) / len(runs)
        assert 3.0 <= avg <= 4.0

    def test_write_wrapped_in_transaction(self, insert_task):
        runs = [
            run_db_task(t, "bridgescope", CLAUDE_4, scale=0.3)
            for t in variants(insert_task, 5)
        ]
        ratio = sum(r.trace.began_transaction and r.trace.committed for r in runs) / 5
        assert ratio >= 0.8

    def test_tricky_task_uses_get_value(self, tricky_task):
        runs = [
            run_db_task(t, "bridgescope", CLAUDE_4, scale=0.3)
            for t in variants(tricky_task, 6)
        ]
        used = sum(r.trace.used("get_value") for r in runs)
        assert used >= 4

    def test_tricky_task_correct_with_get_value(self, tricky_task):
        runs = [
            run_db_task(t, "bridgescope", CLAUDE_4, scale=0.3)
            for t in variants(tricky_task, 6)
        ]
        correct = [r for r in runs if r.trace.used("get_value")]
        assert correct
        assert all(r.correct or r.trace.aborted is False for r in correct) or any(
            r.correct for r in correct
        )


class TestPrivilegeAwareness:
    def test_normal_user_write_aborts_without_sql(self, insert_task):
        runs = [
            run_db_task(t, "bridgescope", CLAUDE_4, role=ROLE_NORMAL, scale=0.3)
            for t in variants(insert_task, 6)
        ]
        assert all(r.trace.aborted for r in runs)
        # most runs should not even call a SQL tool
        sql_free = sum(
            1
            for r in runs
            if not any(
                t in ("insert", "update", "delete", "select")
                for t in r.trace.tool_sequence()
            )
        )
        assert sql_free >= 4

    def test_irrelevant_user_aborts_after_schema(self, read_task):
        runs = [
            run_db_task(t, "bridgescope", CLAUDE_4, role=ROLE_IRRELEVANT, scale=0.3)
            for t in variants(read_task, 6)
        ]
        assert all(r.trace.aborted for r in runs)
        assert all(r.intercepted for r in runs)

    def test_infeasible_never_modifies_database(self, insert_task):
        for toolkit in ("bridgescope", "pg-mcp"):
            result = run_db_task(
                insert_task, toolkit, GPT_4O, role=ROLE_NORMAL, scale=0.3
            )
            assert result.intercepted or result.trace.aborted

    def test_pg_mcp_wastes_calls_on_infeasible(self, insert_task):
        bs_runs = [
            run_db_task(t, "bridgescope", CLAUDE_4, role=ROLE_NORMAL, scale=0.3)
            for t in variants(insert_task, 5)
        ]
        pg_runs = [
            run_db_task(t, "pg-mcp", CLAUDE_4, role=ROLE_NORMAL, scale=0.3)
            for t in variants(insert_task, 5)
        ]
        bs_avg = sum(r.trace.llm_calls for r in bs_runs) / 5
        pg_avg = sum(r.trace.llm_calls for r in pg_runs) / 5
        assert bs_avg < pg_avg


class TestBaselineBehavior:
    def test_pg_mcp_rarely_uses_transactions(self, insert_task):
        runs = [
            run_db_task(t, "pg-mcp", GPT_4O, scale=0.3)
            for t in variants(insert_task, 8)
        ]
        ratio = sum(r.trace.began_transaction and r.trace.committed for r in runs) / 8
        assert ratio <= 0.4

    def test_pg_mcp_minus_retries_blind_sql(self, read_task):
        runs = [
            run_db_task(t, "pg-mcp-minus", GPT_4O, scale=0.3)
            for t in variants(read_task, 10)
        ]
        avg = sum(r.trace.llm_calls for r in runs) / len(runs)
        errors = sum(r.trace.error_count() for r in runs)
        assert avg > 3.0
        assert errors > 0

    def test_pg_mcp_completes_feasible_reads(self, read_task):
        runs = [
            run_db_task(t, "pg-mcp", CLAUDE_4, scale=0.3)
            for t in variants(read_task, 5)
        ]
        assert sum(r.correct for r in runs) >= 4


class TestDeterminism:
    def test_same_seed_same_trace(self, read_task):
        a = run_db_task(read_task, "bridgescope", GPT_4O, scale=0.3)
        b = run_db_task(read_task, "bridgescope", GPT_4O, scale=0.3)
        assert a.trace.llm_calls == b.trace.llm_calls
        assert a.trace.total_tokens == b.trace.total_tokens
        assert a.trace.tool_sequence() == b.trace.tool_sequence()

    def test_different_toolkits_use_different_seeds(self, read_task):
        a = run_db_task(read_task, "bridgescope", GPT_4O, scale=0.3)
        b = run_db_task(read_task, "pg-mcp", GPT_4O, scale=0.3)
        assert a.trace.toolkit != b.trace.toolkit
