"""Shared pytest configuration.

Hypothesis health checks (``too_slow`` / ``filter_too_much``) are load- and
seed-sensitive: under CI or a busy machine they intermittently abort
otherwise-passing property tests, which turns a ``pytest -x`` gate red on
unrelated changes. Suppress them globally; per-test ``@settings`` still
control example counts and deadlines.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repo-default",
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
    deadline=None,
)
settings.load_profile("repo-default")
