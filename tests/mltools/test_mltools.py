"""Tests for the ML tool substrate: preprocessing, models, metrics, server."""

import math
import random

import pytest

from repro.mltools import (
    DecisionTreeRegressor,
    LinearRegressionModel,
    MLToolServer,
    RandomForestRegressor,
    column_stats,
    mae,
    minmax_normalize,
    r2_score,
    rmse,
    train_test_split,
    trend_analyze,
    zscore_normalize,
)


def linear_data(n=200, seed=0, noise=0.1):
    rng = random.Random(seed)
    rows = []
    for _ in range(n):
        a, b = rng.uniform(-3, 3), rng.uniform(-3, 3)
        rows.append([a, b, 2.0 * a - 1.5 * b + 0.5 + rng.gauss(0, noise)])
    return rows


class TestMetrics:
    def test_rmse_zero_for_perfect(self):
        assert rmse([1, 2], [1, 2]) == 0.0

    def test_rmse_value(self):
        assert rmse([0, 0], [3, 4]) == pytest.approx(math.sqrt(12.5))

    def test_mae(self):
        assert mae([0, 0], [1, -3]) == 2.0

    def test_r2_perfect(self):
        assert r2_score([1, 2, 3], [1, 2, 3]) == 1.0

    def test_r2_mean_predictor_is_zero(self):
        truth = [1.0, 2.0, 3.0]
        assert r2_score(truth, [2.0, 2.0, 2.0]) == pytest.approx(0.0)

    def test_r2_constant_truth(self):
        assert r2_score([5, 5], [4, 6]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            rmse([1], [1, 2])
        with pytest.raises(ValueError):
            r2_score([1], [1, 2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            rmse([], [])


class TestPreprocessing:
    def test_zscore_standardizes(self):
        data = [[1.0, 10.0], [2.0, 10.0], [3.0, 10.0]]
        normalized = zscore_normalize(data)
        col = [row[0] for row in normalized]
        assert sum(col) == pytest.approx(0.0)
        # target (last) column untouched
        assert all(row[1] == 10.0 for row in normalized)

    def test_zscore_constant_column(self):
        normalized = zscore_normalize([[5.0, 1.0], [5.0, 2.0]])
        assert [row[0] for row in normalized] == [0.0, 0.0]

    def test_zscore_all_columns_when_not_skipping(self):
        normalized = zscore_normalize([[1.0, 4.0], [3.0, 8.0]], skip_last=False)
        assert sum(row[1] for row in normalized) == pytest.approx(0.0)

    def test_minmax_range(self):
        normalized = minmax_normalize([[0.0, 1.0], [5.0, 2.0], [10.0, 3.0]])
        col = [row[0] for row in normalized]
        assert min(col) == 0.0
        assert max(col) == 1.0

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            zscore_normalize([])

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            zscore_normalize([[1.0, 2.0], [1.0]])

    def test_non_numeric_rejected(self):
        with pytest.raises(ValueError):
            zscore_normalize([["a", 1.0]])

    def test_column_stats(self):
        stats = column_stats([[1.0], [3.0]])
        assert stats[0]["mean"] == 2.0
        assert stats[0]["min"] == 1.0
        assert stats[0]["max"] == 3.0

    def test_split_deterministic(self):
        data = [[float(i), float(i)] for i in range(50)]
        a = train_test_split(data, 0.2, seed=7)
        b = train_test_split(data, 0.2, seed=7)
        assert a == b

    def test_split_sizes(self):
        train, test = train_test_split([[1.0]] * 100, 0.25, seed=0)
        assert len(test) == 25
        assert len(train) == 75

    def test_split_fraction_validated(self):
        with pytest.raises(ValueError):
            train_test_split([[1.0]], 1.5)


class TestLinearRegression:
    def test_recovers_planted_coefficients(self):
        model = LinearRegressionModel().fit(linear_data(noise=0.0))
        assert model.coefficients[0] == pytest.approx(2.0, abs=1e-6)
        assert model.coefficients[1] == pytest.approx(-1.5, abs=1e-6)
        assert model.intercept == pytest.approx(0.5, abs=1e-6)

    def test_high_r2_on_noisy_data(self):
        model = LinearRegressionModel().fit(linear_data(noise=0.2))
        metrics = model.evaluate(linear_data(seed=1, noise=0.2))
        assert metrics["r2"] > 0.9

    def test_predict_shape(self):
        model = LinearRegressionModel().fit(linear_data())
        assert len(model.predict([[1.0, 2.0], [0.0, 0.0]])) == 2

    def test_predict_feature_count_checked(self):
        model = LinearRegressionModel().fit(linear_data())
        with pytest.raises(ValueError):
            model.predict([[1.0]])

    def test_needs_two_columns(self):
        with pytest.raises(ValueError):
            LinearRegressionModel().fit([[1.0], [2.0]])

    def test_round_trip_serialization(self):
        model = LinearRegressionModel().fit(linear_data())
        clone = LinearRegressionModel.from_dict(model.to_dict())
        assert clone.predict([[1.0, 1.0]]) == model.predict([[1.0, 1.0]])


class TestTreesAndForests:
    def test_tree_fits_step_function(self):
        import numpy as np

        x = np.linspace(0, 1, 300).reshape(-1, 1)
        y = (x[:, 0] > 0.5).astype(float) * 10
        tree = DecisionTreeRegressor(max_depth=3).fit(x, y)
        predictions = tree.predict([[0.1], [0.9]])
        assert predictions[0] == pytest.approx(0.0, abs=0.5)
        assert predictions[1] == pytest.approx(10.0, abs=0.5)

    def test_tree_unfitted_predict_raises(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().predict([[1.0]])

    def test_tree_serialization_round_trip(self):
        import numpy as np

        x = np.random.default_rng(0).uniform(size=(100, 2))
        y = x[:, 0] * 3 + x[:, 1]
        tree = DecisionTreeRegressor(max_depth=4).fit(x, y)
        clone = DecisionTreeRegressor.from_dict(tree.to_dict())
        probe = [[0.2, 0.8], [0.9, 0.1]]
        assert clone.predict(probe) == tree.predict(probe)

    def test_forest_beats_mean_predictor(self):
        import numpy as np

        data = np.asarray(linear_data(400, noise=0.3))
        x, y = data[:, :-1], data[:, -1]
        forest = RandomForestRegressor(n_trees=6, seed=1).fit(x[:300], y[:300])
        predictions = forest.predict(x[300:])
        assert r2_score(list(y[300:]), predictions) > 0.5

    def test_forest_deterministic_given_seed(self):
        import numpy as np

        data = np.asarray(linear_data(200))
        x, y = data[:, :-1], data[:, -1]
        a = RandomForestRegressor(n_trees=3, seed=5).fit(x, y).predict(x[:5])
        b = RandomForestRegressor(n_trees=3, seed=5).fit(x, y).predict(x[:5])
        assert a == b

    def test_forest_serialization(self):
        import numpy as np

        data = np.asarray(linear_data(100))
        forest = RandomForestRegressor(n_trees=2, seed=0).fit(
            data[:, :-1], data[:, -1]
        )
        clone = RandomForestRegressor.from_dict(forest.to_dict())
        assert clone.predict([[0.0, 0.0]]) == forest.predict([[0.0, 0.0]])


class TestTrendAnalyze:
    def test_rising_sales(self):
        result = trend_analyze(sales=[10, 20, 30, 40], refunds=[1, 1, 1, 1])
        assert result["sales_trend"] == "rising"

    def test_falling_refunds(self):
        result = trend_analyze(sales=[10, 10, 10], refunds=[9, 5, 1])
        assert result["refunds_trend"] == "falling"

    def test_flat_series(self):
        result = trend_analyze(sales=[10, 10, 10], refunds=[0, 0, 0])
        assert result["sales_trend"] == "flat"

    def test_refund_alert(self):
        result = trend_analyze(sales=[10, 10], refunds=[5, 6])
        assert result["alert"] is True

    def test_accepts_row_tuples(self):
        result = trend_analyze(sales=[(10,), (20,)], refunds=[(1,), (2,)])
        assert result["n_days"] == 2

    def test_multi_column_rows_rejected(self):
        with pytest.raises(ValueError):
            trend_analyze(sales=[(1, 2)], refunds=[(1,)])

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            trend_analyze(sales=[], refunds=[1])


class TestMLToolServer:
    @pytest.fixture
    def server(self):
        return MLToolServer()

    def test_tools_exposed(self, server):
        names = {spec.name for spec in server.visible_tools()}
        assert {
            "zscore_normalize",
            "minmax_normalize",
            "train_linear",
            "train_forest",
            "predict",
            "trend_analyze",
        } <= names

    def test_train_linear_summary_and_payload(self, server):
        result = server.invoke("train_linear", data=linear_data())
        assert not result.is_error
        assert result.content["type"] == "linear"
        assert "metrics" in result.content
        assert "coefficients" in result.metadata["payload"]

    def test_train_forest_hides_trees_from_content(self, server):
        result = server.invoke("train_forest", data=linear_data(), n_trees=2)
        assert "trees" not in result.content
        assert "trees" in result.metadata["payload"]
        assert result.content["n_trees"] == 2

    def test_predict_with_trained_model(self, server):
        trained = server.invoke("train_linear", data=linear_data())
        result = server.invoke(
            "predict",
            model=trained.metadata["payload"],
            features=[[1.0, 1.0]],
        )
        assert not result.is_error
        assert len(result.content["predictions"]) == 1

    def test_predict_unknown_model_type(self, server):
        result = server.invoke("predict", model={"type": "qnn"}, features=[[1.0]])
        assert result.is_error

    def test_normalize_round_trip(self, server):
        result = server.invoke("zscore_normalize", data=[[1.0, 5.0], [3.0, 5.0]])
        assert not result.is_error
        assert len(result.content) == 2

    def test_bad_data_is_tool_error(self, server):
        result = server.invoke("train_linear", data=[[1.0]])
        assert result.is_error
