"""Statement-tracing tests: span nesting on the happy / rollback / panic
paths, ring bounding, the JSONL sink, redaction, and the slow-query log."""

import json

import pytest

from repro.faults import FaultPlan, FaultyFilesystem
from repro.minidb import Database
from repro.minidb.errors import (
    LockTimeoutError,
    MiniDBError,
    StorageFailedError,
)
from repro.obs.tracing import redact_sql
from repro.service import LockManager


def traced_db(**options):
    db = Database(owner="admin")
    db.observability_options["tracing"] = True
    db.observability_options.update(options)
    session = db.connect("admin")
    return db, session


class TestRedaction:
    def test_numbers_replaced(self):
        assert (
            redact_sql("SELECT * FROM t WHERE id = 42")
            == "SELECT * FROM t WHERE id = ?"
        )

    def test_strings_with_escapes_replaced(self):
        assert (
            redact_sql("UPDATE t SET name = 'bob''s' WHERE id = 7")
            == "UPDATE t SET name = ? WHERE id = ?"
        )

    def test_identifiers_with_digits_survive(self):
        assert redact_sql("SELECT a1 FROM t2") == "SELECT a1 FROM t2"

    def test_quoted_identifiers_survive(self):
        assert redact_sql('SELECT "c1" FROM t') == 'SELECT "c1" FROM t'

    def test_scientific_notation_replaced(self):
        assert redact_sql("SELECT 1.5e-3 + 2E4") == "SELECT ? + ?"

    def test_redact_literals_option_applies_to_ring(self):
        db, session = traced_db(redact_literals=True)
        session.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        session.execute("INSERT INTO t VALUES (42)")
        assert db.tracer.recent()[-1].sql == "INSERT INTO t VALUES (?)"


class TestSpanNesting:
    def test_select_spans_in_order(self):
        db, session = traced_db()
        session.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        session.execute("INSERT INTO t VALUES (1, 10)")
        session.execute("SELECT v FROM t WHERE id = 1")
        trace = db.tracer.recent()[-1]
        assert trace.span_names() == ["parse", "plan", "execute"]
        assert trace.status == "SELECT"
        assert trace.rows_returned == 1
        assert trace.scans and trace.scans[0]["binding"] == "t"
        assert trace.access_path.endswith(":t")

    def test_wal_flush_nests_under_execute(self, tmp_path):
        db = Database.open(str(tmp_path / "db"), owner="admin")
        try:
            db.observability_options["tracing"] = True
            session = db.connect("admin")
            session.execute("CREATE TABLE t (id INT PRIMARY KEY)")
            session.execute("INSERT INTO t VALUES (1)")
            trace = db.tracer.recent()[-1]
            execute = next(s for s in trace.spans if s.name == "execute")
            assert "wal-flush" in [child.name for child in execute.children]
        finally:
            db.close()

    def test_error_statement_closes_open_spans(self):
        db, session = traced_db()
        with pytest.raises(MiniDBError):
            session.execute("SELECT broken FROM nowhere")
        trace = db.tracer.recent()[-1]
        assert trace.status == "ERROR"
        assert trace.error
        assert "parse" in trace.span_names()
        assert all(span.duration_s >= 0.0 for span in trace.spans)

    def test_lock_timeout_records_wait_rollback_and_annotation(self):
        db, blocker = traced_db()
        db.lock_manager = LockManager(timeout_s=0.05)
        victim = db.connect("admin")
        blocker.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        blocker.execute("INSERT INTO t VALUES (1, 0)")
        blocker.execute("BEGIN")
        blocker.execute("UPDATE t SET v = 1 WHERE id = 1")  # holds X on t
        victim.execute("BEGIN")
        with pytest.raises(LockTimeoutError):
            victim.execute("UPDATE t SET v = 2 WHERE id = 1")
        blocker.execute("COMMIT")
        trace = next(
            t for t in db.tracer.recent() if t.sql.startswith("UPDATE t SET v = 2")
        )
        names = trace.span_names()
        assert "lock-wait" in names
        assert "rollback" in names
        # the rollback runs after execute unwinds: a root span, not a child
        assert [s.name for s in trace.spans][-1] == "rollback"
        assert trace.annotations["concurrency_abort"] == "LockTimeoutError"
        assert trace.status == "ERROR"
        assert trace.error_code == "55P03"
        assert trace.retryable is True

    def test_storage_panic_traced_as_fail_stop(self, tmp_path):
        fs = FaultyFilesystem(FaultPlan())
        db = Database.open(str(tmp_path / "db"), owner="admin", filesystem=fs)
        try:
            session = db.connect("admin")
            session.execute("CREATE TABLE t (id INT PRIMARY KEY)")
            db.observability_options["tracing"] = True
            fs.plan = FaultPlan(error_at=fs.ops)  # next file op fails
            with pytest.raises(StorageFailedError):
                session.execute("INSERT INTO t VALUES (1)")
            trace = db.tracer.recent()[-1]
            assert trace.status == "ERROR"
            assert trace.error_code == "57P02"
            assert trace.retryable is False  # fail-stop is not retryable
        finally:
            db.close()


class TestRingAndSink:
    def test_ring_bounds_memory_under_sustained_load(self):
        db, session = traced_db()
        db.tracer.configure(ring_size=8)
        session.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        for _ in range(30):
            session.execute("SELECT id FROM t")
        recent = db.tracer.recent()
        assert len(recent) == 8
        ids = [trace.trace_id for trace in recent]
        assert ids == sorted(ids)  # newest-last, oldest evicted
        assert ids[-1] - ids[0] == 7

    def test_configure_keeps_newest_entries(self):
        db, session = traced_db()
        session.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        for _ in range(10):
            session.execute("SELECT id FROM t")
        newest = db.tracer.recent()[-1].trace_id
        db.tracer.configure(ring_size=3)
        assert [t.trace_id for t in db.tracer.recent()] == [
            newest - 2, newest - 1, newest,
        ]

    def test_jsonl_sink_written_through_seam(self, tmp_path):
        sink = tmp_path / "traces.jsonl"
        db, session = traced_db(trace_sink=str(sink))
        session.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        session.execute("INSERT INTO t VALUES (1)")
        session.execute("SELECT id FROM t")
        lines = sink.read_text().splitlines()
        assert len(lines) == 3
        entries = [json.loads(line) for line in lines]
        assert entries[-1]["sql"] == "SELECT id FROM t"
        assert entries[-1]["status"] == "SELECT"
        assert [span["name"] for span in entries[-1]["spans"]] == [
            "parse", "plan", "execute",
        ]

    def test_sink_failure_degrades_tracing_not_statements(self):
        class BoomFS:
            def open(self, *args, **kwargs):
                raise OSError("disk full")

        db, session = traced_db(trace_sink="/nonexistent/traces.jsonl")
        db.tracer.fs = BoomFS()
        session.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        result = session.execute("SELECT id FROM t")
        assert result.status == "SELECT"  # the statement itself succeeded
        errors = db.metrics.get("minidb_trace_sink_errors_total")
        assert errors.value == 2


class TestTracerInstruments:
    def test_statement_counters_and_latency(self):
        db, session = traced_db()
        session.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        with pytest.raises(MiniDBError):
            session.execute("SELEKT 1")
        assert db.metrics.get("minidb_statements_total").value == 2
        assert db.metrics.get("minidb_statement_errors_total").value == 1
        assert db.metrics.get("minidb_statement_seconds").count == 2

    def test_probe_never_ringed_or_counted(self):
        db, _ = traced_db()
        tracer = db.tracer
        probe = tracer.probe()
        assert tracer.current() is probe
        tracer.release(probe)
        assert tracer.current() is None
        assert probe not in tracer.recent()
        assert db.metrics.get("minidb_statements_total").value == 0


class TestSlowQueryLog:
    def test_threshold_crossing_select_captured_with_plan(self):
        db = Database(owner="admin")
        db.observability_options["slow_statement_s"] = 0.0  # tracing stays off
        session = db.connect("admin")
        session.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        session.execute("INSERT INTO t VALUES (1, 10)")
        session.execute("SELECT v FROM t WHERE id = 1")
        entries = db.tracer.slow_statements()
        assert entries  # 0.0 threshold captures everything
        last = entries[-1]
        assert last["sql"] == "SELECT v FROM t WHERE id = 1"
        assert last["duration_s"] >= 0.0
        assert last["trace"]["sql"] == last["sql"]
        assert any("Index Scan" in line for line in last["plan"])
        # slow-log capture without tracing must not populate the ring
        assert db.tracer.recent() == []

    def test_non_select_statements_log_without_plan(self):
        db = Database(owner="admin")
        db.observability_options["slow_statement_s"] = 0.0
        session = db.connect("admin")
        session.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        session.execute("INSERT INTO t VALUES (1)")
        insert_entry = db.tracer.slow_statements()[-1]
        assert insert_entry["sql"] == "INSERT INTO t VALUES (1)"
        assert insert_entry["plan"] == []

    def test_slow_log_is_bounded(self):
        db = Database(owner="admin")
        db.observability_options["slow_statement_s"] = 0.0
        db.tracer.configure(slow_log_size=4)
        session = db.connect("admin")
        session.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        for _ in range(10):
            session.execute("SELECT id FROM t")
        assert len(db.tracer.slow_statements()) == 4
