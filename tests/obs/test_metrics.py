"""Unit tests for the metric primitives and the registry (PR 9)."""

import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    CounterMapView,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("x_total")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        c = Counter("x_total")
        with pytest.raises(ValueError):
            c.inc(-1)
        assert c.value == 0.0


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("x")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == 13.0


class TestHistogram:
    def test_count_and_sum(self):
        h = Histogram("lat")
        for v in (0.001, 0.002, 0.004):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(0.007)

    def test_empty_quantile_is_zero(self):
        assert Histogram("lat").quantile(0.5) == 0.0

    def test_quantile_is_bucket_upper_bound(self):
        h = Histogram("lat", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 0.6, 1.5, 3.0):
            h.observe(v)
        # ranks: p50 -> 2nd sample (bucket <=1.0), p95 -> 4th (bucket <=4.0)
        assert h.quantile(0.5) == 1.0
        assert h.quantile(0.95) == 4.0

    def test_overflow_bucket_reports_observed_max(self):
        h = Histogram("lat", buckets=(1.0,))
        h.observe(7.5)
        assert h.quantile(0.99) == 7.5

    def test_bucket_counts_cumulative_with_inf(self):
        h = Histogram("lat", buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 9.0):
            h.observe(v)
        assert h.bucket_counts() == [(1.0, 1), (2.0, 2), (float("inf"), 3)]

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("lat", buckets=(2.0, 1.0))

    def test_quantile_range_checked(self):
        with pytest.raises(ValueError):
            Histogram("lat").quantile(1.5)

    def test_default_buckets_cover_latency_decades(self):
        assert DEFAULT_LATENCY_BUCKETS[0] == 0.0001
        assert DEFAULT_LATENCY_BUCKETS[-1] == 10.0
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("hits_total", "help text")
        b = registry.counter("hits_total")
        assert a is b
        assert registry.get("hits_total") is a

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered as counter"):
            registry.gauge("x")
        with pytest.raises(ValueError, match="already registered as counter"):
            registry.histogram("x")

    def test_register_adopts_external_instrument(self):
        registry = MetricsRegistry()
        c = registry.register(Counter("adopted_total"))
        assert registry.get("adopted_total") is c
        registry.register(c)  # same object is idempotent
        with pytest.raises(ValueError, match="already registered"):
            registry.register(Counter("adopted_total"))

    def test_register_requires_name(self):
        with pytest.raises(ValueError, match="name"):
            MetricsRegistry().register(object())

    def test_samples_expand_histograms(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(2)
        registry.histogram("lat", buckets=(1.0,)).observe(0.5)
        names = {name: (kind, value) for name, kind, value in registry.samples()}
        assert names["c_total"] == ("counter", 2.0)
        assert names["lat_count"] == ("histogram", 1.0)
        assert names["lat_sum"] == ("histogram", 0.5)
        assert names["lat_p50"] == ("histogram", 1.0)
        assert "lat_p95" in names

    def test_attach_source_polled_at_export(self):
        registry = MetricsRegistry()
        stats = {"engine_writes": 1}
        registry.attach_source("engine", lambda: stats)
        assert ("engine_writes", "gauge", 1.0) in registry.samples()
        stats["engine_writes"] = 5  # live: polled, not copied
        assert ("engine_writes", "gauge", 5.0) in registry.samples()

    def test_failing_source_skipped(self):
        registry = MetricsRegistry()
        registry.counter("ok_total").inc()

        def boom():
            raise RuntimeError("engine closed")

        registry.attach_source("engine", boom)
        names = [name for name, _, _ in registry.samples()]
        assert "ok_total" in names  # export survives the dead collector

    def test_render_text_prometheus_format(self):
        registry = MetricsRegistry()
        registry.counter("hits_total", "number of hits").inc(3)
        registry.histogram("lat", buckets=(1.0,)).observe(0.5)
        registry.attach_source("src", lambda: {"src_live": True})
        text = registry.render_text()
        assert "# HELP hits_total number of hits" in text
        assert "# TYPE hits_total counter" in text
        assert "hits_total 3" in text  # integers render without .0
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_count 1" in text
        assert "src_live 1" in text
        assert text.endswith("\n")


class TestCounterMapView:
    def test_mapping_protocol(self):
        counters = {"a": Counter("a"), "b": Counter("b")}
        counters["a"].inc(2)
        view = CounterMapView(counters)
        assert view["a"] == 2
        assert view["b"] == 0
        assert set(view) == {"a", "b"}
        assert len(view) == 2
        assert dict(view) == {"a": 2, "b": 0}

    def test_view_is_read_only(self):
        view = CounterMapView({"a": Counter("a")})
        with pytest.raises(TypeError):
            view["a"] = 5  # type: ignore[index]

    def test_view_reflects_live_counter(self):
        counter = Counter("a")
        view = CounterMapView({"a": counter})
        counter.inc(7)
        assert view["a"] == 7


class TestThreadSafety:
    def test_concurrent_counter_increments(self):
        counter = Counter("x_total")

        def worker():
            for _ in range(1_000):
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8_000

    def test_concurrent_histogram_observes(self):
        hist = Histogram("lat")

        def worker():
            for _ in range(500):
                hist.observe(0.001)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert hist.count == 4_000
        assert hist.sum == pytest.approx(4.0)

    def test_concurrent_get_or_create_single_instance(self):
        registry = MetricsRegistry()
        seen = []

        def worker():
            seen.append(registry.counter("shared_total"))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(c is seen[0] for c in seen)
