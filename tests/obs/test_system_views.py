"""SQL-queryable system views: content, privileges, and read-only-ness."""

import pytest

from repro.minidb import Database, PermissionDenied
from repro.obs.views import SYSTEM_VIEW_COLUMNS, is_system_relation
from repro.service import LockManager


@pytest.fixture
def db():
    database = Database(owner="admin")
    database.observability_options["tracing"] = True
    admin = database.connect("admin")
    admin.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    admin.execute("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)")
    return database


class TestResolution:
    def test_is_system_relation_case_insensitive(self):
        assert is_system_relation("system.metrics")
        assert is_system_relation("SYSTEM.METRICS")
        assert not is_system_relation("metrics")
        assert not is_system_relation("system.ghost")

    def test_all_views_queryable(self, db):
        session = db.connect("admin")
        for name, columns in SYSTEM_VIEW_COLUMNS.items():
            result = session.execute(f"SELECT * FROM {name}")
            assert list(result.columns) == columns

    def test_unknown_system_relation_still_errors(self, db):
        session = db.connect("admin")
        with pytest.raises(Exception):
            session.execute("SELECT * FROM system.ghost")


class TestStatementsView:
    def test_recent_statements_visible_with_projection(self, db):
        session = db.connect("admin")
        session.execute("SELECT v FROM t WHERE id = 2")
        rows = session.execute(
            "SELECT sql, status, rows_returned FROM system.statements"
        ).rows
        assert ("SELECT v FROM t WHERE id = 2", "SELECT", 1) in rows

    def test_order_by_duration_finds_slowest(self, db):
        session = db.connect("admin")
        session.execute("SELECT v FROM t WHERE id = 1")
        rows = session.execute(
            "SELECT sql, duration_ms FROM system.statements "
            "ORDER BY duration_ms DESC LIMIT 1"
        ).rows
        assert len(rows) == 1
        assert rows[0][1] >= 0.0

    def test_access_path_and_examined_rows_recorded(self, db):
        session = db.connect("admin")
        session.execute("SELECT v FROM t WHERE id = 3")
        row = session.execute(
            "SELECT access_path, rows_examined FROM system.statements "
            "WHERE sql = 'SELECT v FROM t WHERE id = 3'"
        ).rows[0]
        assert row[0] == "index:t"
        assert row[1] == 1

    def test_empty_when_tracing_dark(self):
        database = Database(owner="admin")
        session = database.connect("admin")
        # querying the view is itself untraced, so the ring stays empty
        assert session.execute("SELECT id FROM system.statements").rows == []


class TestMetricsView:
    def test_planner_counters_exported(self, db):
        session = db.connect("admin")
        session.execute("SELECT v FROM t WHERE id = 1")  # pk point lookup
        rows = session.execute(
            "SELECT m.value FROM system.metrics m "
            "WHERE m.name = 'minidb_planner_index_scans_total'"
        ).rows
        assert rows and rows[0][0] >= 1.0

    def test_histogram_expansion_rows_present(self, db):
        session = db.connect("admin")
        session.execute("SELECT v FROM t WHERE id = 1")
        names = {
            row[0]
            for row in session.execute("SELECT name FROM system.metrics").rows
        }
        assert "minidb_statement_seconds_count" in names
        assert "minidb_statement_seconds_p95" in names
        assert "minidb_sessions_live" in names  # collector source


class TestLocksView:
    def test_empty_without_lock_manager(self, db):
        session = db.connect("admin")
        assert session.execute("SELECT * FROM system.locks").rows == []

    def test_held_lock_visible_mid_transaction(self, db):
        db.lock_manager = LockManager(timeout_s=1.0)
        writer = db.connect("admin")
        observer = db.connect("admin")
        writer.execute("BEGIN")
        writer.execute("UPDATE t SET v = 99 WHERE id = 1")
        try:
            rows = observer.execute(
                "SELECT relation, mode, state, position FROM system.locks"
            ).rows
            # observing never blocks: the view takes no locks itself
            assert ("t", "X", "held", None) in rows
        finally:
            writer.execute("COMMIT")
        assert observer.execute("SELECT * FROM system.locks").rows == []


class TestSessionsView:
    def test_live_sessions_with_transaction_state(self, db):
        a = db.connect("admin")
        b = db.connect("admin")
        a.execute("BEGIN")
        try:
            rows = b.execute(
                "SELECT session, user, in_transaction FROM system.sessions"
            ).rows
            by_label = {row[0]: row for row in rows}
            assert by_label[a.label] == (a.label, "admin", True)
            assert by_label[b.label] == (b.label, "admin", False)
        finally:
            a.execute("ROLLBACK")

    def test_statement_counts_tracked(self, db):
        session = db.connect("admin")
        before = {
            row[0]: row[1]
            for row in session.execute(
                "SELECT session, statements FROM system.sessions"
            ).rows
        }[session.label]
        session.execute("SELECT 1")
        after = {
            row[0]: row[1]
            for row in session.execute(
                "SELECT session, statements FROM system.sessions"
            ).rows
        }[session.label]
        assert after == before + 2  # the SELECT 1 plus the first view query


class TestPrivileges:
    def test_world_readable_without_grants(self, db):
        db.create_user("bob")
        bob = db.connect("bob")
        assert bob.execute("SELECT name FROM system.metrics").rows
        # ...but ordinary tables still require grants
        with pytest.raises(PermissionDenied):
            bob.execute("SELECT * FROM t")

    def test_writes_rejected_even_for_owner(self, db):
        session = db.connect("admin")
        for sql in (
            "INSERT INTO \"system.metrics\" VALUES ('x', 'counter', 1)",
            "UPDATE \"system.statements\" SET status = 'X'",
            'DELETE FROM "system.metrics"',
            'DROP TABLE "system.metrics"',
        ):
            with pytest.raises(PermissionDenied, match="read-only"):
                session.execute(sql)

    def test_cannot_shadow_system_namespace(self, db):
        session = db.connect("admin")
        with pytest.raises(PermissionDenied, match="read-only"):
            session.execute('CREATE TABLE "system.statements" (x INT)')
