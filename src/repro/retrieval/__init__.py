"""Indexed column-exemplar retrieval for BridgeScope's ``get_value`` tool.

The paper's context-retrieval workload (Section 2.2, Figure 5a) calls
``get_value(col, key, k)`` repeatedly while an agent explores a database.
The brute-force path re-reads every distinct value of the column, re-runs
normalization and trigram extraction on each, scores all of them, and
fully sorts — O(rows + distinct·len) per tool call. This package makes
repeated calls cheap by precomputing a per-column **value catalog** served
through a **trigram inverted index**:

Index design
============

``ValueCatalog`` (:mod:`repro.retrieval.catalog`) snapshots the distinct
values of one column and caches, per value, the normalized text, token
set, and padded-trigram set used by :mod:`repro.core.similarity`. Three
query-acceleration structures sit on top:

* a *trigram inverted index* — posting lists mapping each trigram to the
  ids of values containing it. A query walks only the posting lists of the
  key's trigrams, accumulating exact shared-trigram counts per candidate
  instead of intersecting sets against every value;
* a *token inverted index* — posting lists per normalized token, probed
  with the key's tokens expanded through the reverse synonym map
  (:class:`repro.core.similarity.SynonymTable`), so synonym-only matches
  surface without scanning;
* a *short-norm table* — values whose normalized form is shorter than one
  trigram (< 3 chars), which substring containment can reach without any
  shared trigram; the domain of such norms is tiny, so it is scanned.

Together these generate a **complete** candidate set: every value with a
nonzero similarity score is covered by one of the three structures (see
the proof sketch in ``catalog.py``). Candidates are ranked by a cheap
upper bound — exact trigram Jaccard from the accumulated counts, plus
length-based containment and token-hit bounds — and scored exactly in
bound order with a size-k min-heap; scoring stops as soon as the next
bound cannot beat the current k-th best. Because exact scoring reuses
:func:`repro.core.similarity.score_features`, the indexed ranking is
bit-identical to the brute-force ``top_k`` ranking, zero-score tail
included.

Freshness
=========

Catalogs are immutable snapshots. ``CatalogCache``
(:mod:`repro.retrieval.engine`) keys each catalog by a *fingerprint* —
for minidb, the owning ``HeapTable``'s ``(uid, version)`` change counter,
which every INSERT/UPDATE/DELETE, DDL column change, and transaction
ROLLBACK bumps (undo replays go through the same heap mutators). A stale
fingerprint forces a rebuild on the next call, so exemplars never lag the
data.

Persistence
===========

On a durable minidb database (``Database.open(path)``), built catalogs
are additionally written through a :class:`CatalogStore` into the
database directory's ``catalogs/`` sidecar folder, keyed by cache key and
fingerprint. Since the durable engine restores ``(uid, version)``
counters exactly, a reopened database serves ``get_value`` from the
persisted catalogs with zero rebuild for unchanged columns.

Open follow-ups are tracked in ROADMAP.md: cross-column (table-wide)
retrieval, incremental catalog maintenance, and pluggable ANN backends
for embedding-based scoring.
"""

from .catalog import ValueCatalog
from .engine import CatalogCache, CatalogStore

__all__ = ["CatalogCache", "CatalogStore", "ValueCatalog"]
