"""Fingerprint-keyed catalog cache — freshness without write-path hooks.

A :class:`CatalogCache` holds one :class:`~repro.retrieval.catalog.ValueCatalog`
per cache key (for minidb: ``(table, column, scan limit)``), each stamped
with the *fingerprint* of the data it was built from. Callers pass the
current fingerprint on every lookup; a mismatch rebuilds lazily. For
minidb the fingerprint is the owning heap's ``(uid, version)`` pair —
``version`` is bumped by every row/column/index mutation including
transaction undo replays, and ``uid`` changes when a table is dropped and
recreated — so INSERT/UPDATE/DELETE/ROLLBACK and DDL can never serve
stale exemplars, and read-only workloads never pay an invalidation check
beyond an integer compare.

Persistence
-----------

When the database runs on a durable storage engine, the cache can be
given a :class:`CatalogStore` — a directory of pickled catalogs living
next to the engine's snapshot (``<db>/catalogs/``), each file named by a
hash of the cache key plus its fingerprint. Because the durable engine
restores ``(uid, version)`` change counters *exactly* across restarts, a
reopened database finds its persisted catalogs byte-for-byte fresh and
serves indexed ``get_value`` calls with **zero rebuild** for unchanged
columns; any column mutated since simply misses (stale fingerprint) and
rebuilds as before. Pickle is appropriate here: the files sit inside the
database directory, the same trust domain as the data files themselves.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable

from ..faults import OS_FILESYSTEM, Filesystem
from .catalog import ValueCatalog


class CatalogStore:
    """Directory of persisted value catalogs, one pickle per (key, fingerprint).

    Writes are atomic (temp file + rename) and write-through: a catalog is
    persisted the moment it is built, so durability never depends on a
    clean shutdown. Storing a catalog removes files persisted for the same
    key under older fingerprints (they can never be served again — version
    counters only grow).

    Fingerprints must be ``(uid, version)`` integer pairs; they are encoded
    *verbatim* in the filename (``<keyhash>.<uid>-<version>.catalog.pkl``)
    so durable-engine recovery can prune, without deserializing anything,
    every sidecar whose fingerprint no longer matches a live heap. That
    prune is what makes persisted catalogs crash-safe: a catalog built from
    *uncommitted* data (version counters run ahead of the WAL inside open
    transactions) dies at recovery instead of colliding with a future
    committed state that reuses the same counter value.
    """

    #: filename suffix shared with the durable engine's recovery prune
    SUFFIX = ".catalog.pkl"

    def __init__(self, directory: str, filesystem: Filesystem | None = None):
        self.directory = directory
        #: the same I/O seam as the owning durable engine, so fault
        #: injection covers sidecar writes too (``fs-seam`` staticcheck
        #: rule); the default passthrough costs nothing
        self.fs = filesystem or OS_FILESYSTEM
        #: observability: tests and the storage benchmark read these
        self.stats = {"loads": 0, "misses": 0, "stores": 0}

    @staticmethod
    def _digest(value: Hashable) -> str:
        return hashlib.sha1(repr(value).encode("utf-8")).hexdigest()[:20]

    def _path(self, key: Hashable, fingerprint: Hashable) -> str:
        uid, version = fingerprint  # contract: (uid, version) integers
        return os.path.join(
            self.directory,
            f"{self._digest(key)}.{int(uid)}-{int(version)}{self.SUFFIX}",
        )

    def load(self, key: Hashable, fingerprint: Hashable) -> ValueCatalog | None:
        """The persisted catalog for exactly this fingerprint, or ``None``.

        Any failure to read or deserialize — missing file, torn write,
        incompatible packed format from an older build — is a cache miss,
        never an error: the caller rebuilds from the live data.
        """
        try:
            with self.fs.open(self._path(key, fingerprint), "rb") as fh:
                catalog = pickle.load(fh)
        except Exception:  # staticcheck: ignore[broad-except] — pickle.load can raise nearly anything on a torn or stale file; by contract every such failure is a cache miss, and the caller rebuilds from live data
            self.stats["misses"] += 1
            return None
        if not isinstance(catalog, ValueCatalog):
            self.stats["misses"] += 1
            return None
        catalog.stats = {"queries": 0, "candidates": 0, "scored": 0}
        self.stats["loads"] += 1
        return catalog

    def store(self, key: Hashable, fingerprint: Hashable, catalog: ValueCatalog) -> None:
        stem = self._digest(key) + "."
        tmp_path: str | None = None
        try:
            self.fs.makedirs(self.directory, exist_ok=True)
            for name in self.fs.listdir(self.directory):
                if name.startswith(stem) and name.endswith(self.SUFFIX):
                    self.fs.unlink(os.path.join(self.directory, name))
            path = self._path(key, fingerprint)
            tmp_path = path + ".tmp"
            with self.fs.open(tmp_path, "wb") as fh:
                # one write call: a torn sidecar write is one fault point
                fh.write(pickle.dumps(catalog, protocol=pickle.HIGHEST_PROTOCOL))
            self.fs.replace(tmp_path, path)
        except OSError:
            # persistence is best-effort; the in-memory copy serves — but
            # never leak the torn temp file (it would sit in the catalog
            # directory until the next recovery prune)
            if tmp_path is not None and self.fs.exists(tmp_path):
                try:
                    self.fs.unlink(tmp_path)
                except OSError:
                    pass
            return
        self.stats["stores"] += 1


class CatalogCache:
    """LRU cache of value catalogs, invalidated by data fingerprints.

    Thread-safe: the cache is shared by every session of a database, and
    concurrent ``get_value`` calls race lookups against invalidations. A
    mutex guards the LRU ``OrderedDict`` and the counters — an unguarded
    ``move_to_end``/``popitem`` race corrupts the dict. Catalog *builds*
    (the expensive part) deliberately run outside the mutex, so two
    sessions may build the same missing catalog concurrently; last writer
    wins, which is safe because both catalogs are equivalent for the
    fingerprint they were built under.
    """

    def __init__(self, max_entries: int = 128, store: CatalogStore | None = None):
        self.max_entries = max_entries
        self.store = store
        self._mutex = threading.Lock()
        #: guarded by self._mutex
        self._entries: OrderedDict[Hashable, tuple[Hashable, ValueCatalog]] = (
            OrderedDict()
        )
        #: lookup counters (observability / tests)
        #: guarded by self._mutex
        self.stats = {"hits": 0, "misses": 0, "rebuilds": 0, "persisted_hits": 0}

    def __len__(self) -> int:
        with self._mutex:
            return len(self._entries)

    def lookup(
        self,
        key: Hashable,
        fingerprint: Hashable,
        build: Callable[[], list[Any]],
    ) -> ValueCatalog:
        """The catalog for ``key``, rebuilt from ``build()`` when stale."""
        with self._mutex:
            cached = self._entries.get(key)
            if cached is not None and cached[0] == fingerprint:
                self._entries.move_to_end(key)
                self.stats["hits"] += 1
                return cached[1]
        if self.store is not None:
            catalog = self.store.load(key, fingerprint)
            if catalog is not None:
                with self._mutex:
                    self.stats["persisted_hits"] += 1
                    self._insert(key, fingerprint, catalog)
                return catalog
        catalog = ValueCatalog(build())
        if self.store is not None:
            self.store.store(key, fingerprint, catalog)
        with self._mutex:
            if cached is None:
                self.stats["misses"] += 1
            else:
                self.stats["rebuilds"] += 1
            self._insert(key, fingerprint, catalog)
        return catalog

    #: requires self._mutex
    def _insert(
        self, key: Hashable, fingerprint: Hashable, catalog: ValueCatalog
    ) -> None:
        self._entries[key] = (fingerprint, catalog)
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def cached_catalogs(self) -> list[ValueCatalog]:
        """Snapshot of the cached catalogs, LRU order (observability)."""
        with self._mutex:
            return [catalog for _, catalog in self._entries.values()]

    def invalidate(self, key: Hashable | None = None) -> None:
        """Drop one cached catalog, or all of them (memory only; persisted
        files are superseded by fingerprint, not deleted)."""
        with self._mutex:
            if key is None:
                self._entries.clear()
            else:
                self._entries.pop(key, None)
