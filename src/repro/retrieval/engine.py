"""Fingerprint-keyed catalog cache — freshness without write-path hooks.

A :class:`CatalogCache` holds one :class:`~repro.retrieval.catalog.ValueCatalog`
per cache key (for minidb: ``(table, column, scan limit)``), each stamped
with the *fingerprint* of the data it was built from. Callers pass the
current fingerprint on every lookup; a mismatch rebuilds lazily. For
minidb the fingerprint is the owning heap's ``(uid, version)`` pair —
``version`` is bumped by every row/column mutation including transaction
undo replays, and ``uid`` changes when a table is dropped and recreated —
so INSERT/UPDATE/DELETE/ROLLBACK and DDL can never serve stale exemplars,
and read-only workloads never pay an invalidation check beyond an integer
compare.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Hashable

from .catalog import ValueCatalog


class CatalogCache:
    """LRU cache of value catalogs, invalidated by data fingerprints."""

    def __init__(self, max_entries: int = 128):
        self.max_entries = max_entries
        self._entries: OrderedDict[Hashable, tuple[Hashable, ValueCatalog]] = (
            OrderedDict()
        )
        #: lookup counters (observability / tests)
        self.stats = {"hits": 0, "misses": 0, "rebuilds": 0}

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(
        self,
        key: Hashable,
        fingerprint: Hashable,
        build: Callable[[], list[Any]],
    ) -> ValueCatalog:
        """The catalog for ``key``, rebuilt from ``build()`` when stale."""
        cached = self._entries.get(key)
        if cached is not None and cached[0] == fingerprint:
            self._entries.move_to_end(key)
            self.stats["hits"] += 1
            return cached[1]
        if cached is None:
            self.stats["misses"] += 1
        else:
            self.stats["rebuilds"] += 1
        catalog = ValueCatalog(build())
        self._entries[key] = (fingerprint, catalog)
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return catalog

    def invalidate(self, key: Hashable | None = None) -> None:
        """Drop one cached catalog, or all of them."""
        if key is None:
            self._entries.clear()
        else:
            self._entries.pop(key, None)
