"""Per-column value catalog with a trigram inverted index.

See the package docstring for the overall design. The correctness
argument for candidate completeness — every value whose similarity score
is nonzero appears in the candidate set — goes component by component
over the score ``max(0.55·trigram + 0.45·token, 0.9·containment)``:

* ``trigram > 0`` — the key and value share a padded trigram, so the
  value sits on a posting list of one of the key's trigrams.
* ``token > 0`` — some key token matches a value token directly, through
  its cluster, or through the reverse map; the probe set
  ``key_tokens ∪ related(key_token)`` covers all three directions.
* ``containment > 0`` — one normalized string contains the other. If the
  contained string has ≥ 3 characters, its interior trigrams appear in
  both trigram sets (a padded set includes every interior 3-gram), so the
  trigram postings already cover it. Shorter contained strings have no
  space-free trigram: a value norm < 3 chars lives in the short-norm
  table, and a key norm < 3 chars triggers a one-off substring sweep
  (bounded, and only for 1-2 character keys).

Candidates are scored with the exact kernel
:func:`repro.core.similarity.score_features` in descending upper-bound
order, keeping a size-k min-heap of exact scores; iteration stops when
the next upper bound is strictly below the heap's k-th best, which cannot
change the result even under tie-breaking. The final ranking sorts by
``(-score, str(value), insertion order)`` — exactly the stable sort the
brute-force ``top_k`` performs — and pads with zero-score values in text
order when fewer than k candidates exist.
"""

from __future__ import annotations

import heapq
from array import array
from collections import Counter
from itertools import chain
from typing import Any, Iterable

from ..core.similarity import (
    SynonymTable,
    TextFeatures,
    _trigrams_of_norm,
    features,
    resolve_synonyms,
    score_features,
)


class _PackedPostings:
    """Read-only posting index restored from the flat persisted layout.

    Pickling one ``array`` per posting list still costs one object per
    key; the persisted form is instead three objects total — the key
    list, an end-offset array, and one flat vid array — which pickle
    restores at memcpy speed. Lookups slice the flat array on demand, so
    only probed keys ever pay for materialization. Implements just the
    mapping surface candidate generation uses (``get`` / ``items``).
    """

    __slots__ = ("_spans", "_flat")

    def __init__(self, keys: list[str], ends: array, flat: array):
        spans: dict[str, tuple[int, int]] = {}
        start = 0
        for key, end in zip(keys, ends):
            spans[key] = (start, end)
            start = end
        self._spans = spans
        self._flat = flat

    def get(self, key: str, default: Any = None) -> Any:
        span = self._spans.get(key)
        if span is None:
            return default
        return self._flat[span[0]:span[1]]

    def items(self):
        for key, (start, end) in self._spans.items():
            yield key, self._flat[start:end]

    def __len__(self) -> int:
        return len(self._spans)


def _pack_postings(postings) -> tuple[list[str], array, array]:
    """Flatten a posting mapping into the persisted (keys, ends, flat) form."""
    keys: list[str] = []
    ends = array("i")
    flat = array("i")
    total = 0
    for key, vids in postings.items():
        keys.append(key)
        flat.extend(vids)
        total += len(vids)
        ends.append(total)
    return keys, ends, flat


class _LazyEntries:
    """List-like view deriving :class:`TextFeatures` from persisted norms.

    A catalog restored from disk stores only values and normalized strings
    (plus the inverted indexes); tokens and trigrams of an entry are
    recomputed from its norm on first touch. Queries only ever touch their
    candidates, so a loaded catalog materializes a few thousand entries
    instead of all of them — this is what makes persisted-catalog loads
    ~10x cheaper than rebuilds. Derivation is exact: ``features(text)``
    computes ``tokens``/``trigrams`` from the norm the same way.
    """

    __slots__ = ("_values", "_norms", "_cache")

    def __init__(self, values: list[Any], norms: list[str]):
        self._values = values
        self._norms = norms
        self._cache: dict[int, TextFeatures] = {}

    def __len__(self) -> int:
        return len(self._values)

    def __getitem__(self, vid: int) -> TextFeatures:
        entry = self._cache.get(vid)
        if entry is None:
            norm = self._norms[vid]
            entry = TextFeatures(
                text=str(self._values[vid]),
                norm=norm,
                tokens=frozenset(norm.split()),
                trigrams=_trigrams_of_norm(norm),
            )
            self._cache[vid] = entry
        return entry


class ValueCatalog:
    """Immutable snapshot of one column's distinct values, indexed."""

    def __init__(self, values: Iterable[Any]):
        self.values: list[Any] = list(values)
        self.entries: "list[TextFeatures] | _LazyEntries" = [
            features(str(value)) for value in self.values
        ]
        #: norms by vid, shared with the persisted form (the short-key
        #: containment sweep reads these without touching full entries)
        self._norms: list[str] = [e.norm for e in self.entries]
        # inverted indexes: trigram -> value ids, token -> value ids
        self._trigram_postings: dict[str, list[int]] = {}
        self._token_postings: dict[str, list[int]] = {}
        # norms too short to own a space-free trigram: norm -> value ids
        self._short_norms: dict[str, list[int]] = {}
        for vid, entry in enumerate(self.entries):
            if not entry.norm:
                continue
            for trigram in entry.trigrams:
                self._trigram_postings.setdefault(trigram, []).append(vid)
            for token in entry.tokens:
                self._token_postings.setdefault(token, []).append(vid)
            if len(entry.norm) < 3:
                self._short_norms.setdefault(entry.norm, []).append(vid)
        # zero-score tail ordering: by rendered text, then insertion order
        self._text_order: list[int] = sorted(
            range(len(self.entries)), key=lambda vid: self.entries[vid].text
        )
        #: query counters (observability / tests)
        self.stats = {"queries": 0, "candidates": 0, "scored": 0}

    def __len__(self) -> int:
        return len(self.values)

    # -------------------------------------------------------- serialization

    def __getstate__(self) -> dict:
        """Packed pickle form — loading must be far cheaper than rebuilding.

        Per-entry feature objects are dropped entirely (norms suffice to
        re-derive them lazily, see :class:`_LazyEntries`) and posting
        lists become ``array('i')``, which pickle stores as raw bytes and
        restores at memcpy speed instead of one-object-at-a-time.
        """
        return {
            "values": self.values,
            "norms": list(self._norms),
            "trigram_postings": _pack_postings(self._trigram_postings),
            "token_postings": _pack_postings(self._token_postings),
            "short_norms": self._short_norms,
            "text_order": array("i", self._text_order),
        }

    def __setstate__(self, state: dict) -> None:
        self.values = state["values"]
        self._norms = state["norms"]
        self.entries = _LazyEntries(self.values, self._norms)
        # postings stay packed: candidate generation only probes and
        # iterates them, which the span-slicing wrapper serves directly
        self._trigram_postings = _PackedPostings(*state["trigram_postings"])
        self._token_postings = _PackedPostings(*state["token_postings"])
        self._short_norms = state["short_norms"]
        self._text_order = state["text_order"]
        self.stats = {"queries": 0, "candidates": 0, "scored": 0}

    # ---------------------------------------------------------- retrieval

    def top_k(
        self, key: str, k: int, synonyms: Any = None
    ) -> list[tuple[Any, float]]:
        """The k most relevant values — identical to brute-force ``top_k``."""
        k = max(k, 0)
        if k == 0:
            return []
        self.stats["queries"] += 1
        table = resolve_synonyms(synonyms)
        key_features = features(key)
        candidates, token_hits, containable = self._candidates(
            key_features, table
        )
        self.stats["candidates"] += len(candidates)

        # rank candidates by a cheap upper bound on their exact score
        bounded = [
            (
                self._upper_bound(
                    key_features,
                    vid,
                    shared,
                    vid in token_hits,
                    vid in containable,
                ),
                vid,
            )
            for vid, shared in candidates.items()
        ]
        bounded.sort(reverse=True)

        # exact-score in bound order with a size-k min-heap; stop once the
        # next bound is strictly below the current k-th best (ties at the
        # boundary are still scored, so tie-breaking stays exact)
        evaluated: list[tuple[float, int]] = []
        best_k: list[float] = []
        for bound, vid in bounded:
            if len(best_k) >= k and bound < best_k[0]:
                break
            score = score_features(key_features, self.entries[vid], table)
            evaluated.append((score, vid))
            if len(best_k) < k:
                heapq.heappush(best_k, score)
            elif score > best_k[0]:
                heapq.heapreplace(best_k, score)
        self.stats["scored"] += len(evaluated)

        # brute force stable-sorts all values by (-score, text); replicate
        # it as (-score, text, insertion order) over the scored candidates
        evaluated.sort(
            key=lambda pair: (-pair[0], self.entries[pair[1]].text, pair[1])
        )
        result = [(self.values[vid], score) for score, vid in evaluated[:k]]
        if len(result) < k:
            result.extend(self._zero_tail(k - len(result), candidates))
        return result

    # ------------------------------------------------- candidate generation

    def _candidates(
        self, key: TextFeatures, table: SynonymTable
    ) -> tuple[dict[int, int], set[int], set[int]]:
        """Value ids that may score > 0.

        Returns ``(shared, token_hits, containable)``: every candidate id
        mapped to its exact shared-trigram count, the subset reached via
        token postings (direct, cluster, or reverse-synonym probes), and
        the subset with a *confirmed* substring relation found through the
        short-norm structures (sub-trigram containment the trigram
        postings cannot see).
        """
        if not key.text or not key.norm:
            return {}, set(), set()
        # Counter.update over chained posting lists counts in C
        shared: dict[int, int] = Counter()
        postings = (self._trigram_postings.get(t) for t in key.trigrams)
        shared.update(chain.from_iterable(p for p in postings if p))
        token_hits: set[int] = set()
        probes = set(key.tokens)
        for token in key.tokens:
            probes |= table.related(token)
        for token in probes:
            for vid in self._token_postings.get(token, ()):
                token_hits.add(vid)
                shared.setdefault(vid, 0)
        # containment without shared trigrams: sub-trigram norms either way
        containable: set[int] = set()
        for norm, vids in self._short_norms.items():
            if norm in key.norm:
                for vid in vids:
                    containable.add(vid)
                    shared.setdefault(vid, 0)
        if len(key.norm) < 3:
            # norms are stored flat (shared with the persisted form), so
            # this sweep never materializes lazy entries
            for vid, norm in enumerate(self._norms):
                if norm and key.norm in norm:
                    containable.add(vid)
                    shared.setdefault(vid, 0)
        return shared, token_hits, containable

    def _upper_bound(
        self,
        key: TextFeatures,
        vid: int,
        shared: int,
        token_hit: bool,
        containable: bool,
    ) -> float:
        """Cheap bound on ``score_features(key, entries[vid])``.

        The trigram term is exact — ``shared`` is the true intersection
        size, so the Jaccard falls out of the set sizes without touching
        the sets. The containment term is exact too: a substring relation
        is only possible when a shared trigram or short-norm hit exists,
        and then one O(len) ``in`` check settles it (this is what makes
        the bound tight enough to prune the trigram-noise tail). Only the
        token term is loose: any token-posting hit is assumed to be a
        perfect overlap.
        """
        entry = self.entries[vid]
        if key.norm == entry.norm:
            return 1.0
        trigram = (
            shared / (len(key.trigrams) + len(entry.trigrams) - shared)
            if shared
            else 0.0
        )
        token = 1.0 if token_hit else 0.0
        containment = 0.0
        if (shared or containable) and (
            key.norm in entry.norm or entry.norm in key.norm
        ):
            shorter = min(len(key.norm), len(entry.norm))
            longer = max(len(key.norm), len(entry.norm))
            containment = 0.5 + 0.5 * (shorter / longer)
        return max(0.55 * trigram + 0.45 * token, 0.9 * containment)

    def _zero_tail(
        self, n: int, exclude: dict[int, int]
    ) -> list[tuple[Any, float]]:
        """Zero-score padding in text order, skipping scored candidates."""
        tail: list[tuple[Any, float]] = []
        for vid in self._text_order:
            if vid in exclude:
                continue
            tail.append((self.values[vid], 0.0))
            if len(tail) == n:
                break
        return tail
