"""Deterministic token counting approximating a BPE tokenizer.

Absolute counts differ from OpenAI/Anthropic tokenizers, but the estimator
is monotone in text size and stable run-to-run, which is what the paper's
token-cost comparisons (ratios between toolkits) rely on.

The rule blends the two standard rules of thumb — ~4 characters/token and
~0.75 words/token: every whitespace-separated chunk costs
``max(1, ceil(len(chunk) / 4))`` tokens, and newlines cost one token each.
"""

from __future__ import annotations

import math
from typing import Any


def count_tokens(text: str) -> int:
    """Approximate token count of ``text``."""
    if not text:
        return 0
    total = text.count("\n")
    for chunk in text.split():
        total += max(1, math.ceil(len(chunk) / 4))
    return max(total, 1)


def count_payload_tokens(payload: Any) -> int:
    """Token count of an arbitrary tool payload as it would be rendered."""
    if isinstance(payload, str):
        return count_tokens(payload)
    return count_tokens(repr(payload))
