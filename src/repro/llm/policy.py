"""Simulated LLM policy for data-related tasks.

This is the "model" half of the reproduction's GPT-4o / Claude-4
substitution. The policy plans from a task's structured intent the way a
competent tool-using LLM plans from its NL description, with stochastic
failure modes drawn from a :class:`~repro.llm.profiles.ModelProfile`:

* without a retrieved schema it may hallucinate identifiers (the corrupted
  SQL then genuinely fails against the engine and triggers retries);
* without retrieved column exemplars it may use NL surface forms in
  predicates (silently wrong results — the accuracy signal in Fig 5b);
* it notices privilege annotations / missing tools only with
  profile-dependent probability (the interception signal in Fig 6);
* it brackets writes in transactions reliably only when explicit
  begin/commit tools exist (Fig 5c);
* it composes proxy units with profile-dependent skill (Table 2).

The policy is *tool-driven*, not toolkit-driven: it adapts to whatever
tools are visible, so the same class runs against BridgeScope, PG-MCP,
PG-MCP−, and PG-MCP-S.
"""

from __future__ import annotations

import random
from typing import Any

from ..agent.messages import AgentAction
from ..agent.react import AgentView
from ..bench.tasks import DBTask, MLTask, PipelineNode
from .profiles import ModelProfile

_PERMISSION_CODES = {"PermissionDenied", "SecurityViolation"}
_IDENTIFIER_CODES = {
    "UnknownTableError",
    "UnknownColumnError",
    "CatalogError",
}


class SimulatedDataAgentPolicy:
    """Drop-in :class:`~repro.agent.react.Policy` for DB and ML tasks."""

    def __init__(self, profile: ModelProfile, seed: int = 0):
        self.profile = profile
        self.seed = seed
        self.rng = random.Random(seed)
        self.st: dict[str, Any] = {}

    def reset(self) -> None:
        self.st = {
            "checked_tools": False,
            "must_abort_missing_tool": False,
            "schema_requested": False,
            "schema_seen": False,
            "schema_text": "",
            "feasibility_checked": False,
            "blind_to_privileges": False,
            "value_requested": False,
            "values_done": False,
            "stored_value_known": False,
            "txn_decided": False,
            "txn_open": False,
            "generic_txn": False,
            "sql_done": False,
            "sql_attempts": 0,
            "probe_decided": False,
            "will_probe": False,
            "probed_tables": set(),
            "probe_failures": 0,
            "last_probe_table": None,
            "misprobed": set(),
            "identifier_error": False,
            "permission_failures": 0,
            "abort_reason": None,
            "commit_requested": False,
            "commit_done": False,
            # ML state
            "proxy_attempts": 0,
            "proxy_done": False,
            "manual_stage": 0,
            "stage_outputs": {},  # id(PipelineNode) -> produced payload
            "pipeline_result": None,
        }

    # ----------------------------------------------------------- dispatch

    def decide(self, task: Any, view: AgentView) -> AgentAction:
        self._absorb(task, view)
        if self.st["abort_reason"]:
            return AgentAction.abort(self.st["abort_reason"])
        if isinstance(task, MLTask):
            return self._decide_ml(task, view)
        return self._decide_db(task, view)

    # ------------------------------------------------------- observation

    def _absorb(self, task: Any, view: AgentView) -> None:
        """Fold the previous action's observation into policy state."""
        action, result = view.last_action, view.last_result
        if action is None or result is None or action.kind != "tool_call":
            return
        st = self.st
        tool = action.tool
        if tool in ("get_schema", "get_object"):
            if not result.is_error:
                st["schema_seen"] = True
                st["schema_text"] += "\n\n" + str(result.content)
            return
        if tool == "get_value":
            st["values_done"] = True
            if not result.is_error and isinstance(task, DBTask) and task.tricky:
                st["stored_value_known"] = (
                    repr(task.tricky.stored_form) in str(result.content)
                    or task.tricky.stored_form in str(result.content)
                )
            return
        if tool == "begin" or (
            tool == "execute_sql"
            and str(action.args.get("sql", "")).strip().upper().startswith("BEGIN")
        ):
            if not result.is_error:
                st["txn_open"] = True
            return
        if tool == "commit" or (
            tool == "execute_sql"
            and str(action.args.get("sql", "")).strip().upper().startswith("COMMIT")
        ):
            if not result.is_error:
                st["commit_done"] = True
                st["txn_open"] = False
            return
        if tool == "proxy":
            st["proxy_attempts"] += 1
            if not result.is_error:
                st["proxy_done"] = True
                st["pipeline_result"] = result.content
            return
        # an exploratory or main SQL execution
        if st.pop("awaiting_explore", False):
            st["values_done"] = True
            st["stored_value_known"] = not result.is_error
            return
        if st.pop("awaiting_probe", None) is not None:
            # a blind schema probe: success teaches this table's columns
            if not result.is_error and st["last_probe_table"]:
                st["probed_tables"].add(st["last_probe_table"])
            else:
                st["probe_failures"] += 1
            return
        if tool in ("select", "insert", "update", "delete", "execute_sql") or (
            tool in ("create", "drop", "alter")
        ):
            if isinstance(task, MLTask):
                self._absorb_ml_stage(task, result)
                return
            if result.is_error:
                self._absorb_sql_error(result)
            else:
                st["sql_done"] = True
                st["sql_result"] = result
            return
        if isinstance(task, MLTask):
            self._absorb_ml_stage(task, result)

    def _absorb_sql_error(self, result) -> None:
        st = self.st
        st["sql_attempts"] += 1
        code = result.error_code or ""
        if code in _PERMISSION_CODES:
            st["permission_failures"] += 1
            # BridgeScope's verifier rejections state the policy violation
            # explicitly, so the model stops at once; bare engine permission
            # errors get second-guessed for a few retries
            persistence = (
                0
                if code == "SecurityViolation"
                else self.profile.permission_error_persistence
            )
            if st["permission_failures"] > persistence:
                st["abort_reason"] = (
                    "aborting: insufficient privileges for the requested "
                    f"operation ({result.content})"
                )
        elif code in _IDENTIFIER_CODES or "does not exist" in str(result.content):
            st["identifier_error"] = True
            # after a futile blind attempt, often switch to probing tables
            if st["probe_decided"] and not st["will_probe"]:
                if self.rng.random() < 0.6:
                    st["will_probe"] = True
        # other errors (syntax, integrity): just retry; attempts cap below

    def _absorb_ml_stage(self, task: "MLTask", result) -> None:
        st = self.st
        if result.is_error:
            st["ml_stage_error"] = True
            return
        st["ml_stage_error"] = False
        payload = result.metadata.get(
            "payload", result.metadata.get("rows", result.content)
        )
        stages = task.plan.postorder()
        if st["manual_stage"] < len(stages):
            node = stages[st["manual_stage"]]
            st["stage_outputs"][id(node)] = payload
        st["manual_stage"] += 1
        st["pipeline_result"] = payload

    # ----------------------------------------------------------- DB tasks

    def _decide_db(self, task: DBTask, view: AgentView) -> AgentAction:
        st, rng, profile = self.st, self.rng, self.profile
        tools = set(view.tool_names)
        generic = "execute_sql" in tools
        required_tool = task.action.lower()

        # step-limit safety: too many failed attempts -> abort
        if st["sql_attempts"] >= 6:
            return AgentAction.abort(
                "aborting: repeated SQL failures, task appears infeasible"
            )

        # 1. tool-list inspection (privilege awareness without any call)
        if not st["checked_tools"]:
            st["checked_tools"] = True
            if not generic and required_tool not in tools:
                if rng.random() < profile.missing_tool_insight:
                    return AgentAction.abort(
                        f"aborting before execution: no {required_tool} tool is "
                        "available, so I lack the privilege for this "
                        f"{task.action} task"
                    )
                st["must_abort_missing_tool"] = True

        # 2. context retrieval
        if "get_schema" in tools and not st["schema_requested"]:
            st["schema_requested"] = True
            return AgentAction.call("get_schema")

        # 3. post-schema feasibility reasoning
        if not st["feasibility_checked"]:
            st["feasibility_checked"] = True
            if st["must_abort_missing_tool"]:
                return AgentAction.abort(
                    f"aborting: the toolkit exposes no {required_tool} tool, "
                    "the operation is not permitted for me"
                )
            if st["schema_seen"]:
                blocked = [
                    table
                    for table in task.tables
                    if not _annotated_access(st["schema_text"], table, task.action)
                ]
                if blocked:
                    if rng.random() < profile.privilege_reasoning:
                        return AgentAction.abort(
                            "aborting: schema annotations show I lack "
                            f"{task.action} access on {', '.join(blocked)}"
                        )
                    st["blind_to_privileges"] = True
        elif st["must_abort_missing_tool"]:
            return AgentAction.abort(
                f"aborting: no {required_tool} tool is available"
            )

        # 3c. blind schema probing when no schema tool exists at all:
        # trial-and-error discovery via exploratory SELECTs (the behavior
        # explicit context tools replace, per paper Section 3.2)
        if "get_schema" not in tools and generic and not st["schema_seen"]:
            if not st["probe_decided"]:
                st["probe_decided"] = True
                st["will_probe"] = rng.random() < profile.blind_probe_rate
            if st["will_probe"] and st["probe_failures"] < 2:
                unprobed = [
                    t for t in task.tables if t not in st["probed_tables"]
                ]
                if unprobed:
                    table = unprobed[0]
                    guess = table
                    if table not in st["misprobed"] and rng.random() < 0.4:
                        # hallucinated table name on the first probe
                        st["misprobed"].add(table)
                        guess = f"{table}_tbl"
                    st["awaiting_probe"] = True
                    st["last_probe_table"] = table if guess == table else None
                    return AgentAction.call(
                        "execute_sql", sql=f"SELECT * FROM {guess} LIMIT 3"
                    )
                st["schema_seen"] = True  # every target table probed

        # 4. exemplar retrieval for tricky predicate values
        if task.tricky and not st["values_done"] and not st["value_requested"]:
            st["value_requested"] = True
            if "get_value" in tools:
                if rng.random() < profile.value_retrieval_discipline:
                    return AgentAction.call(
                        "get_value",
                        col=task.tricky.column,
                        key=task.tricky.nl_form,
                        k=5,
                    )
                st["values_done"] = True
            elif generic:
                if rng.random() < profile.explore_values_rate:
                    table, column = task.tricky.column.split(".", 1)
                    st["awaiting_explore"] = True
                    return AgentAction.call(
                        "execute_sql",
                        sql=f"SELECT DISTINCT {column} FROM {table} LIMIT 20",
                    )
                st["values_done"] = True

        # 5. transaction bracketing for writes
        if task.write and not st["txn_decided"]:
            st["txn_decided"] = True
            if "begin" in tools:
                if rng.random() < profile.txn_with_tools:
                    return AgentAction.call("begin")
            elif generic:
                if rng.random() < profile.txn_generic:
                    st["generic_txn"] = True
                    return AgentAction.call("execute_sql", sql="BEGIN")

        # 6. the main SQL attempt(s)
        if not st["sql_done"]:
            # real-world slip with generic execute tools: bundling the
            # transaction bracket and the DML into one call, which
            # single-statement servers reject
            if (
                task.write
                and generic
                and required_tool not in tools
                and not st["txn_open"]
                and not st.get("multi_tried")
                and st["sql_attempts"] == 0
                and rng.random() < profile.multi_statement_rate
            ):
                st["multi_tried"] = True
                bundled = f"BEGIN; {self._compose_sql(task)}; COMMIT"
                return AgentAction.call("execute_sql", sql=bundled)
            sql = self._compose_sql(task)
            tool = required_tool if required_tool in tools else "execute_sql"
            if tool not in tools:
                return AgentAction.abort(
                    f"aborting: no tool can execute a {task.action} statement"
                )
            return AgentAction.call(tool, sql=sql)

        # 7. commit for writes
        if task.write and st["txn_open"] and not st["commit_requested"]:
            st["commit_requested"] = True
            if "commit" in tools:
                return AgentAction.call("commit")
            return AgentAction.call("execute_sql", sql="COMMIT")

        # 8. finalize
        return AgentAction.final(self._final_text(task))

    def _compose_sql(self, task: DBTask) -> str:
        """Generate the SQL attempt, injecting context-dependent mistakes."""
        st, rng, profile = self.st, self.rng, self.profile
        sql = task.gold_sql

        identifier_ok = st["schema_seen"]
        if st["identifier_error"]:
            # saw an engine error about a bad identifier; maybe corrected
            identifier_ok = rng.random() < profile.error_correction_rate or (
                st["schema_seen"]
            )
        if (
            not identifier_ok
            and task.wrong_identifier_sql
            and rng.random() < profile.schema_hallucination_rate
        ):
            return task.wrong_identifier_sql

        if task.tricky and task.value_miss_sql and not st["stored_value_known"]:
            if rng.random() < profile.predicate_hallucination_rate:
                return task.value_miss_sql

        # toolkit-independent logic slip: decided once, never self-detected
        if task.logic_miss_sql is not None and "logic_slip" not in st:
            st["logic_slip"] = rng.random() < profile.logic_error_rate
        if st.get("logic_slip"):
            return task.logic_miss_sql
        return sql

    def _final_text(self, task: DBTask) -> str:
        result = self.st.get("sql_result")
        if result is None:
            return "task finished"
        if task.write:
            return f"done: {result.content}"
        return f"query answered: {str(result.content)[:400]}"

    # ----------------------------------------------------------- ML tasks

    def _decide_ml(self, task: MLTask, view: AgentView) -> AgentAction:
        st, rng, profile = self.st, self.rng, self.profile
        tools = set(view.tool_names)
        generic = "execute_sql" in tools

        if "get_schema" in tools and not st["schema_requested"]:
            st["schema_requested"] = True
            return AgentAction.call("get_schema")

        if "proxy" in tools:
            if st["proxy_done"]:
                return AgentAction.final(
                    f"pipeline complete: {str(st['pipeline_result'])[:300]}"
                )
            if st["proxy_attempts"] >= 3:
                return AgentAction.abort("aborting: proxy composition kept failing")
            spec_args = self._build_proxy_spec(task.plan.args, tools)
            target = self._map_tool(task.plan.tool, tools)
            # composition skill: one chance to botch the spec per nesting level
            botched = any(
                rng.random() > profile.proxy_composition_skill
                for _ in range(task.level)
            )
            if botched and st["proxy_attempts"] == 0:
                spec_args = dict(spec_args)
                spec_args["__bogus_arg__"] = 1  # wrong argument -> tool error
            return AgentAction.call("proxy", target_tool=target, tool_args=spec_args)

        # ---- manual routing through the LLM (PG-MCP regime) --------------
        stages = task.plan.postorder()
        index = st["manual_stage"]
        if st.get("ml_stage_error"):
            return AgentAction.abort("aborting: pipeline stage failed")
        if index >= len(stages):
            return AgentAction.final(
                f"pipeline complete: {str(st['pipeline_result'])[:300]}"
            )
        stage = stages[index]
        tool = self._map_tool(stage.tool, tools)
        if tool is None:
            return AgentAction.abort(f"aborting: no tool available for {stage.tool}")
        args: dict[str, Any] = {}
        for key, value in stage.args.items():
            if isinstance(value, PipelineNode):
                # the LLM re-emits the producer's output inline (token cost!)
                args[key] = st["stage_outputs"].get(id(value))
            else:
                args[key] = value
        return AgentAction.call(tool, **args)

    def _build_proxy_spec(
        self, args: dict[str, Any], tools: set[str]
    ) -> dict[str, Any]:
        spec: dict[str, Any] = {}
        for key, value in args.items():
            if isinstance(value, PipelineNode):
                spec[key] = {
                    "__tool__": self._map_tool(value.tool, tools),
                    "__args__": self._build_proxy_spec(value.args, tools),
                    "__transform__": "lambda x: x",
                }
            else:
                spec[key] = value
        return spec

    @staticmethod
    def _map_tool(name: str, tools: set[str]) -> str | None:
        """Resolve a plan stage's tool to what this toolkit actually exposes."""
        if name in tools:
            return name
        if name == "select" and "execute_sql" in tools:
            return "execute_sql"
        return None


def _annotated_access(schema_text: str, table: str, action: str) -> bool:
    """Read a table's privilege annotation out of rendered schema text.

    Returns True (accessible) when no annotation exists — baselines without
    annotations give the LLM no signal, so it assumes access.
    """
    blocks = schema_text.split("\n\n")
    needle_table = table.lower()
    for block in blocks:
        lowered = block.lower()
        if (
            f"create table {needle_table} (" in lowered
            or f"create table {needle_table}\n" in lowered
            or f"view {needle_table} " in lowered
        ):
            if "-- access: false" in lowered:
                return False
            if "-- access: true" in lowered:
                if "privileges: all" in lowered:
                    return True
                header = next(
                    (
                        line
                        for line in lowered.splitlines()
                        if line.startswith("-- access: true")
                    ),
                    "",
                )
                return action.lower() in header
            return True  # no annotation: assume accessible
    # hierarchical mode: "name  [privileges: ...]" lines
    for line in schema_text.splitlines():
        lowered = line.lower()
        if lowered.startswith(needle_table) and "[privileges:" in lowered:
            inside = lowered.split("[privileges:", 1)[1]
            return action.lower() in inside or "none" not in inside and (
                "select" in inside if action == "SELECT" else action.lower() in inside
            )
    return True
