"""Behavior profiles for the simulated LLMs.

Each knob is a *mechanistic* failure/skill rate, not an outcome: the
benchmark numbers emerge from these rates interacting with real tool
errors from the database engine and toolkit. Profiles for GPT-4o and
Claude-4 are calibrated to the qualitative descriptions in the paper
(Claude-4 has "stronger reasoning capabilities": it notices privilege
boundaries more reliably, writes more verbose reasoning, and persists
longer before giving up on a failing path).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ModelProfile:
    """Cognitive model of one underlying LLM."""

    name: str
    #: maximum tokens of (system + history) context before task failure
    context_window: int
    #: tokens of free-form reasoning prepended to every tool call / answer
    reasoning_verbosity: int

    # ---- context-dependent SQL generation -------------------------------
    #: P(hallucinating a wrong identifier) when generating SQL with NO
    #: retrieved schema (the PG-MCP− regime)
    schema_hallucination_rate: float
    #: P(fixing the identifier on a retry after seeing the engine error)
    error_correction_rate: float
    #: P(using the NL surface form for a predicate value when the stored
    #: form was never retrieved) — yields silently wrong results
    predicate_hallucination_rate: float
    #: P(a subtle SQL logic slip — off-by-one threshold etc. — independent
    #: of the toolkit; executes fine but returns wrong results)
    logic_error_rate: float
    #: P(following the BridgeScope prompt and calling get_value for a
    #: text predicate before writing SQL)
    value_retrieval_discipline: float
    #: P(running an exploratory SELECT DISTINCT first when unsure about a
    #: predicate value and only a generic execute tool exists)
    explore_values_rate: float
    #: P(probing tables with exploratory SELECTs to discover columns when
    #: no schema tool exists at all — trial-and-error schema discovery)
    blind_probe_rate: float

    # ---- privilege awareness --------------------------------------------
    #: P(correctly aborting an infeasible task from privilege annotations
    #: in the schema output)
    privilege_reasoning: float
    #: P(noticing a required execution tool is absent from the tool list
    #: BEFORE any tool call, aborting immediately)
    missing_tool_insight: float
    #: retries after a hard permission error before aborting (the model
    #: first suspects its own SQL)
    permission_error_persistence: int

    # ---- transactions ----------------------------------------------------
    #: P(bracketing a write with begin/commit when explicit tools exist)
    txn_with_tools: float
    #: P(remembering to issue BEGIN through a generic execute_sql tool)
    txn_generic: float
    #: P(bundling BEGIN; <dml>; COMMIT into ONE generic execute_sql call —
    #: a real-world failure mode of single-statement MCP servers)
    multi_statement_rate: float

    # ---- proxy ------------------------------------------------------------
    #: P(composing a correct proxy unit, applied once per nesting level)
    proxy_composition_skill: float

    #: hard cap on reasoning steps before declaring failure
    max_steps: int = 25


GPT_4O = ModelProfile(
    name="gpt-4o",
    context_window=128_000,
    reasoning_verbosity=60,
    schema_hallucination_rate=0.85,
    error_correction_rate=0.25,
    predicate_hallucination_rate=0.70,
    logic_error_rate=0.20,
    value_retrieval_discipline=0.90,
    explore_values_rate=0.50,
    blind_probe_rate=0.55,
    privilege_reasoning=0.85,
    missing_tool_insight=0.40,
    permission_error_persistence=2,
    txn_with_tools=0.96,
    txn_generic=0.08,
    multi_statement_rate=0.35,
    proxy_composition_skill=0.97,
)

CLAUDE_4 = ModelProfile(
    name="claude-4",
    context_window=200_000,
    reasoning_verbosity=95,
    schema_hallucination_rate=0.80,
    error_correction_rate=0.30,
    predicate_hallucination_rate=0.60,
    logic_error_rate=0.15,
    value_retrieval_discipline=0.95,
    explore_values_rate=0.70,
    blind_probe_rate=0.75,
    privilege_reasoning=0.97,
    missing_tool_insight=0.85,
    permission_error_persistence=3,
    txn_with_tools=0.99,
    txn_generic=0.12,
    multi_statement_rate=0.50,
    proxy_composition_skill=0.99,
)

PROFILES = {profile.name: profile for profile in (GPT_4O, CLAUDE_4)}
