"""Simulated LLM substrate: token model, behavior profiles, task policy.

``SimulatedDataAgentPolicy`` is imported lazily (module ``__getattr__``)
because it depends on :mod:`repro.agent`, which itself uses the tokenizer
from this package.
"""

from .profiles import CLAUDE_4, GPT_4O, PROFILES, ModelProfile
from .tokenizer import count_payload_tokens, count_tokens

__all__ = [
    "CLAUDE_4",
    "GPT_4O",
    "ModelProfile",
    "PROFILES",
    "SimulatedDataAgentPolicy",
    "count_payload_tokens",
    "count_tokens",
]


def __getattr__(name: str):
    if name == "SimulatedDataAgentPolicy":
        from .policy import SimulatedDataAgentPolicy

        return SimulatedDataAgentPolicy
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
