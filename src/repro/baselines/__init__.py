"""Baseline database toolkits the paper compares against."""

from .pg_mcp import PGMCP, PGMCPMinus, make_sampled_binding

__all__ = ["PGMCP", "PGMCPMinus", "make_sampled_binding"]
