"""PG-MCP baseline family (paper Section 3.1).

* :class:`PGMCP` — the representative database MCP server: a ``get_schema``
  tool returning the full schema (no privilege annotations) and a generic
  ``execute_sql`` tool that runs any statement. Privileges are enforced only
  by the database engine at execution time, and no user-side policy exists.
* :class:`PGMCPMinus` (PG-MCP−) — the Section 3.2 ablation offering *only*
  ``execute_sql``; schema must be discovered by trial and error.
* PG-MCP-S — PG-MCP over a reduced database (20 sampled rows per table);
  constructed with :func:`make_sampled_binding`.
"""

from __future__ import annotations

from ..core.interfaces import DatabaseBinding
from ..core.minidb_binding import MinidbBinding
from ..mcp import ParamSpec, ToolResult, ToolServer, tool
from ..minidb import Database


class PGMCP(ToolServer):
    """The official-style PostgreSQL MCP server baseline."""

    name = "pg-mcp"

    #: rows rendered per result; generous because the whole point of the
    #: baseline is that bulk data flows through the LLM context
    max_result_rows = 100_000

    def __init__(self, binding: DatabaseBinding):
        self.binding = binding
        super().__init__()

    def render_tool_list(self) -> str:
        """MCP servers ship tools as JSON schemas on the wire; rendering
        them verbatim (rather than the compact text BridgeScope uses)
        reflects what actually enters the LLM context with this baseline."""
        import json

        return "\n".join(
            json.dumps(spec.to_json_schema(), indent=1)
            for spec in self.visible_tools()
        )

    @tool(description="Return the full database schema.", params=[])
    def get_schema(self) -> str:
        blocks = []
        for name in self.binding.list_objects():
            info = self.binding.object_info(name)
            blocks.append(info.ddl or f"{info.kind.upper()} {info.name}")
        return "\n\n".join(blocks) if blocks else "-- empty database"

    @tool(
        description="Execute any SQL statement and return its result.",
        params=[ParamSpec("sql", "string", "the SQL statement to execute")],
    )
    def execute_sql(self, sql: str) -> ToolResult:
        outcome = self.binding.run_sql(sql)
        if outcome.columns:
            lines = [" | ".join(outcome.columns)]
            rows = outcome.rows[: self.max_result_rows]
            for row in rows:
                lines.append(
                    " | ".join("NULL" if v is None else str(v) for v in row)
                )
            lines.append(f"({len(outcome.rows)} rows)")
            return ToolResult.ok(
                "\n".join(lines),
                rowcount=len(outcome.rows),
                rows=outcome.rows,
                columns=outcome.columns,
            )
        return ToolResult.ok(outcome.status, rowcount=outcome.rowcount)


class PGMCPMinus(PGMCP):
    """PG-MCP without the schema tool (execution-only variant)."""

    name = "pg-mcp-minus"

    def visible_tools(self):
        return [spec for spec in super().visible_tools() if spec.name == "execute_sql"]


def make_sampled_binding(
    db: Database,
    user: str,
    sample_rows: int = 20,
    owner: str = "admin",
) -> MinidbBinding:
    """Build the PG-MCP-S substrate: a copy of ``db`` with each table reduced
    to its first ``sample_rows`` rows (paper Section 3.4, trivial variant).
    """
    sampled = Database(owner=owner, name=f"{db.name}-sampled")
    admin = sampled.connect(owner)
    source_admin = db.connect(owner)
    inserted_keys: dict[str, set] = {}
    for name in _fk_topological_order(db):
        schema = db.catalog.table(name)
        admin.execute(schema.render_create().rstrip(";") + ";")
        all_rows = source_admin.execute(f"SELECT * FROM {name}").rows
        columns = schema.column_names()
        column_index = {c.lower(): i for i, c in enumerate(columns)}
        kept = 0
        keys: set = set()
        for row in all_rows:
            if kept >= sample_rows:
                break
            # keep FK closure: skip rows referencing unsampled parents
            satisfied = True
            for fk in schema.foreign_keys:
                if fk.ref_table.lower() == name.lower():
                    continue
                value = tuple(row[column_index[c.lower()]] for c in fk.columns)
                if any(v is None for v in value):
                    continue
                if value not in inserted_keys.get(fk.ref_table.lower(), set()):
                    satisfied = False
                    break
            if not satisfied:
                continue
            placeholders = ", ".join(_sql_literal(v) for v in row)
            admin.execute(
                f"INSERT INTO {name} ({', '.join(columns)}) VALUES ({placeholders})"
            )
            kept += 1
            if schema.primary_key:
                keys.add(
                    tuple(row[column_index[c.lower()]] for c in schema.primary_key)
                )
        inserted_keys[name.lower()] = keys
    for target in db.privileges.users():
        sampled.create_user(target)
    # replicate grants wholesale (owner-level copy)
    for target in db.privileges.users():
        for grant in db.privileges.grants_of(target):
            sampled.privileges.grant(
                target,
                grant.action,
                grant.obj,
                sorted(grant.columns) if grant.columns else None,
            )
    return MinidbBinding.for_user(sampled, user)


def _fk_topological_order(db: Database) -> list[str]:
    """Table names ordered so FK targets are created before referrers."""
    tables = [n for n in db.catalog.object_names() if db.catalog.has_table(n)]
    placed: list[str] = []
    placed_set: set[str] = set()
    remaining = list(tables)
    while remaining:
        progressed = False
        for name in list(remaining):
            schema = db.catalog.table(name)
            deps = {
                fk.ref_table.lower()
                for fk in schema.foreign_keys
                if fk.ref_table.lower() != name.lower()
            }
            if deps <= placed_set:
                placed.append(name)
                placed_set.add(name.lower())
                remaining.remove(name)
                progressed = True
        if not progressed:  # FK cycle: append the rest as-is
            placed.extend(remaining)
            break
    return placed


def _sql_literal(value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"
