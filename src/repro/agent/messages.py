"""Agent conversation messages with token accounting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..llm.tokenizer import count_tokens


@dataclass
class Message:
    role: str  # "system" | "user" | "assistant" | "tool"
    content: str
    tokens: int = 0

    def __post_init__(self):
        if not self.tokens:
            self.tokens = count_tokens(self.content)


@dataclass
class Conversation:
    """Message history with running token totals."""

    messages: list[Message] = field(default_factory=list)

    def add(self, role: str, content: str) -> Message:
        message = Message(role, content)
        self.messages.append(message)
        return message

    @property
    def total_tokens(self) -> int:
        return sum(m.tokens for m in self.messages)

    def render(self) -> str:
        return "\n".join(f"[{m.role}] {m.content}" for m in self.messages)


@dataclass
class AgentAction:
    """One decision emitted by the (simulated) LLM."""

    kind: str  # "tool_call" | "final" | "abort"
    tool: str | None = None
    args: dict[str, Any] = field(default_factory=dict)
    text: str = ""
    #: free-form reasoning the model "wrote" before acting (token cost)
    reasoning_tokens: int = 0

    @classmethod
    def call(cls, tool: str, reasoning_tokens: int = 0, **args: Any) -> "AgentAction":
        return cls("tool_call", tool=tool, args=args, reasoning_tokens=reasoning_tokens)

    @classmethod
    def final(cls, text: str, reasoning_tokens: int = 0) -> "AgentAction":
        return cls("final", text=text, reasoning_tokens=reasoning_tokens)

    @classmethod
    def abort(cls, reason: str, reasoning_tokens: int = 0) -> "AgentAction":
        return cls("abort", text=reason, reasoning_tokens=reasoning_tokens)

    def render(self) -> str:
        if self.kind == "tool_call":
            parts = ", ".join(f"{k}={_shorten(repr(v))}" for k, v in self.args.items())
            return f"call {self.tool}({parts})"
        prefix = "FINAL" if self.kind == "final" else "ABORT"
        return f"{prefix}: {self.text}"


def _shorten(text: str, limit: int = 4000) -> str:
    return text if len(text) <= limit else text[:limit] + "..."
