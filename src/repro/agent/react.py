"""ReAct agent loop (Yao et al., ICLR 2023) over a tool registry.

The loop is model-agnostic: any *policy* implementing
``decide(task, view) -> AgentAction`` can drive it — the simulated LLMs in
:mod:`repro.llm.policy` here, or a real LLM client in production use.

Token accounting mirrors a chat API: every decision charges the full
current context (system prompt + tool list + history) as input tokens and
the rendered action (plus hidden reasoning) as output tokens. A context-
window overflow aborts the run with ``failure_reason="context_overflow"`` —
this is the mechanism behind PG-MCP's NL2ML failures in Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol

from ..llm.profiles import ModelProfile
from ..llm.tokenizer import count_tokens
from ..mcp import ToolCall, ToolRegistry, ToolResult
from .messages import AgentAction, Conversation
from .trace import RunTrace, ToolCallRecord

_OBSERVATION_HARD_LIMIT = 2_000_000  # characters; guards pathological payloads


@dataclass
class AgentView:
    """What the policy may look at when deciding the next action."""

    tool_names: list[str]
    conversation: Conversation
    last_result: ToolResult | None
    last_action: AgentAction | None
    step: int
    scratch: dict[str, Any] = field(default_factory=dict)


class Policy(Protocol):  # pragma: no cover - typing helper
    profile: ModelProfile

    def decide(self, task: Any, view: AgentView) -> AgentAction: ...

    def reset(self) -> None: ...


class ReActAgent:
    """Drives task execution: policy decides, registry executes, repeat."""

    def __init__(
        self,
        policy: Policy,
        registry: ToolRegistry,
        system_prompt: str,
        toolkit_name: str = "toolkit",
    ):
        self.policy = policy
        self.registry = registry
        self.system_prompt = system_prompt
        self.toolkit_name = toolkit_name

    def run(self, task: Any) -> RunTrace:
        profile = self.policy.profile
        trace = RunTrace(
            task_id=getattr(task, "task_id", "task"),
            model=profile.name,
            toolkit=self.toolkit_name,
        )
        self.policy.reset()
        conversation = Conversation()
        conversation.add("system", self.system_prompt)
        conversation.add("system", self.registry.render_tool_list())
        conversation.add("user", getattr(task, "description", str(task)))

        view = AgentView(
            tool_names=self.registry.tool_names(),
            conversation=conversation,
            last_result=None,
            last_action=None,
            step=0,
        )

        for step in range(profile.max_steps):
            view.step = step
            # ---- one LLM call -------------------------------------------
            prompt_tokens = conversation.total_tokens
            if prompt_tokens > profile.context_window:
                trace.failure_reason = "context_overflow"
                trace.completed = False
                return trace
            action = self.policy.decide(task, view)
            action.reasoning_tokens = action.reasoning_tokens or profile.reasoning_verbosity
            trace.llm_calls += 1
            trace.input_tokens += prompt_tokens
            rendered_action = action.render()
            trace.output_tokens += (
                count_tokens(rendered_action) + action.reasoning_tokens
            )
            conversation.add("assistant", rendered_action)

            # ---- act ------------------------------------------------------
            if action.kind == "final":
                trace.completed = True
                trace.final_text = action.text
                return trace
            if action.kind == "abort":
                trace.completed = True
                trace.aborted = True
                trace.final_text = action.text
                return trace

            result = self.registry.call(ToolCall(action.tool, action.args))
            trace.tool_calls.append(
                ToolCallRecord(
                    tool=action.tool,
                    args=action.args,
                    ok=not result.is_error,
                    error_code=result.error_code,
                )
            )
            if not result.is_error:
                if action.tool == "begin":
                    trace.began_transaction = True
                elif action.tool == "commit":
                    trace.committed = True
                elif action.tool == "rollback":
                    trace.rolled_back = True
                if "rows" in result.metadata or not isinstance(result.content, str):
                    trace.last_payload = result.metadata.get("rows", result.content)

            observation = result.render()
            if len(observation) > _OBSERVATION_HARD_LIMIT:
                observation = observation[:_OBSERVATION_HARD_LIMIT]
            conversation.add("tool", observation)
            view.last_result = result
            view.last_action = action

        trace.failure_reason = "step_limit"
        trace.completed = False
        return trace
