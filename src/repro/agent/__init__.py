"""ReAct agent substrate: conversation, traces, and the agent loop."""

from .messages import AgentAction, Conversation, Message
from .react import AgentView, ReActAgent
from .trace import RunTrace, ToolCallRecord

__all__ = [
    "AgentAction",
    "AgentView",
    "Conversation",
    "Message",
    "ReActAgent",
    "RunTrace",
    "ToolCallRecord",
]
