"""Execution traces: everything the benchmarks measure about one task run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class ToolCallRecord:
    tool: str
    args: dict[str, Any]
    ok: bool
    error_code: str | None = None


@dataclass
class RunTrace:
    """Metrics of one agent run on one task."""

    task_id: str
    model: str
    toolkit: str
    #: number of LLM invocations (each decision = one call)
    llm_calls: int = 0
    #: tokens fed to the LLM across all calls (prompt side, cumulative)
    input_tokens: int = 0
    #: tokens emitted by the LLM across all calls
    output_tokens: int = 0
    tool_calls: list[ToolCallRecord] = field(default_factory=list)
    began_transaction: bool = False
    committed: bool = False
    rolled_back: bool = False
    completed: bool = False
    aborted: bool = False
    failure_reason: str | None = None
    final_text: str = ""
    #: structured payload of the last successful data-bearing tool result
    last_payload: Any = None

    @property
    def total_tokens(self) -> int:
        return self.input_tokens + self.output_tokens

    def tool_sequence(self) -> list[str]:
        return [record.tool for record in self.tool_calls]

    def used(self, tool: str) -> bool:
        return any(record.tool == tool for record in self.tool_calls)

    def error_count(self) -> int:
        return sum(1 for record in self.tool_calls if not record.ok)
