"""Deterministic fault injection for the durable storage stack.

The durable engine's crash-safety argument is only as strong as the
failure shapes it has been tested against. This package provides the
two halves of making that systematic:

* :class:`Filesystem` — the seam every durable file operation goes
  through (see :mod:`repro.faults.filesystem`); production code uses the
  zero-overhead passthrough, enforced by the ``fs-seam`` staticcheck
  rule.
* :class:`FaultyFilesystem` + :class:`FaultPlan` — a scripted injector
  that can crash (:class:`SimulatedCrash`), error (``EIO``/``ENOSPC``),
  tear, or delay any operation by its deterministic global index,
  making "crash at every possible syscall" an enumerable sweep instead
  of a flaky race.
"""

from .filesystem import (
    OS_FILESYSTEM,
    FaultPlan,
    FaultyFilesystem,
    Filesystem,
    SimulatedCrash,
)

__all__ = [
    "OS_FILESYSTEM",
    "FaultPlan",
    "FaultyFilesystem",
    "Filesystem",
    "SimulatedCrash",
]
