"""The filesystem seam and its deterministic fault injector.

Every file operation the durable stack performs — WAL appends, snapshot
writes, LOCK acquisition and stealing, retrieval-catalog sidecars — goes
through a :class:`Filesystem` instance instead of calling ``open``/``os``
directly (the ``fs-seam`` staticcheck rule enforces this). Production
uses the passthrough :class:`Filesystem`, whose ``open`` returns the raw
builtin file object, so the seam costs nothing on the hot path.

Tests and torture harnesses substitute a :class:`FaultyFilesystem`
scripted by a :class:`FaultPlan`: a declarative description of *which*
operation fails *how*. Operations are numbered by one global counter in
execution order, so a plan like ``FaultPlan(crash_at=17)`` deterministically
kills the 17th filesystem operation of the run — and sweeping that index
across the whole workload visits every crash point the implementation
can reach, the syscall-level generalization of WAL-byte truncation
sweeps.

Fault shapes (all composable in one plan):

* ``crash_at=N`` — raise :class:`SimulatedCrash` at operation ``N``.
  When ``N`` is a write, a seeded *prefix* of the data is written first:
  a torn multi-syscall write, exactly what a real crash produces.
* ``error_at=N`` (+ ``error_errno``) — raise ``OSError`` at operation
  ``N`` (default ``EIO``), likewise tearing writes.
* ``fail_fsync=K`` (+ ``fsync_errno``) — the ``K``-th fsync of the run
  fails. One-shot: later fsyncs succeed (a transient device error).
* ``enospc_after_bytes=B`` — once ``B`` bytes have been written, further
  writes store what still fits and raise ``ENOSPC``.
* ``latency_s`` — sleep before every operation (slow-disk modeling).

:class:`SimulatedCrash` subclasses ``BaseException`` deliberately:
production code legitimately catches broad ``Exception`` around "best
effort" I/O (cache loads, lock cleanup), and a simulated process death
must not be swallowed by those handlers.
"""

from __future__ import annotations

import errno as _errno
import os
import random
import time
from dataclasses import dataclass, field
from typing import Any, Iterator


class SimulatedCrash(BaseException):
    """Process death injected at a filesystem operation.

    ``BaseException`` so no ``except Exception`` in the code under test
    can absorb it — a crash ends the run, full stop. Harnesses catch it
    explicitly, drop the database object without ``close()``, and reopen.
    """


@dataclass
class FaultPlan:
    """Script of deterministic faults, addressed by operation index.

    Operation indices are 0-based and global across the plan's
    :class:`FaultyFilesystem` (see its ``ops_log`` for the mapping from
    index to ``(op, path)``). ``crash_at``/``error_at`` target one exact
    operation; ``fail_fsync`` counts fsyncs only (1-based: ``1`` fails
    the first fsync); ``enospc_after_bytes`` is a running budget over all
    written bytes. ``seed`` drives the torn-write cut points.
    """

    crash_at: int | None = None
    error_at: int | None = None
    error_errno: int = _errno.EIO
    fail_fsync: int | None = None
    fsync_errno: int = _errno.EIO
    enospc_after_bytes: int | None = None
    latency_s: float = 0.0
    seed: int = 0


class Filesystem:
    """Passthrough seam: the operations durable storage is allowed to use.

    ``open`` returns the plain builtin file object — zero interposition
    on reads, writes, and flushes — so routing production I/O through
    this class is free. Subclasses (the fault injector) may return
    wrapped files instead; callers must treat the return value as an
    opaque file-like and fsync it via :meth:`fsync`, never
    ``os.fsync(fh.fileno())`` directly.
    """

    def open(self, path: str, mode: str = "r", encoding: str | None = None) -> Any:
        return open(path, mode, encoding=encoding)

    def fsync(self, fh: Any) -> None:
        os.fsync(fh.fileno())

    def rename(self, src: str, dst: str) -> None:
        os.rename(src, dst)

    def replace(self, src: str, dst: str) -> None:
        os.replace(src, dst)

    def unlink(self, path: str) -> None:
        os.unlink(path)

    def link(self, src: str, dst: str) -> None:
        os.link(src, dst)

    def makedirs(self, path: str, exist_ok: bool = False) -> None:
        os.makedirs(path, exist_ok=exist_ok)

    def listdir(self, path: str) -> list[str]:
        return os.listdir(path)

    def exists(self, path: str) -> bool:
        return os.path.exists(path)


#: shared production instance — stateless, safe to use everywhere
OS_FILESYSTEM = Filesystem()


class _FaultyFile:
    """File wrapper routing writes/flushes/fsyncs through the fault plan.

    The underlying file is always opened in *unbuffered binary* mode:
    every ``write`` here is one OS-level write, so a torn write injected
    by the plan leaves exactly the torn prefix on disk — no Python-layer
    buffer can resurrect the tail later (e.g. when the abandoned file
    object is garbage-collected after a simulated crash). Text-mode
    callers get transparent encode/decode instead of a text buffer.
    """

    def __init__(self, fs: "FaultyFilesystem", path: str, mode: str, encoding: str | None):
        self._fs = fs
        self.path = path
        self._text = "b" not in mode
        self._encoding = encoding or "utf-8"
        raw_mode = mode.replace("b", "") + "b"
        self._raw = open(path, raw_mode, buffering=0)
        self.closed = False

    # -- injected operations

    def write(self, data: Any) -> int:
        payload = data.encode(self._encoding) if self._text else bytes(data)
        self._fs._write(self.path, self._raw, payload)
        return len(data)

    def flush(self) -> None:
        self._fs._op("flush", self.path)
        self._raw.flush()  # no-op for unbuffered raw files

    # -- passthrough operations (not fault points)

    def read(self, size: int = -1) -> Any:
        data = self._raw.read(size)
        return data.decode(self._encoding) if self._text else data

    def truncate(self, size: int | None = None) -> int:
        return self._raw.truncate(size)

    def seek(self, offset: int, whence: int = 0) -> int:
        return self._raw.seek(offset, whence)

    def fileno(self) -> int:
        return self._raw.fileno()

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self._raw.close()

    def __enter__(self) -> "_FaultyFile":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __iter__(self) -> Iterator[Any]:
        while True:
            line = self._raw.readline()
            if not line:
                return
            yield line.decode(self._encoding) if self._text else line


class FaultyFilesystem(Filesystem):
    """A :class:`Filesystem` that executes a :class:`FaultPlan`.

    Observability: ``ops`` counts operations so far, ``ops_log`` records
    ``(index, op, basename)`` for every operation (the map a sweep uses
    to interpret an index), ``bytes_written``/``fsyncs`` track the
    budgets, and ``injected`` records every fault actually fired.
    """

    def __init__(self, plan: FaultPlan | None = None):
        self.plan = plan or FaultPlan()
        self.ops = 0
        self.fsyncs = 0
        self.bytes_written = 0
        self.ops_log: list[tuple[int, str, str]] = []
        self.injected: list[tuple[int, str, str]] = []
        self._rng = random.Random(self.plan.seed)

    # ------------------------------------------------------------ injection

    def _op(self, op: str, path: str) -> int:
        """Number one operation and fire any non-write fault aimed at it."""
        index = self.ops
        self.ops += 1
        self.ops_log.append((index, op, os.path.basename(path)))
        if self.plan.latency_s:
            time.sleep(self.plan.latency_s)
        if index == self.plan.crash_at:
            self.injected.append((index, "crash", op))
            raise SimulatedCrash(f"simulated crash at op {index} ({op} {path})")
        if index == self.plan.error_at:
            self.injected.append((index, "error", op))
            raise self._os_error(self.plan.error_errno, path)
        return index

    def _write(self, path: str, raw: Any, payload: bytes) -> None:
        """One write operation; faults here tear the write first."""
        index = self.ops
        self.ops += 1
        self.ops_log.append((index, "write", os.path.basename(path)))
        if self.plan.latency_s:
            time.sleep(self.plan.latency_s)
        if index == self.plan.crash_at or index == self.plan.error_at:
            cut = self._rng.randrange(len(payload) + 1)
            if cut:
                raw.write(payload[:cut])
                self.bytes_written += cut
            if index == self.plan.crash_at:
                self.injected.append((index, "crash", "write"))
                raise SimulatedCrash(
                    f"simulated crash tearing write at op {index} ({path})"
                )
            self.injected.append((index, "error", "write"))
            raise self._os_error(self.plan.error_errno, path)
        if self.plan.enospc_after_bytes is not None:
            room = self.plan.enospc_after_bytes - self.bytes_written
            if len(payload) > room:
                fits = payload[: max(0, room)]
                if fits:
                    raw.write(fits)
                    self.bytes_written += len(fits)
                self.injected.append((index, "enospc", "write"))
                raise self._os_error(_errno.ENOSPC, path)
        raw.write(payload)
        self.bytes_written += len(payload)

    @staticmethod
    def _os_error(code: int, path: str) -> OSError:
        return OSError(code, os.strerror(code), path)

    # ----------------------------------------------------------- operations

    def open(self, path: str, mode: str = "r", encoding: str | None = None) -> Any:
        self._op("open", path)
        return _FaultyFile(self, path, mode, encoding)

    def fsync(self, fh: Any) -> None:
        self._op("fsync", getattr(fh, "path", "?"))
        self.fsyncs += 1
        if self.fsyncs == self.plan.fail_fsync:
            self.injected.append((self.ops - 1, "fsync-error", "fsync"))
            raise self._os_error(self.plan.fsync_errno, getattr(fh, "path", "?"))
        os.fsync(fh.fileno())

    def rename(self, src: str, dst: str) -> None:
        self._op("rename", src)
        os.rename(src, dst)

    def replace(self, src: str, dst: str) -> None:
        self._op("replace", src)
        os.replace(src, dst)

    def unlink(self, path: str) -> None:
        self._op("unlink", path)
        os.unlink(path)

    def link(self, src: str, dst: str) -> None:
        self._op("link", src)
        os.link(src, dst)

    def makedirs(self, path: str, exist_ok: bool = False) -> None:
        self._op("makedirs", path)
        os.makedirs(path, exist_ok=exist_ok)

    def listdir(self, path: str) -> list[str]:
        self._op("listdir", path)
        return os.listdir(path)

    # ``exists`` is a metadata peek, not a mutation — not a fault point,
    # mirroring the passthrough class.
