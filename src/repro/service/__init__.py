"""Concurrent multi-session service layer over one shared database.

This package is the step from "one BridgeScope per database user" (the
paper's deployment unit) to a front-end that serves many concurrent
agent sessions against one shared, durable :class:`~repro.minidb.Database`
— the same decomposition production DBMS front-ends use:

* :class:`SessionManager` — session lifecycle: authenticate against the
  database's roles, hand each session its own BridgeScope toolkit
  (per-user privileges, per-session transactions), expire idle sessions.
* :class:`LockManager` — table-level shared/exclusive locks with FIFO
  fairness, upgrade support, timeouts, and wait-for-graph deadlock
  detection; acquired by the executor per statement, held to transaction
  end (strict 2PL ⇒ serializable at table granularity).
* :class:`Dispatcher` — threaded worker pool with a bounded admission
  queue (backpressure) and per-session FIFO ordering; executes
  ``ToolCall``s and resolves futures with ``ToolResult``s.
  :class:`SerialDispatcher` is the zero-thread fast path preserving the
  seed's single-threaded semantics.
* :class:`ServiceMetrics` — active sessions, queue depth, lock waits,
  deadlocks, p50/p95 latency.
"""

from .dispatcher import (
    Dispatcher,
    PendingResult,
    SerialDispatcher,
    ServiceOverloaded,
)
from .locks import EXCLUSIVE, SHARED, LockManager
from .metrics import ServiceMetrics
from .retry import (
    RetryPolicy,
    is_retryable_error,
    retryable_result,
    run_with_retries,
)
from .sessions import ServiceSession, SessionError, SessionManager

__all__ = [
    "Dispatcher",
    "SerialDispatcher",
    "PendingResult",
    "ServiceOverloaded",
    "LockManager",
    "SHARED",
    "EXCLUSIVE",
    "ServiceMetrics",
    "SessionManager",
    "ServiceSession",
    "SessionError",
    "RetryPolicy",
    "run_with_retries",
    "retryable_result",
    "is_retryable_error",
]
