"""The blessed retry/backoff primitive for transient service failures.

The service layer tags exactly which failures are worth re-issuing —
:class:`~repro.minidb.errors.DeadlockError` and
:class:`~repro.minidb.errors.LockTimeoutError` carry ``retryable = True``,
:class:`~repro.service.ServiceOverloaded` signals backpressure shedding,
and dispatcher results mark the same taxonomy in
``result.metadata["retryable"]``. What it did *not* provide until now is
the loop: every benchmark and stress test hand-rolled its own
retry-immediately spin, which is both duplicated policy and the worst
possible behavior under a contention storm (all victims re-collide at
once). :func:`run_with_retries` centralizes the loop with jittered
exponential backoff:

    delay(attempt) = min(max_delay, base * multiplier^(attempt-1))
                     * (1 - jitter * U[0, 1))

Jitter decorrelates retriers (victims of one deadlock do not stampede
back in lockstep); the cap keeps the tail latency bounded. The RNG is
seeded per call, and ``sleep`` is injectable, so tests are deterministic
and instant.

Non-retryable failures — including the fail-stop
:class:`~repro.minidb.errors.StorageFailedError`, whose contract is that
re-issuing *cannot* help — propagate immediately, never consuming
attempts.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Callable, TypeVar

from .dispatcher import ServiceOverloaded

T = TypeVar("T")


@dataclass
class RetryPolicy:
    """Knobs of the backoff schedule.

    ``max_attempts`` counts total tries, so ``1`` means "no retries".
    ``jitter`` in ``[0, 1]`` is the fraction of each delay randomly
    shaved off (0 = fixed schedule, 1 = full jitter down to zero).
    ``seed`` makes the jitter sequence reproducible.
    """

    max_attempts: int = 8
    base_delay_s: float = 0.005
    max_delay_s: float = 0.5
    multiplier: float = 2.0
    jitter: float = 0.5
    seed: int | None = None

    def delay_s(self, attempt: int, rng: random.Random) -> float:
        """Backoff before the retry that follows attempt ``attempt``."""
        delay = min(
            self.max_delay_s,
            self.base_delay_s * self.multiplier ** max(0, attempt - 1),
        )
        return delay * (1.0 - self.jitter * rng.random())


def is_retryable_error(exc: BaseException) -> bool:
    """The exception half of the retryable taxonomy: engine errors whose
    class carries ``retryable = True`` (deadlock victim, lock timeout)
    and dispatcher backpressure."""
    return bool(getattr(exc, "retryable", False)) or isinstance(
        exc, ServiceOverloaded
    )


def retryable_result(result: Any) -> bool:
    """The ToolResult half of the taxonomy: dispatchers fold engine errors
    into error results and mark the retryable ones in metadata."""
    return bool(
        getattr(result, "is_error", False)
        and getattr(result, "metadata", {}).get("retryable")
    )


def run_with_retries(
    fn: Callable[[], T],
    policy: RetryPolicy | None = None,
    *,
    retry_result: Callable[[T], bool] | None = None,
    on_retry: Callable[[int, Any], None] | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Run ``fn`` until it succeeds, with jittered exponential backoff.

    A try fails retryably when ``fn`` raises an exception for which
    :func:`is_retryable_error` holds, or — for callers speaking the
    dispatcher's result channel instead of exceptions — when
    ``retry_result(value)`` returns true for ``fn``'s return value (pass
    :func:`retryable_result` for the standard metadata convention).

    Exhausting ``policy.max_attempts`` re-raises the last exception (or
    returns the last result, leaving the error visible to the caller);
    non-retryable failures propagate immediately. ``on_retry(attempt,
    failure)`` observes each scheduled retry; ``sleep`` is injectable for
    deterministic tests.
    """
    policy = policy or RetryPolicy()
    rng = random.Random(policy.seed)
    attempt = 0
    while True:
        attempt += 1
        failure: Any
        try:
            value = fn()
        except Exception as exc:
            if not is_retryable_error(exc) or attempt >= policy.max_attempts:
                raise
            failure = exc
        else:
            if retry_result is None or not retry_result(value):
                return value
            if attempt >= policy.max_attempts:
                return value  # exhausted: the error result speaks for itself
            failure = value
        if on_retry is not None:
            on_retry(attempt, failure)
        sleep(policy.delay_s(attempt, rng))
