"""Service observability: counters, gauges, and latency percentiles.

One :class:`ServiceMetrics` instance is shared by the dispatcher, the
session manager, and (read-only) the lock manager. Everything is guarded
by a single mutex; latency percentiles come from a bounded ring of recent
samples, so memory stays constant under sustained traffic and the
reported p50/p95 track current behavior rather than all-time history.
"""

from __future__ import annotations

import threading
from typing import Any


class ServiceMetrics:
    """Thread-safe metrics surface for the multi-session service layer."""

    def __init__(self, latency_window: int = 2048):
        self._mutex = threading.Lock()
        self.latency_window = latency_window
        #: bounded ring of recent latency samples
        #: guarded by self._mutex
        self._latencies: list[float] = []
        self._latency_pos = 0  #: guarded by self._mutex
        #: guarded by self._mutex
        self.counters = {
            "submitted": 0,
            "completed": 0,
            "errors": 0,
            "rejected": 0,
            "retryable_errors": 0,
            "storage_errors": 0,
        }
        #: latched true on the first storage failure: the backing engine
        #: went fail-stop, the service is degraded to read-only (also
        #: reflected live from the engine via :meth:`attach_engine`)
        #: guarded by self._mutex
        self._degraded = False
        #: current dispatcher queue depth (gauge, set by the dispatcher)
        #: guarded by self._mutex
        self.queue_depth = 0
        self.max_queue_depth = 0  #: guarded by self._mutex
        #: wired by the session manager / dispatcher at construction
        self._session_source: Any | None = None
        self._lock_source: Any | None = None
        self._engine_source: Any | None = None

    # -------------------------------------------------------------- wiring

    def attach_sessions(self, manager: Any) -> None:
        """Source of the ``active_sessions`` gauge (a SessionManager)."""
        self._session_source = manager

    def attach_locks(self, lock_manager: Any) -> None:
        """Source of lock-wait/deadlock counters (a LockManager)."""
        self._lock_source = lock_manager

    def attach_engine(self, engine: Any) -> None:
        """Source of the ``degraded`` flag's live half (a StorageEngine):
        a panicked engine means degraded read-only service even before
        any request has observed the failure."""
        self._engine_source = engine

    # ------------------------------------------------------------ recording

    def record_submitted(self, queue_depth: int) -> None:
        with self._mutex:
            self.counters["submitted"] += 1
            self.queue_depth = queue_depth
            self.max_queue_depth = max(self.max_queue_depth, queue_depth)

    def record_completed(
        self, latency_s: float, queue_depth: int,
        is_error: bool = False, retryable: bool = False,
    ) -> None:
        with self._mutex:
            self.counters["completed"] += 1
            if is_error:
                self.counters["errors"] += 1
            if retryable:
                self.counters["retryable_errors"] += 1
            self.queue_depth = queue_depth
            if len(self._latencies) < self.latency_window:
                self._latencies.append(latency_s)
            else:  # ring buffer: overwrite oldest
                self._latencies[self._latency_pos] = latency_s
                self._latency_pos = (self._latency_pos + 1) % self.latency_window

    def record_rejected(self) -> None:
        with self._mutex:
            self.counters["rejected"] += 1

    def record_storage_error(self) -> None:
        """One request hit the fail-stop engine (StorageFailedError):
        count it and latch the service as degraded."""
        with self._mutex:
            self.counters["storage_errors"] += 1
            self._degraded = True

    # ------------------------------------------------------------- reading

    @staticmethod
    def _percentile(samples: list[float], fraction: float) -> float:
        if not samples:
            return 0.0
        ordered = sorted(samples)
        index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
        return ordered[index]

    def snapshot(self) -> dict[str, Any]:
        """One coherent reading of every gauge/counter the service exposes."""
        with self._mutex:
            samples = list(self._latencies)
            degraded = self._degraded
            data: dict[str, Any] = {
                **self.counters,
                "queue_depth": self.queue_depth,
                "max_queue_depth": self.max_queue_depth,
                "latency_samples": len(samples),
                "p50_latency_s": self._percentile(samples, 0.50),
                "p95_latency_s": self._percentile(samples, 0.95),
            }
        if self._engine_source is not None:
            degraded = degraded or bool(
                getattr(self._engine_source, "panicked", False)
            )
        data["degraded"] = degraded
        if self._session_source is not None:
            data["active_sessions"] = self._session_source.active_count()
        if self._lock_source is not None:
            stats = self._lock_source.stats
            data["lock_waits"] = stats["waits"]
            data["lock_timeouts"] = stats["timeouts"]
            data["deadlocks"] = stats["deadlocks"]
        return data
