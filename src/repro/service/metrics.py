"""Service observability: counters, gauges, and latency percentiles.

One :class:`ServiceMetrics` instance is shared by the dispatcher, the
session manager, and (read-only) the lock manager. Counters and gauges sit
behind a single mutex; latencies go into a shared
:class:`repro.obs.metrics.Histogram` (fixed log-scale buckets), so service
and engine latencies use one quantile implementation, memory stays constant
under sustained traffic, and the ``snapshot()`` keys stay flat and
backward-compatible (``p50_latency_s``/``p95_latency_s`` now read bucket
upper bounds instead of exact windowed samples).
"""

from __future__ import annotations

import threading
from typing import Any

from ..obs.metrics import MetricsRegistry


class ServiceMetrics:
    """Thread-safe metrics surface for the multi-session service layer."""

    def __init__(
        self, latency_window: int = 2048, registry: MetricsRegistry | None = None
    ):
        self._mutex = threading.Lock()
        #: kept for backward API compatibility; quantiles now come from the
        #: histogram's fixed buckets rather than a sample window
        self.latency_window = latency_window
        #: instrument registry; callers may pass a shared one (e.g. the
        #: database's) so service latencies appear in its text exposition
        self.registry = registry or MetricsRegistry()
        self._latency = self.registry.histogram(
            "service_request_latency_seconds",
            "end-to-end request latency (submit to completion)",
        )
        #: guarded by self._mutex
        self.counters = {
            "submitted": 0,
            "completed": 0,
            "errors": 0,
            "rejected": 0,
            "retryable_errors": 0,
            "storage_errors": 0,
        }
        #: latched true on the first storage failure: the backing engine
        #: went fail-stop, the service is degraded to read-only (also
        #: reflected live from the engine via :meth:`attach_engine`)
        #: guarded by self._mutex
        self._degraded = False
        #: current dispatcher queue depth (gauge, set by the dispatcher)
        #: guarded by self._mutex
        self.queue_depth = 0
        self.max_queue_depth = 0  #: guarded by self._mutex
        #: wired by the session manager / dispatcher at construction
        self._session_source: Any | None = None
        self._lock_source: Any | None = None
        self._engine_source: Any | None = None

    # -------------------------------------------------------------- wiring

    def attach_sessions(self, manager: Any) -> None:
        """Source of the ``active_sessions`` gauge (a SessionManager)."""
        self._session_source = manager

    def attach_locks(self, lock_manager: Any) -> None:
        """Source of lock-wait/deadlock counters (a LockManager)."""
        self._lock_source = lock_manager

    def attach_engine(self, engine: Any) -> None:
        """Source of the ``degraded`` flag's live half (a StorageEngine):
        a panicked engine means degraded read-only service even before
        any request has observed the failure."""
        self._engine_source = engine

    # ------------------------------------------------------------ recording

    def record_submitted(self, queue_depth: int) -> None:
        with self._mutex:
            self.counters["submitted"] += 1
            self.queue_depth = queue_depth
            self.max_queue_depth = max(self.max_queue_depth, queue_depth)

    def record_completed(
        self, latency_s: float, queue_depth: int,
        is_error: bool = False, retryable: bool = False,
    ) -> None:
        with self._mutex:
            self.counters["completed"] += 1
            if is_error:
                self.counters["errors"] += 1
            if retryable:
                self.counters["retryable_errors"] += 1
            self.queue_depth = queue_depth
        self._latency.observe(latency_s)  # histogram has its own lock

    def record_rejected(self) -> None:
        with self._mutex:
            self.counters["rejected"] += 1

    def record_storage_error(self) -> None:
        """One request hit the fail-stop engine (StorageFailedError):
        count it and latch the service as degraded."""
        with self._mutex:
            self.counters["storage_errors"] += 1
            self._degraded = True

    # ------------------------------------------------------------- reading

    def snapshot(self) -> dict[str, Any]:
        """One coherent reading of every gauge/counter the service exposes."""
        with self._mutex:
            degraded = self._degraded
            data: dict[str, Any] = {
                **self.counters,
                "queue_depth": self.queue_depth,
                "max_queue_depth": self.max_queue_depth,
            }
        data["latency_samples"] = self._latency.count
        data["p50_latency_s"] = self._latency.quantile(0.50)
        data["p95_latency_s"] = self._latency.quantile(0.95)
        if self._engine_source is not None:
            degraded = degraded or bool(
                getattr(self._engine_source, "panicked", False)
            )
        data["degraded"] = degraded
        if self._session_source is not None:
            data["active_sessions"] = self._session_source.active_count()
        if self._lock_source is not None:
            stats = self._lock_source.stats
            data["lock_waits"] = stats["waits"]
            data["lock_timeouts"] = stats["timeouts"]
            data["deadlocks"] = stats["deadlocks"]
        return data

    def metric_samples(self) -> dict[str, float]:
        """Flat ``service_``-prefixed numeric samples for a database
        registry's collector-source interface."""
        samples: dict[str, float] = {}
        for key, value in self.snapshot().items():
            if isinstance(value, bool):
                samples[f"service_{key}"] = 1.0 if value else 0.0
            elif isinstance(value, (int, float)):
                samples[f"service_{key}"] = value
        return samples
