"""Agent-session lifecycle over one shared database.

The paper's BridgeScope design is one toolkit per database user; the
service layer multiplies that out to *many concurrent sessions* over one
shared :class:`~repro.minidb.Database`. A :class:`SessionManager`
authenticates users (a session is only created for a role the database
knows), hands each session its own :class:`~repro.core.server.BridgeScope`
— so per-user privileges and per-session transaction state stay exactly
as in the single-user design — and expires sessions that have been idle
past their TTL.

Creating a SessionManager installs a
:class:`~repro.service.locks.LockManager` on the database (unless one is
already present): from that point on the executor acquires table locks
per statement, which is what makes the shared heaps safe under the
threaded dispatcher. Databases never touched by a SessionManager keep
``lock_manager = None`` and pay zero locking overhead.
"""

from __future__ import annotations

import secrets
import threading
import time
from typing import Any, Callable, Iterator

from ..core.config import BridgeScopeConfig
from ..core.server import BridgeScope
from ..mcp import ToolCall, ToolResult
from ..minidb import Database
from .locks import LockManager


class SessionError(Exception):
    """Unknown, expired, or closed service session."""


class ServiceSession:
    """One authenticated agent session: a token plus its own toolkit."""

    def __init__(
        self,
        token: str,
        user: str,
        bridge: BridgeScope,
        ttl_s: float,
        clock: Callable[[], float],
    ):
        self.token = token
        self.user = user
        self.bridge = bridge
        self.ttl_s = ttl_s
        self._clock = clock
        self.created_at = clock()
        self.last_used = self.created_at
        self.closed = False
        #: tool calls executed through this session (observability)
        self.calls = 0
        #: serializes execution against teardown: a reaper must never roll
        #: back the transaction manager or release locks while a dispatcher
        #: worker is mid-request on this session (the dispatcher's
        #: per-session FIFO means workers themselves never contend here)
        self._exec_mutex = threading.Lock()

    # ------------------------------------------------------------ lifecycle

    @property
    def minidb_session(self) -> Any:
        """The underlying minidb session (also the lock owner)."""
        return self.bridge.binding.session

    def touch(self) -> None:
        self.last_used = self._clock()

    def expired(self, now: float | None = None) -> bool:
        reference = self._clock() if now is None else now
        return (reference - self.last_used) > self.ttl_s

    def close(self, wait: bool = True) -> bool:
        """Roll back any open transaction and release every lock.

        Returns ``True`` once the session is closed. With ``wait=False``
        (the idle reaper), a session currently executing a request is
        left alone and ``False`` is returned — mid-request it is not
        idle, and tearing its transaction manager down from another
        thread would corrupt the undo log and break 2PL.
        """
        acquired = self._exec_mutex.acquire(blocking=wait)
        if not acquired:
            return False
        try:
            if self.closed:
                return True
            self.closed = True
            session = self.minidb_session
            if session.tx.in_transaction:
                session.tx.rollback()
            session.release_locks()
            return True
        finally:
            self._exec_mutex.release()

    # ------------------------------------------------------------ execution

    def call(self, call: ToolCall) -> ToolResult:
        """Execute one tool call through this session's toolkit."""
        with self._exec_mutex:
            if self.closed:
                raise SessionError(f"session {self.token!r} is closed")
            self.touch()
            self.calls += 1
            result = self.bridge.call(call)
        self.touch()  # expiry clock counts from request end, not start
        return result


class SessionManager:
    """Creates, authenticates, and expires sessions over one database."""

    def __init__(
        self,
        db: Database,
        config: BridgeScopeConfig | None = None,
        session_ttl_s: float = 1800.0,
        max_sessions: int = 1024,
        lock_timeout_s: float = 10.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.db = db
        self.config = config
        self.session_ttl_s = session_ttl_s
        self.max_sessions = max_sessions
        self._clock = clock
        self._mutex = threading.Lock()
        self._sessions: dict[str, ServiceSession] = {}  #: guarded by self._mutex
        #: guarded by self._mutex
        self.stats = {"created": 0, "expired": 0, "closed": 0, "rejected": 0}
        if db.lock_manager is None:
            db.lock_manager = LockManager(timeout_s=lock_timeout_s)
        self.lock_manager: LockManager = db.lock_manager

    # ------------------------------------------------------------ lifecycle

    def create_session(
        self,
        user: str,
        config: BridgeScopeConfig | None = None,
        ttl_s: float | None = None,
    ) -> ServiceSession:
        """Authenticate ``user`` and open a session owning its own toolkit.

        Authentication is the database's own role check:
        ``db.connect`` (inside ``BridgeScope.for_minidb_user``) rejects
        unknown users with ``PermissionDenied``. The session token is the
        bearer credential for every subsequent request.
        """
        self.expire_idle()
        with self._mutex:
            if len(self._sessions) >= self.max_sessions:
                self.stats["rejected"] += 1
                raise SessionError(
                    f"session limit reached ({self.max_sessions}); retry later"
                )
        bridge = BridgeScope.for_minidb_user(
            self.db, user, config or self.config
        )
        session = ServiceSession(
            token=secrets.token_hex(16),
            user=user,
            bridge=bridge,
            ttl_s=ttl_s if ttl_s is not None else self.session_ttl_s,
            clock=self._clock,
        )
        with self._mutex:
            # re-check in the same critical section that inserts: N
            # concurrent creates near the limit can all pass the pre-build
            # check above, which exists only to fail fast before the
            # (comparatively expensive) bridge construction
            if len(self._sessions) >= self.max_sessions:
                self.stats["rejected"] += 1
                raise SessionError(
                    f"session limit reached ({self.max_sessions}); retry later"
                )
            self._sessions[session.token] = session
            self.stats["created"] += 1
        return session

    def authenticate(self, token: str) -> ServiceSession:
        """The live session for ``token``; expired sessions are reaped."""
        with self._mutex:
            session = self._sessions.get(token)
        if session is None:
            raise SessionError(f"unknown session token {token!r}")
        if session.expired() and self._reap(session, reason="expired", wait=False):
            raise SessionError(f"session {token!r} expired; create a new one")
        session.touch()
        return session

    def close_session(self, token: str) -> None:
        with self._mutex:
            session = self._sessions.get(token)
        if session is not None:
            self._reap(session, reason="closed", wait=True)

    def expire_idle(self) -> int:
        """Reap every idle-past-TTL session; returns how many died.

        A session that is mid-request is *active*, not idle — it is left
        alone (and touched, so it gets a fresh TTL) rather than having
        its transaction state torn down under a running worker.
        """
        now = self._clock()
        with self._mutex:
            stale = [s for s in self._sessions.values() if s.expired(now)]
        reaped = 0
        for session in stale:
            if self._reap(session, reason="expired", wait=False):
                reaped += 1
        return reaped

    def close(self) -> None:
        """Tear down every session (service shutdown)."""
        with self._mutex:
            sessions = list(self._sessions.values())
        for session in sessions:
            self._reap(session, reason="closed", wait=True)

    def _reap(
        self, session: ServiceSession, reason: str, wait: bool
    ) -> bool:
        if not session.close(wait=wait):
            # executing right now: not idle after all — refresh its TTL
            session.touch()
            return False
        with self._mutex:
            if self._sessions.pop(session.token, None) is None:
                return True  # somebody else reaped it first
            self.stats[reason] += 1
        return True

    # ----------------------------------------------------------- inspection

    def active_count(self) -> int:
        with self._mutex:
            return len(self._sessions)

    def sessions(self) -> Iterator[ServiceSession]:
        with self._mutex:
            return iter(list(self._sessions.values()))
