"""Request scheduling: a threaded worker pool over the session manager.

The :class:`Dispatcher` is the service front door: clients submit
``(session token, ToolCall)`` pairs and receive
:class:`~repro.mcp.ToolResult`\\ s. Scheduling guarantees, in order of
importance:

* **Per-session FIFO.** Requests of one session run in submission order,
  one at a time — a session is a conversation with transaction state, so
  reordering (or overlapping) its statements would be nonsense. Different
  sessions run concurrently up to the worker count.
* **Bounded admission with backpressure.** The queue holds at most
  ``queue_limit`` requests across all sessions. ``submit`` blocks up to
  ``admission_timeout_s`` for space and then raises
  :class:`ServiceOverloaded` — the caller sheds load instead of the
  server accumulating it.
* **Failure containment.** A request that raises (rather than returning
  an error ToolResult, which BridgeScope already does for tool-level
  failures) resolves its future with an error result carrying the
  exception class name; workers never die. Retryable engine errors
  (deadlock victim, lock timeout) are marked ``retryable`` in the result
  metadata so agent clients know to re-issue the transaction.

The scheduling structure is a ready-queue of session tokens: a session is
*ready* when it has pending requests and no worker is executing it.
Workers pull a token, run exactly one request, then requeue the token if
more arrived meanwhile — O(1) per hand-off, no scanning, and fair across
sessions (round-robin through the ready queue).

:class:`SerialDispatcher` is the zero-thread fast path with the same
interface: it executes inline on submit, preserving the seed's
single-threaded semantics exactly (tier-1 behavior, and the baseline the
concurrency benchmark compares against).
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from typing import Any, Callable

from ..mcp import ToolCall, ToolResult
from .metrics import ServiceMetrics
from .sessions import ServiceSession, SessionError, SessionManager

#: executes one request; swap-in point for benchmarks that model
#: downstream latency (the default just runs the session's toolkit)
Handler = Callable[[ServiceSession, ToolCall], ToolResult]


class ServiceOverloaded(Exception):
    """Admission queue full: the service is shedding load (backpressure)."""


class PendingResult:
    """Future for one submitted request."""

    def __init__(self, session_token: str, call: ToolCall):
        self.session_token = session_token
        self.call = call
        self._done = threading.Event()
        self._result: ToolResult | None = None

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> ToolResult:
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"request {self.call.tool!r} not finished within {timeout}s"
            )
        assert self._result is not None
        return self._result

    def _resolve(self, result: ToolResult) -> None:
        self._result = result
        self._done.set()


def _default_handler(session: ServiceSession, call: ToolCall) -> ToolResult:
    return session.call(call)


#: error codes a client should react to by re-issuing the transaction —
#: the engine classes carry ``retryable = True``, but tool servers fold
#: exceptions into ToolResults by class *name*, so the dispatcher maps
#: the names back
_RETRYABLE_CODES = frozenset({"DeadlockError", "LockTimeoutError"})

#: error codes meaning the backing storage went fail-stop: the request
#: failed because the engine refuses writes, i.e. the service is now
#: degraded to read-only (NOT retryable — re-issuing cannot succeed)
_STORAGE_CODES = frozenset({"StorageFailedError"})


def _mark_retryable(result: ToolResult) -> ToolResult:
    if result.is_error and result.error_code in _RETRYABLE_CODES:
        result.metadata["retryable"] = True
    return result


def _error_result(exc: BaseException) -> ToolResult:
    result = ToolResult.error(str(exc), code=type(exc).__name__)
    if getattr(exc, "retryable", False):
        result.metadata["retryable"] = True
    return result


class Dispatcher:
    """Threaded request scheduler with per-session FIFO ordering."""

    def __init__(
        self,
        manager: SessionManager,
        workers: int = 4,
        queue_limit: int = 64,
        admission_timeout_s: float = 5.0,
        handler: Handler | None = None,
        metrics: ServiceMetrics | None = None,
    ):
        if workers < 1:
            raise ValueError("need at least one worker")
        self.manager = manager
        self.queue_limit = queue_limit
        self.admission_timeout_s = admission_timeout_s
        self.handler = handler or _default_handler
        self.metrics = metrics or ServiceMetrics()
        self.metrics.attach_sessions(manager)
        self.metrics.attach_locks(manager.lock_manager)
        self.metrics.attach_engine(manager.db.engine)
        # re-export the service surface through the database's unified
        # registry (idempotent per prefix; last dispatcher wins)
        manager.db.metrics.attach_source("service", self.metrics.metric_samples)

        self._mutex = threading.Lock()
        self._space = threading.Condition(self._mutex)
        #: token -> FIFO of (request, session) not yet executed
        #: guarded by self._mutex
        self._pending: dict[str, deque[tuple[PendingResult, ServiceSession]]] = {}
        #: sessions with pending work and no active worker
        self._ready: "queue.Queue[str | None]" = queue.Queue()
        self._queued = 0  #: guarded by self._mutex
        self._closed = False  #: guarded by self._mutex
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"dispatcher-{n}", daemon=True
            )
            for n in range(workers)
        ]
        for worker in self._workers:
            worker.start()

    # -------------------------------------------------------------- submit

    def submit(self, token: str, call: ToolCall) -> PendingResult:
        """Enqueue one request; returns a future.

        Authenticates the token first (so dead sessions fail fast, not
        from a worker), then waits up to ``admission_timeout_s`` for
        queue space before raising :class:`ServiceOverloaded`.
        """
        if self._closed:  # staticcheck: ignore[guarded-by] — racy fail-fast read; the admission critical section below re-checks under the mutex
            self.metrics.record_rejected()
            raise ServiceOverloaded("dispatcher is shut down")
        session = self.manager.authenticate(token)
        request = PendingResult(token, call)
        deadline = time.monotonic() + self.admission_timeout_s
        with self._space:
            while self._queued >= self.queue_limit:
                if self._closed:
                    self.metrics.record_rejected()
                    raise ServiceOverloaded("dispatcher is shut down")
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self.metrics.record_rejected()
                    raise ServiceOverloaded(
                        f"admission queue full ({self.queue_limit} requests); "
                        "retry with backoff"
                    )
                self._space.wait(remaining)
            # re-check under the mutex: a close() racing with admission
            # must not let a request slip into _pending after the workers
            # exited and leftovers were flushed (its future would hang)
            if self._closed:
                self.metrics.record_rejected()
                raise ServiceOverloaded("dispatcher is shut down")
            self._queued += 1
            bucket = self._pending.get(token)
            if bucket is None:
                # no pending work and no active worker: becomes ready now
                self._pending[token] = deque([(request, session)])
                self._ready.put(token)
            else:
                # worker active or already ready: just extend its FIFO
                bucket.append((request, session))
            self.metrics.record_submitted(self._queued)
        return request

    def call(
        self, token: str, call: ToolCall, timeout: float | None = 60.0
    ) -> ToolResult:
        """Submit and wait: the synchronous client convenience."""
        return self.submit(token, call).result(timeout)

    # -------------------------------------------------------------- workers

    def _worker_loop(self) -> None:
        while True:
            token = self._ready.get()
            if token is None:  # shutdown sentinel
                return
            with self._mutex:
                bucket = self._pending.get(token)
                if not bucket:
                    # session's requests were all flushed (shutdown race)
                    self._pending.pop(token, None)
                    continue
                request, session = bucket.popleft()
            started = time.perf_counter()
            try:
                result = _mark_retryable(self.handler(session, request.call))
            except BaseException as exc:  # staticcheck: ignore[broad-except] — worker must survive anything the handler raises; _error_result folds it into an error ToolResult for the waiting client
                result = _error_result(exc)
            latency = time.perf_counter() - started
            with self._space:
                bucket = self._pending.get(token)
                if bucket:
                    # more requests arrived while we ran: stay scheduled
                    self._ready.put(token)
                else:
                    self._pending.pop(token, None)
                # clamp: a worker outliving close()'s join timeout lands
                # here after the flush already zeroed the counter
                self._queued = max(0, self._queued - 1)
                self._space.notify()
                self.metrics.record_completed(
                    latency,
                    self._queued,
                    is_error=result.is_error,
                    retryable=bool(result.metadata.get("retryable")),
                )
            if result.is_error and result.error_code in _STORAGE_CODES:
                # panic mode observed: the service is degraded read-only
                self.metrics.record_storage_error()
            request._resolve(result)

    # ------------------------------------------------------------ lifecycle

    def close(self, drain: bool = True, timeout_s: float = 30.0) -> None:
        """Stop the workers; with ``drain`` wait for queued work first."""
        with self._space:
            if self._closed:
                return
            if drain:
                deadline = time.monotonic() + timeout_s
                while self._queued > 0 and time.monotonic() < deadline:
                    self._space.wait(0.05)
            # set under the mutex so submit()'s admission critical section
            # observes it, and wake admission-blocked submitters so they
            # fail fast instead of sleeping out their full timeout
            self._closed = True
            self._space.notify_all()
        for _ in self._workers:
            self._ready.put(None)
        for worker in self._workers:
            worker.join(timeout=timeout_s)
        # fail any request that never ran; _closed is set, so no new
        # request can join _pending after this flush
        with self._space:
            leftovers = [
                request
                for bucket in self._pending.values()
                for request, _ in bucket
            ]
            self._pending.clear()
            # the flushed requests will never be worker-completed, so the
            # depth gauge must not report them queued forever
            self._queued = 0
        for request in leftovers:
            request._resolve(
                ToolResult.error("dispatcher shut down", code="ServiceShutdown")
            )

    def queue_depth(self) -> int:
        with self._mutex:
            return self._queued


class SerialDispatcher:
    """Same interface, zero threads: executes inline on submit.

    This is today's behavior (one request at a time, in global submission
    order) packaged behind the dispatcher interface — the tier-1 fast
    path and the serialized baseline for the concurrency benchmark.
    """

    def __init__(
        self,
        manager: SessionManager,
        handler: Handler | None = None,
        metrics: ServiceMetrics | None = None,
        **_ignored: Any,
    ):
        self.manager = manager
        self.handler = handler or _default_handler
        self.metrics = metrics or ServiceMetrics()
        self.metrics.attach_sessions(manager)
        self.metrics.attach_locks(manager.lock_manager)
        self.metrics.attach_engine(manager.db.engine)
        manager.db.metrics.attach_source("service", self.metrics.metric_samples)

    def submit(self, token: str, call: ToolCall) -> PendingResult:
        session = self.manager.authenticate(token)
        request = PendingResult(token, call)
        self.metrics.record_submitted(1)
        started = time.perf_counter()
        try:
            result = _mark_retryable(self.handler(session, call))
        except BaseException as exc:  # staticcheck: ignore[broad-except] — inline execution mirrors the threaded worker's containment: _error_result folds the failure into an error ToolResult
            result = _error_result(exc)
        self.metrics.record_completed(
            time.perf_counter() - started,
            0,
            is_error=result.is_error,
            retryable=bool(result.metadata.get("retryable")),
        )
        if result.is_error and result.error_code in _STORAGE_CODES:
            self.metrics.record_storage_error()
        request._resolve(result)
        return request

    def call(
        self, token: str, call: ToolCall, timeout: float | None = None
    ) -> ToolResult:
        return self.submit(token, call).result(timeout)

    def close(self, **_ignored: Any) -> None:
        return None

    def queue_depth(self) -> int:
        return 0
