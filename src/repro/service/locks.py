"""Table-level shared/exclusive lock manager with deadlock detection.

The :class:`LockManager` is the concurrency-control half of the service
layer: the executor acquires a shared (``S``) lock per table it reads and
an exclusive (``X``) lock per table it mutates, and the session releases
everything at transaction end (strict two-phase locking, so the lock
schedule is serializable at table granularity).

Design points, in the order they matter:

* **Compatibility.** ``S`` is compatible with ``S``; ``X`` is compatible
  with nothing. A holder may *upgrade* ``S`` to ``X``; the upgrade waits
  only for the *other* ``S`` holders and jumps the FIFO queue (queueing an
  upgrade behind a stranger's ``X`` request would deadlock against our own
  ``S`` hold).
* **FIFO fairness.** A request that is compatible with the current
  holders still queues behind earlier waiters (no barging), so a stream
  of readers cannot starve a queued writer.
* **Deadlock detection.** The wait-for graph is derived on demand from
  the live queue/holder state (edges: waiter -> conflicting holders and
  waiter -> conflicting earlier waiters). Every acquire that is about to
  block first searches the graph; each cycle found aborts exactly one
  victim with :class:`~repro.minidb.errors.DeadlockError` (retryable).
  The requester is preferred as victim — it is the cheapest to abort,
  having done no waiting yet — otherwise the cycle's youngest waiter is
  woken and aborted.
* **Timeout.** A bounded wait backstops anything detection cannot see
  (e.g. a lock leaked by a crashed client);
  :class:`~repro.minidb.errors.LockTimeoutError` is also retryable.

Owners are opaque hashable tokens — the service layer passes the minidb
``Session`` object itself. All state is guarded by one mutex; waiting
happens on per-waiter events outside it.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Hashable, Iterable

from ..minidb.errors import DeadlockError, LockTimeoutError

#: lock modes; compatibility is S/S only
SHARED = "S"
EXCLUSIVE = "X"

_ticket = itertools.count(1)


class _Waiter:
    __slots__ = ("owner", "mode", "event", "granted", "victim", "ticket")

    def __init__(self, owner: Hashable, mode: str):
        self.owner = owner
        self.mode = mode
        self.event = threading.Event()
        self.granted = False
        self.victim = False
        #: global arrival order — used to pick the youngest cycle member
        self.ticket = next(_ticket)


class _TableLock:
    __slots__ = ("holders", "queue")

    def __init__(self) -> None:
        #: owner -> mode ("S" or "X"); at most one owner when an X is held
        self.holders: dict[Hashable, str] = {}
        #: FIFO wait queue (upgrades are inserted at the front)
        self.queue: list[_Waiter] = []

    def idle(self) -> bool:
        return not self.holders and not self.queue


def _conflicts(a: str, b: str) -> bool:
    return a == EXCLUSIVE or b == EXCLUSIVE


class LockManager:
    """Table-level S/X locks shared by every session of one database."""

    def __init__(self, timeout_s: float = 10.0):
        self.timeout_s = timeout_s
        self._mutex = threading.Lock()
        self._tables: dict[str, _TableLock] = {}  #: guarded by self._mutex
        #: owner -> set of table keys it holds (for O(1) release_all)
        #: guarded by self._mutex
        self._held: dict[Hashable, set[str]] = {}
        #: observability for ServiceMetrics and tests
        #: guarded by self._mutex
        self.stats = {
            "acquisitions": 0,
            "waits": 0,
            "timeouts": 0,
            "deadlocks": 0,
            "upgrades": 0,
        }

    # ------------------------------------------------------------- acquire

    def acquire(
        self,
        owner: Hashable,
        table: str,
        mode: str,
        timeout_s: float | None = None,
    ) -> None:
        """Take ``mode`` on ``table`` for ``owner``; block until granted.

        Raises :class:`DeadlockError` if waiting would close a cycle this
        owner loses, :class:`LockTimeoutError` on timeout. Re-entrant:
        holding ``X`` satisfies any request, holding ``S`` satisfies
        ``S``; holding ``S`` and requesting ``X`` is an upgrade.
        """
        if mode not in (SHARED, EXCLUSIVE):
            raise ValueError(f"unknown lock mode {mode!r}")
        key = table.lower()
        deadline = timeout_s if timeout_s is not None else self.timeout_s
        with self._mutex:
            lock = self._tables.setdefault(key, _TableLock())
            held = lock.holders.get(owner)
            if held == EXCLUSIVE or held == mode:
                return  # already sufficient
            upgrade = held == SHARED and mode == EXCLUSIVE
            if self._grantable(lock, owner, mode, upgrade):
                self._grant(lock, key, owner, mode)
                if upgrade:
                    self.stats["upgrades"] += 1
                return
            waiter = _Waiter(owner, mode)
            if upgrade:
                # upgrades go first: they can never wait for the queue
                # (the queue is waiting for *their* S hold)
                lock.queue.insert(0, waiter)
                self.stats["upgrades"] += 1
            else:
                lock.queue.append(waiter)
            self.stats["waits"] += 1
            self._abort_deadlock_victims(requester=owner)
            if waiter.victim:
                self._abandon_wait(key, lock, waiter)
                self.stats["deadlocks"] += 1
                raise DeadlockError(
                    f"deadlock detected while waiting for {mode} lock on "
                    f"{table!r}; transaction aborted, retry it"
                )
        # wait outside the mutex
        if not waiter.event.wait(deadline):
            with self._mutex:
                if not waiter.granted:  # lost the race with a late grant
                    self._abandon_wait(key, lock, waiter)
                    self.stats["timeouts"] += 1
                    raise LockTimeoutError(
                        f"timed out after {deadline:.1f}s waiting for {mode} "
                        f"lock on {table!r}"
                    )
        with self._mutex:
            if waiter.victim:
                self._abandon_wait(key, lock, waiter)
                self.stats["deadlocks"] += 1
                raise DeadlockError(
                    f"deadlock detected while waiting for {mode} lock on "
                    f"{table!r}; transaction aborted, retry it"
                )
            assert waiter.granted

    #: requires self._mutex
    @staticmethod
    def _compatible(lock: _TableLock, owner: Hashable, mode: str) -> bool:
        """Whether ``mode`` coexists with every *other* holder of ``lock``."""
        others = [m for o, m in lock.holders.items() if o != owner]
        if mode == EXCLUSIVE:
            return not others
        return EXCLUSIVE not in others

    #: requires self._mutex
    def _grantable(
        self, lock: _TableLock, owner: Hashable, mode: str, upgrade: bool
    ) -> bool:
        if not self._compatible(lock, owner, mode):
            return False
        # FIFO: a fresh request must not barge past earlier waiters;
        # upgrades are exempt (see module docstring)
        return upgrade or not lock.queue

    #: requires self._mutex
    def _grant(
        self, lock: _TableLock, key: str, owner: Hashable, mode: str
    ) -> None:
        lock.holders[owner] = mode
        self._held.setdefault(owner, set()).add(key)
        self.stats["acquisitions"] += 1

    #: requires self._mutex
    def _discard_waiter(self, key: str, lock: _TableLock, waiter: _Waiter) -> None:
        if waiter in lock.queue:
            lock.queue.remove(waiter)
        # identity check: a woken victim may hold a stale _TableLock whose
        # key has since been re-created — popping blindly would orphan the
        # *live* lock's holders and waiters
        if lock.idle() and self._tables.get(key) is lock:
            self._tables.pop(key, None)

    #: requires self._mutex
    def _abandon_wait(self, key: str, lock: _TableLock, waiter: _Waiter) -> None:
        """Remove an aborted waiter *and* re-promote the queue: discarding
        a mid-queue waiter (deadlock victim, timeout) can make a follower
        grantable, and no release would otherwise wake it."""
        self._discard_waiter(key, lock, waiter)
        self._promote(key, lock)

    # ------------------------------------------------------------- release

    def release_all(self, owner: Hashable) -> None:
        """Drop every lock ``owner`` holds and wake newly grantable waiters.

        Called at transaction end (strict 2PL — no early release) and by
        session teardown. Unknown owners are a no-op.
        """
        with self._mutex:
            for key in self._held.pop(owner, set()):
                lock = self._tables.get(key)
                if lock is None:
                    continue
                lock.holders.pop(owner, None)
                self._promote(key, lock)

    #: requires self._mutex
    def _promote(self, key: str, lock: _TableLock) -> None:
        """Grant queued waiters from the front while compatible (FIFO)."""
        while lock.queue:
            waiter = lock.queue[0]
            if waiter.victim:
                # chosen as deadlock victim but not yet unparked: granting
                # would leak a lock its owner is about to abandon
                lock.queue.pop(0)
                continue
            if not self._compatible(lock, waiter.owner, waiter.mode):
                break
            lock.queue.pop(0)
            self._grant(lock, key, waiter.owner, waiter.mode)
            waiter.granted = True
            waiter.event.set()
        # same identity check as _discard_waiter: never pop a live lock
        # that replaced this (possibly stale) object under the same key
        if lock.idle() and self._tables.get(key) is lock:
            self._tables.pop(key, None)

    # ---------------------------------------------------- deadlock detection

    #: requires self._mutex
    def _wait_edges(self) -> dict[Hashable, set[Hashable]]:
        """Wait-for graph derived from the live holder/queue state."""
        edges: dict[Hashable, set[Hashable]] = {}
        for lock in self._tables.values():
            for position, waiter in enumerate(lock.queue):
                blockers: set[Hashable] = set()
                for holder, mode in lock.holders.items():
                    if holder != waiter.owner and _conflicts(waiter.mode, mode):
                        blockers.add(holder)
                for earlier in lock.queue[:position]:
                    if earlier.owner != waiter.owner and _conflicts(
                        waiter.mode, earlier.mode
                    ):
                        blockers.add(earlier.owner)
                if blockers:
                    edges.setdefault(waiter.owner, set()).update(blockers)
        return edges

    #: requires self._mutex
    def _abort_deadlock_victims(self, requester: Hashable) -> None:
        """Find wait-for cycles and mark one victim per cycle.

        The requester (still inside :meth:`acquire`, not yet sleeping) is
        preferred; a sleeping victim is woken with ``victim`` set and
        raises from its own :meth:`acquire` frame.
        """
        edges = self._wait_edges()
        while True:
            cycle = self._find_cycle(edges)
            if cycle is None:
                return
            victim = requester if requester in cycle else self._youngest(cycle)
            if victim == requester:
                self._mark_victim(victim, wake=False)
            else:
                self._mark_victim(victim, wake=True)
            edges.pop(victim, None)
            for blockers in edges.values():
                blockers.discard(victim)

    #: requires self._mutex
    def _mark_victim(self, owner: Hashable, wake: bool) -> None:
        for lock in self._tables.values():
            for waiter in lock.queue:
                if waiter.owner == owner:
                    waiter.victim = True
                    if wake:
                        waiter.event.set()

    #: requires self._mutex
    def _youngest(self, cycle: Iterable[Hashable]) -> Hashable:
        members = set(cycle)
        best: tuple[int, Hashable] | None = None
        for lock in self._tables.values():
            for waiter in lock.queue:
                if waiter.owner in members:
                    if best is None or waiter.ticket > best[0]:
                        best = (waiter.ticket, waiter.owner)
        assert best is not None
        return best[1]

    @staticmethod
    def _find_cycle(
        edges: dict[Hashable, set[Hashable]]
    ) -> list[Hashable] | None:
        """One cycle in ``edges`` as a list of owners, or ``None``."""
        WHITE, GREY, BLACK = 0, 1, 2
        color: dict[Hashable, int] = {}
        stack: list[Hashable] = []

        def visit(node: Hashable) -> list[Hashable] | None:
            color[node] = GREY
            stack.append(node)
            for successor in edges.get(node, ()):
                state = color.get(successor, WHITE)
                if state == GREY:
                    return stack[stack.index(successor):]
                if state == WHITE:
                    found = visit(successor)
                    if found is not None:
                        return found
            stack.pop()
            color[node] = BLACK
            return None

        for node in list(edges):
            if color.get(node, WHITE) == WHITE:
                found = visit(node)
                if found is not None:
                    return found
        return None

    # ---------------------------------------------------------- inspection

    def held_by(self, owner: Hashable) -> dict[str, str]:
        """``table -> mode`` currently held by ``owner`` (snapshot)."""
        with self._mutex:
            return {
                key: self._tables[key].holders[owner]
                for key in self._held.get(owner, set())
                if key in self._tables and owner in self._tables[key].holders
            }

    def waiting_count(self) -> int:
        with self._mutex:
            return sum(len(lock.queue) for lock in self._tables.values())

    def snapshot(self) -> dict[str, Any]:
        """Lock-table snapshot for diagnostics/metrics."""
        with self._mutex:
            return {
                key: {
                    "holders": {repr(o): m for o, m in lock.holders.items()},
                    "queue": [(repr(w.owner), w.mode) for w in lock.queue],
                }
                for key, lock in self._tables.items()
            }
