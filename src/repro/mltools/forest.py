"""Decision-tree and random-forest regressors, from scratch on numpy.

Variance-reduction splitting with quantile-candidate thresholds keeps
training fast enough for the 20,000-row NL2ML benchmark while remaining a
genuine, dependency-free implementation.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np


class _Node:
    __slots__ = ("feature", "threshold", "left", "right", "value")

    def __init__(self, value: float):
        self.feature: int | None = None
        self.threshold: float = 0.0
        self.left: "_Node | None" = None
        self.right: "_Node | None" = None
        self.value = value

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    def to_dict(self) -> dict[str, Any]:
        if self.is_leaf:
            return {"value": self.value}
        return {
            "feature": self.feature,
            "threshold": self.threshold,
            "left": self.left.to_dict(),
            "right": self.right.to_dict(),
            "value": self.value,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "_Node":
        node = cls(payload["value"])
        if "feature" in payload:
            node.feature = payload["feature"]
            node.threshold = payload["threshold"]
            node.left = cls.from_dict(payload["left"])
            node.right = cls.from_dict(payload["right"])
        return node


class DecisionTreeRegressor:
    def __init__(
        self,
        max_depth: int = 6,
        min_samples_split: int = 10,
        n_thresholds: int = 16,
        feature_fraction: float = 1.0,
        seed: int = 0,
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.n_thresholds = n_thresholds
        self.feature_fraction = feature_fraction
        self.rng = np.random.default_rng(seed)
        self.root: _Node | None = None
        self.n_features = 0

    def fit(self, features: np.ndarray, target: np.ndarray) -> "DecisionTreeRegressor":
        features = np.asarray(features, dtype=float)
        target = np.asarray(target, dtype=float)
        self.n_features = features.shape[1]
        self.root = self._grow(features, target, depth=0)
        return self

    def _grow(self, features: np.ndarray, target: np.ndarray, depth: int) -> _Node:
        node = _Node(float(target.mean()))
        if (
            depth >= self.max_depth
            or len(target) < self.min_samples_split
            or np.all(target == target[0])
        ):
            return node
        best = self._best_split(features, target)
        if best is None:
            return node
        feature, threshold, mask = best
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(features[mask], target[mask], depth + 1)
        node.right = self._grow(features[~mask], target[~mask], depth + 1)
        return node

    def _best_split(self, features: np.ndarray, target: np.ndarray):
        n_features = features.shape[1]
        k = max(1, int(round(n_features * self.feature_fraction)))
        candidates = (
            self.rng.choice(n_features, size=k, replace=False)
            if k < n_features
            else np.arange(n_features)
        )
        parent_score = target.var() * len(target)
        best_gain, best = 0.0, None
        for feature in candidates:
            column = features[:, feature]
            quantiles = np.quantile(
                column, np.linspace(0.05, 0.95, self.n_thresholds)
            )
            for threshold in np.unique(quantiles):
                mask = column <= threshold
                n_left = int(mask.sum())
                if n_left == 0 or n_left == len(target):
                    continue
                left, right = target[mask], target[~mask]
                child_score = left.var() * len(left) + right.var() * len(right)
                gain = parent_score - child_score
                if gain > best_gain:
                    best_gain = gain
                    best = (int(feature), float(threshold), mask)
        return best

    def predict(self, features: Sequence[Sequence[float]]) -> list[float]:
        if self.root is None:
            raise ValueError("model is not fitted")
        matrix = np.asarray(features, dtype=float)
        if matrix.ndim == 1:
            matrix = matrix.reshape(1, -1)
        out = []
        for row in matrix:
            node = self.root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out.append(float(node.value))
        return out

    def to_dict(self) -> dict[str, Any]:
        if self.root is None:
            raise ValueError("model is not fitted")
        return {
            "type": "tree",
            "n_features": self.n_features,
            "root": self.root.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "DecisionTreeRegressor":
        model = cls()
        model.n_features = int(payload["n_features"])
        model.root = _Node.from_dict(payload["root"])
        return model


class RandomForestRegressor:
    def __init__(
        self,
        n_trees: int = 10,
        max_depth: int = 6,
        min_samples_split: int = 10,
        max_samples: int = 2_000,
        feature_fraction: float = 0.7,
        seed: int = 0,
    ):
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_samples = max_samples
        self.feature_fraction = feature_fraction
        self.seed = seed
        self.trees: list[DecisionTreeRegressor] = []
        self.n_features = 0

    def fit(self, features: np.ndarray, target: np.ndarray) -> "RandomForestRegressor":
        features = np.asarray(features, dtype=float)
        target = np.asarray(target, dtype=float)
        self.n_features = features.shape[1]
        rng = np.random.default_rng(self.seed)
        n = len(target)
        sample_size = min(n, self.max_samples)
        self.trees = []
        for index in range(self.n_trees):
            rows = rng.choice(n, size=sample_size, replace=True)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                feature_fraction=self.feature_fraction,
                seed=self.seed + index + 1,
            )
            tree.fit(features[rows], target[rows])
            self.trees.append(tree)
        return self

    def predict(self, features: Sequence[Sequence[float]]) -> list[float]:
        if not self.trees:
            raise ValueError("model is not fitted")
        per_tree = np.asarray([tree.predict(features) for tree in self.trees])
        return [float(v) for v in per_tree.mean(axis=0)]

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "forest",
            "n_features": self.n_features,
            "trees": [tree.to_dict() for tree in self.trees],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "RandomForestRegressor":
        model = cls()
        model.n_features = int(payload["n_features"])
        model.trees = [DecisionTreeRegressor.from_dict(t) for t in payload["trees"]]
        return model
