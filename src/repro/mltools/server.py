"""MCP tool server exposing the analytical/ML tools.

These are the "domain-specific MCP servers" of the paper's Section 2.5 —
the proxy routes database query results into them without LLM involvement.
All tool payloads are plain Python lists/dicts so they survive both proxy
routing and (for the baselines) inline LLM routing.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..mcp import ParamSpec, ToolResult, ToolServer, tool
from .forest import DecisionTreeRegressor, RandomForestRegressor
from .linear import LinearRegressionModel
from .metrics import r2_score, rmse
from .preprocessing import minmax_normalize, train_test_split, zscore_normalize
from .trend import trend_analyze


def _split_xy(data: list) -> tuple[np.ndarray, np.ndarray]:
    matrix = np.asarray(data, dtype=float)
    if matrix.ndim != 2 or matrix.shape[1] < 2:
        raise ValueError("data must be rows of [features..., target]")
    return matrix[:, :-1], matrix[:, -1]


def _model_result(payload: dict[str, Any]) -> ToolResult:
    """Summary for the LLM's eyes; full model on the data channel.

    The tree structure / coefficients ride in ``metadata["payload"]`` —
    consumed tool-to-tool (proxy routing, or copied verbatim into the next
    call's arguments in the manual regime) — while the rendered content is
    a compact record with the metrics the LLM actually reasons about.
    """
    summary = {
        key: value
        for key, value in payload.items()
        if key not in ("trees", "root")
    }
    if "trees" in payload:
        summary["n_trees"] = len(payload["trees"])
    return ToolResult(content=summary, metadata={"payload": payload})


def _model_from_dict(payload: dict[str, Any]):
    kind = payload.get("type")
    if kind == "linear":
        return LinearRegressionModel.from_dict(payload)
    if kind == "tree":
        return DecisionTreeRegressor.from_dict(payload)
    if kind == "forest":
        return RandomForestRegressor.from_dict(payload)
    raise ValueError(f"unknown model type {kind!r}")


class MLToolServer(ToolServer):
    name = "mltools"

    @tool(
        description=(
            "Z-score normalize a numeric dataset (rows of numbers). The last "
            "column (target) is left unscaled. Returns the normalized rows."
        ),
        params=[ParamSpec("data", "array", "row-major numeric data")],
    )
    def zscore_normalize(self, data: list) -> ToolResult:
        return ToolResult.ok(zscore_normalize(data))

    @tool(
        description=(
            "Min-max scale a numeric dataset into [0, 1]; the last column "
            "(target) is left unscaled. Returns the scaled rows."
        ),
        params=[ParamSpec("data", "array", "row-major numeric data")],
    )
    def minmax_normalize(self, data: list) -> ToolResult:
        return ToolResult.ok(minmax_normalize(data))

    @tool(
        description=(
            "Train a linear regression on rows of [features..., target]. "
            "Returns the fitted model (dict) with holdout rmse/r2 metrics."
        ),
        params=[
            ParamSpec("data", "array", "row-major numeric training data"),
            ParamSpec("test_fraction", "number", "holdout fraction",
                      required=False, default=0.2),
        ],
    )
    def train_linear(self, data: list, test_fraction: float = 0.2) -> ToolResult:
        train, test = train_test_split(data, test_fraction, seed=0)
        model = LinearRegressionModel().fit(train)
        metrics = model.evaluate(test)
        payload = model.to_dict()
        payload["metrics"] = metrics
        return _model_result(payload)

    @tool(
        description=(
            "Train a random forest regressor on rows of [features..., "
            "target]. Returns the fitted model (dict) with holdout metrics."
        ),
        params=[
            ParamSpec("data", "array", "row-major numeric training data"),
            ParamSpec("n_trees", "integer", "forest size", required=False, default=8),
            ParamSpec("test_fraction", "number", "holdout fraction",
                      required=False, default=0.2),
        ],
    )
    def train_forest(
        self, data: list, n_trees: int = 8, test_fraction: float = 0.2
    ) -> ToolResult:
        train, test = train_test_split(data, test_fraction, seed=0)
        x_train, y_train = _split_xy(train)
        model = RandomForestRegressor(n_trees=n_trees, seed=0).fit(x_train, y_train)
        x_test, y_test = _split_xy(test)
        predictions = model.predict(x_test)
        payload = model.to_dict()
        payload["metrics"] = {
            "rmse": rmse([float(v) for v in y_test], predictions),
            "r2": r2_score([float(v) for v in y_test], predictions),
        }
        return _model_result(payload)

    @tool(
        description=(
            "Predict with a previously trained model. model is the dict "
            "returned by a train_* tool; features is a list of feature rows. "
            "Returns {'predictions': [...], 'model_metrics': ...}."
        ),
        params=[
            ParamSpec("model", "object", "fitted model dict"),
            ParamSpec("features", "array", "feature rows to predict for"),
        ],
    )
    def predict(self, model: dict, features: list) -> ToolResult:
        fitted = _model_from_dict(model)
        predictions = fitted.predict(features)
        return ToolResult.ok(
            {
                "predictions": predictions,
                "model_metrics": model.get("metrics", {}),
            }
        )

    @tool(
        description=(
            "Analyze sales and refund trends. sales and refunds are lists of "
            "daily totals (single-column rows). Returns trend directions, "
            "slopes, and a refund-rate alert."
        ),
        params=[
            ParamSpec("sales", "array", "daily sales series"),
            ParamSpec("refunds", "array", "daily refunds series"),
        ],
    )
    def trend_analyze(self, sales: list, refunds: list) -> ToolResult:
        return ToolResult.ok(trend_analyze(sales, refunds))
