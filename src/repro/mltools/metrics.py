"""Regression metrics used by the NL2ML tools."""

from __future__ import annotations

import math
from typing import Sequence


def rmse(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    """Root mean squared error."""
    if len(y_true) != len(y_pred):
        raise ValueError("rmse: length mismatch")
    if not y_true:
        raise ValueError("rmse: empty input")
    total = 0.0
    for t, p in zip(y_true, y_pred):
        diff = float(t) - float(p)
        total += diff * diff
    return math.sqrt(total / len(y_true))


def mae(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    """Mean absolute error."""
    if len(y_true) != len(y_pred):
        raise ValueError("mae: length mismatch")
    if not y_true:
        raise ValueError("mae: empty input")
    return sum(abs(float(t) - float(p)) for t, p in zip(y_true, y_pred)) / len(y_true)


def r2_score(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    """Coefficient of determination; 0.0 for a constant true vector."""
    if len(y_true) != len(y_pred):
        raise ValueError("r2: length mismatch")
    if not y_true:
        raise ValueError("r2: empty input")
    mean = sum(float(t) for t in y_true) / len(y_true)
    ss_tot = sum((float(t) - mean) ** 2 for t in y_true)
    ss_res = sum((float(t) - float(p)) ** 2 for t, p in zip(y_true, y_pred))
    if ss_tot == 0.0:
        return 0.0
    return 1.0 - ss_res / ss_tot
