"""Analytical/ML tool substrate for data-intensive workflows."""

from .forest import DecisionTreeRegressor, RandomForestRegressor
from .linear import LinearRegressionModel
from .metrics import mae, r2_score, rmse
from .preprocessing import (
    column_stats,
    minmax_normalize,
    train_test_split,
    zscore_normalize,
)
from .server import MLToolServer
from .trend import trend_analyze

__all__ = [
    "DecisionTreeRegressor",
    "LinearRegressionModel",
    "MLToolServer",
    "RandomForestRegressor",
    "column_stats",
    "mae",
    "minmax_normalize",
    "r2_score",
    "rmse",
    "train_test_split",
    "trend_analyze",
    "zscore_normalize",
]
