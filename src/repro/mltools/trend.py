"""Trend analysis tool for the chain-store scenario (paper Figures 1 & 3)."""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np


def _series(values: Sequence[Any]) -> np.ndarray:
    """Flatten a producer payload (rows of 1-tuples or scalars) to floats."""
    flat: list[float] = []
    for value in values:
        if isinstance(value, (list, tuple)):
            if len(value) != 1:
                raise ValueError(
                    "trend series rows must have exactly one column, got "
                    f"{len(value)}"
                )
            flat.append(float(value[0]))
        else:
            flat.append(float(value))
    if not flat:
        raise ValueError("empty trend series")
    return np.asarray(flat)


def trend_analyze(sales: Sequence[Any], refunds: Sequence[Any]) -> dict[str, Any]:
    """Detect recent sales/refund trends via least-squares slopes.

    Returns slope direction, relative change, and a refund-rate alarm —
    the structured summary the LLM reports to the user.
    """
    sales_series = _series(sales)
    refunds_series = _series(refunds)

    def slope(series: np.ndarray) -> float:
        if len(series) < 2:
            return 0.0
        x = np.arange(len(series), dtype=float)
        return float(np.polyfit(x, series, 1)[0])

    sales_slope = slope(sales_series)
    refunds_slope = slope(refunds_series)
    sales_mean = float(sales_series.mean())
    refund_rate = float(refunds_series.sum() / max(sales_series.sum(), 1e-9))

    def direction(value: float, scale: float) -> str:
        if abs(value) < 0.01 * max(abs(scale), 1e-9):
            return "flat"
        return "rising" if value > 0 else "falling"

    return {
        "sales_trend": direction(sales_slope, sales_mean),
        "sales_slope": sales_slope,
        "refunds_trend": direction(refunds_slope, sales_mean),
        "refunds_slope": refunds_slope,
        "refund_rate": refund_rate,
        "alert": refund_rate > 0.2,
        "n_days": int(len(sales_series)),
    }
