"""Data preprocessing tools: normalization and splitting.

All functions operate on row-major numeric data (list of sequences), the
payload format SQL producer tools hand over, and return plain lists so
results remain JSON-able for proxy routing.
"""

from __future__ import annotations

import random
from typing import Any, Sequence

Rows = list[Sequence[Any]]


def _validate(data: Rows) -> list[list[float]]:
    if not data:
        raise ValueError("empty dataset")
    width = len(data[0])
    rows: list[list[float]] = []
    for index, row in enumerate(data):
        if len(row) != width:
            raise ValueError(f"ragged row at index {index}")
        rows.append([float(v) for v in row])
    return rows


def column_stats(data: Rows) -> list[dict[str, float]]:
    """Per-column mean/std/min/max (population std)."""
    rows = _validate(data)
    n, width = len(rows), len(rows[0])
    stats = []
    for col in range(width):
        values = [row[col] for row in rows]
        mean = sum(values) / n
        variance = sum((v - mean) ** 2 for v in values) / n
        stats.append(
            {
                "mean": mean,
                "std": variance ** 0.5,
                "min": min(values),
                "max": max(values),
            }
        )
    return stats


def zscore_normalize(data: Rows, skip_last: bool = True) -> list[list[float]]:
    """Z-score standardize columns (optionally leaving the target column).

    Zero-variance columns pass through unchanged (centered at 0).
    """
    rows = _validate(data)
    stats = column_stats(rows)
    width = len(rows[0])
    stop = width - 1 if skip_last and width > 1 else width
    result = []
    for row in rows:
        out = list(row)
        for col in range(stop):
            std = stats[col]["std"]
            mean = stats[col]["mean"]
            out[col] = (row[col] - mean) / std if std > 0 else 0.0
        result.append(out)
    return result


def minmax_normalize(data: Rows, skip_last: bool = True) -> list[list[float]]:
    """Scale columns into [0, 1]; constant columns map to 0."""
    rows = _validate(data)
    stats = column_stats(rows)
    width = len(rows[0])
    stop = width - 1 if skip_last and width > 1 else width
    result = []
    for row in rows:
        out = list(row)
        for col in range(stop):
            low, high = stats[col]["min"], stats[col]["max"]
            span = high - low
            out[col] = (row[col] - low) / span if span > 0 else 0.0
        result.append(out)
    return result


def train_test_split(
    data: Rows, test_fraction: float = 0.2, seed: int = 0
) -> tuple[list, list]:
    """Deterministic shuffled split into (train, test)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rows = list(data)
    random.Random(seed).shuffle(rows)
    cut = max(1, int(len(rows) * test_fraction))
    return rows[cut:], rows[:cut]
