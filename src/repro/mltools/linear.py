"""Linear regression (ordinary least squares via numpy lstsq)."""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from .metrics import r2_score, rmse


class LinearRegressionModel:
    """OLS with intercept. Fit on row-major data, last column = target."""

    def __init__(self):
        self.coefficients: list[float] = []
        self.intercept: float = 0.0
        self.n_features = 0

    def fit(self, data: Sequence[Sequence[float]]) -> "LinearRegressionModel":
        matrix = np.asarray(data, dtype=float)
        if matrix.ndim != 2 or matrix.shape[1] < 2:
            raise ValueError("training data needs >= 2 columns (features + target)")
        features = matrix[:, :-1]
        target = matrix[:, -1]
        design = np.hstack([features, np.ones((features.shape[0], 1))])
        solution, *_ = np.linalg.lstsq(design, target, rcond=None)
        self.coefficients = [float(c) for c in solution[:-1]]
        self.intercept = float(solution[-1])
        self.n_features = features.shape[1]
        return self

    def predict(self, features: Sequence[Sequence[float]]) -> list[float]:
        matrix = np.asarray(features, dtype=float)
        if matrix.ndim == 1:
            matrix = matrix.reshape(1, -1)
        if matrix.shape[1] != self.n_features:
            raise ValueError(
                f"expected {self.n_features} features, got {matrix.shape[1]}"
            )
        values = matrix @ np.asarray(self.coefficients) + self.intercept
        return [float(v) for v in values]

    def evaluate(self, data: Sequence[Sequence[float]]) -> dict[str, float]:
        matrix = np.asarray(data, dtype=float)
        predictions = self.predict(matrix[:, :-1])
        truth = [float(v) for v in matrix[:, -1]]
        return {"rmse": rmse(truth, predictions), "r2": r2_score(truth, predictions)}

    # ---- JSON-able serialization for proxy routing -----------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "linear",
            "coefficients": self.coefficients,
            "intercept": self.intercept,
            "n_features": self.n_features,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "LinearRegressionModel":
        model = cls()
        model.coefficients = [float(c) for c in payload["coefficients"]]
        model.intercept = float(payload["intercept"])
        model.n_features = int(payload["n_features"])
        return model
