"""F2 — Action-level modularized SQL execution tools (paper Section 2.3).

For each database action *a* (SELECT, INSERT, UPDATE, DELETE, CREATE, DROP,
ALTER) BridgeScope instantiates a dedicated tool ``T_a`` that exclusively
executes statements performing *a*. A tool is exposed to the agent only if

* the user holds the *a* privilege on at least one object (database-side), and
* *a* passes the user's security policy (user-side white/black-lists).

Every call is additionally verified object-by-object by the
:class:`~repro.core.verification.SqlVerifier` before touching the engine.
"""

from __future__ import annotations

from ..mcp import ParamSpec, ToolResult, ToolServer, ToolSpec
from .config import BridgeScopeConfig
from .interfaces import DatabaseBinding
from .verification import SqlVerifier

_TOOL_DESCRIPTIONS = {
    "SELECT": "Execute a single SELECT statement and return the result rows.",
    "INSERT": "Execute a single INSERT statement. Returns the inserted row count.",
    "UPDATE": "Execute a single UPDATE statement. Returns the updated row count.",
    "DELETE": "Execute a single DELETE statement. Returns the deleted row count.",
    "CREATE": "Execute a single CREATE TABLE/INDEX/VIEW statement.",
    "DROP": "Execute a single DROP TABLE/INDEX/VIEW statement.",
    "ALTER": "Execute a single ALTER TABLE statement.",
}


class ExecutionTools(ToolServer):
    """Tool server holding one tool per permitted SQL action."""

    name = "bridgescope.execution"

    def __init__(
        self,
        binding: DatabaseBinding,
        config: BridgeScopeConfig,
        verifier: SqlVerifier | None = None,
    ):
        super().__init__()
        self.binding = binding
        self.config = config
        self.verifier = verifier or SqlVerifier(binding, config.policy)
        for action in self._exposed_actions():
            self._register_action_tool(action)

    # ------------------------------------------------------------ exposure

    def _exposed_actions(self) -> list[str]:
        """Actions for which a tool is exposed (privileges ∩ policy)."""
        held: set[str] = set()
        objects = self.binding.list_objects()
        for obj in objects:
            if not self.config.policy.permits_object(obj):
                continue
            held |= self.binding.user_actions_on(obj)
        # CREATE may be held database-wide without any object grant
        held |= self.binding.user_actions_on("*") & {"CREATE"}
        return [
            action
            for action in self.binding.all_actions()
            if action in held and self.config.policy.permits_action(action)
        ]

    def exposed_action_names(self) -> list[str]:
        return [spec.annotations["action"] for spec in self.visible_tools()]

    def _register_action_tool(self, action: str) -> None:
        tool_name = action.lower()
        spec = ToolSpec(
            name=tool_name,
            description=_TOOL_DESCRIPTIONS.get(
                action, f"Execute a single {action} statement."
            ),
            params=[ParamSpec("sql", "string", f"the {action} SQL statement")],
            annotations={"action": action},
        )
        self.register(spec, self._make_runner(action))

    def _make_runner(self, action: str):
        def run(sql: str) -> ToolResult:
            self.verifier.verify(sql, expected_action=action)
            outcome = self.binding.run_sql(sql)
            if outcome.columns:
                text = _render_rows(
                    outcome.columns, outcome.rows, self.config.max_result_rows
                )
                return ToolResult.ok(
                    text,
                    rowcount=len(outcome.rows),
                    rows=outcome.rows,
                    columns=outcome.columns,
                )
            return ToolResult.ok(outcome.status, rowcount=outcome.rowcount)

        run.__name__ = action.lower()
        return run


def _render_rows(columns: list[str], rows: list[tuple], max_rows: int) -> str:
    shown = rows[:max_rows]
    lines = [" | ".join(columns)]
    for row in shown:
        lines.append(" | ".join("NULL" if v is None else str(v) for v in row))
    if len(rows) > max_rows:
        lines.append(f"... ({len(rows) - max_rows} more rows truncated)")
    lines.append(f"({len(rows)} rows)")
    return "\n".join(lines)
