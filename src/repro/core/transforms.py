"""Safe evaluation of proxy adaptation functions.

The paper's proxy units carry a transform *f* written as a Python lambda
string (e.g. ``"lambda x: x"`` in Figure 3). Executing arbitrary strings
from an LLM with ``eval`` would be an injection hole, so this module
implements a restricted AST interpreter:

* only lambda expressions (or bare expressions over a single ``x``);
* arithmetic/boolean/comparison operators, conditional expressions,
  comprehensions, subscripts, slices, f-string-free literals;
* a whitelist of builtins (len/min/max/sum/abs/round/sorted/zip/map/...),
  plus whitelisted *methods* on str/list/dict values;
* no attribute starting with ``_``, no imports, no calls to anything else.
"""

from __future__ import annotations

import ast as pyast
from typing import Any, Callable

_ALLOWED_BUILTINS: dict[str, Callable] = {
    "len": len,
    "min": min,
    "max": max,
    "sum": sum,
    "abs": abs,
    "round": round,
    "sorted": sorted,
    "reversed": lambda x: list(reversed(x)),
    "zip": lambda *xs: list(zip(*xs)),
    "map": lambda f, x: [f(v) for v in x],
    "filter": lambda f, x: [v for v in x if f(v)],
    "list": list,
    "tuple": tuple,
    "dict": dict,
    "set": set,
    "str": str,
    "int": int,
    "float": float,
    "bool": bool,
    "range": range,
    "enumerate": lambda x: list(enumerate(x)),
    "any": any,
    "all": all,
}

_ALLOWED_METHODS = {
    "upper", "lower", "strip", "split", "join", "replace", "startswith",
    "endswith", "format", "title", "get", "keys", "values", "items",
    "index", "count", "append", "extend",
}


class TransformError(ValueError):
    """Raised when a transform string is rejected or fails at runtime."""


def compile_transform(source: str) -> Callable[..., Any]:
    """Compile a transform string into a safe callable.

    Accepts ``"lambda a, b: ..."`` or a bare expression over ``x``.
    """
    source = (source or "").strip()
    if not source:
        return lambda x: x
    try:
        tree = pyast.parse(source, mode="eval")
    except SyntaxError as exc:
        raise TransformError(f"transform is not a valid expression: {exc}") from None
    body = tree.body
    if isinstance(body, pyast.Lambda):
        param_names = [a.arg for a in body.args.args]
        if body.args.vararg or body.args.kwarg or body.args.kwonlyargs:
            raise TransformError("transform lambdas take plain positional args only")
        expr = body.body
    else:
        param_names = ["x"]
        expr = body
    _validate(expr)

    def transform(*args: Any) -> Any:
        if len(args) != len(param_names):
            raise TransformError(
                f"transform expects {len(param_names)} argument(s), got {len(args)}"
            )
        env = dict(zip(param_names, args))
        try:
            return _Interpreter(env).eval(expr)
        except TransformError:
            raise
        except Exception as exc:
            raise TransformError(f"transform failed: {exc}") from exc

    transform.__transform_source__ = source
    transform.__transform_params__ = tuple(param_names)
    return transform


def identity(x: Any) -> Any:
    """The default adaptation function."""
    return x


# --------------------------------------------------------------------------
# validation
# --------------------------------------------------------------------------

_ALLOWED_NODES = (
    pyast.Expression, pyast.BinOp, pyast.UnaryOp, pyast.BoolOp, pyast.Compare,
    pyast.IfExp, pyast.Call, pyast.Name, pyast.Load, pyast.Constant,
    pyast.List, pyast.Tuple, pyast.Dict, pyast.Set, pyast.Subscript,
    pyast.Slice, pyast.ListComp, pyast.SetComp, pyast.DictComp,
    pyast.GeneratorExp, pyast.comprehension, pyast.Store, pyast.Attribute,
    pyast.Lambda, pyast.arguments, pyast.arg, pyast.keyword, pyast.Starred,
    pyast.Add, pyast.Sub, pyast.Mult, pyast.Div, pyast.FloorDiv, pyast.Mod,
    pyast.Pow, pyast.USub, pyast.UAdd, pyast.Not, pyast.And, pyast.Or,
    pyast.Eq, pyast.NotEq, pyast.Lt, pyast.LtE, pyast.Gt, pyast.GtE,
    pyast.In, pyast.NotIn, pyast.Is, pyast.IsNot,
)


def _validate(node: pyast.AST) -> None:
    for child in pyast.walk(node):
        if not isinstance(child, _ALLOWED_NODES):
            raise TransformError(
                f"transform uses a forbidden construct: {type(child).__name__}"
            )
        if isinstance(child, pyast.Attribute):
            if child.attr.startswith("_"):
                raise TransformError("underscore attributes are forbidden")
            if child.attr not in _ALLOWED_METHODS:
                raise TransformError(f"method {child.attr!r} is not whitelisted")


# --------------------------------------------------------------------------
# interpretation
# --------------------------------------------------------------------------


class _Interpreter:
    def __init__(self, env: dict[str, Any]):
        self.env = env

    def eval(self, node: pyast.AST) -> Any:
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        if method is None:
            raise TransformError(f"cannot evaluate {type(node).__name__}")
        return method(node)

    def _eval_Constant(self, node):
        return node.value

    def _eval_Name(self, node):
        if node.id in self.env:
            return self.env[node.id]
        if node.id in _ALLOWED_BUILTINS:
            return _ALLOWED_BUILTINS[node.id]
        raise TransformError(f"unknown name {node.id!r}")

    def _eval_BinOp(self, node):
        left, right = self.eval(node.left), self.eval(node.right)
        ops = {
            pyast.Add: lambda a, b: a + b,
            pyast.Sub: lambda a, b: a - b,
            pyast.Mult: lambda a, b: a * b,
            pyast.Div: lambda a, b: a / b,
            pyast.FloorDiv: lambda a, b: a // b,
            pyast.Mod: lambda a, b: a % b,
            pyast.Pow: lambda a, b: a ** b,
        }
        return ops[type(node.op)](left, right)

    def _eval_UnaryOp(self, node):
        value = self.eval(node.operand)
        if isinstance(node.op, pyast.USub):
            return -value
        if isinstance(node.op, pyast.UAdd):
            return +value
        if isinstance(node.op, pyast.Not):
            return not value
        raise TransformError("unsupported unary operator")

    def _eval_BoolOp(self, node):
        if isinstance(node.op, pyast.And):
            result = True
            for value_node in node.values:
                result = self.eval(value_node)
                if not result:
                    return result
            return result
        result = False
        for value_node in node.values:
            result = self.eval(value_node)
            if result:
                return result
        return result

    def _eval_Compare(self, node):
        left = self.eval(node.left)
        ops = {
            pyast.Eq: lambda a, b: a == b,
            pyast.NotEq: lambda a, b: a != b,
            pyast.Lt: lambda a, b: a < b,
            pyast.LtE: lambda a, b: a <= b,
            pyast.Gt: lambda a, b: a > b,
            pyast.GtE: lambda a, b: a >= b,
            pyast.In: lambda a, b: a in b,
            pyast.NotIn: lambda a, b: a not in b,
            pyast.Is: lambda a, b: a is b,
            pyast.IsNot: lambda a, b: a is not b,
        }
        for op, comparator in zip(node.ops, node.comparators):
            right = self.eval(comparator)
            if not ops[type(op)](left, right):
                return False
            left = right
        return True

    def _eval_IfExp(self, node):
        return self.eval(node.body) if self.eval(node.test) else self.eval(node.orelse)

    def _eval_List(self, node):
        return [self.eval(e) for e in node.elts]

    def _eval_Tuple(self, node):
        return tuple(self.eval(e) for e in node.elts)

    def _eval_Set(self, node):
        return {self.eval(e) for e in node.elts}

    def _eval_Dict(self, node):
        return {
            self.eval(k): self.eval(v) for k, v in zip(node.keys, node.values)
        }

    def _eval_Subscript(self, node):
        container = self.eval(node.value)
        index = self.eval(node.slice)
        return container[index]

    def _eval_Slice(self, node):
        return slice(
            self.eval(node.lower) if node.lower else None,
            self.eval(node.upper) if node.upper else None,
            self.eval(node.step) if node.step else None,
        )

    def _eval_Attribute(self, node):
        value = self.eval(node.value)
        return getattr(value, node.attr)

    def _eval_Call(self, node):
        fn = self.eval(node.func)
        args = []
        for arg in node.args:
            if isinstance(arg, pyast.Starred):
                args.extend(self.eval(arg.value))
            else:
                args.append(self.eval(arg))
        kwargs = {kw.arg: self.eval(kw.value) for kw in node.keywords}
        return fn(*args, **kwargs)

    def _eval_Lambda(self, node):
        params = [a.arg for a in node.args.args]
        outer = dict(self.env)

        def closure(*args):
            env = dict(outer)
            env.update(zip(params, args))
            return _Interpreter(env).eval(node.body)

        return closure

    def _eval_ListComp(self, node):
        return list(self._comprehension(node.generators, lambda: self.eval(node.elt)))

    def _eval_SetComp(self, node):
        return set(self._comprehension(node.generators, lambda: self.eval(node.elt)))

    def _eval_GeneratorExp(self, node):
        return list(self._comprehension(node.generators, lambda: self.eval(node.elt)))

    def _eval_DictComp(self, node):
        return dict(
            self._comprehension(
                node.generators,
                lambda: (self.eval(node.key), self.eval(node.value)),
            )
        )

    def _comprehension(self, generators, produce):
        results: list[Any] = []

        def rec(level: int) -> None:
            if level == len(generators):
                results.append(produce())
                return
            gen = generators[level]
            iterable = self.eval(gen.iter)
            for item in iterable:
                self._bind_target(gen.target, item)
                if all(self.eval(cond) for cond in gen.ifs):
                    rec(level + 1)

        rec(0)
        return results

    def _bind_target(self, target: pyast.AST, value: Any) -> None:
        if isinstance(target, pyast.Name):
            self.env[target.id] = value
        elif isinstance(target, pyast.Tuple):
            values = list(value)
            if len(values) != len(target.elts):
                raise TransformError("cannot unpack comprehension target")
            for sub, v in zip(target.elts, values):
                self._bind_target(sub, v)
        else:
            raise TransformError("unsupported comprehension target")
