"""Lightweight semantic similarity for column-exemplar retrieval.

``get_value(col, key, k)`` must rank the values of a column by relevance
to a task key like ``"women"`` so the LLM discovers the stored surface form
(``"women's wear"``). Without network access to an embedding model we use a
blend of lexical signals that behaves well on the synonym/misspelling/
substring cases the paper motivates:

* character n-gram (trigram) Jaccard similarity — robust to misspellings;
* token overlap with a small built-in synonym table — catches paraphrases;
* substring containment bonus — catches ``"women" ⊂ "women's wear"``.

The scoring is pure and deterministic. Two call shapes exist:

* :func:`similarity` / :func:`top_k` — score raw strings (brute force);
* :func:`features` + :func:`score_features` — score precomputed
  :class:`TextFeatures`, the building block of the indexed retrieval path
  in :mod:`repro.retrieval`. Both shapes run the *same* arithmetic, so an
  indexed ranking is bit-identical to the brute-force one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

#: tiny domain-general synonym clusters; extendable by callers
DEFAULT_SYNONYMS: dict[str, frozenset[str]] = {
    "women": frozenset({"female", "woman", "ladies", "womens"}),
    "men": frozenset({"male", "man", "mens", "gentlemen"}),
    "kids": frozenset({"children", "child", "kid", "youth", "juniors"}),
    "refund": frozenset({"return", "reimbursement", "chargeback"}),
    "sales": frozenset({"revenue", "orders", "transactions"}),
    "california": frozenset({"ca", "calif"}),
    "inland": frozenset({"interior"}),
    "ocean": frozenset({"sea", "coastal", "bay"}),
}

_EMPTY: frozenset[str] = frozenset()


class SynonymTable:
    """Synonym clusters with a precomputed reverse map.

    ``clusters`` maps a head token to its cluster members. The reverse map
    answers "which heads contain this member?" in O(1), replacing the old
    O(value_tokens × synonyms) per-call reverse scan in the overlap scorer.
    Build one once and reuse it for every query against the same clusters.
    """

    __slots__ = ("clusters", "reverse")

    def __init__(self, clusters: Mapping[str, Iterable[str]]):
        self.clusters: dict[str, frozenset[str]] = {
            head: frozenset(members) for head, members in clusters.items()
        }
        reverse: dict[str, set[str]] = {}
        for head, members in self.clusters.items():
            for member in members:
                reverse.setdefault(member, set()).add(head)
        self.reverse: dict[str, frozenset[str]] = {
            member: frozenset(heads) for member, heads in reverse.items()
        }

    def related(self, token: str) -> frozenset[str]:
        """All tokens a match on which satisfies ``token`` (either way)."""
        cluster = self.clusters.get(token, _EMPTY)
        heads = self.reverse.get(token, _EMPTY)
        if not cluster and not heads:
            return _EMPTY
        return cluster | heads


#: reverse map of :data:`DEFAULT_SYNONYMS`, built once at import
DEFAULT_TABLE = SynonymTable(DEFAULT_SYNONYMS)

def resolve_synonyms(synonyms: Any = None) -> SynonymTable:
    """Coerce a ``synonyms`` argument to a :class:`SynonymTable`."""
    if synonyms is None:
        return DEFAULT_TABLE
    if isinstance(synonyms, SynonymTable):
        return synonyms
    return SynonymTable(synonyms)


def _normalize(text: str) -> str:
    return "".join(ch.lower() if ch.isalnum() else " " for ch in text).strip()


def _trigrams_of_norm(norm: str) -> frozenset[str]:
    # symmetric two-space padding: an n-character prefix match and an
    # n-character suffix match contribute the same number of shared
    # trigrams, so scores don't skew toward prefix matches
    padded = f"  {norm}  "
    return frozenset(padded[i : i + 3] for i in range(len(padded) - 2))


def _trigrams(text: str) -> frozenset[str]:
    return _trigrams_of_norm(_normalize(text))


def _jaccard(a: set, b: set) -> float:
    if not a or not b:
        return 0.0
    intersection = len(a & b)
    if intersection == 0:
        return 0.0
    return intersection / len(a | b)


def _synonym_overlap(
    key_tokens: set[str], value_tokens: set[str], table: SynonymTable
) -> float:
    """Fraction of key tokens with a direct or synonym match in the value."""
    if not key_tokens:
        return 0.0
    hits = 0
    for token in key_tokens:
        if token in value_tokens:
            hits += 1
            continue
        if table.clusters.get(token, _EMPTY) & value_tokens:
            hits += 1
            continue
        # reverse direction: a value token's cluster contains the key token
        if table.reverse.get(token, _EMPTY) & value_tokens:
            hits += 1
    return hits / len(key_tokens)


@dataclass(frozen=True)
class TextFeatures:
    """Cached lexical features of one string (key or column value)."""

    text: str
    norm: str
    tokens: frozenset[str]
    trigrams: frozenset[str]


def features(text: str) -> TextFeatures:
    """Compute the features :func:`score_features` consumes, once."""
    norm = _normalize(text)
    return TextFeatures(
        text=text,
        norm=norm,
        tokens=frozenset(norm.split()),
        trigrams=_trigrams_of_norm(norm),
    )


def score_features(
    key: TextFeatures, value: TextFeatures, table: SynonymTable
) -> float:
    """Relevance of ``value`` w.r.t. ``key`` over precomputed features.

    This is the single scoring kernel: :func:`similarity` and the indexed
    path in :mod:`repro.retrieval` both call it, keeping their rankings
    identical down to the float.
    """
    if not key.text or not value.text:
        return 0.0
    if not key.norm or not value.norm:
        return 0.0
    if key.norm == value.norm:
        return 1.0
    trigram_score = _jaccard(key.trigrams, value.trigrams)
    token_score = _synonym_overlap(key.tokens, value.tokens, table)
    containment = 0.0
    if key.norm in value.norm or value.norm in key.norm:
        shorter = min(len(key.norm), len(value.norm))
        longer = max(len(key.norm), len(value.norm))
        containment = 0.5 + 0.5 * (shorter / longer)
    score = max(
        0.55 * trigram_score + 0.45 * token_score,
        0.9 * containment,
    )
    return min(score, 0.999)  # only exact normalization match scores 1.0


def similarity(key: str, value: Any, synonyms: Any = None) -> float:
    """Relevance score of ``value`` w.r.t. the task ``key``, in [0, 1]."""
    return score_features(
        features(key), features(str(value)), resolve_synonyms(synonyms)
    )


def top_k(
    key: str,
    values: Iterable[Any],
    k: int,
    synonyms: Any = None,
) -> list[tuple[Any, float]]:
    """The ``k`` most relevant values, scored, best first, ties by text.

    Brute force: scores every value, then sorts. The indexed equivalent is
    :meth:`repro.retrieval.ValueCatalog.top_k`; this path stays as the
    reference baseline and the fallback for unindexed bindings.
    """
    table = resolve_synonyms(synonyms)
    key_features = features(key)
    scored = [
        (value, score_features(key_features, features(str(value)), table))
        for value in values
    ]
    scored.sort(key=lambda pair: (-pair[1], str(pair[0])))
    return scored[: max(k, 0)]
