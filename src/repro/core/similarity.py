"""Lightweight semantic similarity for column-exemplar retrieval.

``get_value(col, key, k)`` must rank the values of a column by relevance
to a task key like ``"women"`` so the LLM discovers the stored surface form
(``"women's wear"``). Without network access to an embedding model we use a
blend of lexical signals that behaves well on the synonym/misspelling/
substring cases the paper motivates:

* character n-gram (trigram) Jaccard similarity — robust to misspellings;
* token overlap with a small built-in synonym table — catches paraphrases;
* substring containment bonus — catches ``"women" ⊂ "women's wear"``.

The function is pure and deterministic.
"""

from __future__ import annotations

from typing import Any, Iterable

#: tiny domain-general synonym clusters; extendable by callers
DEFAULT_SYNONYMS: dict[str, frozenset[str]] = {
    "women": frozenset({"female", "woman", "ladies", "womens"}),
    "men": frozenset({"male", "man", "mens", "gentlemen"}),
    "kids": frozenset({"children", "child", "kid", "youth", "juniors"}),
    "refund": frozenset({"return", "reimbursement", "chargeback"}),
    "sales": frozenset({"revenue", "orders", "transactions"}),
    "california": frozenset({"ca", "calif"}),
    "inland": frozenset({"interior"}),
    "ocean": frozenset({"sea", "coastal", "bay"}),
}


def _normalize(text: str) -> str:
    return "".join(ch.lower() if ch.isalnum() else " " for ch in text).strip()


def _tokens(text: str) -> set[str]:
    return set(_normalize(text).split())


def _trigrams(text: str) -> set[str]:
    # symmetric two-space padding: an n-character prefix match and an
    # n-character suffix match contribute the same number of shared
    # trigrams, so scores don't skew toward prefix matches
    padded = f"  {_normalize(text)}  "
    return {padded[i : i + 3] for i in range(len(padded) - 2)}


def _jaccard(a: set, b: set) -> float:
    if not a or not b:
        return 0.0
    intersection = len(a & b)
    if intersection == 0:
        return 0.0
    return intersection / len(a | b)


def _synonym_overlap(
    key_tokens: set[str], value_tokens: set[str], synonyms: dict[str, frozenset[str]]
) -> float:
    """Fraction of key tokens with a direct or synonym match in the value."""
    if not key_tokens:
        return 0.0
    hits = 0
    for token in key_tokens:
        if token in value_tokens:
            hits += 1
            continue
        cluster = synonyms.get(token, frozenset())
        if cluster & value_tokens:
            hits += 1
            continue
        # reverse direction: value token's cluster contains the key token
        if any(
            token in synonyms.get(vt, frozenset()) for vt in value_tokens
        ):
            hits += 1
    return hits / len(key_tokens)


def similarity(
    key: str,
    value: Any,
    synonyms: dict[str, frozenset[str]] | None = None,
) -> float:
    """Relevance score of ``value`` w.r.t. the task ``key``, in [0, 1]."""
    text = str(value)
    if not text or not key:
        return 0.0
    table = DEFAULT_SYNONYMS if synonyms is None else synonyms
    key_norm, value_norm = _normalize(key), _normalize(text)
    if not key_norm or not value_norm:
        return 0.0
    if key_norm == value_norm:
        return 1.0
    trigram_score = _jaccard(_trigrams(key), _trigrams(text))
    token_score = _synonym_overlap(_tokens(key), _tokens(text), table)
    containment = 0.0
    if key_norm in value_norm or value_norm in key_norm:
        shorter = min(len(key_norm), len(value_norm))
        longer = max(len(key_norm), len(value_norm))
        containment = 0.5 + 0.5 * (shorter / longer)
    score = max(
        0.55 * trigram_score + 0.45 * token_score,
        0.9 * containment,
    )
    return min(score, 0.999)  # only exact normalization match scores 1.0


def top_k(
    key: str,
    values: Iterable[Any],
    k: int,
    synonyms: dict[str, frozenset[str]] | None = None,
) -> list[tuple[Any, float]]:
    """The ``k`` most relevant values, scored, best first, ties by text."""
    scored = [(value, similarity(key, value, synonyms)) for value in values]
    scored.sort(key=lambda pair: (-pair[1], str(pair[0])))
    return scored[: max(k, 0)]
