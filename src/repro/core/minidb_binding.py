"""Reference :class:`DatabaseBinding` implementation over minidb."""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from ..minidb import Database, Session, analyze, parse
from ..minidb.errors import DeadlockError, LockTimeoutError
from .interfaces import AccessFootprint, DatabaseBinding, ObjectInfo, SqlOutcome


class MinidbBinding(DatabaseBinding):
    """Binds one minidb session (one user) to the BridgeScope interface."""

    def __init__(self, session: Session):
        self.session = session

    @classmethod
    def for_user(cls, db: Database, user: str) -> "MinidbBinding":
        return cls(db.connect(user))

    @classmethod
    def open(cls, path: str, user: str = "admin", **open_kwargs: Any) -> "MinidbBinding":
        """Bind to a durable database directory (create or recover).

        The database is opened through :meth:`repro.minidb.Database.open`,
        so an agent session bound this way survives restarts: heaps,
        indexes, privileges, and persisted retrieval catalogs all come
        back from disk.
        """
        return cls.for_user(Database.open(path, **open_kwargs), user)

    # ----------------------------------------------------------- execution

    def run_sql(self, sql: str) -> SqlOutcome:
        result = self.session.execute(sql)
        return SqlOutcome(
            columns=result.columns,
            rows=result.rows,
            rowcount=result.rowcount,
            status=result.status,
        )

    def analyze_sql(self, sql: str) -> AccessFootprint:
        stmt = parse(sql)
        analysis = analyze(stmt, self.session.db.catalog)
        return AccessFootprint(
            action=analysis.action,
            accesses=[
                (a.action, a.obj, a.column_set()) for a in analysis.accesses
            ],
            is_transaction_control=analysis.is_transaction_control,
            is_ddl=analysis.is_ddl,
        )

    # ------------------------------------------------------------- catalog

    def list_objects(self) -> list[str]:
        return self.session.db.catalog.object_names()

    def object_info(self, name: str) -> ObjectInfo:
        catalog = self.session.db.catalog
        if catalog.has_view(name):
            view = catalog.view(name)
            return ObjectInfo(
                name=view.name,
                kind="view",
                ddl=view.describe(),
            )
        schema = catalog.table(name)
        return ObjectInfo(
            name=schema.name,
            kind="table",
            columns=[
                {
                    "name": col.name,
                    "type": str(col.ctype),
                    "not_null": col.not_null,
                    "default": col.default if col.has_default else None,
                }
                for col in schema.columns
            ],
            primary_key=list(schema.primary_key),
            foreign_keys=[fk.describe() for fk in schema.foreign_keys],
            indexes=[ix.describe() for ix in catalog.indexes_on(schema.name)],
            ddl=schema.render_create(),
        )

    @contextmanager
    def _shared_scan(self, table_name: str) -> Iterator[None]:
        """Hold an S lock on ``table_name`` for a heap scan outside the
        executor (value-retrieval tool calls).

        Without it, a concurrent writer's UPDATE mutates row dicts
        mid-scan and uncommitted rows from open transactions leak into
        the catalog (dirty reads) — breaking the 2PL serializability the
        service layer promises. Inside an explicit transaction the lock
        joins the transaction's lock set (strict 2PL, released at
        commit/rollback); in autocommit it is released when the scan
        ends. Deadlock victims and lock-wait timeouts abort the whole
        transaction (both are retryable), matching
        :meth:`repro.minidb.Session.execute_statement`. No-op on
        databases without a lock manager.
        """
        session = self.session
        try:
            session.lock_table(table_name, "S")
        except (DeadlockError, LockTimeoutError):
            if session.tx.in_transaction:
                session.tx.rollback()
            session.release_locks()
            raise
        try:
            yield
        finally:
            if not session.in_transaction:
                session.release_locks()

    def distinct_values(self, table: str, column: str, limit: int) -> list[Any]:
        schema = self.session.db.catalog.table(table)  # validate pre-lock
        with self._shared_scan(schema.name):
            # re-resolve after the lock grant: a scan that blocked behind
            # DROP + CREATE must see the recreated schema (an old column
            # name would silently yield [] instead of unknown-column)
            schema = self.session.db.catalog.table(table)
            column_name = schema.column(column).name
            heap = self.session.db.heap(schema.name)
            seen: list[Any] = []
            seen_set: set[Any] = set()
            for _, row in heap.rows():
                value = row.get(column_name)
                if value is None or value in seen_set:
                    continue
                seen_set.add(value)
                seen.append(value)
                if len(seen) >= limit:
                    break
        return seen

    def retrieve_values(
        self,
        table: str,
        column: str,
        key: str,
        k: int,
        limit: int,
        synonyms: Any = None,
    ) -> list[tuple[Any, float]]:
        """Indexed exemplar retrieval via a cached per-column value catalog.

        Catalogs live on the shared :class:`~repro.minidb.Database` (all
        sessions reuse them) and are fingerprinted by the owning heap's
        ``(uid, version)`` change counter, so any INSERT/UPDATE/DELETE,
        DDL, or ROLLBACK triggers a lazy rebuild on the next call. On a
        durable database they are also persisted into the engine's
        ``catalogs/`` sidecar directory, so a reopened database serves
        unchanged columns without rebuilding anything.
        """
        from ..retrieval import CatalogCache, CatalogStore

        db = self.session.db
        schema = db.catalog.table(table)  # validate pre-lock

        def make_cache() -> CatalogCache:
            catalog_dir = db.engine.catalog_dir
            # share the engine's I/O seam so fault injection (and the
            # fs-seam rule) covers sidecar persistence too
            store = (
                CatalogStore(catalog_dir, filesystem=db.engine.filesystem)
                if catalog_dir
                else None
            )
            return CatalogCache(store=store)

        # guarded lazy init: concurrent first callers must share one cache
        cache = db.ensure_retrieval_cache(make_cache)
        # hold the S lock across schema/heap resolution, fingerprint read,
        # *and* build: resolving before the grant would let a call that
        # blocked behind DROP + CREATE fingerprint (and serve) the dropped
        # heap's cached catalog; resolving inside makes the cached entry
        # reflect exactly the rows the fingerprint describes
        # (distinct_values re-acquires reentrantly inside the builder)
        with self._shared_scan(schema.name):
            schema = db.catalog.table(table)
            column_name = schema.column(column).name
            heap = db.heap(schema.name)
            catalog = cache.lookup(
                (schema.name, column_name, limit),
                (heap.uid, heap.version),
                lambda: self.distinct_values(table, column, limit),
            )
        return catalog.top_k(key, k, synonyms)

    # ---------------------------------------------------------- privileges

    def user_actions_on(self, obj: str) -> set[str]:
        return self.session.db.privileges.actions_on(self.session.user, obj)

    def user_column_restrictions(self, action: str, obj: str) -> frozenset[str] | None:
        return self.session.db.privileges.column_restrictions(
            self.session.user, action, obj
        )

    def all_actions(self) -> tuple[str, ...]:
        from ..minidb.privileges import ACTIONS

        return ACTIONS

    # -------------------------------------------------------- transactions

    def in_transaction(self) -> bool:
        return self.session.in_transaction

    @property
    def user(self) -> str:
        return self.session.user
