"""Database-agnostic interface consumed by the BridgeScope toolkit.

Per Section 2.6 of the paper, every BridgeScope tool is built on "a unified
set of database interfaces that can be implemented for any database
system". :class:`DatabaseBinding` is that set. The reference binding wraps
:mod:`repro.minidb`; tests include a second toy binding to demonstrate
portability.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any


@dataclass
class ObjectInfo:
    """Structured description of one database object (table or view)."""

    name: str
    kind: str  # "table" | "view"
    columns: list[dict[str, Any]] = field(default_factory=list)
    primary_key: list[str] = field(default_factory=list)
    foreign_keys: list[str] = field(default_factory=list)
    indexes: list[str] = field(default_factory=list)
    ddl: str = ""  # normalized CREATE statement


@dataclass
class SqlOutcome:
    """Uniform result of running SQL through a binding."""

    columns: list[str]
    rows: list[tuple]
    rowcount: int
    status: str


@dataclass
class AccessFootprint:
    """Static analysis result for one SQL statement (binding-neutral)."""

    action: str
    accesses: list[tuple[str, str, set[str] | None]]
    # each entry: (action, object, columns-or-None-for-whole-object)
    is_transaction_control: bool = False
    is_ddl: bool = False


class DatabaseBinding(abc.ABC):
    """Everything BridgeScope needs from a database, and nothing more."""

    # ----------------------------------------------------------- execution

    @abc.abstractmethod
    def run_sql(self, sql: str) -> SqlOutcome:
        """Execute one SQL statement in this binding's session."""

    @abc.abstractmethod
    def analyze_sql(self, sql: str) -> AccessFootprint:
        """Statically analyze a statement without executing it."""

    # ------------------------------------------------------------- catalog

    @abc.abstractmethod
    def list_objects(self) -> list[str]:
        """Names of all top-level objects (tables and views), sorted."""

    @abc.abstractmethod
    def object_info(self, name: str) -> ObjectInfo:
        """Structured schema details of one object."""

    @abc.abstractmethod
    def distinct_values(self, table: str, column: str, limit: int) -> list[Any]:
        """Up to ``limit`` distinct non-NULL values of ``table.column``."""

    def retrieve_values(
        self,
        table: str,
        column: str,
        key: str,
        k: int,
        limit: int,
        synonyms: Any = None,
    ) -> list[tuple[Any, float]]:
        """Top-``k`` column values most relevant to ``key``, scored.

        The default brute-forces over :meth:`distinct_values` with
        :func:`repro.core.similarity.top_k`; bindings with an exemplar
        index (e.g. :class:`~repro.core.minidb_binding.MinidbBinding`)
        override this with an indexed implementation that must return the
        identical ranking.
        """
        from .similarity import top_k

        return top_k(key, self.distinct_values(table, column, limit), k, synonyms)

    # ---------------------------------------------------------- privileges

    @abc.abstractmethod
    def user_actions_on(self, obj: str) -> set[str]:
        """Actions the bound user holds on ``obj`` (database-side)."""

    @abc.abstractmethod
    def user_column_restrictions(self, action: str, obj: str) -> frozenset[str] | None:
        """Columns the user's grant is limited to; None = whole object."""

    @abc.abstractmethod
    def all_actions(self) -> tuple[str, ...]:
        """The database's privilege action vocabulary."""

    # -------------------------------------------------------- transactions

    @abc.abstractmethod
    def in_transaction(self) -> bool:
        """Whether the bound session has an open explicit transaction."""

    @property
    @abc.abstractmethod
    def user(self) -> str:
        """The database user this binding operates as."""
