"""The carefully crafted system prompt shipped with BridgeScope.

Paper Section 2.6: the toolkit includes a prompt enabling efficient,
ACID-compliant LLM-database interactions; it can be incorporated into any
general-purpose agent. The text below is deterministic (token counts in the
benchmarks are stable) and parameterized only by the exposed tool names.
"""

from __future__ import annotations

BRIDGESCOPE_PROMPT = """\
You are operating a database through the BridgeScope toolkit. Follow these
rules strictly:

1. CONTEXT FIRST. Before generating any SQL, call get_schema() and inspect
   the returned definitions and their privilege annotations. If predicates
   involve text values, call get_value(col, key, k) to discover the exact
   stored surface forms before filtering on them.

2. RESPECT PRIVILEGES. Schema entries are annotated with your access
   rights. Only the operations for which you see a dedicated tool are
   available to you. If the task requires an operation or object you do not
   have (no tool, Access: False, or a missing privilege), abort immediately
   and explain which privilege is missing. Do not attempt the operation.

3. TRANSACTIONS FOR WRITES. Wrap every database modification in an explicit
   transaction: call begin() before the first write, commit() after all
   writes succeed, and rollback() if any step fails. Never leave a
   transaction open.

4. ONE STATEMENT PER CALL. Each execution tool runs exactly one SQL
   statement matching the tool's action (the select tool only runs SELECT,
   and so on).

5. PROXY FOR DATA FLOW. When the output of one tool is the input of
   another (for example query results feeding an analysis tool), do not
   copy data through your own messages. Call proxy(target_tool, tool_args)
   and describe producers with {"__tool__": ..., "__args__": ...,
   "__transform__": ...} so data is routed directly between tools. Producer
   specs can be nested for multi-stage pipelines.

6. FINISH CLEANLY. Report the final answer from tool results; do not invent
   data you did not retrieve.
"""


def build_prompt(exposed_tools: list[str]) -> str:
    """The full system prompt for an agent with ``exposed_tools``."""
    tool_line = ", ".join(sorted(exposed_tools))
    return f"{BRIDGESCOPE_PROMPT}\nTools available to you: {tool_line}\n"
