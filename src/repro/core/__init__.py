"""BridgeScope core toolkit — the paper's primary contribution.

Assemble the toolkit for a user with::

    from repro.core import BridgeScope, BridgeScopeConfig, MinidbBinding

    binding = MinidbBinding.for_user(db, "manager")
    bridge = BridgeScope(binding, BridgeScopeConfig())
    bridge.invoke("get_schema")
    bridge.invoke("select", sql="SELECT ...")
"""

from .config import BridgeScopeConfig, SecurityPolicy
from .context import ContextTools
from .execution import ExecutionTools
from .interfaces import AccessFootprint, DatabaseBinding, ObjectInfo, SqlOutcome
from .minidb_binding import MinidbBinding
from .prompt import BRIDGESCOPE_PROMPT, build_prompt
from .proxy import ProxyStats, ProxyTool, ProxyUnit
from .server import BridgeScope, combine_bridges
from .similarity import SynonymTable, similarity, top_k
from .transaction import TransactionTools
from .transforms import TransformError, compile_transform
from .verification import SecurityViolation, SqlVerifier

__all__ = [
    "AccessFootprint",
    "BRIDGESCOPE_PROMPT",
    "BridgeScope",
    "BridgeScopeConfig",
    "ContextTools",
    "DatabaseBinding",
    "ExecutionTools",
    "MinidbBinding",
    "ObjectInfo",
    "ProxyStats",
    "ProxyTool",
    "ProxyUnit",
    "SecurityPolicy",
    "SecurityViolation",
    "SqlOutcome",
    "SqlVerifier",
    "SynonymTable",
    "TransactionTools",
    "TransformError",
    "build_prompt",
    "combine_bridges",
    "compile_transform",
    "similarity",
    "top_k",
]
