"""F3 — Explicit transaction management tools (paper Section 2.4).

``begin`` / ``commit`` / ``rollback`` map directly onto the database's
transaction control; ACID inside the bracket is the engine's job. The tools
are only exposed when the user could perform at least one write action —
a read-only agent gets no transaction tools, keeping its tool list minimal.
"""

from __future__ import annotations

from ..mcp import ToolResult, ToolServer, tool
from .config import BridgeScopeConfig
from .interfaces import DatabaseBinding

_WRITE_ACTIONS = {"INSERT", "UPDATE", "DELETE", "CREATE", "DROP", "ALTER"}


class TransactionTools(ToolServer):
    name = "bridgescope.transaction"

    def __init__(self, binding: DatabaseBinding, config: BridgeScopeConfig):
        self.binding = binding
        self.config = config
        super().__init__()

    @classmethod
    def should_expose(cls, binding: DatabaseBinding, config: BridgeScopeConfig) -> bool:
        """Transaction tools matter only for users who can write."""
        policy_writes = {
            a for a in _WRITE_ACTIONS if config.policy.permits_action(a)
        }
        if not policy_writes:
            return False
        for obj in binding.list_objects():
            if not config.policy.permits_object(obj):
                continue
            if binding.user_actions_on(obj) & policy_writes:
                return True
        return bool(binding.user_actions_on("*") & policy_writes)

    @tool(description=(
        "Begin a new transaction. Use before a group of data modifications "
        "that must apply atomically; finish with commit or rollback."
    ), params=[])
    def begin(self) -> ToolResult:
        outcome = self.binding.run_sql("BEGIN")
        return ToolResult.ok(outcome.status)

    @tool(description="Commit the current transaction, persisting all changes.",
          params=[])
    def commit(self) -> ToolResult:
        outcome = self.binding.run_sql("COMMIT")
        return ToolResult.ok(outcome.status)

    @tool(description=(
        "Roll back the current transaction, reverting every change made "
        "since begin."
    ), params=[])
    def rollback(self) -> ToolResult:
        outcome = self.binding.run_sql("ROLLBACK")
        return ToolResult.ok(outcome.status)
