"""F4 — The proxy mechanism for inter-tool data transfer (paper Section 2.5).

A *proxy unit* is a triple ⟨p, c, f⟩: data producer(s) *p*, a consumer tool
*c*, and an adaptation function *f* transforming producer output into the
consumer's expected input. Units nest recursively — a producer may itself
be a proxy unit — and the whole hierarchy executes bottom-up inside the
proxy tool, so bulk data flows tool-to-tool without ever entering the LLM
context.

Wire format (exactly the paper's Figure 3): the ``proxy`` tool takes

* ``target_tool`` — the consumer tool name *c*;
* ``tool_args`` — a dict mapping each consumer argument to either a plain
  literal, or a producer spec::

      {"__tool__": "select",
       "__args__": {"sql": "SELECT ..."},
       "__transform__": "lambda x: x"}

  ``__args__`` may itself contain nested producer specs (recursive units),
  and a list of producer specs yields a list of produced values.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any

from ..mcp import (
    ParamSpec,
    ToolError,
    ToolRegistry,
    ToolResult,
    ToolServer,
    ToolSpec,
)
from .config import BridgeScopeConfig
from .transforms import TransformError, compile_transform

PRODUCER_KEY = "__tool__"
ARGS_KEY = "__args__"
TRANSFORM_KEY = "__transform__"


@dataclass
class ProxyStats:
    """Observability counters read by benchmarks and tests."""

    units_executed: int = 0
    producer_calls: int = 0
    max_depth: int = 0
    values_routed: int = 0  # rows/items moved tool-to-tool, LLM-free
    last_parallel_batch: int = 0


@dataclass
class ProxyUnit:
    """Parsed, validated form of one proxy unit."""

    target_tool: str
    tool_args: dict[str, Any] = field(default_factory=dict)


class ProxyTool(ToolServer):
    """The ``proxy`` tool; routes data between any tools in the registry."""

    name = "bridgescope.proxy"

    def __init__(self, registry: ToolRegistry, config: BridgeScopeConfig):
        super().__init__()
        self.registry = registry
        self.config = config
        self.stats = ProxyStats()
        self.register(
            ToolSpec(
                name="proxy",
                description=(
                    "Execute a downstream tool whose inputs are produced by "
                    "other tools, routing data directly between them without "
                    "returning it to you. Each argument of target_tool may be "
                    "a literal, or a producer spec {'__tool__': name, "
                    "'__args__': {...}, '__transform__': 'lambda x: ...'}. "
                    "Producer specs nest recursively, and a list of specs "
                    "produces a list of values. Use this whenever a tool "
                    "needs data from another tool (especially query results) "
                    "instead of copying data yourself."
                ),
                params=[
                    ParamSpec("target_tool", "string", "the consumer tool name"),
                    ParamSpec(
                        "tool_args",
                        "object",
                        "consumer arguments; values may be producer specs",
                    ),
                ],
            ),
            self._run_proxy,
        )

    # ------------------------------------------------------------- running

    def _run_proxy(self, target_tool: str, tool_args: dict[str, Any]) -> ToolResult:
        unit = ProxyUnit(target_tool, tool_args or {})
        result = self.execute_unit(unit, depth=1)
        return result

    def execute_unit(self, unit: ProxyUnit, depth: int) -> ToolResult:
        """Execute one proxy unit (resolving nested units first)."""
        self.stats.max_depth = max(self.stats.max_depth, depth)
        if not self.registry.has_tool(unit.target_tool):
            raise ToolError(
                f"proxy target tool {unit.target_tool!r} not found",
                retriable=True,
            )
        resolved = self._resolve_args(unit.tool_args, depth)
        result = self.registry.invoke(unit.target_tool, **resolved)
        if result.is_error:
            raise ToolError(
                f"proxy consumer {unit.target_tool} failed: {result.content}",
                retriable=True,
            )
        self.stats.units_executed += 1
        return result

    # ---------------------------------------------------------- resolution

    def _resolve_args(self, args: dict[str, Any], depth: int) -> dict[str, Any]:
        producer_items: list[tuple[str, Any]] = []
        literal_items: list[tuple[str, Any]] = []
        for key, value in args.items():
            if self._is_producer_spec(value) or self._is_producer_list(value):
                producer_items.append((key, value))
            else:
                literal_items.append((key, value))

        resolved = dict(literal_items)
        if (
            self.config.parallel_producers
            and len(producer_items) > 1
        ):
            self.stats.last_parallel_batch = len(producer_items)
            with ThreadPoolExecutor(max_workers=len(producer_items)) as pool:
                futures = {
                    key: pool.submit(self._resolve_value, value, depth)
                    for key, value in producer_items
                }
                for key, future in futures.items():
                    resolved[key] = future.result()
        else:
            for key, value in producer_items:
                resolved[key] = self._resolve_value(value, depth)
        return resolved

    def _resolve_value(self, value: Any, depth: int) -> Any:
        if self._is_producer_list(value):
            return [self._resolve_producer(spec, depth) for spec in value]
        if self._is_producer_spec(value):
            return self._resolve_producer(value, depth)
        return value

    def _resolve_producer(self, spec: dict[str, Any], depth: int) -> Any:
        self.stats.max_depth = max(self.stats.max_depth, depth)
        tool_name = spec[PRODUCER_KEY]
        inner_args = spec.get(ARGS_KEY, {}) or {}
        if not isinstance(inner_args, dict):
            raise ToolError("producer __args__ must be an object", retriable=True)
        resolved_args = self._resolve_args(inner_args, depth + 1)

        if not self.registry.has_tool(tool_name):
            raise ToolError(
                f"proxy producer tool {tool_name!r} not found", retriable=True
            )
        result = self.registry.invoke(tool_name, **resolved_args)
        self.stats.producer_calls += 1
        if result.is_error:
            raise ToolError(
                f"proxy producer {tool_name} failed: {result.content}",
                retriable=True,
            )
        value = self._payload_of(result)
        self._count_routed(value)

        transform_source = spec.get(TRANSFORM_KEY, "")
        if transform_source:
            try:
                transform = compile_transform(str(transform_source))
                value = transform(value)
            except TransformError as exc:
                raise ToolError(
                    f"transform for producer {tool_name} failed: {exc}",
                    retriable=True,
                ) from exc
        return value

    @staticmethod
    def _payload_of(result: ToolResult) -> Any:
        """The structured payload a producer hands downstream.

        Data-bearing tools attach their wire payload in metadata (SQL tools
        as ``rows``, ML tools as ``payload``); prefer those over the
        LLM-oriented rendering. Other tools pass content through.
        """
        if "payload" in result.metadata:
            return result.metadata["payload"]
        if "rows" in result.metadata:
            return result.metadata["rows"]
        return result.content

    def _count_routed(self, value: Any) -> None:
        if isinstance(value, (list, tuple)):
            self.stats.values_routed += len(value)
        else:
            self.stats.values_routed += 1

    # ------------------------------------------------------------- helpers

    @staticmethod
    def _is_producer_spec(value: Any) -> bool:
        return isinstance(value, dict) and PRODUCER_KEY in value

    @classmethod
    def _is_producer_list(cls, value: Any) -> bool:
        return (
            isinstance(value, list)
            and bool(value)
            and all(cls._is_producer_spec(v) for v in value)
        )
