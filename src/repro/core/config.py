"""User-side security policy and toolkit configuration.

Implements the paper's user-side controls (Sections 2.2-2.3):

* object-level white/black-lists restricting which database objects the LLM
  may see and touch (within the user's own database privileges);
* action-level white/black-lists restricting which SQL-execution tools are
  exposed (e.g. block ``drop`` to prevent destructive operations);
* the adaptive-schema threshold *n* governing full vs hierarchical
  ``get_schema`` output;
* limits protecting tool output size.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SecurityPolicy:
    """User-side security policy applied on top of database privileges.

    ``None`` white-lists mean "everything permitted"; black-lists always
    subtract. Matching is case-insensitive.
    """

    object_whitelist: frozenset[str] | None = None
    object_blacklist: frozenset[str] = frozenset()
    action_whitelist: frozenset[str] | None = None
    action_blacklist: frozenset[str] = frozenset()

    def __post_init__(self):
        if self.object_whitelist is not None:
            self.object_whitelist = frozenset(o.lower() for o in self.object_whitelist)
        self.object_blacklist = frozenset(o.lower() for o in self.object_blacklist)
        if self.action_whitelist is not None:
            self.action_whitelist = frozenset(a.upper() for a in self.action_whitelist)
        self.action_blacklist = frozenset(a.upper() for a in self.action_blacklist)

    # -------------------------------------------------------------- checks

    def permits_object(self, name: str) -> bool:
        key = name.lower()
        if key in self.object_blacklist:
            return False
        if self.object_whitelist is not None and key not in self.object_whitelist:
            return False
        return True

    def permits_action(self, action: str) -> bool:
        key = action.upper()
        if key in self.action_blacklist:
            return False
        if self.action_whitelist is not None and key not in self.action_whitelist:
            return False
        return True

    @classmethod
    def permissive(cls) -> "SecurityPolicy":
        return cls()

    @classmethod
    def read_only(cls) -> "SecurityPolicy":
        return cls(action_whitelist=frozenset({"SELECT"}))

    @classmethod
    def no_ddl(cls) -> "SecurityPolicy":
        return cls(action_blacklist=frozenset({"CREATE", "DROP", "ALTER"}))


@dataclass
class BridgeScopeConfig:
    """Tunable knobs of the toolkit."""

    #: adaptive schema threshold *n*: at most this many named objects are
    #: rendered in full by get_schema(); beyond it, only names are listed
    #: and get_object() retrieves details on demand (paper Section 2.2).
    schema_detail_threshold: int = 20
    #: default k for get_value top-k exemplar retrieval
    exemplar_top_k: int = 5
    #: hard cap on rows rendered into a tool result (LLM context guard)
    max_result_rows: int = 50
    #: maximum distinct values scanned per column for exemplar search
    exemplar_scan_limit: int = 10_000
    #: serve get_value from the binding's indexed value catalogs; False
    #: forces the brute-force score-everything path (equivalence testing
    #: and benchmark baseline — rankings must be identical either way)
    use_retrieval_index: bool = True
    #: run multi-producer proxy units in parallel threads
    parallel_producers: bool = False
    policy: SecurityPolicy = field(default_factory=SecurityPolicy.permissive)
