"""Object-level tool verification (paper Section 2.3, mechanism 2).

Even though BridgeScope only exposes privilege-compatible tools,
hallucinated or injected SQL can still reference forbidden objects or smuggle
a different action through a tool (e.g. a DELETE string passed to the
``select`` tool). :class:`SqlVerifier` statically analyzes every SQL string
before execution and enforces, rule-based:

1. the statement's action matches the invoking tool's action;
2. the user holds the database privilege for every (action, object, columns)
   access the statement performs;
3. every touched object and action passes the user-side security policy.

Violations raise :class:`SecurityViolation` (non-retriable) — the statement
never reaches the database.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..mcp import ToolError
from .config import SecurityPolicy
from .interfaces import AccessFootprint, DatabaseBinding


class SecurityViolation(ToolError):
    """A rule-based security rejection; not retriable by rephrasing SQL."""

    def __init__(self, message: str):
        super().__init__(message, retriable=False)


@dataclass
class AuditRecord:
    """One verification decision, for the security audit trail."""

    user: str
    sql: str
    action: str
    objects: list[str]
    allowed: bool
    reason: str = ""


@dataclass
class AuditLog:
    """Append-only log of verification decisions."""

    records: list[AuditRecord] = field(default_factory=list)
    max_records: int = 10_000

    def append(self, record: AuditRecord) -> None:
        if len(self.records) >= self.max_records:
            del self.records[: self.max_records // 10]
        self.records.append(record)

    def rejections(self) -> list[AuditRecord]:
        return [r for r in self.records if not r.allowed]

    def render(self, last: int = 20) -> str:
        lines = []
        for record in self.records[-last:]:
            verdict = "ALLOW" if record.allowed else "DENY "
            detail = f" ({record.reason})" if record.reason else ""
            lines.append(
                f"{verdict} {record.user}: {record.action} on "
                f"{', '.join(record.objects) or '-'}{detail}"
            )
        return "\n".join(lines)


class SqlVerifier:
    def __init__(self, binding: DatabaseBinding, policy: SecurityPolicy):
        self.binding = binding
        self.policy = policy
        #: counters for benchmarks / audits
        self.verified = 0
        self.rejected = 0
        self.audit = AuditLog()

    def verify(self, sql: str, expected_action: str | None = None) -> AccessFootprint:
        """Verify ``sql``; returns its footprint or raises SecurityViolation."""
        footprint = self.binding.analyze_sql(sql)
        objects = sorted({obj for _, obj, _ in footprint.accesses})
        try:
            self._check(footprint, expected_action)
        except SecurityViolation as violation:
            self.rejected += 1
            self.audit.append(
                AuditRecord(
                    user=self.binding.user,
                    sql=sql,
                    action=footprint.action,
                    objects=objects,
                    allowed=False,
                    reason=violation.message,
                )
            )
            raise
        self.verified += 1
        self.audit.append(
            AuditRecord(
                user=self.binding.user,
                sql=sql,
                action=footprint.action,
                objects=objects,
                allowed=True,
            )
        )
        return footprint

    # ----------------------------------------------------------- internals

    def _check(self, footprint: AccessFootprint, expected_action: str | None) -> None:
        if footprint.is_transaction_control:
            if expected_action not in (None, "TRANSACTION"):
                raise SecurityViolation(
                    "transaction control statements must use the dedicated "
                    "begin/commit/rollback tools"
                )
            return
        if expected_action is not None and footprint.action != expected_action:
            raise SecurityViolation(
                f"this tool only executes {expected_action} statements, "
                f"got a {footprint.action} statement"
            )
        if not self.policy.permits_action(footprint.action):
            raise SecurityViolation(
                f"action {footprint.action} is blocked by the user's security policy"
            )
        for action, obj, columns in footprint.accesses:
            if action == "GRANT":
                raise SecurityViolation(
                    "GRANT/REVOKE are not available through BridgeScope tools"
                )
            if not self.policy.permits_action(action):
                raise SecurityViolation(
                    f"action {action} (required on {obj}) is blocked by the "
                    "user's security policy"
                )
            if not self.policy.permits_object(obj):
                raise SecurityViolation(
                    f"object {obj!r} is not accessible under the user's "
                    "security policy"
                )
            if action == "CREATE" and obj.lower() not in {
                o.lower() for o in self.binding.list_objects()
            }:
                # creating a brand-new object: database-wide CREATE privilege
                if "CREATE" not in self.binding.user_actions_on("*"):
                    raise SecurityViolation(
                        f"permission denied: CREATE (database-wide) for "
                        f"user {self.binding.user!r}"
                    )
                continue
            held = self.binding.user_actions_on(obj)
            if action not in held:
                raise SecurityViolation(
                    f"permission denied: {action} on {obj} for user "
                    f"{self.binding.user!r}"
                )
            if columns is not None:
                restrictions = self.binding.user_column_restrictions(action, obj)
                if restrictions is not None and not (
                    {c.lower() for c in columns} <= restrictions
                ):
                    missing = sorted(
                        {c.lower() for c in columns} - restrictions
                    )
                    raise SecurityViolation(
                        f"permission denied: {action} on {obj} columns "
                        f"({', '.join(missing)})"
                    )
            else:
                # whole-object access with a column-restricted grant
                restrictions = self.binding.user_column_restrictions(action, obj)
                if restrictions is not None:
                    raise SecurityViolation(
                        f"permission denied: whole-object {action} on {obj} "
                        "exceeds the column-level grant"
                    )
