"""BridgeScope server assembly: the complete toolkit for one user.

:class:`BridgeScope` wires together the four functionality groups —
context retrieval, SQL execution, transaction management, and the proxy —
into a single :class:`~repro.mcp.ToolRegistry`, applying the user's
database privileges and security policy to decide what is exposed.

Extra domain tool servers (e.g. ML tools) can be attached; the proxy can
route data to them transparently (MCP-ecosystem integration, Section 2.5).
"""

from __future__ import annotations

from typing import Any

from ..mcp import ToolCall, ToolRegistry, ToolResult, ToolServer
from .config import BridgeScopeConfig
from .context import ContextTools
from .execution import ExecutionTools
from .interfaces import DatabaseBinding
from .prompt import build_prompt
from .proxy import ProxyTool
from .transaction import TransactionTools
from .verification import SqlVerifier


class BridgeScope:
    """Facade over the full BridgeScope toolkit for one database user."""

    def __init__(
        self,
        binding: DatabaseBinding,
        config: BridgeScopeConfig | None = None,
        extra_servers: list[ToolServer] | None = None,
        namespace: str | None = None,
    ):
        """Assemble the toolkit.

        ``namespace`` prefixes every tool name with ``<namespace>__`` so
        multiple BridgeScope instances (one per data source, Section 2.6)
        can coexist in a single agent's registry without collisions.
        """
        self.binding = binding
        self.namespace = namespace
        self.config = config or BridgeScopeConfig()
        self.verifier = SqlVerifier(binding, self.config.policy)
        self.registry = ToolRegistry()

        self.context = ContextTools(binding, self.config)
        self.registry.add_server(self.context)

        self.execution = ExecutionTools(binding, self.config, self.verifier)
        self.registry.add_server(self.execution)

        self.transactions: TransactionTools | None = None
        if TransactionTools.should_expose(binding, self.config):
            self.transactions = TransactionTools(binding, self.config)
            self.registry.add_server(self.transactions)

        for server in extra_servers or []:
            self.registry.add_server(server)

        self.proxy = ProxyTool(self.registry, self.config)
        self.registry.add_server(self.proxy)

        if namespace:
            for server in self.registry.servers:
                if server in (extra_servers or []):
                    continue  # domain servers keep their own names
                _apply_namespace(server, namespace)

    @classmethod
    def for_minidb_user(
        cls,
        db: "Any",
        user: str,
        config: BridgeScopeConfig | None = None,
        **kwargs,
    ) -> "BridgeScope":
        """Assemble a toolkit for one user over an already-open database.

        This is the session-scoped constructor the multi-session service
        layer uses: every agent session gets its *own* BridgeScope (its
        own minidb session, transaction state, and privilege-filtered
        tool surface) while all of them share the one ``db`` — catalog,
        heaps, retrieval cache, and lock manager included.
        """
        from .minidb_binding import MinidbBinding

        return cls(MinidbBinding.for_user(db, user), config, **kwargs)

    @classmethod
    def open_minidb(
        cls,
        path: str,
        user: str = "admin",
        config: BridgeScopeConfig | None = None,
        **kwargs,
    ) -> "BridgeScope":
        """Assemble a toolkit over a *durable* minidb database directory.

        Convenience for agent deployments (including the MCP server
        wiring): the database is opened/recovered from ``path``, so tool
        state — tables, privileges, and persisted ``get_value`` catalogs —
        survives process restarts. The caller owns the lifecycle; call
        ``bridge.binding.session.db.close()`` on shutdown.
        """
        from .minidb_binding import MinidbBinding

        return cls(MinidbBinding.open(path, user), config, **kwargs)

    # ------------------------------------------------------------- calling

    def call(self, call: ToolCall) -> ToolResult:
        return self.registry.call(call)

    def invoke(self, tool_name: str, **args) -> ToolResult:
        return self.registry.invoke(tool_name, **args)

    # ----------------------------------------------------------- discovery

    def tool_names(self) -> list[str]:
        return self.registry.tool_names()

    def render_tool_list(self) -> str:
        return self.registry.render_tool_list()

    def system_prompt(self) -> str:
        return build_prompt(self.tool_names())

    def exposed_sql_actions(self) -> list[str]:
        return self.execution.exposed_action_names()


def combine_bridges(
    bridges: list[BridgeScope],
    extra_servers: list[ToolServer] | None = None,
) -> ToolRegistry:
    """Merge several (namespaced) BridgeScope instances into one registry.

    Every bridge's proxy is re-pointed at the combined registry so proxy
    units can route data *across* data sources (Section 2.6's
    multi-datasource scenario).
    """
    registry = ToolRegistry()
    for bridge in bridges:
        for server in bridge.registry.servers:
            registry.add_server(server)
    for server in extra_servers or []:
        registry.add_server(server)
    for bridge in bridges:
        bridge.proxy.registry = registry
    return registry


def _apply_namespace(server: ToolServer, namespace: str) -> None:
    """Rename every tool of ``server`` to ``<namespace>__<name>``."""
    server.rename_tools(lambda name: f"{namespace}__{name}")
