"""F1 — Context retrieval tools: get_schema / get_object / get_value.

Implements the paper's Section 2.2:

* adaptive schema retrieval — full standardized rendering when the database
  has at most ``schema_detail_threshold`` named objects, hierarchical
  (names only + get_object on demand) otherwise;
* privilege annotations — every rendered object carries an ``-- Access``
  header listing the user's database-side privileges on it (plus column
  restrictions when the grant is partial);
* user-side object white/black-lists — filtered objects are simply not
  exposed;
* column-exemplar retrieval — ``get_value(col, key, k)`` returns the top-k
  values of a column most semantically relevant to a task key. Behind the
  binding, catalogs are cached per column and — when the database runs on
  a durable storage engine (``MinidbBinding.open(path, user)``) — persisted
  next to its snapshot, so agent sessions reopened after a restart serve
  ``get_value`` for unchanged columns without rebuilding anything.
"""

from __future__ import annotations

from typing import Any

from ..mcp import ParamSpec, ToolServer, tool
from .config import BridgeScopeConfig
from .interfaces import DatabaseBinding, ObjectInfo
from .similarity import top_k


class ContextTools(ToolServer):
    """Tool server exposing the three context-retrieval tools."""

    name = "bridgescope.context"

    def __init__(self, binding: DatabaseBinding, config: BridgeScopeConfig):
        self.binding = binding
        self.config = config
        super().__init__()

    # ------------------------------------------------------------ policy

    def permitted_objects(self) -> list[str]:
        """Objects visible to the LLM: policy-permitted only.

        Objects the user has *no* database privilege on are still listed
        (with ``Access: False``) so the LLM learns its boundaries, exactly
        as in the paper's Figure 3 schema fragment.
        """
        return [
            name
            for name in self.binding.list_objects()
            if self.config.policy.permits_object(name)
        ]

    def _privilege_annotation(self, name: str) -> str:
        actions = sorted(self.binding.user_actions_on(name))
        if not actions:
            return "-- Access: False"
        if set(actions) >= set(self.binding.all_actions()):
            header = "-- Access: True, Privileges: ALL"
        else:
            header = f"-- Access: True, Privileges: {', '.join(actions)}"
        restrictions = []
        for action in actions:
            cols = self.binding.user_column_restrictions(action, name)
            if cols is not None and cols:
                restrictions.append(f"{action} limited to columns ({', '.join(sorted(cols))})")
        if restrictions:
            header += "\n-- " + "; ".join(restrictions)
        return header

    def _render_object(self, info: ObjectInfo) -> str:
        annotation = self._privilege_annotation(info.name)
        body = info.ddl if info.ddl else f"{info.kind.upper()} {info.name}"
        extras = []
        if info.indexes:
            extras.append("-- " + "; ".join(info.indexes))
        return "\n".join([annotation, body] + extras)

    # -------------------------------------------------------------- tools

    @tool(
        description=(
            "Retrieve the database schema. Returns complete object "
            "definitions with privilege annotations when the database is "
            "small; otherwise returns only top-level object names (use "
            "get_object for details)."
        ),
        params=[],
    )
    def get_schema(self) -> str:
        names = self.permitted_objects()
        if len(names) <= self.config.schema_detail_threshold:
            blocks = [
                self._render_object(self.binding.object_info(name))
                for name in names
            ]
            if not blocks:
                return "-- database is empty (no accessible objects)"
            return "\n\n".join(blocks)
        lines = [
            f"-- {len(names)} objects; listing names only "
            "(call get_object(name) for details)"
        ]
        for name in names:
            actions = sorted(self.binding.user_actions_on(name))
            if not actions:
                access = "NONE"
            elif set(actions) >= set(self.binding.all_actions()):
                access = "ALL"
            else:
                access = ", ".join(actions)
            lines.append(f"{name}  [privileges: {access}]")
        return "\n".join(lines)

    @tool(
        description=(
            "Retrieve the full definition (columns, constraints, indexes, "
            "privileges) of one database object."
        ),
        params=[
            ParamSpec("name", "string", "object (table or view) name"),
        ],
    )
    def get_object(self, name: str) -> str:
        if not self.config.policy.permits_object(name):
            # deliberately indistinguishable from absence: policy-hidden
            # objects must not leak their existence
            return f"ERROR: object {name!r} does not exist"
        known = {n.lower() for n in self.binding.list_objects()}
        if name.lower() not in known:
            return f"ERROR: object {name!r} does not exist"
        return self._render_object(self.binding.object_info(name))

    @tool(
        description=(
            "Retrieve the top-k values of a column most semantically "
            "relevant to a task-specific key. Use this before writing "
            "predicates over text columns so values match stored data."
        ),
        params=[
            ParamSpec("col", "string", "column as 'table.column'"),
            ParamSpec("key", "string", "task-specific key to match against"),
            ParamSpec("k", "integer", "number of values", required=False, default=None),
        ],
    )
    def get_value(self, col: str, key: str, k: int | None = None) -> str:
        k = k or self.config.exemplar_top_k
        if "." not in col:
            return "ERROR: col must be qualified as 'table.column'"
        table, column = col.split(".", 1)
        if not self.config.policy.permits_object(table):
            return f"ERROR: object {table!r} does not exist"
        if "SELECT" not in self.binding.user_actions_on(table):
            return f"ERROR: permission denied: SELECT on {table}"
        restrictions = self.binding.user_column_restrictions("SELECT", table)
        if restrictions is not None and column.lower() not in restrictions:
            return f"ERROR: permission denied: SELECT on {table}.{column}"
        try:
            if self.config.use_retrieval_index:
                ranked = self.binding.retrieve_values(
                    table, column, key, k, self.config.exemplar_scan_limit
                )
            else:
                values = self.binding.distinct_values(
                    table, column, self.config.exemplar_scan_limit
                )
                ranked = top_k(key, values, k)
        except Exception as exc:  # staticcheck: ignore[broad-except] — binding-agnostic tool surface: whatever backend failure occurs must come back as the ERROR string the agent reads and reacts to
            return f"ERROR: {exc}"
        if not ranked:
            return f"(no values in {col})"
        lines = [f"top-{len(ranked)} values of {col} relevant to {key!r}:"]
        for value, score in ranked:
            lines.append(f"  {value!r}  (relevance {score:.2f})")
        return "\n".join(lines)

    # ---------------------------------------------------------- inspection

    def schema_mode(self) -> str:
        """'full' or 'hierarchical' — which strategy get_schema() uses now."""
        count = len(self.permitted_objects())
        if count <= self.config.schema_detail_threshold:
            return "full"
        return "hierarchical"
