"""Concurrency benchmark: threaded dispatcher vs serialized execution.

Two workloads over the multi-session service layer:

* **Read-heavy mixed** — N agent sessions issue a stream of SELECTs (PK
  probes, scans, aggregates) with a sprinkle of INSERTs into a shared
  audit table, against one in-memory database. Every request carries a
  simulated downstream I/O delay (the network/LLM round trip a real
  agent front end spends most of its wall clock on — pure-Python CPU
  work cannot speed up under the GIL, *overlapping I/O waits* is exactly
  the dispatcher's job). The same request stream runs once through
  :class:`~repro.service.SerialDispatcher` (today's one-at-a-time
  semantics) and once through the threaded
  :class:`~repro.service.Dispatcher`; the headline number is the
  throughput ratio.

* **Writer contention** — M sessions repeatedly run the classic
  lost-update transaction (``BEGIN``; read a shared counter; write back
  +1; ``COMMIT``) through the threaded dispatcher against a *durable*
  database. Shared locks held to transaction end force upgrade
  deadlocks; victims receive a retryable error and re-run. The workload
  passes only if **every** increment lands (zero lost updates), every
  session terminates (zero hangs — each deadlock was detected and a
  victim aborted), and the recovered database replays to the same
  counter value (WAL ``seq`` stayed sane under concurrent commits).
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
import time
from typing import Any

from ..mcp import ToolCall, ToolResult
from ..minidb import Database
from ..service import (
    Dispatcher,
    RetryPolicy,
    SerialDispatcher,
    SessionManager,
    retryable_result,
    run_with_retries,
)
from ..service.sessions import ServiceSession

_FIRST = ["ada", "grace", "edsger", "barbara", "donald", "alan", "margaret"]
_CITY = ["zurich", "lisbon", "osaka", "quito", "tromso", "accra", "perth"]


def _build_read_db(rows: int) -> Database:
    db = Database(owner="admin")
    session = db.connect("admin")
    session.execute(
        "CREATE TABLE customers (id INT PRIMARY KEY, name TEXT, city TEXT, "
        "spend INT)"
    )
    session.execute("CREATE INDEX idx_customers_city ON customers (city)")
    session.execute("CREATE TABLE audit (id INT PRIMARY KEY, note TEXT)")
    batch: list[str] = []
    for i in range(rows):
        name = f"{_FIRST[i % len(_FIRST)]}-{i}"
        city = _CITY[i % len(_CITY)]
        batch.append(f"({i}, '{name}', '{city}', {i % 997})")
        if len(batch) == 500:
            session.execute(
                "INSERT INTO customers VALUES " + ", ".join(batch)
            )
            batch = []
    if batch:
        session.execute("INSERT INTO customers VALUES " + ", ".join(batch))
    return db


def _read_heavy_calls(
    session_index: int, ops: int, rows: int
) -> list[ToolCall]:
    """One session's request stream: ~92% reads, ~8% audit inserts."""
    calls: list[ToolCall] = []
    for op in range(ops):
        kind = op % 12
        if kind < 8:  # indexed point read (the OLTP bread and butter)
            key = (session_index * 7919 + op * 104729) % rows
            sql = f"SELECT name, spend FROM customers WHERE id = {key}"
        elif kind < 10:  # index-probed city slice with a residual filter
            city = _CITY[(session_index + op) % len(_CITY)]
            sql = (
                "SELECT id, name FROM customers "
                f"WHERE city = '{city}' AND spend > 990"
            )
        elif kind < 11:  # aggregate over one indexed city
            city = _CITY[(session_index * 3 + op) % len(_CITY)]
            sql = (
                "SELECT COUNT(*), SUM(spend) FROM customers "
                f"WHERE city = '{city}'"
            )
        else:  # the mixed part: a write into a shared table
            audit_id = session_index * 100_000 + op
            sql = (
                f"INSERT INTO audit VALUES ({audit_id}, "
                f"'session {session_index} op {op}')"
            )
        action = "insert" if sql.startswith("INSERT") else "select"
        calls.append(ToolCall(action, {"sql": sql}))
    return calls


def _io_handler(io_delay_s: float):
    """Wrap the default handler with a simulated downstream I/O wait."""

    def handler(session: ServiceSession, call: ToolCall) -> ToolResult:
        if io_delay_s > 0:
            time.sleep(io_delay_s)
        return session.call(call)

    return handler


def run_read_heavy(
    sessions: int = 8,
    workers: int = 8,
    ops_per_session: int = 40,
    rows: int = 10_000,
    io_delay_ms: float = 8.0,
) -> dict[str, Any]:
    """Throughput of the threaded dispatcher vs serialized execution."""
    io_delay_s = io_delay_ms / 1000.0
    streams: dict[int, list[ToolCall]] = {
        n: _read_heavy_calls(n, ops_per_session, rows) for n in range(sessions)
    }
    # round-robin interleave so the serialized baseline is order-fair
    interleaved: list[tuple[int, ToolCall]] = []
    for op in range(ops_per_session):
        for n in range(sessions):
            interleaved.append((n, streams[n][op]))

    timings: dict[str, float] = {}
    error_counts: dict[str, int] = {}
    for label in ("serial", "threaded"):
        db = _build_read_db(rows)
        manager = SessionManager(db, lock_timeout_s=10.0)
        tokens = {
            n: manager.create_session("admin").token for n in range(sessions)
        }
        if label == "serial":
            dispatcher: Any = SerialDispatcher(
                manager, handler=_io_handler(io_delay_s)
            )
        else:
            dispatcher = Dispatcher(
                manager,
                workers=workers,
                queue_limit=sessions * ops_per_session + 1,
                handler=_io_handler(io_delay_s),
            )
        started = time.perf_counter()
        futures = [
            dispatcher.submit(tokens[n], call) for n, call in interleaved
        ]
        results = [future.result(timeout=120.0) for future in futures]
        timings[label] = time.perf_counter() - started
        error_counts[label] = sum(1 for r in results if r.is_error)
        if label == "threaded":
            metrics = dispatcher.metrics.snapshot()
        dispatcher.close()
        manager.close()

    requests = len(interleaved)
    speedup = timings["serial"] / timings["threaded"]
    return {
        "sessions": sessions,
        "workers": workers,
        "requests": requests,
        "rows": rows,
        "io_delay_ms": io_delay_ms,
        "serial_s": round(timings["serial"], 4),
        "threaded_s": round(timings["threaded"], 4),
        "serial_rps": round(requests / timings["serial"], 1),
        "threaded_rps": round(requests / timings["threaded"], 1),
        "speedup": round(speedup, 2),
        "errors": error_counts,
        "p50_latency_ms": round(metrics["p50_latency_s"] * 1000, 3),
        "p95_latency_ms": round(metrics["p95_latency_s"] * 1000, 3),
        "max_queue_depth": metrics["max_queue_depth"],
    }


def run_writer_contention(
    sessions: int = 6,
    increments_per_session: int = 20,
    lock_timeout_s: float = 5.0,
    session_deadline_s: float = 120.0,
    retry_policy: RetryPolicy | None = None,
) -> dict[str, Any]:
    """Lost-update stress through the threaded dispatcher, durably.

    Each session re-issues its deadlock-aborted transactions through the
    blessed :func:`~repro.service.run_with_retries` primitive.
    ``retry_policy`` overrides the backoff schedule — the fault-recovery
    benchmark passes a zero-backoff policy to measure what the jitter
    costs (and buys) against immediate re-issue.
    """
    data_dir = tempfile.mkdtemp(prefix="bench-concurrency-")
    try:
        db = Database.open(os.path.join(data_dir, "db"))
        admin = db.connect("admin")
        admin.execute("CREATE TABLE counters (id INT PRIMARY KEY, val INT)")
        admin.execute("INSERT INTO counters VALUES (1, 0)")
        manager = SessionManager(db, lock_timeout_s=lock_timeout_s)
        # workers >= sessions: a session blocked in a lock wait must never
        # starve the request that would resolve (or detect) the cycle
        dispatcher = Dispatcher(
            manager, workers=sessions, queue_limit=sessions * 4
        )
        outcome = {
            "committed": 0,
            "retries": 0,
            "stuck_sessions": 0,
            "unexpected_errors": 0,
        }
        guard = threading.Lock()

        def one_session(index: int) -> None:
            token = manager.create_session("admin").token
            deadline = time.monotonic() + session_deadline_s
            # generous attempt budget: under heavy upgrade-deadlock storms
            # most attempts are victims; the deadline below bounds time
            policy = retry_policy or RetryPolicy(
                max_attempts=1000,
                base_delay_s=0.001,
                max_delay_s=0.05,
                seed=index,
            )

            def attempt() -> ToolResult:
                """One whole read-modify-write transaction; returns the
                first error result (after rolling back) or the commit."""
                begin = dispatcher.call(token, ToolCall("begin", {}))
                if begin.is_error:
                    return begin
                read = dispatcher.call(
                    token,
                    ToolCall(
                        "select",
                        {"sql": "SELECT val FROM counters WHERE id = 1"},
                    ),
                )
                if read.is_error:
                    # the deadlock abort already rolled the transaction
                    # back; this rollback is a harmless no-op then
                    dispatcher.call(token, ToolCall("rollback", {}))
                    return read
                value = read.metadata["rows"][0][0]
                write = dispatcher.call(
                    token,
                    ToolCall(
                        "update",
                        {
                            "sql": (
                                f"UPDATE counters SET val = {value + 1} "
                                "WHERE id = 1"
                            )
                        },
                    ),
                )
                if write.is_error:
                    dispatcher.call(token, ToolCall("rollback", {}))
                    return write
                return dispatcher.call(token, ToolCall("commit", {}))

            def note_retry(attempt_number: int, failure: Any) -> None:
                with guard:
                    outcome["retries"] += 1

            done = 0
            while done < increments_per_session:
                if time.monotonic() > deadline:
                    with guard:
                        outcome["stuck_sessions"] += 1
                    return
                result = run_with_retries(
                    attempt,
                    policy,
                    retry_result=retryable_result,
                    on_retry=note_retry,
                )
                if result.is_error:
                    with guard:
                        outcome["unexpected_errors"] += 1
                    continue
                done += 1
                with guard:
                    outcome["committed"] += 1

        threads = [
            threading.Thread(target=one_session, args=(n,), daemon=True)
            for n in range(sessions)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=session_deadline_s + 30.0)
        elapsed = time.perf_counter() - started
        stuck = outcome["stuck_sessions"] + sum(
            1 for thread in threads if thread.is_alive()
        )

        final_value = db.connect("admin").scalar(
            "SELECT val FROM counters WHERE id = 1"
        )
        lock_stats = dict(manager.lock_manager.stats)
        dispatcher.close()
        manager.close()
        db.close()

        # recovery check: reopen and confirm the WAL replays to the same
        # state the live database reached under concurrent commits
        reopened = Database.open(os.path.join(data_dir, "db"))
        recovered_value = reopened.connect("admin").scalar(
            "SELECT val FROM counters WHERE id = 1"
        )
        reopened.close()

        expected = sessions * increments_per_session
        return {
            "sessions": sessions,
            "increments_per_session": increments_per_session,
            "elapsed_s": round(elapsed, 3),
            "committed": outcome["committed"],
            "expected": expected,
            "final_value": final_value,
            "recovered_value": recovered_value,
            "lost_updates": outcome["committed"] - final_value,
            "retries": outcome["retries"],
            "deadlocks_detected": lock_stats["deadlocks"],
            "lock_timeouts": lock_stats["timeouts"],
            "stuck_sessions": stuck,
            "unexpected_errors": outcome["unexpected_errors"],
        }
    finally:
        shutil.rmtree(data_dir, ignore_errors=True)


def experiment_concurrency(
    sessions: int = 8,
    workers: int = 8,
    ops_per_session: int = 40,
    rows: int = 10_000,
    io_delay_ms: float = 8.0,
    writer_sessions: int = 6,
    increments_per_session: int = 20,
) -> dict[str, Any]:
    """Both workloads plus the combined pass verdicts."""
    read_heavy = run_read_heavy(
        sessions=sessions,
        workers=workers,
        ops_per_session=ops_per_session,
        rows=rows,
        io_delay_ms=io_delay_ms,
    )
    contention = run_writer_contention(
        sessions=writer_sessions,
        increments_per_session=increments_per_session,
    )
    contention_ok = (
        contention["lost_updates"] == 0
        and contention["stuck_sessions"] == 0
        and contention["unexpected_errors"] == 0
        and contention["committed"] == contention["expected"]
        and contention["final_value"] == contention["recovered_value"]
    )
    return {
        "read_heavy": read_heavy,
        "writer_contention": contention,
        "contention_ok": contention_ok,
    }
