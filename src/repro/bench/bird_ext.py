"""BIRD-Ext task generation (paper Section 3.1, benchmark 1).

Extends read-only NL2SQL tasks with INSERT/UPDATE/DELETE modifications:
150 read tasks plus 150 write tasks (50 per modification type), generated
from templates over the synthetic BIRD database. Each task carries:

* ``gold_sql`` — the correct statement;
* ``wrong_identifier_sql`` — a plausible hallucination (wrong column name)
  that fails at the engine, used when the simulated LLM generates SQL
  without schema knowledge;
* ``value_miss_sql`` — for tasks with a tricky text predicate, the variant
  using the NL surface form (runs, silently wrong);
* ``tricky`` — the NL-vs-stored value pair driving get_value usage.
"""

from __future__ import annotations

import random
import re

from .datasets import CATEGORIES, CHARTER_TYPES, REGIONS
from .tasks import DBTask, TrickyValue

#: NL surface forms the task descriptions use for stored values
NL_FORMS = {
    "women's wear": "women",
    "men's wear": "men",
    "children's wear": "kids",
    "sportswear": "sport clothes",
    "West Coast": "west",
    "East Coast": "east",
    "Midwest": "midwest area",
    "Southern": "south",
    "directly funded": "direct funding",
    "locally funded": "local funding",
    "independent": "independent charter",
}

#: plausible-but-wrong identifier substitutions (hallucinations)
_WRONG_IDENTIFIER = {
    "school_name": "name",
    "enrollment": "num_students",
    "avg_math": "math_score",
    "category": "item_category",
    "amount": "total_amount",
    "quantity": "qty",
    "balance": "account_balance",
    "region": "area",
    "county": "county_name",
    "price": "unit_price",
    "client_name": "name",
    "reason": "refund_reason",
    "item_name": "product_name",
    "num_takers": "takers",
    "district": "district_name",
    "charter_type": "charter",
}


def _q(value: str) -> str:
    """SQL-quote a string value (doubling embedded quotes)."""
    return "'" + value.replace("'", "''") + "'"


def _corrupt(sql: str, column: str) -> str | None:
    wrong = _WRONG_IDENTIFIER.get(column)
    if wrong is None or column not in sql:
        return None
    return sql.replace(column, wrong)


_THRESHOLD_RE = re.compile(r"(>=|<=|>|<)\s*(\d+)")


def _logic_miss(sql: str) -> str | None:
    """Perturb the first numeric comparison (off-by-a-lot logic slip)."""

    def bump(match: re.Match) -> str:
        op, number = match.group(1), int(match.group(2))
        flipped = {">": "<", "<": ">", ">=": "<=", "<=": ">="}[op]
        return f"{flipped} {number}"

    mutated = _THRESHOLD_RE.sub(bump, sql, count=1)
    return mutated if mutated != sql else None


# --------------------------------------------------------------------------
# read templates
# --------------------------------------------------------------------------


def _read_templates(rng: random.Random) -> list[dict]:
    threshold = rng.randint(500, 2500)
    math_floor = rng.randint(450, 650)
    amount_floor = rng.randint(50, 400)
    quantity_floor = rng.randint(2, 6)
    balance_floor = rng.randint(500, 5000)
    category = rng.choice(CATEGORIES)
    region = rng.choice(REGIONS)
    charter = rng.choice(CHARTER_TYPES)
    county = rng.choice(["Alameda", "Fresno", "Los Angeles", "Orange", "San Diego"])
    return [
        {
            "description": f"List names of schools with enrollment above {threshold}.",
            "sql": (
                "SELECT school_name FROM schools "
                f"WHERE enrollment > {threshold}"
            ),
            "tables": ["schools"],
            "corrupt_col": "enrollment",
        },
        {
            "description": (
                f"How many schools are in {county} county?"
            ),
            "sql": f"SELECT COUNT(*) FROM schools WHERE county = '{county}'",
            "tables": ["schools"],
            "corrupt_col": "county",
        },
        {
            "description": (
                f"Average math SAT score of schools with enrollment over {threshold}, "
                "joining scores to schools."
            ),
            "sql": (
                "SELECT AVG(s.avg_math) FROM satscores s "
                "JOIN schools c ON s.cds_code = c.cds_code "
                f"WHERE c.enrollment > {threshold}"
            ),
            "tables": ["satscores", "schools"],
            "corrupt_col": "avg_math",
        },
        {
            "description": (
                f"Names of schools whose average math score exceeds {math_floor}, "
                "ordered by score descending."
            ),
            "sql": (
                "SELECT c.school_name, s.avg_math FROM schools c "
                "JOIN satscores s ON s.cds_code = c.cds_code "
                f"WHERE s.avg_math > {math_floor} ORDER BY s.avg_math DESC"
            ),
            "tables": ["schools", "satscores"],
            "corrupt_col": "avg_math",
        },
        {
            "description": (
                f"Schools with {NL_FORMS[charter]} charter type and their enrollment."
            ),
            "sql": (
                "SELECT school_name, enrollment FROM schools "
                f"WHERE charter_type = {_q(charter)}"
            ),
            "tables": ["schools"],
            "corrupt_col": "school_name",
            "tricky": TrickyValue("schools.charter_type", NL_FORMS[charter], charter),
        },
        {
            "description": (
                f"Total sales amount for {NL_FORMS[category]} products of brand A."
            ),
            "sql": (
                "SELECT SUM(s.amount) FROM brand_a_sales s "
                "JOIN brand_a_items i ON s.item_id = i.item_id "
                f"WHERE i.category = {_q(category)}"
            ),
            "tables": ["brand_a_sales", "brand_a_items"],
            "corrupt_col": "amount",
            "tricky": TrickyValue("brand_a_items.category", NL_FORMS[category], category),
        },
        {
            "description": (
                f"Order ids and amounts of brand A sales in the {NL_FORMS[region]} "
                f"region with amount above {amount_floor}."
            ),
            "sql": (
                "SELECT order_id, amount FROM brand_a_sales "
                f"WHERE region = {_q(region)} AND amount > {amount_floor}"
            ),
            "tables": ["brand_a_sales"],
            "corrupt_col": "amount",
            "tricky": TrickyValue("brand_a_sales.region", NL_FORMS[region], region),
        },
        {
            "description": (
                f"Count brand A orders with at least {quantity_floor} units."
            ),
            "sql": (
                "SELECT COUNT(*) FROM brand_a_sales "
                f"WHERE quantity >= {quantity_floor}"
            ),
            "tables": ["brand_a_sales"],
            "corrupt_col": "quantity",
        },
        {
            "description": "Items never sold by brand A (no matching sale).",
            "sql": (
                "SELECT item_name FROM brand_a_items i WHERE NOT EXISTS "
                "(SELECT 1 FROM brand_a_sales s WHERE s.item_id = i.item_id)"
            ),
            "tables": ["brand_a_items", "brand_a_sales"],
            "corrupt_col": "item_name" if "item_name" in _WRONG_IDENTIFIER else "category",
        },
        {
            "description": "Refund amounts together with the original sale amounts.",
            "sql": (
                "SELECT r.refund_id, r.amount, s.amount FROM brand_a_refunds r "
                "JOIN brand_a_sales s ON r.order_id = s.order_id"
            ),
            "tables": ["brand_a_refunds", "brand_a_sales"],
            "corrupt_col": "amount",
        },
        {
            "description": (
                f"Clients whose accounts hold a balance above {balance_floor}."
            ),
            "sql": (
                "SELECT DISTINCT c.client_name FROM clients c "
                "JOIN accounts a ON a.client_id = c.client_id "
                f"WHERE a.balance > {balance_floor}"
            ),
            "tables": ["clients", "accounts"],
            "corrupt_col": "balance",
        },
        {
            "description": "Number of accounts per district, largest first.",
            "sql": (
                "SELECT c.district, COUNT(*) AS n FROM clients c "
                "JOIN accounts a ON a.client_id = c.client_id "
                "GROUP BY c.district ORDER BY n DESC"
            ),
            "tables": ["clients", "accounts"],
            "corrupt_col": "client_name",
        },
        {
            "description": "Average refund amount per refund reason.",
            "sql": (
                "SELECT reason, AVG(amount) FROM brand_a_refunds GROUP BY reason"
            ),
            "tables": ["brand_a_refunds"],
            "corrupt_col": "reason",
        },
        {
            "description": (
                "The five largest brand A orders by amount (id and amount)."
            ),
            "sql": (
                "SELECT order_id, amount FROM brand_a_sales "
                "ORDER BY amount DESC LIMIT 5"
            ),
            "tables": ["brand_a_sales"],
            "corrupt_col": "amount",
        },
        {
            "description": "Accounts with negative balance and their clients.",
            "sql": (
                "SELECT a.account_id, c.client_name FROM accounts a "
                "JOIN clients c ON c.client_id = a.client_id WHERE a.balance < 0"
            ),
            "tables": ["accounts", "clients"],
            "corrupt_col": "balance",
        },
    ]


# --------------------------------------------------------------------------
# write templates
# --------------------------------------------------------------------------


def _insert_templates(rng: random.Random, index: int) -> list[dict]:
    order_id = 9_000 + index
    school_id = 9_000 + index
    refund_id = 9_000 + index
    client_id = 9_000 + index
    amount = round(rng.uniform(20.0, 400.0), 2)
    quantity = rng.randint(1, 6)
    enrollment = rng.randint(100, 2500)
    return [
        {
            "description": (
                f"Record a new brand A sale (order {order_id}) of item 1 in the "
                f"West Coast region: {quantity} units for {amount}."
            ),
            "sql": (
                "INSERT INTO brand_a_sales (order_id, item_id, region, quantity, "
                f"amount, sale_date) VALUES ({order_id}, 1, 'West Coast', "
                f"{quantity}, {amount}, '2025-06-01')"
            ),
            "tables": ["brand_a_sales"],
            "corrupt_col": "quantity",
        },
        {
            "description": (
                f"Register new school {school_id} named 'New Hope Academy' in "
                f"Fresno county, independent charter, enrollment {enrollment}."
            ),
            "sql": (
                "INSERT INTO schools (cds_code, school_name, county, charter_type, "
                f"enrollment) VALUES ({school_id}, 'New Hope Academy', 'Fresno', "
                f"'independent', {enrollment})"
            ),
            "tables": ["schools"],
            "corrupt_col": "school_name",
        },
        {
            "description": (
                f"Log refund {refund_id} of {amount} against order 1 for a "
                "damaged item."
            ),
            "sql": (
                "INSERT INTO brand_a_refunds (refund_id, order_id, amount, reason) "
                f"VALUES ({refund_id}, 1, {amount}, 'damaged')"
            ),
            "tables": ["brand_a_refunds"],
            "corrupt_col": "reason",
        },
        {
            "description": (
                f"Add client {client_id} 'Acme Holdings' in the north district."
            ),
            "sql": (
                "INSERT INTO clients (client_id, client_name, district) "
                f"VALUES ({client_id}, 'Acme Holdings', 'north')"
            ),
            "tables": ["clients"],
            "corrupt_col": "client_name",
        },
    ]


def _update_templates(rng: random.Random, index: int) -> list[dict]:
    pct = rng.choice([5, 10, 15])
    factor = round(1 + pct / 100, 2)
    category = rng.choice(CATEGORIES)
    region = rng.choice(REGIONS)
    floor = rng.randint(100, 1500)
    return [
        {
            "description": (
                f"Raise prices of all {NL_FORMS[category]} items by {pct} percent."
            ),
            "sql": (
                f"UPDATE brand_a_items SET price = price * {factor} "
                f"WHERE category = {_q(category)}"
            ),
            "tables": ["brand_a_items"],
            "corrupt_col": "price",
            "tricky": TrickyValue("brand_a_items.category", NL_FORMS[category], category),
        },
        {
            "description": (
                f"Set quantity to at least 1 for {NL_FORMS[region]} orders "
                "currently at 0 (data repair)."
            ),
            "sql": (
                "UPDATE brand_a_sales SET quantity = 1 "
                f"WHERE region = {_q(region)} AND quantity < 1"
            ),
            "tables": ["brand_a_sales"],
            "corrupt_col": "quantity",
            "tricky": TrickyValue("brand_a_sales.region", NL_FORMS[region], region),
        },
        {
            "description": (
                f"Mark schools with enrollment under {floor} as independent charter."
            ),
            "sql": (
                "UPDATE schools SET charter_type = 'independent' "
                f"WHERE enrollment < {floor}"
            ),
            "tables": ["schools"],
            "corrupt_col": "enrollment",
        },
        {
            "description": "Zero out negative account balances (write-off).",
            "sql": "UPDATE accounts SET balance = 0 WHERE balance < 0",
            "tables": ["accounts"],
            "corrupt_col": "balance",
        },
    ]


def _delete_templates(rng: random.Random, index: int) -> list[dict]:
    reason = rng.choice(["damaged", "late delivery", "wrong size"])
    floor = rng.randint(2, 30)
    return [
        {
            "description": f"Remove refunds filed for reason '{reason}'.",
            "sql": f"DELETE FROM brand_a_refunds WHERE reason = '{reason}'",
            "tables": ["brand_a_refunds"],
            "corrupt_col": "reason",
        },
        {
            "description": (
                f"Delete SAT score rows with fewer than {floor} test takers."
            ),
            "sql": f"DELETE FROM satscores WHERE num_takers < {floor}",
            "tables": ["satscores"],
            "corrupt_col": "num_takers" if "num_takers" in _WRONG_IDENTIFIER else "avg_math",
        },
        {
            "description": "Delete audit-free clients with no accounts.",
            "sql": (
                "DELETE FROM clients WHERE client_id NOT IN "
                "(SELECT client_id FROM accounts)"
            ),
            "tables": ["clients", "accounts"],
            "corrupt_col": "client_name",
        },
        {
            "description": "Remove brand B sales records below 20 in amount.",
            "sql": "DELETE FROM brand_b_sales WHERE amount < 20",
            "tables": ["brand_b_sales"],
            "corrupt_col": "amount",
        },
    ]


# --------------------------------------------------------------------------
# generation
# --------------------------------------------------------------------------


def _task_from_template(template: dict, action: str, task_id: str, seed: int) -> DBTask:
    sql = template["sql"]
    tricky: TrickyValue | None = template.get("tricky")
    value_miss_sql = None
    if tricky is not None:
        value_miss_sql = sql.replace(_q(tricky.stored_form), _q(tricky.nl_form))
        if value_miss_sql == sql:
            value_miss_sql = None
    return DBTask(
        task_id=task_id,
        description=template["description"],
        action=action,
        tables=template["tables"],
        gold_sql=sql,
        wrong_identifier_sql=_corrupt(sql, template["corrupt_col"]),
        value_miss_sql=value_miss_sql,
        logic_miss_sql=_logic_miss(sql) if action in ("SELECT", "UPDATE") else None,
        tricky=tricky,
        seed=seed,
    )


def generate_bird_ext_tasks(
    seed: int = 0,
    n_read: int = 150,
    n_write_each: int = 50,
) -> list[DBTask]:
    """The full BIRD-Ext task suite: reads plus the three write families."""
    rng = random.Random(seed)
    tasks: list[DBTask] = []
    for index in range(n_read):
        templates = _read_templates(rng)
        template = templates[index % len(templates)]
        tasks.append(
            _task_from_template(template, "SELECT", f"read-{index:03d}", seed + index)
        )
    makers = [
        ("INSERT", _insert_templates),
        ("UPDATE", _update_templates),
        ("DELETE", _delete_templates),
    ]
    for action, maker in makers:
        for index in range(n_write_each):
            templates = maker(rng, index)
            template = templates[index % len(templates)]
            tasks.append(
                _task_from_template(
                    template,
                    action,
                    f"{action.lower()}-{index:03d}",
                    seed + 1_000 + index,
                )
            )
    return tasks
