"""Experiment harness: builds toolkits, runs agents on tasks, scores runs.

One function per paper experiment (Figures 5-6, Tables 1-2) returns the
aggregated numbers; the ``benchmarks/`` targets print them in the paper's
row/series layout. Every run is seeded from (task, model, toolkit) so the
whole evaluation is deterministic.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any

from ..agent import ReActAgent, RunTrace
from ..baselines import PGMCP, PGMCPMinus, make_sampled_binding
from ..core import BridgeScope, BridgeScopeConfig, MinidbBinding
from ..llm import PROFILES, ModelProfile, SimulatedDataAgentPolicy
from ..mcp import ToolRegistry, ToolServer
from ..minidb import Database
from ..mltools import MLToolServer
from .bird_ext import generate_bird_ext_tasks
from .datasets import (
    ROLE_ADMIN,
    ROLE_IRRELEVANT,
    ROLE_NORMAL,
    build_bird_database,
    build_housing_database,
)
from .nl2ml import generate_nl2ml_tasks, idealized_pg_mcp_token_cost
from .tasks import DBTask, MLTask

GENERIC_PROMPT = """\
You are a general-purpose data agent operating in a ReAct loop: reason
about the user's task, call one tool, observe its result, and repeat until
the task is complete. You are connected to a database through an MCP
server. Inspect the schema before writing SQL when a schema tool exists;
otherwise discover table structure through exploratory queries. Generate
standard SQL and check execution results carefully — error messages from
the database indicate what to fix. If the task requires modifying data,
apply the modifications the user asked for and verify the reported row
counts look plausible. If a task cannot be completed (for example, the
database rejects every attempt or required access is missing), stop and
abort with a clear explanation instead of retrying forever. Report the
final answer strictly from tool results; never invent data you did not
retrieve. Keep each tool call to a single SQL statement where possible,
and prefer precise predicates over broad scans when filtering data.
"""

TOOLKITS = ("bridgescope", "pg-mcp", "pg-mcp-minus", "pg-mcp-s")

#: theoretical minimum LLM calls (paper Section 3.2/3.3)
BEST_ACHIEVABLE = {
    "read": 3,          # context retrieval, SQL execution, finalization
    "write": 5,         # + begin and commit
    "abort_no_tool": 1, # missing tool is visible without any call
    "abort_schema": 2,  # schema retrieval, then abort
    "ml": 3,            # context retrieval, proxy execution, finalization
}


@dataclass
class TaskRunResult:
    trace: RunTrace
    feasible: bool
    correct: bool | None  # None for infeasible tasks (accuracy undefined)
    intercepted: bool = False  # infeasible task aborted without SQL success


@dataclass
class CellStats:
    """Aggregate over one experiment cell."""

    runs: list[TaskRunResult] = field(default_factory=list)

    def add(self, result: TaskRunResult) -> None:
        self.runs.append(result)

    @property
    def n(self) -> int:
        return len(self.runs)

    @property
    def avg_llm_calls(self) -> float:
        return sum(r.trace.llm_calls for r in self.runs) / max(self.n, 1)

    @property
    def avg_tokens(self) -> float:
        return sum(r.trace.total_tokens for r in self.runs) / max(self.n, 1)

    @property
    def accuracy(self) -> float:
        scored = [r for r in self.runs if r.correct is not None]
        if not scored:
            return 0.0
        return sum(1 for r in scored if r.correct) / len(scored)

    @property
    def completion_rate(self) -> float:
        return sum(1 for r in self.runs if r.trace.completed and not r.trace.aborted) / max(self.n, 1)

    @property
    def transaction_ratio(self) -> float:
        return sum(
            1 for r in self.runs if r.trace.began_transaction and r.trace.committed
        ) / max(self.n, 1)


def _seed_for(task_id: str, model: str, toolkit: str) -> int:
    return zlib.crc32(f"{task_id}|{model}|{toolkit}".encode())


# --------------------------------------------------------------------------
# toolkit assembly
# --------------------------------------------------------------------------


def build_toolkit(
    name: str,
    db: Database,
    user: str,
    extra_servers: list[ToolServer] | None = None,
    config: BridgeScopeConfig | None = None,
) -> tuple[ToolRegistry, str]:
    """Build (registry, system prompt) for a toolkit flavor."""
    extras = extra_servers or []
    if name == "bridgescope":
        bridge = BridgeScope(
            MinidbBinding.for_user(db, user),
            config or BridgeScopeConfig(),
            extra_servers=extras,
        )
        return bridge.registry, bridge.system_prompt()
    if name == "pg-mcp":
        binding = MinidbBinding.for_user(db, user)
        return ToolRegistry([PGMCP(binding), *extras]), GENERIC_PROMPT
    if name == "pg-mcp-minus":
        binding = MinidbBinding.for_user(db, user)
        return ToolRegistry([PGMCPMinus(binding), *extras]), GENERIC_PROMPT
    if name == "pg-mcp-s":
        binding = make_sampled_binding(db, user)
        return ToolRegistry([PGMCP(binding), *extras]), GENERIC_PROMPT
    raise ValueError(f"unknown toolkit {name!r}")


# --------------------------------------------------------------------------
# single-task execution & scoring
# --------------------------------------------------------------------------


def role_feasible(db: Database, user: str, task: DBTask) -> bool:
    """Whether ``user`` holds the privileges the task's gold SQL needs."""
    return all(
        db.privileges.allows(user, task.action, table) for table in task.tables
    )


def run_db_task(
    task: DBTask,
    toolkit: str,
    profile: ModelProfile,
    role: str = ROLE_ADMIN,
    scale: float = 1.0,
) -> TaskRunResult:
    """Run one BIRD-Ext task and score it against a parallel oracle DB."""
    db = build_bird_database(seed=0, scale=scale)
    oracle = build_bird_database(seed=0, scale=scale)
    registry, prompt = build_toolkit(toolkit, db, role)
    policy = SimulatedDataAgentPolicy(
        profile, seed=_seed_for(task.task_id, profile.name, toolkit)
    )
    agent = ReActAgent(policy, registry, prompt, toolkit_name=toolkit)
    trace = agent.run(task)

    feasible = role_feasible(db, role, task)
    oracle_session = oracle.connect(ROLE_ADMIN)
    correct: bool | None = None
    intercepted = False

    if feasible:
        if task.write:
            oracle_session.execute(task.gold_sql)
            correct = (
                trace.completed and not trace.aborted and db.snapshot() == oracle.snapshot()
            )
        else:
            gold_rows = sorted(
                oracle_session.execute(task.gold_sql).rows, key=repr
            )
            agent_rows = (
                sorted(trace.last_payload, key=repr)
                if isinstance(trace.last_payload, list)
                else None
            )
            correct = (
                trace.completed
                and not trace.aborted
                and agent_rows == gold_rows
            )
    else:
        # for infeasible tasks success = clean interception: aborted, and
        # the database was not modified
        intercepted = trace.aborted and db.snapshot() == oracle.snapshot()
    return TaskRunResult(trace, feasible, correct, intercepted)


def run_ml_task(
    task: MLTask,
    toolkit: str,
    profile: ModelProfile,
    housing_db: Database,
) -> TaskRunResult:
    registry, prompt = build_toolkit(
        toolkit, housing_db, ROLE_ADMIN, extra_servers=[MLToolServer()]
    )
    policy = SimulatedDataAgentPolicy(
        profile, seed=_seed_for(task.task_id, profile.name, toolkit)
    )
    agent = ReActAgent(policy, registry, prompt, toolkit_name=toolkit)
    trace = agent.run(task)
    completed = trace.completed and not trace.aborted
    return TaskRunResult(trace, feasible=True, correct=completed)


# --------------------------------------------------------------------------
# experiments
# --------------------------------------------------------------------------


def _profiles(models: list[str] | None) -> list[ModelProfile]:
    names = models or ["gpt-4o", "claude-4"]
    return [PROFILES[name] for name in names]


def _task_subset(tasks: list[DBTask], limit: int | None) -> list[DBTask]:
    if limit is None or limit >= len(tasks):
        return tasks
    # deterministic stratified subset: round-robin over actions
    by_action: dict[str, list[DBTask]] = {}
    for task in tasks:
        by_action.setdefault(task.action, []).append(task)
    subset: list[DBTask] = []
    index = 0
    while len(subset) < limit:
        progressed = False
        for action in sorted(by_action):
            bucket = by_action[action]
            if index < len(bucket) and len(subset) < limit:
                subset.append(bucket[index])
                progressed = True
        if not progressed:
            break
        index += 1
    return subset


def experiment_fig5a(
    models: list[str] | None = None,
    n_tasks: int | None = 40,
    scale: float = 0.5,
) -> dict[str, dict[str, float]]:
    """Context retrieval: avg LLM calls, BridgeScope vs PG-MCP−.

    Uses read tasks (the paper's best-achievable of 3 calls — context
    retrieval, SQL execution, finalization — describes the read workflow).
    """
    reads = [t for t in generate_bird_ext_tasks() if not t.write]
    tasks = _task_subset(reads, n_tasks)
    results: dict[str, dict[str, float]] = {}
    for profile in _profiles(models):
        row: dict[str, float] = {}
        for toolkit in ("bridgescope", "pg-mcp-minus"):
            cell = CellStats()
            for task in tasks:
                cell.add(run_db_task(task, toolkit, profile, scale=scale))
            row[toolkit] = cell.avg_llm_calls
        row["best-achievable"] = float(BEST_ACHIEVABLE["read"])
        results[profile.name] = row
    return results


def experiment_fig5b(
    models: list[str] | None = None,
    n_tasks: int | None = 40,
    scale: float = 0.5,
) -> dict[str, dict[str, float]]:
    """SQL execution accuracy, BridgeScope vs PG-MCP."""
    tasks = _task_subset(generate_bird_ext_tasks(), n_tasks)
    results: dict[str, dict[str, float]] = {}
    for profile in _profiles(models):
        row: dict[str, float] = {}
        for toolkit in ("bridgescope", "pg-mcp"):
            cell = CellStats()
            for task in tasks:
                cell.add(run_db_task(task, toolkit, profile, scale=scale))
            row[toolkit] = cell.accuracy
        results[profile.name] = row
    return results


def experiment_fig5c(
    models: list[str] | None = None,
    n_tasks: int | None = 30,
    scale: float = 0.5,
) -> dict[str, dict[str, float]]:
    """Transaction trigger ratio on write tasks."""
    tasks = [
        t for t in _task_subset(generate_bird_ext_tasks(), None) if t.write
    ]
    if n_tasks is not None:
        tasks = tasks[:n_tasks]
    results: dict[str, dict[str, float]] = {}
    for profile in _profiles(models):
        row: dict[str, float] = {}
        for toolkit in ("bridgescope", "pg-mcp"):
            cell = CellStats()
            for task in tasks:
                cell.add(run_db_task(task, toolkit, profile, scale=scale))
            row[toolkit] = cell.transaction_ratio
        row["best-achievable"] = 1.0
        results[profile.name] = row
    return results


#: the five (role, task-type) cells of Figure 6 / Table 1
FIG6_CELLS = [
    ("A", "read", ROLE_ADMIN, False),
    ("A", "write", ROLE_ADMIN, True),
    ("N", "write", ROLE_NORMAL, True),
    ("I", "read", ROLE_IRRELEVANT, False),
    ("I", "write", ROLE_IRRELEVANT, True),
]


def experiment_fig6_table1(
    models: list[str] | None = None,
    n_tasks_per_cell: int = 20,
    scale: float = 0.5,
) -> dict[str, dict[str, dict[str, float]]]:
    """LLM calls (Fig 6) and token usage (Table 1) across privilege roles.

    Returns ``{model: {cell: {toolkit: value, toolkit+"_tokens": value,
    "best": value}}}`` with cells keyed like ``"(N, write)"``.
    """
    all_tasks = generate_bird_ext_tasks()
    reads = [t for t in all_tasks if not t.write]
    writes = [t for t in all_tasks if t.write]
    results: dict[str, dict[str, dict[str, float]]] = {}
    for profile in _profiles(models):
        per_cell: dict[str, dict[str, float]] = {}
        for label, task_type, role, is_write in FIG6_CELLS:
            tasks = (writes if is_write else reads)[:n_tasks_per_cell]
            cell_key = f"({label}, {task_type})"
            entry: dict[str, float] = {}
            for toolkit in ("bridgescope", "pg-mcp"):
                cell = CellStats()
                for task in tasks:
                    cell.add(run_db_task(task, toolkit, profile, role=role, scale=scale))
                entry[toolkit] = cell.avg_llm_calls
                entry[f"{toolkit}_tokens"] = cell.avg_tokens
                entry[f"{toolkit}_intercepted"] = sum(
                    1 for r in cell.runs if r.intercepted
                ) / max(cell.n, 1)
            if label == "A":
                entry["best"] = float(
                    BEST_ACHIEVABLE["write" if is_write else "read"]
                )
            elif label == "N":
                entry["best"] = float(BEST_ACHIEVABLE["abort_no_tool"])
            else:
                entry["best"] = float(BEST_ACHIEVABLE["abort_schema"])
            per_cell[cell_key] = entry
        results[profile.name] = per_cell
    return results


def experiment_table2(
    models: list[str] | None = None,
    per_level: int = 10,
    housing_rows: int = 20_000,
) -> dict[str, Any]:
    """NL2ML: completion rate, token usage, LLM calls; plus idealized cost."""
    tasks = generate_nl2ml_tasks(per_level=per_level)
    housing = build_housing_database(rows=housing_rows)
    results: dict[str, Any] = {"cells": {}, "idealized_pg_mcp_tokens": 0}
    for profile in _profiles(models):
        for toolkit in ("bridgescope", "pg-mcp", "pg-mcp-s"):
            cell = CellStats()
            for task in tasks:
                cell.add(run_ml_task(task, toolkit, profile, housing))
            results["cells"][(profile.name, toolkit)] = {
                "completion_rate": cell.completion_rate,
                "avg_tokens": cell.avg_tokens,
                "avg_llm_calls": cell.avg_llm_calls,
            }
    results["idealized_pg_mcp_tokens"] = idealized_pg_mcp_token_cost(housing)
    bridgescope_tokens = [
        stats["avg_tokens"]
        for (model, toolkit), stats in results["cells"].items()
        if toolkit == "bridgescope"
    ]
    results["bridgescope_avg_tokens"] = sum(bridgescope_tokens) / max(
        len(bridgescope_tokens), 1
    )
    return results
