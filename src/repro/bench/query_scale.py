"""Query-scale experiment: paged B-trees, cost-based planning, and index
unions vs the seed execution paths.

Shared by ``benchmarks/bench_query_scale.py`` (acceptance benchmark) and
the ``python -m repro.bench query`` CLI. Builds one wide synthetic table
and times eight agent-shaped query classes under the fast paths and
their forced baselines:

* **selective range** — ``WHERE val >= lo AND val < hi`` through a
  ``USING BTREE`` index slice vs the full sequential scan
  (``planner_options["enable_index_scan"] = False``);
* **ordered top-N** — ``ORDER BY val LIMIT k`` through the early-exit
  ordered index scan vs a full materialize-and-sort
  (``enable_index_scan`` and ``enable_topn`` both off);
* **compiled predicate** — a multi-conjunct seq-scan WHERE through the
  closure-compiled evaluator vs the AST-walking interpreter
  (``enable_compiled_predicates = False``);
* **index union** — a selective 10-member ``val IN (...)`` served as a
  union of B-tree probes vs the forced sequential scan;
* **B-tree writes** — incremental ``SortedIndex.insert`` into a loaded
  paged B-tree vs the pre-PR-8 flat-sorted-array algorithm (``insort``
  into one big list), measured on synthetic entries at the same scale;
* **stats vs static planning** — a skewed conjunction where the static
  preference order picks a fully-bound hash probe on a 90%-heavy value
  and the post-``ANALYZE`` cost model switches to the ~50-row range
  slice instead;
* **batch filter** — a low-selectivity multi-conjunct seq-scan filter
  with a wide projection through the column-batch (vectorized) pipeline
  vs the row-at-a-time plan (``enable_batch_execution = False``);
* **batch aggregate** — a full-table ``GROUP BY`` folding five
  aggregates over column slices vs per-row accumulation.

Every timed pair also asserts byte-identical results, and the returned
payload records the EXPLAIN plans so the acceptance gate can verify the
fast paths were actually planned.
"""

from __future__ import annotations

import time
from bisect import insort
from typing import Any

from repro.minidb import Database
from repro.minidb.database import Session
from repro.minidb.storage import SortedIndex, ordering_key

TOPN_SQL = "SELECT id, val FROM events ORDER BY val LIMIT 10"
PREDICATE_SQL = (
    "SELECT COUNT(*) FROM events WHERE grp >= 10 AND grp < 90 "
    "AND flag = 1 AND name LIKE 'n1%'"
)
BATCH_FILTER_SQL = (
    "SELECT id, val, name FROM events "
    "WHERE grp >= 10 AND grp < 90 AND flag = 1"
)
BATCH_AGGREGATE_SQL = (
    "SELECT grp, COUNT(*), SUM(val), MIN(val), MAX(val), AVG(flag) "
    "FROM events GROUP BY grp"
)

#: IN-list width of the index-union query class
UNION_MEMBERS = 10


def range_sql(rows: int) -> str:
    """A ~50-row slice of the permuted val column, at any table size."""
    low = rows // 25
    return (
        f"SELECT COUNT(*) FROM events WHERE val >= {low} AND val < {low + 50}"
    )


def union_sql(rows: int) -> str:
    """A 10-member IN over ``val`` — one matching row per member."""
    members = ", ".join(
        str((i * rows) // UNION_MEMBERS + 3) for i in range(UNION_MEMBERS)
    )
    return f"SELECT COUNT(*) FROM events WHERE val IN ({members})"


def skew_sql(rows: int) -> str:
    """Skewed conjunction: ``hot = 0`` covers 90% of the table while the
    ``val`` range keeps ~50 rows — the probe choice decides the cost."""
    low = rows // 3
    return (
        f"SELECT COUNT(*) FROM events WHERE hot = 0 "
        f"AND val >= {low} AND val < {low + 50}"
    )

#: planner toggles that force the seed behavior for each query class
_BASELINES = {
    "range": {"enable_index_scan": False},
    "topn": {"enable_index_scan": False, "enable_topn": False},
    "predicate": {"enable_compiled_predicates": False},
    "union": {"enable_index_scan": False},
    "batch_filter": {"enable_batch_execution": False},
    "batch_aggregate": {"enable_batch_execution": False},
}


def build_session(rows: int) -> Session:
    """A fresh database with one ``rows``-sized indexed events table."""
    db = Database(owner="bench")
    session = db.connect("bench")
    session.execute(
        "CREATE TABLE events (id INT PRIMARY KEY, grp INT, val INT, "
        "flag INT, name TEXT, hot INT)"
    )
    heap = db.heap("events")
    for i in range(rows):
        heap.insert(
            {
                "id": i,
                "grp": i % 100,
                "val": (i * 7919) % rows,  # full-period permutation of 0..rows
                "flag": i % 2,
                "name": f"n{i % 1000}",
                # 90% of rows share hot=0; the rest are distinct
                "hot": i if i % 10 == 0 else 0,
            }
        )
    # the ordered index arrives after the data: one bulk-sorted backfill
    session.execute("CREATE INDEX ix_events_val ON events USING BTREE (val)")
    session.execute("CREATE INDEX ix_events_hot ON events (hot)")
    return session


def _time_query(session: Session, sql: str, repeats: int) -> tuple[float, list]:
    """Best-of-``repeats`` wall time plus the (stable) result rows."""
    best = float("inf")
    expected = None
    for _ in range(repeats):
        start = time.perf_counter()
        rows = session.execute(sql).rows
        best = min(best, time.perf_counter() - start)
        if expected is None:
            expected = rows
        assert rows == expected
    return best, expected


def _measure(
    session: Session, name: str, sql: str, repeats: int
) -> dict[str, Any]:
    options = session.db.planner_options
    plan = [line for (line,) in session.execute(f"EXPLAIN {sql}").rows]
    fast_s, fast_rows = _time_query(session, sql, repeats)
    saved = dict(options)
    options.update(_BASELINES[name])
    try:
        base_s, base_rows = _time_query(session, sql, max(1, repeats - 1))
    finally:
        options.update(saved)
    return {
        "sql": sql,
        "plan": plan,
        "fast_ms": fast_s * 1000,
        "baseline_ms": base_s * 1000,
        "speedup": (base_s / fast_s) if fast_s > 0 else float("inf"),
        "identical": fast_rows == base_rows,
    }


def _measure_btree_write(entries: int, inserts: int) -> dict[str, Any]:
    """Incremental insert cost: paged B-tree vs the flat-sorted-array
    algorithm the B-tree replaced (``insort`` into one list).

    Both sides start pre-loaded with ``entries`` sorted keys and absorb
    ``inserts`` interleaved new keys. The flat model times exactly the
    data movement the old ``SortedIndex.insert`` paid per mutation.
    """
    flat = [(ordering_key((i * 2 + 1,)), i) for i in range(entries)]
    index = SortedIndex("bench_ix", ("val",), unique=False)
    index.bulk_load((i, {"val": i * 2 + 1}) for i in range(entries))
    new_rows = [
        (entries + j, {"val": (j * 7919) % (entries * 2)})
        for j in range(inserts)
    ]

    start = time.perf_counter()
    for rid, row in new_rows:
        index.insert(rid, row, "events")
    btree_s = time.perf_counter() - start

    start = time.perf_counter()
    for rid, row in new_rows:
        insort(flat, (ordering_key((row["val"],)), rid))
    flat_s = time.perf_counter() - start

    assert len(index) == entries + inserts
    return {
        "entries": entries,
        "inserts": inserts,
        "fast_ms": btree_s * 1000,
        "baseline_ms": flat_s * 1000,
        "speedup": (flat_s / btree_s) if btree_s > 0 else float("inf"),
        "identical": True,  # structural: same entries on both sides
    }


def _measure_stats_skew(
    session: Session, sql: str, repeats: int
) -> dict[str, Any]:
    """The same skewed query planned statically (no statistics) and then
    cost-based (after ``ANALYZE``). Must run after every other class —
    the collected statistics stay on the catalog.
    """
    explain = lambda: [  # noqa: E731
        line for (line,) in session.execute(f"EXPLAIN {sql}").rows
    ]
    static_plan = explain()
    static_s, static_rows = _time_query(session, sql, repeats)
    session.execute("ANALYZE events")
    stats_plan = explain()
    stats_s, stats_rows = _time_query(session, sql, repeats)
    return {
        "sql": sql,
        "plan": stats_plan,
        "static_plan": static_plan,
        "fast_ms": stats_s * 1000,
        "baseline_ms": static_s * 1000,
        "speedup": (static_s / stats_s) if stats_s > 0 else float("inf"),
        "identical": static_rows == stats_rows,
    }


def experiment_query_scale(rows: int = 100_000, repeats: int = 3) -> dict[str, Any]:
    """Measure the eight query classes; returns one payload per class."""
    session = build_session(rows)
    result: dict[str, Any] = {"rows": rows}
    for name, sql in (
        ("range", range_sql(rows)),
        ("topn", TOPN_SQL),
        ("predicate", PREDICATE_SQL),
        ("union", union_sql(rows)),
        ("batch_filter", BATCH_FILTER_SQL),
        ("batch_aggregate", BATCH_AGGREGATE_SQL),
    ):
        result[name] = _measure(session, name, sql, repeats)
    # synthetic-entry write bench: small tables leave the flat array's
    # O(n) memmove too cheap to measure, so keep a meaningful floor
    entries = max(rows, 200_000)
    result["btree_write"] = _measure_btree_write(
        entries, inserts=max(500, min(5_000, entries // 200))
    )
    # last: ANALYZE leaves statistics on the catalog
    result["stats_skew"] = _measure_stats_skew(session, skew_sql(rows), repeats)
    stats = session.db.planner_stats
    result["planner_stats"] = {
        key: stats[key]
        for key in (
            "range_scans",
            "ordered_scans",
            "topn_limits",
            "index_scans",
            "union_scans",
            "seq_scans",
            "batch_scans",
        )
    }
    result["identical"] = all(
        result[name]["identical"]
        for name in (
            "range",
            "topn",
            "predicate",
            "union",
            "batch_filter",
            "batch_aggregate",
            "stats_skew",
        )
    )
    return result
