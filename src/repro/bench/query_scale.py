"""Query-scale experiment: ordered indexes + compiled predicates vs the
seed execution paths.

Shared by ``benchmarks/bench_query_scale.py`` (acceptance benchmark) and
the ``python -m repro.bench query`` CLI. Builds one wide synthetic table
and times three agent-shaped query classes under the PR-5 fast paths and
their forced baselines:

* **selective range** — ``WHERE val >= lo AND val < hi`` through a
  ``USING BTREE`` index slice vs the full sequential scan
  (``planner_options["enable_index_scan"] = False``);
* **ordered top-N** — ``ORDER BY val LIMIT k`` through the early-exit
  ordered index scan vs a full materialize-and-sort
  (``enable_index_scan`` and ``enable_topn`` both off);
* **compiled predicate** — a multi-conjunct seq-scan WHERE through the
  closure-compiled evaluator vs the AST-walking interpreter
  (``enable_compiled_predicates = False``).

Every timed pair also asserts byte-identical results, and the returned
payload records the EXPLAIN plans so the acceptance gate can verify the
fast paths were actually planned.
"""

from __future__ import annotations

import time
from typing import Any

from repro.minidb import Database
from repro.minidb.database import Session

TOPN_SQL = "SELECT id, val FROM events ORDER BY val LIMIT 10"
PREDICATE_SQL = (
    "SELECT COUNT(*) FROM events WHERE grp >= 10 AND grp < 90 "
    "AND flag = 1 AND name LIKE 'n1%'"
)


def range_sql(rows: int) -> str:
    """A ~50-row slice of the permuted val column, at any table size."""
    low = rows // 25
    return (
        f"SELECT COUNT(*) FROM events WHERE val >= {low} AND val < {low + 50}"
    )

#: planner toggles that force the seed behavior for each query class
_BASELINES = {
    "range": {"enable_index_scan": False},
    "topn": {"enable_index_scan": False, "enable_topn": False},
    "predicate": {"enable_compiled_predicates": False},
}


def build_session(rows: int) -> Session:
    """A fresh database with one ``rows``-sized indexed events table."""
    db = Database(owner="bench")
    session = db.connect("bench")
    session.execute(
        "CREATE TABLE events (id INT PRIMARY KEY, grp INT, val INT, "
        "flag INT, name TEXT)"
    )
    heap = db.heap("events")
    for i in range(rows):
        heap.insert(
            {
                "id": i,
                "grp": i % 100,
                "val": (i * 7919) % rows,  # full-period permutation of 0..rows
                "flag": i % 2,
                "name": f"n{i % 1000}",
            }
        )
    # the ordered index arrives after the data: one bulk-sorted backfill
    session.execute("CREATE INDEX ix_events_val ON events USING BTREE (val)")
    return session


def _time_query(session: Session, sql: str, repeats: int) -> tuple[float, list]:
    """Best-of-``repeats`` wall time plus the (stable) result rows."""
    best = float("inf")
    expected = None
    for _ in range(repeats):
        start = time.perf_counter()
        rows = session.execute(sql).rows
        best = min(best, time.perf_counter() - start)
        if expected is None:
            expected = rows
        assert rows == expected
    return best, expected


def _measure(
    session: Session, name: str, sql: str, repeats: int
) -> dict[str, Any]:
    options = session.db.planner_options
    plan = [line for (line,) in session.execute(f"EXPLAIN {sql}").rows]
    fast_s, fast_rows = _time_query(session, sql, repeats)
    saved = dict(options)
    options.update(_BASELINES[name])
    try:
        base_s, base_rows = _time_query(session, sql, max(1, repeats - 1))
    finally:
        options.update(saved)
    return {
        "sql": sql,
        "plan": plan,
        "fast_ms": fast_s * 1000,
        "baseline_ms": base_s * 1000,
        "speedup": (base_s / fast_s) if fast_s > 0 else float("inf"),
        "identical": fast_rows == base_rows,
    }


def experiment_query_scale(rows: int = 100_000, repeats: int = 3) -> dict[str, Any]:
    """Measure the three query classes; returns one payload per class."""
    session = build_session(rows)
    result: dict[str, Any] = {"rows": rows}
    for name, sql in (
        ("range", range_sql(rows)),
        ("topn", TOPN_SQL),
        ("predicate", PREDICATE_SQL),
    ):
        result[name] = _measure(session, name, sql, repeats)
    stats = session.db.planner_stats
    result["planner_stats"] = {
        key: stats[key]
        for key in ("range_scans", "ordered_scans", "topn_limits", "index_scans")
    }
    result["identical"] = all(
        result[name]["identical"] for name in ("range", "topn", "predicate")
    )
    return result
