"""Join-scale experiment: minidb hash joins vs the nested-loop baseline.

Shared by ``benchmarks/bench_join_scale.py`` (acceptance benchmark) and the
``python -m repro.bench joins`` CLI. Builds a synthetic ``orders`` /
``customers`` pair and times an agent-shaped equi-join under both join
strategies; the nested-loop side (the seed executor's only strategy,
reachable via ``db.planner_options["enable_hash_join"] = False``) can be
measured at a smaller row count and extrapolated quadratically, since at
production row counts it is too slow to run at all.
"""

from __future__ import annotations

import time
from typing import Any

from repro.minidb import Database
from repro.minidb.database import Session

JOIN_SQL = (
    "SELECT COUNT(*) FROM orders o JOIN customers c ON o.customer_id = c.id"
)


def build_session(rows: int) -> Session:
    """A fresh database with two ``rows``-sized tables joined by FK shape."""
    db = Database(owner="bench")
    session = db.connect("bench")
    session.execute("CREATE TABLE customers (id INT PRIMARY KEY, region TEXT)")
    session.execute(
        "CREATE TABLE orders (id INT PRIMARY KEY, customer_id INT, amount FLOAT)"
    )
    customers = db.heap("customers")
    orders = db.heap("orders")
    regions = ("north", "south", "east", "west")
    for i in range(rows):
        customers.insert({"id": i, "region": regions[i % 4]})
    for i in range(rows):
        orders.insert(
            {"id": i, "customer_id": (i * 7919) % rows, "amount": float(i % 100)}
        )
    return session


def time_join(session: Session, repeats: int = 3) -> float:
    """Best-of-``repeats`` wall time of the benchmark join, in seconds."""
    best = float("inf")
    expected = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = session.execute(JOIN_SQL).rows
        best = min(best, time.perf_counter() - start)
        if expected is None:
            expected = result
        assert result == expected
    return best


def experiment_join_scale(
    rows: int = 10_000, nl_rows: int = 1_000
) -> dict[str, Any]:
    """Measure both strategies; nested loop extrapolated from ``nl_rows``."""
    nl_rows = min(nl_rows, rows)
    session = build_session(rows)
    plan = [line for (line,) in session.execute(f"EXPLAIN {JOIN_SQL}").rows]
    matches = session.execute(JOIN_SQL).scalar()
    hash_seconds = time_join(session)

    nl_session = session if nl_rows == rows else build_session(nl_rows)
    nl_session.db.planner_options["enable_hash_join"] = False
    nl_measured = time_join(nl_session, repeats=1)
    nl_session.db.planner_options["enable_hash_join"] = True
    scale = (rows / nl_rows) ** 2
    nl_seconds = nl_measured * scale

    return {
        "rows": rows,
        "nl_rows": nl_rows,
        "matches": matches,
        "plan": plan,
        "hash_ms": hash_seconds * 1000,
        "nl_ms": nl_seconds * 1000,
        "nl_extrapolated": scale != 1,
        "speedup": (nl_seconds / hash_seconds) if hash_seconds > 0 else float("inf"),
    }
