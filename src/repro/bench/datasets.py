"""Synthetic databases for the two benchmarks.

* :func:`build_bird_database` — a multi-domain database standing in for
  BIRD's: a school district domain, a retail chain domain (the paper's
  running example), and a small finance domain. Text columns contain
  planted surface forms ("women's wear") whose NL forms ("women") differ,
  exercising the get_value code path.
* :func:`build_housing_database` — the California-housing stand-in: one
  ``house`` table, 10 columns × 20,000 rows, numeric features plus a
  categorical ``ocean_proximity``, with a planted linear-ish price
  structure so regression models fit meaningfully.

Row loading bypasses the SQL layer (direct heap writes after schema
creation) so per-task database rebuilds stay cheap; constraints hold by
construction.
"""

from __future__ import annotations

import random
from typing import Any

from ..minidb import Database

#: the roles simulated in Section 3.3
ROLE_ADMIN = "admin"
ROLE_NORMAL = "normal"
ROLE_IRRELEVANT = "irrelevant"

CATEGORIES = ["women's wear", "men's wear", "children's wear", "sportswear"]
REGIONS = ["West Coast", "East Coast", "Midwest", "Southern"]
CHARTER_TYPES = ["directly funded", "locally funded", "independent"]
OCEAN_PROXIMITY = ["<1H OCEAN", "INLAND", "NEAR OCEAN", "NEAR BAY", "ISLAND"]


def _bulk_load(db: Database, table: str, rows: list[dict[str, Any]]) -> None:
    heap = db.heap(table)
    for row in rows:
        heap.insert(row)


def build_bird_database(seed: int = 0, scale: float = 1.0) -> Database:
    """Build the BIRD-Ext substrate database with all three domains."""
    rng = random.Random(seed)
    db = Database(owner=ROLE_ADMIN, name="bird_ext")
    admin = db.connect(ROLE_ADMIN)

    n = lambda base: max(4, int(base * scale))  # noqa: E731 - local scaler

    # ---------------------------------------------------------- schools
    admin.execute(
        "CREATE TABLE schools (cds_code INT PRIMARY KEY, school_name TEXT NOT NULL, "
        "county TEXT, charter_type TEXT, enrollment INT CHECK (enrollment >= 0))"
    )
    admin.execute(
        "CREATE TABLE satscores (score_id INT PRIMARY KEY, cds_code INT NOT NULL "
        "REFERENCES schools(cds_code), avg_math FLOAT, avg_reading FLOAT, "
        "num_takers INT)"
    )
    counties = ["Alameda", "Fresno", "Los Angeles", "Orange", "San Diego"]
    school_rows = []
    for i in range(1, n(60) + 1):
        school_rows.append(
            {
                "cds_code": i,
                "school_name": f"School {i:03d}",
                "county": rng.choice(counties),
                "charter_type": rng.choice(CHARTER_TYPES),
                "enrollment": rng.randint(80, 3000),
            }
        )
    _bulk_load(db, "schools", school_rows)
    sat_rows = []
    for i in range(1, n(50) + 1):
        sat_rows.append(
            {
                "score_id": i,
                "cds_code": rng.randint(1, n(60)),
                "avg_math": round(rng.uniform(380.0, 720.0), 1),
                "avg_reading": round(rng.uniform(380.0, 720.0), 1),
                "num_takers": rng.randint(10, 400),
            }
        )
    _bulk_load(db, "satscores", sat_rows)

    # ----------------------------------------------------------- retail
    admin.execute(
        "CREATE TABLE brand_a_items (item_id INT PRIMARY KEY, item_name TEXT NOT NULL, "
        "category TEXT, price FLOAT CHECK (price >= 0))"
    )
    admin.execute(
        "CREATE TABLE brand_a_sales (order_id INT PRIMARY KEY, item_id INT NOT NULL "
        "REFERENCES brand_a_items(item_id), region TEXT, quantity INT, "
        "amount FLOAT, sale_date DATE)"
    )
    admin.execute(
        "CREATE TABLE brand_a_refunds (refund_id INT PRIMARY KEY, order_id INT "
        "NOT NULL REFERENCES brand_a_sales(order_id), amount FLOAT, reason TEXT)"
    )
    admin.execute(
        "CREATE TABLE brand_b_sales (order_id INT PRIMARY KEY, amount FLOAT, "
        "region TEXT)"
    )
    item_rows = []
    for i in range(1, n(40) + 1):
        item_rows.append(
            {
                "item_id": i,
                "item_name": f"Item-{i:03d}",
                "category": rng.choice(CATEGORIES),
                "price": round(rng.uniform(5.0, 250.0), 2),
            }
        )
    _bulk_load(db, "brand_a_items", item_rows)
    sale_rows = []
    for i in range(1, n(120) + 1):
        quantity = rng.randint(1, 8)
        item = rng.choice(item_rows)
        sale_rows.append(
            {
                "order_id": i,
                "item_id": item["item_id"],
                "region": rng.choice(REGIONS),
                "quantity": quantity,
                "amount": round(quantity * item["price"], 2),
                "sale_date": f"2025-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}",
            }
        )
    _bulk_load(db, "brand_a_sales", sale_rows)
    refund_rows = []
    for i in range(1, n(25) + 1):
        sale = rng.choice(sale_rows)
        refund_rows.append(
            {
                "refund_id": i,
                "order_id": sale["order_id"],
                "amount": round(sale["amount"] * rng.uniform(0.2, 1.0), 2),
                "reason": rng.choice(["damaged", "late delivery", "wrong size"]),
            }
        )
    _bulk_load(db, "brand_a_refunds", refund_rows)
    _bulk_load(
        db,
        "brand_b_sales",
        [
            {
                "order_id": i,
                "amount": round(rng.uniform(10.0, 400.0), 2),
                "region": rng.choice(REGIONS),
            }
            for i in range(1, n(30) + 1)
        ],
    )

    # ---------------------------------------------------------- finance
    admin.execute(
        "CREATE TABLE clients (client_id INT PRIMARY KEY, client_name TEXT, "
        "district TEXT)"
    )
    admin.execute(
        "CREATE TABLE accounts (account_id INT PRIMARY KEY, client_id INT NOT NULL "
        "REFERENCES clients(client_id), balance FLOAT, opened DATE)"
    )
    client_rows = [
        {
            "client_id": i,
            "client_name": f"Client {i:03d}",
            "district": rng.choice(["north", "south", "east", "west"]),
        }
        for i in range(1, n(30) + 1)
    ]
    _bulk_load(db, "clients", client_rows)
    _bulk_load(
        db,
        "accounts",
        [
            {
                "account_id": i,
                "client_id": rng.randint(1, n(30)),
                "balance": round(rng.uniform(-500.0, 9000.0), 2),
                "opened": f"202{rng.randint(0, 5)}-{rng.randint(1, 12):02d}-01",
            }
            for i in range(1, n(45) + 1)
        ],
    )

    # ------------------------------------------- role-irrelevant table
    admin.execute(
        "CREATE TABLE audit_log (log_id INT PRIMARY KEY, actor TEXT, note TEXT)"
    )
    _bulk_load(
        db,
        "audit_log",
        [
            {"log_id": i, "actor": "system", "note": f"event {i}"}
            for i in range(1, 6)
        ],
    )

    setup_roles(db)
    return db


def setup_roles(db: Database) -> None:
    """Create the three Section-3.3 roles and their grants."""
    admin = db.connect(ROLE_ADMIN)
    db.create_user(ROLE_NORMAL)
    db.create_user(ROLE_IRRELEVANT)
    for table in db.catalog.object_names():
        if table == "audit_log":
            continue
        admin.execute(f"GRANT SELECT ON {table} TO {ROLE_NORMAL}")
    admin.execute(f"GRANT ALL ON audit_log TO {ROLE_IRRELEVANT}")


# --------------------------------------------------------------------------
# housing
# --------------------------------------------------------------------------


def build_housing_database(seed: int = 0, rows: int = 20_000) -> Database:
    """The NL2ML substrate: one ``house`` table with ``rows`` rows."""
    rng = random.Random(seed)
    db = Database(owner=ROLE_ADMIN, name="housing")
    admin = db.connect(ROLE_ADMIN)
    admin.execute(
        "CREATE TABLE house ("
        "longitude FLOAT, latitude FLOAT, housing_median_age FLOAT, "
        "total_rooms FLOAT, total_bedrooms FLOAT, population FLOAT, "
        "households FLOAT, median_income FLOAT, median_house_value FLOAT, "
        "ocean_proximity TEXT)"
    )
    house_rows = []
    for _ in range(rows):
        longitude = rng.uniform(-124.3, -114.3)
        latitude = rng.uniform(32.5, 42.0)
        age = float(rng.randint(1, 52))
        households = float(rng.randint(50, 1800))
        rooms = households * rng.uniform(3.5, 7.5)
        bedrooms = rooms * rng.uniform(0.15, 0.3)
        population = households * rng.uniform(2.0, 4.5)
        income = max(0.5, rng.lognormvariate(1.2, 0.45))
        proximity = rng.choices(
            OCEAN_PROXIMITY, weights=[40, 35, 15, 9, 1], k=1
        )[0]
        coast_bonus = {"<1H OCEAN": 45_000, "NEAR OCEAN": 60_000,
                       "NEAR BAY": 70_000, "ISLAND": 120_000, "INLAND": 0}[proximity]
        value = (
            38_000 * income
            + 900 * age
            + 18 * (rooms / households) * 1_000
            + coast_bonus
            + rng.gauss(0, 18_000)
        )
        value = float(min(max(value, 15_000), 500_001))
        house_rows.append(
            {
                "longitude": round(longitude, 2),
                "latitude": round(latitude, 2),
                "housing_median_age": age,
                "total_rooms": round(rooms, 0),
                "total_bedrooms": round(bedrooms, 0),
                "population": round(population, 0),
                "households": households,
                "median_income": round(income, 4),
                "median_house_value": round(value, 0),
                "ocean_proximity": proximity,
            }
        )
    _bulk_load(db, "house", house_rows)
    return db
