"""Module entry point: ``python -m repro.bench <experiment>``."""

import sys

from .cli import main

sys.exit(main())
