"""Fault-recovery benchmark: seam overhead, torture sweep, retry litmus.

Three measurements back the PR-7 robustness claims with numbers:

* **Seam overhead.** Every durable-engine file operation now routes
  through the :class:`repro.faults.Filesystem` seam. The passthrough
  seam hands back raw builtin file objects, so the only added cost is
  one method dispatch on open/fsync/rename — measured here against
  direct builtin calls (must stay within a few percent), alongside the
  scripted :class:`~repro.faults.FaultyFilesystem` wrapper (allowed to
  cost more; it never runs in production).
* **Torture sweep.** A bounded version of the exhaustive
  ``tests/minidb/test_fault_injection.py`` sweep: a sequential-insert
  workload is crashed (and EIO-errored) at sampled filesystem-operation
  indices; every recovery must surface a *prefix* of the committed
  sequence (each autocommit is one unit, so prefix-ness is the whole
  correctness oracle) — anything else is a violation.
* **Retry litmus.** The PR-4 zero-lost-updates writer-contention
  workload, re-run through :func:`repro.service.run_with_retries` with
  the default jittered backoff vs a zero-backoff immediate-re-issue
  policy. Both must lose zero updates; throughput must stay comparable
  (backoff trades a little latency for decorrelated retries).
"""

from __future__ import annotations

import gc
import os
import shutil
import tempfile
import time
from typing import Any, Callable

from ..faults import (
    OS_FILESYSTEM,
    FaultPlan,
    FaultyFilesystem,
    Filesystem,
    SimulatedCrash,
)
from ..minidb import Database, MiniDBError, StorageFailedError
from ..service import RetryPolicy
from .concurrency import run_writer_contention

# ------------------------------------------------------------- seam overhead


def _append_run(
    opener: Callable[[str], Any],
    fsyncer: Callable[[Any], None],
    path: str,
    payload: str,
    cycles: int,
    fsync_every: int,
) -> None:
    """The engine's steady state: one open WAL, many write+flush commits."""
    fh = opener(path)
    try:
        for n in range(cycles):
            fh.write(payload)
            fh.flush()
            if n % fsync_every == 0:
                fsyncer(fh)
    finally:
        fh.close()


def measure_seam_overhead(
    cycles: int = 20_000, repeats: int = 7, fsync_every: int = 100
) -> dict[str, Any]:
    """WAL-append-shaped I/O: raw builtins vs seam vs fault wrapper.

    Mirrors :meth:`DurableEngine.append_commit`'s steady state — the WAL
    is opened once and every commit is a write + flush, with periodic
    fsyncs. Variants are interleaved and best-of-``repeats`` so cache
    and frequency drift hit all three equally. ``overhead_pct`` is
    relative to raw builtins.
    """
    payload = '{"seq":1,"op":"insert","row":{"id":1,"v":"x"},"commit":true}\n'
    data_dir = tempfile.mkdtemp(prefix="bench-faults-seam-")
    try:
        variants: dict[str, Callable[[], None]] = {
            "raw": lambda: _append_run(
                lambda p: open(p, "a", encoding="utf-8"),
                lambda fh: os.fsync(fh.fileno()),
                os.path.join(data_dir, "raw.jsonl"),
                payload, cycles, fsync_every,
            ),
            "passthrough": lambda: _append_run(
                lambda p: OS_FILESYSTEM.open(p, "a", encoding="utf-8"),
                OS_FILESYSTEM.fsync,
                os.path.join(data_dir, "seam.jsonl"),
                payload, cycles, fsync_every,
            ),
            "wrapper": lambda: _append_run(
                lambda p: FaultyFilesystem(FaultPlan()).open(
                    p, "a", encoding="utf-8"
                ),
                lambda fh: os.fsync(fh.fileno()),
                os.path.join(data_dir, "faulty.jsonl"),
                payload, cycles, fsync_every,
            ),
        }
        best = {name: float("inf") for name in variants}
        order = list(variants.items())
        for round_no in range(repeats):
            # rotate who goes first: a monotonic slowdown (thermal, page
            # cache growth) otherwise biases against later variants
            rotation = order[round_no % 3 :] + order[: round_no % 3]
            for name, run in rotation:
                gc.collect()
                # CPU time, not wall: page-cache appends are CPU-bound
                # memcpys, and process_time is blind to the scheduler
                # noise of a busy host that would swamp a few-percent gate
                started = time.process_time()
                run()
                best[name] = min(best[name], time.process_time() - started)
    finally:
        shutil.rmtree(data_dir, ignore_errors=True)

    def overhead(variant_s: float) -> float:
        return round((variant_s / best["raw"] - 1.0) * 100.0, 2)

    return {
        "cycles": cycles,
        "repeats": repeats,
        "raw_s": round(best["raw"], 4),
        "passthrough_s": round(best["passthrough"], 4),
        "wrapper_s": round(best["wrapper"], 4),
        "passthrough_overhead_pct": overhead(best["passthrough"]),
        "wrapper_overhead_pct": overhead(best["wrapper"]),
    }


# ------------------------------------------------------------- torture sweep


def _insert_workload(path: str, fs: Filesystem, rows: int) -> Any:
    """Autocommit ``rows`` sequential inserts; returns the live Database."""
    db = Database.open(path, auto_checkpoint_records=8, filesystem=fs)
    session = db.connect("admin")
    session.execute("CREATE TABLE seq (id INT PRIMARY KEY, v INT)")
    for n in range(rows):
        session.execute(f"INSERT INTO seq VALUES ({n}, {n * 10})")
    return db


def _recovered_prefix_ok(path: str, rows: int) -> bool:
    """Reopen cleanly; the surviving ids must be exactly ``0..k`` for
    some ``k`` — each autocommit is one unit, so any gap or reordering
    is a torn/half-applied commit."""
    recovered = Database.open(path)
    try:
        ids = sorted(row["id"] for row in recovered.snapshot().get("seq", []))
        return ids == list(range(len(ids))) and len(ids) <= rows
    finally:
        recovered.close()


def run_torture_sweep(rows: int = 20, stride: int = 3) -> dict[str, Any]:
    """Crash and EIO sweeps over stride-sampled operation indices."""
    base = tempfile.mkdtemp(prefix="bench-faults-torture-")
    crash_points = error_points = violations = panics = open_failures = 0
    try:
        probe = FaultyFilesystem(FaultPlan())
        db = _insert_workload(os.path.join(base, "baseline"), probe, rows)
        total_ops = probe.ops
        if not _recovered_prefix_ok_live(db, rows):
            violations += 1
        db.close()

        for at in range(0, total_ops, stride):
            # crash sweep
            path = os.path.join(base, f"crash{at}")
            try:
                db = _insert_workload(
                    path, FaultyFilesystem(FaultPlan(crash_at=at, seed=at)), rows
                )
                db.close()
            except SimulatedCrash:
                db = None
                gc.collect()
            crash_points += 1
            if not _recovered_prefix_ok(path, rows):
                violations += 1

            # error sweep
            path = os.path.join(base, f"eio{at}")
            try:
                db = _insert_workload(
                    path, FaultyFilesystem(FaultPlan(error_at=at, seed=at)), rows
                )
                db.close()
            except StorageFailedError:
                panics += 1
                db = None
                gc.collect()
            except (MiniDBError, OSError):
                open_failures += 1
                db = None
                gc.collect()
            error_points += 1
            if not _recovered_prefix_ok(path, rows):
                violations += 1
    finally:
        shutil.rmtree(base, ignore_errors=True)
    return {
        "rows": rows,
        "stride": stride,
        "total_ops": total_ops,
        "crash_points": crash_points,
        "error_points": error_points,
        "panics": panics,
        "open_failures": open_failures,
        "violations": violations,
    }


def _recovered_prefix_ok_live(db: Any, rows: int) -> bool:
    ids = sorted(row["id"] for row in db.snapshot().get("seq", []))
    return ids == list(range(rows))


# ------------------------------------------------------------- retry litmus


def run_retry_litmus(
    sessions: int = 4, increments_per_session: int = 8
) -> dict[str, Any]:
    """Writer contention with jittered backoff vs zero-backoff re-issue."""
    backoff = run_writer_contention(
        sessions=sessions, increments_per_session=increments_per_session
    )
    immediate = run_writer_contention(
        sessions=sessions,
        increments_per_session=increments_per_session,
        retry_policy=RetryPolicy(
            max_attempts=1_000, base_delay_s=0.0, jitter=0.0
        ),
    )

    def rate(outcome: dict[str, Any]) -> float:
        return round(outcome["committed"] / max(outcome["elapsed_s"], 1e-9), 1)

    backoff_rate = rate(backoff)
    immediate_rate = rate(immediate)
    return {
        "sessions": sessions,
        "increments_per_session": increments_per_session,
        "backoff": backoff,
        "immediate": immediate,
        "backoff_commits_per_s": backoff_rate,
        "immediate_commits_per_s": immediate_rate,
        "throughput_ratio": round(backoff_rate / max(immediate_rate, 1e-9), 3),
        "litmus_ok": (
            backoff["lost_updates"] == 0
            and immediate["lost_updates"] == 0
            and backoff["stuck_sessions"] == 0
            and immediate["stuck_sessions"] == 0
            and backoff["committed"] == backoff["expected"]
            and immediate["committed"] == immediate["expected"]
        ),
    }


# -------------------------------------------------------------- entry point


def experiment_fault_recovery(
    seam_cycles: int = 2_000,
    torture_rows: int = 20,
    torture_stride: int = 3,
    writer_sessions: int = 4,
    increments_per_session: int = 8,
) -> dict[str, Any]:
    """All three measurements plus combined verdict inputs."""
    seam = measure_seam_overhead(cycles=seam_cycles)
    torture = run_torture_sweep(rows=torture_rows, stride=torture_stride)
    litmus = run_retry_litmus(
        sessions=writer_sessions,
        increments_per_session=increments_per_session,
    )
    return {"seam": seam, "torture": torture, "retry_litmus": litmus}
