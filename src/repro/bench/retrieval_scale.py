"""Retrieval-scale experiment: indexed vs brute-force ``get_value``.

Shared by ``benchmarks/bench_retrieval_scale.py`` (acceptance benchmark)
and the ``python -m repro.bench retrieval`` CLI. Builds one table whose
text column holds ``distinct`` unique values and times repeated
``get_value`` tool calls through the full BridgeScope stack under both
paths:

* **indexed** — the default: `ContextTools.get_value` serves from the
  binding's cached :class:`~repro.retrieval.ValueCatalog` (the first call
  pays the catalog build; every later call probes the trigram/token
  posting lists only);
* **brute force** — ``config.use_retrieval_index = False``: every call
  re-scans the heap and re-scores every distinct value. At production
  column sizes a single call is so slow that the baseline is measured on
  a smaller column and extrapolated linearly (per-call cost is
  O(distinct)), mirroring the join-scale benchmark's method.

Both paths must return byte-identical tool output; the experiment checks
that on an equivalence suite before timing anything.
"""

from __future__ import annotations

import time
from typing import Any

from repro.core import BridgeScope, BridgeScopeConfig, MinidbBinding
from repro.minidb import Database

_ADJECTIVES = (
    "womens", "mens", "kids", "coastal", "inland", "premium",
    "classic", "sport", "vintage", "eco", "alpine", "urban",
)
_NOUNS = (
    "wear", "shoes", "jacket", "dress", "boots", "accessories",
    "equipment", "apparel", "outfit", "gear", "luggage", "kit",
)


def _pseudo_word(seed: int, length: int) -> str:
    """Deterministic letter soup (no stdlib randomness: runs reproduce)."""
    state = (seed * 2654435761 + 97) & 0x7FFFFFFF
    chars = []
    for _ in range(length):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        chars.append(chr(ord("a") + (state >> 16) % 26))
    return "".join(chars)


def _product_name(i: int) -> str:
    """The i-th distinct value of the benchmark column.

    A high-cardinality text column is mostly irrelevant to any given task
    key, so only ~2% of values are category-style names the query keys
    actually target; the rest are unique pseudo-random product names. The
    id suffix keeps every value distinct.
    """
    if i % 50 == 0:
        adjective = _ADJECTIVES[(i // 50) % len(_ADJECTIVES)]
        noun = _NOUNS[(i // (50 * len(_ADJECTIVES))) % len(_NOUNS)]
        return f"{adjective} {noun} {i:06d}"
    return f"{_pseudo_word(i, 7)} {_pseudo_word(i * 31 + 7, 8)} {i:06d}"

#: task keys exercising the signals the scorer blends: stored surface
#: forms, synonyms, misspellings, substrings, multi-token paraphrases
QUERY_KEYS = (
    "women",
    "ladies dress",
    "mens jacket",
    "sport shoes",
    "premum boots",       # misspelling
    "coastal",
    "eco equipment",
    "vintage wear",
)


def build_bridge(distinct: int, use_index: bool) -> BridgeScope:
    """A BridgeScope over a ``products`` table with ``distinct`` names."""
    db = Database(owner="bench")
    session = db.connect("bench")
    session.execute("CREATE TABLE products (id INT PRIMARY KEY, name TEXT)")
    heap = db.heap("products")
    for i in range(distinct):
        heap.insert({"id": i, "name": _product_name(i)})
    config = BridgeScopeConfig(
        exemplar_scan_limit=distinct, use_retrieval_index=use_index
    )
    return BridgeScope(MinidbBinding.for_user(db, "bench"), config)


def _call(bridge: BridgeScope, key: str) -> str:
    result = bridge.invoke("get_value", col="products.name", key=key, k=5)
    assert not result.is_error, result.content
    return result.content


def _time_calls(bridge: BridgeScope, rounds: int) -> float:
    """Average seconds per get_value call over ``rounds`` passes of the keys."""
    start = time.perf_counter()
    for _ in range(rounds):
        for key in QUERY_KEYS:
            _call(bridge, key)
    return (time.perf_counter() - start) / (rounds * len(QUERY_KEYS))


def check_equivalence(distinct: int = 2_000) -> list[str]:
    """Keys whose indexed and brute-force tool outputs differ (want: none)."""
    indexed = build_bridge(distinct, use_index=True)
    brute = build_bridge(distinct, use_index=False)
    return [
        key for key in QUERY_KEYS if _call(indexed, key) != _call(brute, key)
    ]


def experiment_retrieval_scale(
    distinct: int = 100_000,
    brute_distinct: int = 5_000,
    rounds: int = 3,
) -> dict[str, Any]:
    """Measure both paths; brute force extrapolated from ``brute_distinct``."""
    brute_distinct = min(brute_distinct, distinct)
    mismatches = check_equivalence(min(distinct, 2_000))

    indexed = build_bridge(distinct, use_index=True)
    start = time.perf_counter()
    _call(indexed, QUERY_KEYS[0])  # cold: pays the catalog build
    cold_seconds = time.perf_counter() - start
    indexed_seconds = _time_calls(indexed, rounds)
    cache = indexed.binding.session.db.retrieval_cache
    catalog = cache.cached_catalogs()[0]
    queries = max(catalog.stats["queries"], 1)

    brute = build_bridge(brute_distinct, use_index=False)
    brute_measured = _time_calls(brute, rounds=1)
    scale = distinct / brute_distinct
    brute_seconds = brute_measured * scale

    return {
        "distinct": distinct,
        "brute_distinct": brute_distinct,
        "queries_per_round": len(QUERY_KEYS),
        "rounds": rounds,
        "cold_ms": cold_seconds * 1000,
        "indexed_call_ms": indexed_seconds * 1000,
        "brute_call_ms": brute_seconds * 1000,
        "brute_extrapolated": scale != 1,
        "speedup": (
            brute_seconds / indexed_seconds
            if indexed_seconds > 0
            else float("inf")
        ),
        "avg_candidates": catalog.stats["candidates"] / queries,
        "avg_scored": catalog.stats["scored"] / queries,
        "equivalence_ok": not mismatches,
        "equivalence_mismatches": mismatches,
    }
