"""Plain-text rendering of experiment results in the paper's layouts,
plus the machine-readable ``BENCH_*.json`` writer the benchmark scripts
share."""

from __future__ import annotations

import json
import os
import time
from typing import Any

#: schema marker for history-bearing BENCH_*.json files
BENCH_HISTORY_FORMAT = "bench-history-1"


def record_bench_result(path: str, payload: dict[str, Any]) -> dict[str, Any]:
    """Append one benchmark run to ``path`` and return the full document.

    ``BENCH_*.json`` files carry the perf trajectory across PRs, so runs
    are *appended* to a ``history`` list (each stamped with a UTC
    timestamp), never overwritten; ``latest`` duplicates the newest entry
    for easy single-run consumption. A pre-history file (a bare result
    object) is adopted as the first history entry; an unreadable file is
    replaced rather than crashing the benchmark that produced a perfectly
    good result.
    """
    entry = dict(payload)
    entry.setdefault(
        "recorded_at", time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    )
    history: list[dict[str, Any]] = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            existing = json.load(fh)
        if isinstance(existing, dict):
            if existing.get("format") == BENCH_HISTORY_FORMAT and isinstance(
                existing.get("history"), list
            ):
                history = [e for e in existing["history"] if isinstance(e, dict)]
            else:
                history = [existing]  # legacy single-run file
    except (OSError, ValueError):
        history = []
    history.append(entry)
    document = {
        "format": BENCH_HISTORY_FORMAT,
        "latest": entry,
        "history": history,
    }
    tmp_path = f"{path}.tmp.{os.getpid()}"
    with open(tmp_path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp_path, path)
    return document


def render_table(headers: list[str], rows: list[list[Any]], title: str = "") -> str:
    """Render an aligned text table."""
    def fmt(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:,.2f}"
        return str(value)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_fig5a(results: dict[str, dict[str, float]]) -> str:
    rows = [
        [model, row["bridgescope"], row["pg-mcp-minus"], row["best-achievable"]]
        for model, row in results.items()
    ]
    return render_table(
        ["model", "BridgeScope #calls", "PG-MCP- #calls", "best-achievable"],
        rows,
        title="Figure 5(a) — context retrieval: average LLM calls per task",
    )


def render_fig5b(results: dict[str, dict[str, float]]) -> str:
    rows = [
        [model, row["bridgescope"], row["pg-mcp"]]
        for model, row in results.items()
    ]
    return render_table(
        ["model", "BridgeScope accuracy", "PG-MCP accuracy"],
        rows,
        title="Figure 5(b) — SQL execution accuracy",
    )


def render_fig5c(results: dict[str, dict[str, float]]) -> str:
    rows = [
        [model, row["bridgescope"], row["pg-mcp"], row["best-achievable"]]
        for model, row in results.items()
    ]
    return render_table(
        ["model", "BridgeScope txn ratio", "PG-MCP txn ratio", "best"],
        rows,
        title="Figure 5(c) — transaction trigger ratio on write tasks",
    )


def render_fig6(results: dict[str, dict[str, dict[str, float]]]) -> str:
    blocks = []
    for model, cells in results.items():
        rows = [
            [cell, stats["bridgescope"], stats["pg-mcp"], stats["best"]]
            for cell, stats in cells.items()
        ]
        blocks.append(
            render_table(
                ["(user, task)", "BridgeScope #calls", "PG-MCP #calls", "best"],
                rows,
                title=f"Figure 6 — average LLM calls ({model})",
            )
        )
    return "\n\n".join(blocks)


def render_table1(results: dict[str, dict[str, dict[str, float]]]) -> str:
    blocks = []
    for model, cells in results.items():
        rows = [
            [cell, stats["bridgescope_tokens"], stats["pg-mcp_tokens"]]
            for cell, stats in cells.items()
        ]
        blocks.append(
            render_table(
                ["(user, task)", "BridgeScope tokens", "PG-MCP tokens"],
                rows,
                title=f"Table 1 — token usage for BIRD-Ext ({model})",
            )
        )
    return "\n\n".join(blocks)


def render_table2(results: dict[str, Any]) -> str:
    rows = []
    for (model, toolkit), stats in results["cells"].items():
        rows.append(
            [
                model,
                toolkit,
                stats["completion_rate"],
                stats["avg_tokens"],
                stats["avg_llm_calls"],
            ]
        )
    table = render_table(
        ["model", "toolkit", "completion", "avg tokens", "avg #LLM calls"],
        rows,
        title="Table 2 — effectiveness of the proxy mechanism (NL2ML)",
    )
    ideal = results["idealized_pg_mcp_tokens"]
    bridge = results["bridgescope_avg_tokens"]
    factor = ideal / bridge if bridge else float("inf")
    footer = (
        f"\nIdealized PG-MCP (unlimited context) lower bound: {ideal:,} tokens "
        f"vs BridgeScope {bridge:,.1f} ({factor:,.0f}x more)"
    )
    return table + footer


def render_retrieval_scale(result: dict[str, Any]) -> str:
    suffix = (
        f" (measured at {result['brute_distinct']} distinct, extrapolated)"
        if result["brute_extrapolated"]
        else ""
    )
    table = render_table(
        ["path", "distinct values", "per call (ms)"],
        [
            ["indexed (cold, builds catalog)", result["distinct"], result["cold_ms"]],
            ["indexed (warm)", result["distinct"], result["indexed_call_ms"]],
            ["brute force" + suffix, result["distinct"], result["brute_call_ms"]],
        ],
        title="Retrieval scale — get_value exemplar retrieval (BridgeScope)",
    )
    equivalence = (
        "identical"
        if result["equivalence_ok"]
        else f"MISMATCH on keys {result['equivalence_mismatches']}"
    )
    return (
        f"{table}\n"
        f"speedup: {result['speedup']:,.1f}x on warm calls "
        f"({result['queries_per_round']} keys x {result['rounds']} rounds)\n"
        f"candidates/scored per query: {result['avg_candidates']:,.1f} / "
        f"{result['avg_scored']:,.1f} of {result['distinct']:,}\n"
        f"indexed vs brute-force rankings: {equivalence}"
    )


def render_storage_durability(result: dict[str, Any]) -> str:
    table = render_table(
        ["restart path", "rows", "time (s)"],
        [
            [
                "warm reopen (snapshot + persisted catalogs)",
                result["rows"],
                result["warm_reopen_s"],
            ],
            [
                "cold rebuild (SQL replay + catalog build)",
                result["rows"],
                result["cold_rebuild_s"],
            ],
        ],
        title="Storage durability — restart cost (minidb durable engine)",
    )
    zero = "yes" if result["zero_rebuild"] else "NO (catalog was rebuilt)"
    equivalence = (
        "identical" if result["equivalence_ok"] else "MISMATCH"
    )
    return (
        f"{table}\n"
        f"speedup: {result['speedup']:,.1f}x "
        f"(best of {len(result['warm_trials_s'])} warm trials)\n"
        f"zero catalog rebuild on reopen: {zero}\n"
        f"warm vs cold tool output: {equivalence}\n"
        f"snapshot write (checkpoint) took {result['checkpoint_s']:.2f}s"
    )


def render_concurrency(result: dict[str, Any]) -> str:
    read = result["read_heavy"]
    contention = result["writer_contention"]
    table = render_table(
        ["dispatcher", "requests", "time (s)", "req/s"],
        [
            ["serialized (1 at a time)", read["requests"], read["serial_s"],
             read["serial_rps"]],
            [f"threaded ({read['workers']} workers)", read["requests"],
             read["threaded_s"], read["threaded_rps"]],
        ],
        title=(
            "Concurrency — read-heavy mixed workload "
            f"({read['sessions']} sessions, {read['io_delay_ms']}ms simulated "
            "I/O per request)"
        ),
    )
    contention_line = (
        f"writer contention: {contention['committed']}/{contention['expected']} "
        f"increments committed, final counter {contention['final_value']} "
        f"(recovered: {contention['recovered_value']}), "
        f"{contention['lost_updates']} lost updates, "
        f"{contention['deadlocks_detected']} deadlocks detected, "
        f"{contention['retries']} retries, "
        f"{contention['stuck_sessions']} stuck sessions"
    )
    return (
        f"{table}\n"
        f"speedup: {read['speedup']:,.2f}x  "
        f"(p50 {read['p50_latency_ms']}ms / p95 {read['p95_latency_ms']}ms, "
        f"max queue depth {read['max_queue_depth']})\n"
        f"{contention_line}"
    )


def render_query_scale(result: dict[str, Any]) -> str:
    labels = {
        "range": "selective range (btree slice vs seq scan)",
        "topn": "ORDER BY LIMIT 10 (ordered scan vs full sort)",
        "predicate": "seq-scan WHERE (compiled vs interpreted)",
        "union": "10-member IN (index union vs seq scan)",
        "batch_filter": "wide filter (column-batch vs row-at-a-time)",
        "batch_aggregate": "GROUP BY fold (column-batch vs row-at-a-time)",
        "btree_write": "index insert (paged B-tree vs flat insort)",
        "stats_skew": "skewed conjunct (cost-based vs static plan)",
    }
    table = render_table(
        ["query class", "rows", "fast (ms)", "baseline (ms)", "speedup"],
        [
            [
                label,
                result[name].get("entries", result["rows"]),
                result[name]["fast_ms"],
                result[name]["baseline_ms"],
                f"{result[name]['speedup']:,.1f}x",
            ]
            for name, label in labels.items()
            if name in result
        ],
        title="Query scale — indexed/compiled execution vs seed paths (minidb)",
    )
    stats = result["planner_stats"]
    plans = "\n".join(
        f"  {line}"
        for name in labels
        if name in result
        for line in result[name].get("plan", [])
    )
    equivalence = "identical" if result["identical"] else "MISMATCH"
    lines = [
        table,
        f"fast vs baseline rows: {equivalence}",
        f"planner stats: {stats['range_scans']} range scans, "
        f"{stats['ordered_scans']} ordered scans, "
        f"{stats['topn_limits']} top-N limits, "
        f"{stats.get('union_scans', 0)} union scans, "
        f"{stats.get('batch_scans', 0)} batch scans",
    ]
    skew = result.get("stats_skew")
    if skew is not None:
        lines.append(
            "static plan (pre-ANALYZE): "
            + "; ".join(skew.get("static_plan", []))
        )
    lines.append(f"query plans:\n{plans}")
    return "\n".join(lines)


def render_join_scale(result: dict[str, Any]) -> str:
    suffix = (
        f" (measured at {result['nl_rows']} rows, extrapolated)"
        if result["nl_extrapolated"]
        else ""
    )
    table = render_table(
        ["strategy", "rows", "time (ms)"],
        [
            ["hash join", result["rows"], result["hash_ms"]],
            ["nested loop" + suffix, result["rows"], result["nl_ms"]],
        ],
        title="Join scale — equi-join strategy comparison (minidb)",
    )
    plan = "\n".join(f"  {line}" for line in result["plan"])
    return (
        f"{table}\n"
        f"speedup: {result['speedup']:,.1f}x on {result['matches']} matches\n"
        f"query plan:\n{plan}"
    )


def render_faults(result: dict[str, Any]) -> str:
    seam = result["seam"]
    torture = result["torture"]
    litmus = result["retry_litmus"]
    seam_table = render_table(
        ["filesystem variant", "cycles", "time (s)", "overhead"],
        [
            ["raw builtins (no seam)", seam["cycles"], seam["raw_s"], "-"],
            [
                "passthrough seam (production)",
                seam["cycles"],
                seam["passthrough_s"],
                f"{seam['passthrough_overhead_pct']:+.2f}%",
            ],
            [
                "FaultyFilesystem wrapper (tests)",
                seam["cycles"],
                seam["wrapper_s"],
                f"{seam['wrapper_overhead_pct']:+.2f}%",
            ],
        ],
        title="Fault injection — Filesystem seam overhead (WAL-shaped I/O)",
    )
    torture_line = (
        f"torture sweep: {torture['crash_points']} crash points + "
        f"{torture['error_points']} EIO points over {torture['total_ops']} ops "
        f"(stride {torture['stride']}): {torture['panics']} fail-stop panics, "
        f"{torture['open_failures']} failed opens, "
        f"{torture['violations']} recovery violations"
    )
    litmus_line = (
        "retry litmus: jittered backoff "
        f"{litmus['backoff_commits_per_s']} commits/s vs zero-backoff "
        f"{litmus['immediate_commits_per_s']} commits/s "
        f"(ratio {litmus['throughput_ratio']}), lost updates "
        f"{litmus['backoff']['lost_updates']}/"
        f"{litmus['immediate']['lost_updates']}, "
        f"retries {litmus['backoff']['retries']}/"
        f"{litmus['immediate']['retries']}"
    )
    return f"{seam_table}\n{torture_line}\n{litmus_line}"


def render_observability(result: dict[str, Any]) -> str:
    overhead = result["overhead"]
    features = result["features"]
    table = render_table(
        ["variant", "statements", "time (s)", "overhead"],
        [
            [
                "no-dispatch baseline",
                overhead["statements"],
                overhead["baseline_s"],
                "-",
            ],
            [
                "dark (defaults, production)",
                overhead["statements"],
                overhead["dark_s"],
                f"{overhead['dark_overhead_pct']:+.2f}%",
            ],
            [
                "traced (ring + spans)",
                overhead["statements"],
                overhead["traced_s"],
                f"{overhead['traced_overhead_pct']:+.2f}%",
            ],
        ],
        title="Observability — statement-path overhead (point lookups)",
    )
    feature_line = (
        f"features: {features['system_statements_rows']} system.statements rows, "
        f"{features['system_metrics_rows']} system.metrics rows, "
        f"{features['slow_entries']} slow-log entries, "
        f"{features['explain_analyze_lines']} EXPLAIN ANALYZE lines, "
        f"{features['render_text_bytes']}B exposition"
    )
    ring_line = (
        f"ring buffer: {overhead['ring_entries']} traces retained "
        "(bounded) after the traced runs"
    )
    return f"{table}\n{feature_line}\n{ring_line}"
