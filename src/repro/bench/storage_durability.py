"""Storage-durability experiment: warm reopen vs cold rebuild.

Shared by ``benchmarks/bench_storage_durability.py`` (acceptance
benchmark) and the ``python -m repro.bench storage`` CLI. Builds a
durable database directory holding a ``products`` table with ``rows``
rows of distinct text, checkpoints it, and serves one ``get_value`` call
so the column's value catalog is persisted next to the snapshot. Then it
measures the two restart stories the tentpole distinguishes:

* **warm reopen** — ``Database.open(path)``: snapshot load + WAL replay
  restore heaps, indexes, and exact ``(uid, version)`` fingerprints, and
  the first ``get_value`` is served from the persisted catalog with zero
  rebuild;
* **cold rebuild** — the seed's only option after a restart: re-ingest
  the source data through the engine (batched multi-row INSERTs — the
  efficient replay strategy) and rebuild the value catalog from scratch
  (feature extraction over every distinct value) before the first
  ``get_value`` can answer.

Both paths must produce byte-identical tool output; the experiment checks
that before timing anything, and asserts the warm path really did skip
the rebuild (``persisted_hits == 1``, ``misses == 0``).
"""

from __future__ import annotations

import shutil
import tempfile
import time
from typing import Any

from repro.core import BridgeScope, BridgeScopeConfig, MinidbBinding
from repro.minidb import Database

from .retrieval_scale import QUERY_KEYS, _product_name

#: rows per INSERT statement in the cold-rebuild replay
BATCH = 500


def _bulk_load(db: Database, rows: int) -> None:
    """Direct heap loading (the documented non-WAL bulk path) for setup."""
    session = db.connect("admin")
    session.execute("CREATE TABLE products (id INT PRIMARY KEY, name TEXT)")
    heap = db.heap("products")
    for i in range(rows):
        heap.insert({"id": i, "name": _product_name(i)})


def _rebuild_via_sql(db: Database, rows: int) -> None:
    """Cold-start reconstruction: replay the ingest through the engine."""
    session = db.connect("admin")
    session.execute("CREATE TABLE products (id INT PRIMARY KEY, name TEXT)")
    for start in range(0, rows, BATCH):
        values = ", ".join(
            f"({i}, '{_product_name(i)}')"
            for i in range(start, min(start + BATCH, rows))
        )
        session.execute(f"INSERT INTO products VALUES {values}")


def _bridge(db: Database) -> BridgeScope:
    config = BridgeScopeConfig(exemplar_scan_limit=10_000_000)
    return BridgeScope(MinidbBinding.for_user(db, "admin"), config)


def _get_value(bridge: BridgeScope, key: str) -> str:
    result = bridge.invoke("get_value", col="products.name", key=key, k=5)
    assert not result.is_error, result.content
    return result.content


def experiment_storage_durability(
    rows: int = 100_000, warm_trials: int = 3
) -> dict[str, Any]:
    """Measure warm reopen (snapshot + persisted catalogs) vs cold rebuild.

    The warm path is repeated ``warm_trials`` times and the minimum kept —
    a sub-2-second measurement on a shared machine is noise-dominated, and
    the minimum is the standard estimator for the true cost.
    """
    workdir = tempfile.mkdtemp(prefix="bench_storage_")
    path = f"{workdir}/db"
    try:
        # ---- build the durable directory once (not part of either timing)
        db = Database.open(path)
        _bulk_load(db, rows)
        checkpoint_start = time.perf_counter()
        db.checkpoint()  # direct heap loads bypass the WAL; snapshot them
        checkpoint_seconds = time.perf_counter() - checkpoint_start
        reference = _get_value(_bridge(db), QUERY_KEYS[0])  # builds + persists
        db.close()

        # ---- warm reopen: recover from disk, serve from persisted catalog
        warm_trial_seconds = []
        warm_output = None
        warm_stats: dict[str, Any] = {}
        engine_stats: dict[str, Any] = {}
        zero_rebuild = True
        for _ in range(max(warm_trials, 1)):
            warm_start = time.perf_counter()
            warm_db = Database.open(path)
            warm_output = _get_value(_bridge(warm_db), QUERY_KEYS[0])
            warm_trial_seconds.append(time.perf_counter() - warm_start)
            warm_stats = dict(warm_db.retrieval_cache.stats)
            zero_rebuild = zero_rebuild and (
                warm_stats["persisted_hits"] == 1 and warm_stats["misses"] == 0
            )
            engine_stats = dict(warm_db.engine.stats)
            warm_db.close()
        warm_seconds = min(warm_trial_seconds)

        # ---- cold rebuild: fresh process state, no persistence to lean on
        cold_start = time.perf_counter()
        cold_db = Database(owner="admin")
        _rebuild_via_sql(cold_db, rows)
        cold_output = _get_value(_bridge(cold_db), QUERY_KEYS[0])
        cold_seconds = time.perf_counter() - cold_start

        return {
            "rows": rows,
            "checkpoint_s": checkpoint_seconds,
            "warm_reopen_s": warm_seconds,
            "warm_trials_s": warm_trial_seconds,
            "cold_rebuild_s": cold_seconds,
            "speedup": (
                cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
            ),
            "zero_rebuild": zero_rebuild,
            "equivalence_ok": warm_output == reference == cold_output,
            "warm_cache_stats": warm_stats,
            "snapshot_loaded": engine_stats["snapshot_loaded"],
            "wal_replayed": engine_stats["wal_replayed"],
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
