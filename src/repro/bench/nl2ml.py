"""NL2ML benchmark generation (paper Section 3.1, benchmark 2).

30 tasks over the housing database at three complexity levels (10 each):

* **level 1** — query data, train a model (one proxy-unit layer);
* **level 2** — additionally normalize between query and training (two);
* **level 3** — additionally predict house prices with the trained model
  (three layers).

Each task's gold pipeline is a nested :class:`PipelineNode`; the proxy
translation and the manual (LLM-routed) translation are both derived from
the same plan by the policy.
"""

from __future__ import annotations

import random

from ..llm.tokenizer import count_tokens
from ..minidb import Database
from .tasks import MLTask, PipelineNode

_FEATURES = [
    "housing_median_age",
    "total_rooms",
    "total_bedrooms",
    "population",
    "households",
    "median_income",
]
_TARGET = "median_house_value"


def _select_node(rng: random.Random, n_features: int) -> tuple[PipelineNode, list[str]]:
    features = rng.sample(_FEATURES, n_features)
    columns = features + [_TARGET]
    sql = f"SELECT {', '.join(columns)} FROM house"
    return PipelineNode("select", {"sql": sql}), features


def _feature_rows(rng: random.Random, features: list[str], n: int) -> list[list[float]]:
    ranges = {
        "housing_median_age": (1, 52),
        "total_rooms": (200, 10_000),
        "total_bedrooms": (50, 2_500),
        "population": (100, 6_000),
        "households": (50, 1_800),
        "median_income": (0.5, 12.0),
    }
    rows = []
    for _ in range(n):
        rows.append(
            [round(rng.uniform(*ranges[f]), 3) for f in features]
        )
    return rows


def generate_nl2ml_tasks(seed: int = 0, per_level: int = 10) -> list[MLTask]:
    rng = random.Random(seed)
    tasks: list[MLTask] = []

    for index in range(per_level):
        select, features = _select_node(rng, rng.randint(3, len(_FEATURES)))
        trainer = rng.choice(["train_linear", "train_forest"])
        plan = PipelineNode(trainer, {"data": select})
        tasks.append(
            MLTask(
                task_id=f"ml1-{index:02d}",
                description=(
                    f"Train a {'linear regression' if trainer == 'train_linear' else 'random forest'} "
                    f"model predicting {_TARGET} from {', '.join(features)} using "
                    "the house table, and report its test metrics."
                ),
                plan=plan,
                level=1,
                seed=seed + index,
            )
        )

    for index in range(per_level):
        select, features = _select_node(rng, rng.randint(3, len(_FEATURES)))
        normalizer = rng.choice(["zscore_normalize", "minmax_normalize"])
        trainer = rng.choice(["train_linear", "train_forest"])
        plan = PipelineNode(
            trainer, {"data": PipelineNode(normalizer, {"data": select})}
        )
        tasks.append(
            MLTask(
                task_id=f"ml2-{index:02d}",
                description=(
                    f"Extract {', '.join(features)} with {_TARGET} from the house "
                    f"table, apply {normalizer.replace('_', ' ')}, train a "
                    f"{trainer.split('_')[1]} model, and report test metrics."
                ),
                plan=plan,
                level=2,
                seed=seed + 100 + index,
            )
        )

    for index in range(per_level):
        select, features = _select_node(rng, 3)
        normalizer = rng.choice(["zscore_normalize", "minmax_normalize"])
        inner = PipelineNode(
            "train_linear", {"data": PipelineNode(normalizer, {"data": select})}
        )
        query_rows = _feature_rows(rng, features, rng.randint(2, 5))
        plan = PipelineNode("predict", {"model": inner, "features": query_rows})
        tasks.append(
            MLTask(
                task_id=f"ml3-{index:02d}",
                description=(
                    f"Train a normalized linear model of {_TARGET} on "
                    f"{', '.join(features)} from the house table, then predict "
                    f"prices for {len(query_rows)} new districts."
                ),
                plan=plan,
                level=3,
                seed=seed + 200 + index,
            )
        )
    return tasks


def idealized_pg_mcp_token_cost(db: Database, transfers: int = 2) -> int:
    """Section 3.4(3): tokens an idealized unlimited-context agent would
    spend just moving the house table through the LLM ``transfers`` times.
    """
    session = db.connect("admin")
    result = session.execute("SELECT * FROM house")
    lines = [" | ".join(result.columns)]
    for row in result.rows:
        lines.append(" | ".join("NULL" if v is None else str(v) for v in row))
    rendering = "\n".join(lines)
    return count_tokens(rendering) * transfers
