"""Task structures shared by the benchmarks and the simulated LLM policy.

Every benchmark task carries a *structured intent* alongside its natural-
language description. The simulated LLM plans from the intent; its failure
modes (hallucinated identifiers, wrong predicate surface forms) are
injected by swapping in the pre-computed corrupted variants, which then
genuinely fail (or silently mislead) against the real engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class TrickyValue:
    """A predicate value whose NL surface form differs from the stored one."""

    column: str  # qualified "table.column"
    nl_form: str
    stored_form: str


@dataclass
class DBTask:
    """One BIRD-Ext style database task."""

    task_id: str
    description: str
    action: str  # SELECT | INSERT | UPDATE | DELETE
    tables: list[str]
    gold_sql: str
    #: variant with a hallucinated identifier (errors at the engine);
    #: None when the generator could not produce a plausible corruption
    wrong_identifier_sql: str | None = None
    #: variant using the NL surface form of a tricky value (runs, but wrong)
    value_miss_sql: str | None = None
    #: variant with a subtle logic slip (off-by-one threshold; runs, wrong)
    logic_miss_sql: str | None = None
    tricky: TrickyValue | None = None
    seed: int = 0

    @property
    def kind(self) -> str:
        return "db"

    @property
    def write(self) -> bool:
        return self.action != "SELECT"


@dataclass
class PipelineNode:
    """One stage of an NL2ML pipeline; args may nest further nodes."""

    tool: str
    args: dict[str, Any] = field(default_factory=dict)

    def depth(self) -> int:
        child_depths = [
            value.depth()
            for value in self.args.values()
            if isinstance(value, PipelineNode)
        ]
        return 1 + (max(child_depths) if child_depths else 0)

    def postorder(self) -> list["PipelineNode"]:
        """Stages in execution order (producers before consumers)."""
        order: list[PipelineNode] = []
        for value in self.args.values():
            if isinstance(value, PipelineNode):
                order.extend(value.postorder())
        order.append(self)
        return order


@dataclass
class MLTask:
    """One NL2ML task: an NL description plus its gold pipeline plan."""

    task_id: str
    description: str
    plan: PipelineNode
    level: int  # 1..3 proxy-unit nesting layers
    seed: int = 0

    @property
    def kind(self) -> str:
        return "ml"

    @property
    def write(self) -> bool:
        return False

    @property
    def action(self) -> str:
        return "SELECT"

    @property
    def tables(self) -> list[str]:
        return ["house"]
