"""Benchmarks and experiment harness for the BridgeScope reproduction."""

from .tasks import DBTask, MLTask, PipelineNode, TrickyValue

__all__ = ["DBTask", "MLTask", "PipelineNode", "TrickyValue"]
