"""Observability overhead + feature benchmark (PR 9).

Two questions:

1. **Zero-cost-when-dark** — with every ``observability_options`` switch at
   its default, how much slower is the tier-1 statement hot path than a
   build with no observability dispatch at all? The baseline replicates the
   pre-PR ``Session.execute`` body (append to the statement log, parse,
   execute) so the measured delta is exactly the dark-mode dispatch: one
   options-dict read plus the thread-local tracer probes the inner hooks
   perform. Gated at ≤ 5% (the PR-7 seam-overhead pattern).
2. **Cost when lit** — the same workload with tracing enabled (ring buffer
   recording, span construction, scan events), reported but not gated.

Variants are interleaved, rotated, and best-of-``repeats`` under
``time.process_time`` for the same reasons as
:func:`repro.bench.fault_recovery.measure_seam_overhead`.
"""

from __future__ import annotations

import gc
import time
from typing import Any, Callable

from ..minidb import Database
from ..minidb.parser import parse


def _build_db(rows: int, tracing: bool = False) -> tuple[Database, Any]:
    db = Database(owner="admin")
    session = db.connect("admin")
    session.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT, name TEXT)")
    session.execute("CREATE INDEX ix_t_v ON t USING BTREE (v)")
    for n in range(rows):
        session.execute(f"INSERT INTO t VALUES ({n}, {n % 50}, 'name{n}')")
    if tracing:
        db.observability_options["tracing"] = True
    return db, session


def _plain_execute(session: Any, sql: str) -> Any:
    """The pre-observability ``Session.execute`` body: the no-dispatch
    baseline the dark-mode gate compares against."""
    session.statement_log.append(sql)
    return session.execute_statement(parse(sql))


def measure_dark_overhead(
    statements: int = 600, rows: int = 2_000, repeats: int = 5
) -> dict[str, Any]:
    """Point-lookup workload: no-dispatch baseline vs dark vs traced."""
    db, session = _build_db(rows)
    traced_db, traced_session = _build_db(rows, tracing=True)
    workload = [f"SELECT v FROM t WHERE id = {i % rows}" for i in range(statements)]

    def run_baseline() -> None:
        for sql in workload:
            _plain_execute(session, sql)

    def run_dark() -> None:
        for sql in workload:
            session.execute(sql)

    def run_traced() -> None:
        for sql in workload:
            traced_session.execute(sql)

    variants: dict[str, Callable[[], None]] = {
        "baseline": run_baseline,
        "dark": run_dark,
        "traced": run_traced,
    }
    best = {name: float("inf") for name in variants}
    order = list(variants.items())
    for round_no in range(repeats):
        # rotate who goes first so monotonic drift hits all variants alike
        rotation = order[round_no % 3 :] + order[: round_no % 3]
        for name, run in rotation:
            gc.collect()
            started = time.process_time()
            run()
            best[name] = min(best[name], time.process_time() - started)

    def overhead(variant_s: float) -> float:
        return round((variant_s / best["baseline"] - 1.0) * 100.0, 2)

    return {
        "statements": statements,
        "rows": rows,
        "repeats": repeats,
        "baseline_s": round(best["baseline"], 4),
        "dark_s": round(best["dark"], 4),
        "traced_s": round(best["traced"], 4),
        "dark_overhead_pct": overhead(best["dark"]),
        "traced_overhead_pct": overhead(best["traced"]),
        "ring_entries": len(traced_db.tracer.recent()),
    }


def run_feature_probe(rows: int = 200) -> dict[str, Any]:
    """Sanity pass over the lit-up feature surface (not a timing)."""
    db, session = _build_db(rows, tracing=True)
    db.observability_options["slow_statement_s"] = 0.0  # capture everything
    session.execute("SELECT COUNT(*) FROM t WHERE v = 3")
    session.execute("SELECT name FROM t WHERE id = 7")
    analyze = session.execute("EXPLAIN ANALYZE SELECT name FROM t WHERE v = 9")
    tail = session.execute(
        "SELECT sql, duration_ms FROM system.statements "
        "ORDER BY duration_ms DESC LIMIT 1"
    )
    traces = db.tracer.recent()
    return {
        "system_statements_rows": len(
            session.execute("SELECT id FROM system.statements").rows
        ),
        "system_metrics_rows": len(
            session.execute("SELECT name FROM system.metrics").rows
        ),
        "slow_entries": len(db.tracer.slow_statements()),
        "explain_analyze_lines": len(analyze.rows),
        "slowest_sql": tail.rows[0][0] if tail.rows else None,
        "spans_last_statement": len(traces[-1].spans) if traces else 0,
        "render_text_bytes": len(db.metrics.render_text()),
    }


def experiment_observability(
    statements: int = 600, rows: int = 2_000, repeats: int = 5
) -> dict[str, Any]:
    return {
        "overhead": measure_dark_overhead(
            statements=statements, rows=rows, repeats=repeats
        ),
        "features": run_feature_probe(rows=min(rows, 500)),
    }
