"""Command-line front end for the experiment harness.

Regenerate any paper table/figure without pytest::

    python -m repro.bench fig5a --tasks 25 --scale 0.5
    python -m repro.bench table2 --housing-rows 20000
    python -m repro.bench all
"""

from __future__ import annotations

import argparse
import os
import sys

from .concurrency import experiment_concurrency
from .fault_recovery import experiment_fault_recovery
from .join_scale import experiment_join_scale
from .observability import experiment_observability
from .reporting import (
    render_concurrency,
    render_faults,
    render_fig5a,
    render_fig5b,
    render_fig5c,
    render_fig6,
    render_join_scale,
    render_observability,
    render_query_scale,
    render_retrieval_scale,
    render_storage_durability,
    render_table1,
    render_table2,
)
from .query_scale import experiment_query_scale
from .retrieval_scale import experiment_retrieval_scale
from .runner import (
    experiment_fig5a,
    experiment_fig5b,
    experiment_fig5c,
    experiment_fig6_table1,
    experiment_table2,
)
from .storage_durability import experiment_storage_durability

EXPERIMENTS = (
    "fig5a", "fig5b", "fig5c", "fig6", "table1", "table2", "joins",
    "retrieval", "storage", "concurrency", "query", "faults", "obs",
)


def run_experiment(
    name: str,
    tasks: int,
    scale: float,
    housing_rows: int,
    models: list[str] | None = None,
    rows_override: int | None = None,
) -> str:
    """Run one experiment by name and return its rendered report."""
    if name == "fig5a":
        return render_fig5a(experiment_fig5a(models, n_tasks=tasks, scale=scale))
    if name == "fig5b":
        return render_fig5b(experiment_fig5b(models, n_tasks=tasks, scale=scale))
    if name == "fig5c":
        return render_fig5c(experiment_fig5c(models, n_tasks=tasks, scale=scale))
    if name == "fig6":
        return render_fig6(
            experiment_fig6_table1(models, n_tasks_per_cell=tasks, scale=scale)
        )
    if name == "table1":
        return render_table1(
            experiment_fig6_table1(models, n_tasks_per_cell=tasks, scale=scale)
        )
    if name == "table2":
        return render_table2(
            experiment_table2(models, per_level=10, housing_rows=housing_rows)
        )
    if name == "joins":
        # scale factor reuses the --scale knob: 1.0 -> 10k-row tables
        rows = max(200, int(10_000 * scale))
        return render_join_scale(
            experiment_join_scale(rows=rows, nl_rows=min(1_000, rows))
        )
    if name == "query":
        # --rows (or $REPRO_BENCH_ROWS) wins; otherwise the --scale knob
        # sizes the table (1.0 -> 100k rows)
        if rows_override is None:
            env = os.environ.get("REPRO_BENCH_ROWS")
            rows_override = int(env) if env else None
        rows = (
            rows_override
            if rows_override is not None
            else max(2_000, int(100_000 * scale))
        )
        return render_query_scale(experiment_query_scale(rows=rows))
    if name == "retrieval":
        # scale factor: 1.0 -> a 100k-distinct-value column
        distinct = max(2_000, int(100_000 * scale))
        return render_retrieval_scale(
            experiment_retrieval_scale(
                distinct=distinct, brute_distinct=min(5_000, distinct)
            )
        )
    if name == "storage":
        # scale factor: 1.0 -> a 100k-row durable table
        rows = max(2_000, int(100_000 * scale))
        return render_storage_durability(
            experiment_storage_durability(rows=rows)
        )
    if name == "concurrency":
        # scale factor: 1.0 -> 40 requests/session over a 20k-row table
        ops = max(10, int(40 * scale))
        rows = max(2_000, int(20_000 * scale))
        return render_concurrency(
            experiment_concurrency(
                ops_per_session=ops,
                rows=rows,
                increments_per_session=max(5, int(20 * scale)),
            )
        )
    if name == "faults":
        # scale factor: 1.0 -> 2k seam I/O cycles, 20-row torture workload
        return render_faults(
            experiment_fault_recovery(
                seam_cycles=max(200, int(2_000 * scale)),
                torture_rows=max(8, int(20 * scale)),
                writer_sessions=4,
                increments_per_session=max(4, int(8 * scale)),
            )
        )
    if name == "obs":
        # scale factor: 1.0 -> 600 statements over a 2k-row table
        return render_observability(
            experiment_observability(
                statements=max(100, int(600 * scale)),
                rows=max(500, int(2_000 * scale)),
            )
        )
    raise ValueError(f"unknown experiment {name!r}; choose from {EXPERIMENTS}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.bench", description=__doc__)
    parser.add_argument(
        "experiment",
        choices=EXPERIMENTS + ("all",),
        help="which paper result to regenerate",
    )
    parser.add_argument("--tasks", type=int, default=25, help="tasks per cell")
    parser.add_argument("--scale", type=float, default=0.5, help="database scale")
    parser.add_argument(
        "--housing-rows", type=int, default=20_000, help="NL2ML table size"
    )
    parser.add_argument(
        "--rows",
        type=int,
        default=None,
        help="exact row count for the query experiment (overrides --scale; "
        "defaults to $REPRO_BENCH_ROWS when set)",
    )
    parser.add_argument(
        "--model",
        action="append",
        choices=["gpt-4o", "claude-4"],
        default=None,
        help="restrict to one or more simulated models",
    )
    args = parser.parse_args(argv)

    names = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    for name in names:
        report = run_experiment(
            name, args.tasks, args.scale, args.housing_rows, args.model,
            rows_override=args.rows,
        )
        print(report)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
