"""``python -m repro.staticcheck`` — the CI gate and the developer loop.

Exit codes: ``0`` clean (or everything baselined), ``1`` at least one
non-baselined finding, ``2`` usage or framework error. Formats: ``text``
(developer terminal, one line per finding plus a summary) and ``github``
(``::error file=...`` workflow annotations, one per finding, so the CI
gate highlights the offending lines in the PR diff).
"""

from __future__ import annotations

import argparse
import os
import sys

from .baseline import Baseline
from .core import MiniStaticError, all_checkers
from .runner import run_paths

DEFAULT_BASELINE = "staticcheck.baseline.json"


def _default_paths() -> "list[str]":
    if os.path.isdir(os.path.join("src", "repro")):
        return [os.path.join("src", "repro")]
    return ["."]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.staticcheck",
        description=(
            "Invariant-enforcing static analysis: lock discipline, "
            "encapsulation, condition waits, WAL pairing, error taxonomy, "
            "broad-except hygiene."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to analyze (default: src/repro if present)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "github"),
        default="text",
        help="finding output format (github = workflow annotations)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default: ./{DEFAULT_BASELINE} if present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file: report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="NAME",
        help="run only this rule (repeatable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also list findings silenced by suppression comments",
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for name, cls in sorted(all_checkers().items()):
            print(f"{name:16s} {cls.description}")
        return 0

    paths = args.paths or _default_paths()
    try:
        result = run_paths(paths)
        if args.rules:
            # run everything, filter after: suppression-format findings
            # must never be filtered out by a --rule selection
            keep = set(args.rules) | {"suppression-format", "parse-error"}
            unknown = sorted(set(args.rules) - set(all_checkers()))
            if unknown:
                raise MiniStaticError(
                    f"unknown rule(s): {', '.join(unknown)}"
                )
            result.findings = [f for f in result.findings if f.rule in keep]
            result.suppressed = [f for f in result.suppressed if f.rule in keep]
    except MiniStaticError as exc:
        print(f"staticcheck: error: {exc}", file=sys.stderr)
        return 2

    baseline_path = args.baseline or DEFAULT_BASELINE
    if args.write_baseline:
        Baseline.from_findings(result.findings).save(baseline_path)
        print(
            f"wrote {len(result.findings)} finding(s) to {baseline_path} "
            f"({result.files_checked} files checked)"
        )
        return 0

    baseline = Baseline()
    if not args.no_baseline and (args.baseline or os.path.exists(baseline_path)):
        try:
            baseline = Baseline.load(baseline_path)
        except MiniStaticError as exc:
            print(f"staticcheck: error: {exc}", file=sys.stderr)
            return 2

    new = [f for f in result.findings if not baseline.covers(f)]
    grandfathered = len(result.findings) - len(new)

    for finding in new:
        if args.format == "github":
            message = finding.message.replace("\n", " ")
            print(
                f"::error file={finding.path},line={finding.line},"
                f"title=staticcheck[{finding.rule}]::{message}"
            )
        else:
            print(finding.render())
    if args.show_suppressed:
        for finding in result.suppressed:
            print(f"suppressed: {finding.render()}")

    stale = baseline.stale_entries(result.findings)
    if stale and args.format == "text":
        print(
            f"note: {len(stale)} stale baseline entr"
            f"{'y' if len(stale) == 1 else 'ies'} no longer match — "
            f"shrink {baseline_path} with --write-baseline"
        )

    if args.format == "text":
        summary = (
            f"{result.files_checked} files checked, "
            f"{len(new)} new finding(s), "
            f"{grandfathered} baselined, "
            f"{len(result.suppressed)} suppressed"
        )
        print(summary)
    return 1 if new else 0
