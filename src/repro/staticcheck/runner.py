"""File discovery and checker execution.

:func:`run_paths` is the library entry point (the CLI and the test suite
both call it): collect ``.py`` files, parse each into a
:class:`~repro.staticcheck.core.ModuleSource`, run every registered
checker, apply per-line/per-scope suppressions, and return the surviving
findings sorted by location. Unparseable files surface as ``parse-error``
findings rather than crashing the run — a gate that dies on the code it
is gating is useless in CI.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from .core import (
    Checker,
    Finding,
    MiniStaticError,
    ModuleSource,
    all_checkers,
    check_suppression_format,
)

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "node_modules"}


def iter_python_files(paths: "list[str]") -> "list[str]":
    """Every ``.py`` file under ``paths`` (files pass through verbatim)."""
    found: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            found.append(path)
            continue
        if not os.path.isdir(path):
            raise MiniStaticError(f"no such file or directory: {path!r}")
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames
                if d not in _SKIP_DIRS and not d.startswith(".")
            )
            for name in sorted(filenames):
                if name.endswith(".py"):
                    found.append(os.path.join(dirpath, name))
    return found


@dataclass
class RunResult:
    """Outcome of one analysis run, before baseline filtering."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files_checked: int = 0


def check_module(
    module: ModuleSource, checkers: "list[Checker] | None" = None
) -> RunResult:
    """Run checkers over one already-parsed module (the test-fixture seam)."""
    if checkers is None:
        checkers = [cls() for cls in all_checkers().values()]
    result = RunResult(files_checked=1)
    for finding in check_suppression_format(module):
        result.findings.append(finding)  # never suppressible
    for checker in checkers:
        for finding in checker.check(module):
            if module.suppressed(finding):
                result.suppressed.append(finding)
            else:
                result.findings.append(finding)
    return result


def run_paths(
    paths: "list[str]",
    root: str | None = None,
    rules: "list[str] | None" = None,
) -> RunResult:
    """Analyze every Python file under ``paths``.

    ``root`` anchors the repo-relative paths findings (and baselines) use;
    it defaults to the current working directory. ``rules`` restricts the
    run to a subset of checker names (unknown names are an error — a typo
    must not silently run nothing).
    """
    registry = all_checkers()
    if rules is not None:
        unknown = sorted(set(rules) - set(registry))
        if unknown:
            raise MiniStaticError(
                f"unknown rule(s) {', '.join(unknown)}; "
                f"known: {', '.join(sorted(registry))}"
            )
        registry = {name: registry[name] for name in rules}
    checkers = [cls() for cls in registry.values()]
    anchor = os.path.abspath(root or os.getcwd())
    combined = RunResult()
    for path in iter_python_files(paths):
        absolute = os.path.abspath(path)
        try:
            rel = os.path.relpath(absolute, anchor)
        except ValueError:  # different drive (Windows)
            rel = absolute
        if rel.startswith(".."):
            rel = absolute
        try:
            with open(absolute, "r", encoding="utf-8") as fh:
                text = fh.read()
        except (OSError, UnicodeDecodeError) as exc:
            raise MiniStaticError(f"unreadable source file {path!r}: {exc}") from exc
        try:
            module = ModuleSource(absolute, text, rel_path=rel)
        except SyntaxError as exc:
            combined.files_checked += 1
            combined.findings.append(
                Finding(
                    rule="parse-error",
                    path=rel.replace(os.sep, "/"),
                    line=exc.lineno or 1,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        result = check_module(module, checkers)
        combined.files_checked += 1
        combined.findings.extend(result.findings)
        combined.suppressed.extend(result.suppressed)
    combined.findings.sort(key=lambda f: (f.path, f.line, f.rule))
    combined.suppressed.sort(key=lambda f: (f.path, f.line, f.rule))
    return combined
