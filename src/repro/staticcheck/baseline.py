"""Committed baselines: grandfathered findings that do not fail the gate.

A baseline file is the ratchet that lets a new checker land before every
historical violation is fixed: known findings are recorded once (with
``--write-baseline``), committed, and from then on only *new* findings
fail the build. Entries match on ``(rule, path, context, message)`` —
deliberately not on line numbers, so unrelated edits above a
grandfathered site do not resurrect it.

A baseline entry that no longer matches anything is reported by the CLI
as stale (informational): fixing the underlying code should shrink the
committed file, keeping the ratchet one-directional.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .core import Finding, MiniStaticError

FORMAT_VERSION = 1


@dataclass
class Baseline:
    """Set of grandfathered finding identities."""

    entries: set[tuple[str, str, str, str]] = field(default_factory=set)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except FileNotFoundError:
            return cls()
        except (OSError, ValueError) as exc:
            raise MiniStaticError(f"unreadable baseline {path!r}: {exc}") from exc
        if data.get("version") != FORMAT_VERSION:
            raise MiniStaticError(
                f"unsupported baseline version {data.get('version')!r} in {path!r}"
            )
        entries = set()
        for entry in data.get("findings", []):
            entries.add(
                (
                    entry["rule"],
                    entry["path"],
                    entry.get("context", ""),
                    entry["message"],
                )
            )
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: "list[Finding]") -> "Baseline":
        return cls({finding.key() for finding in findings})

    def save(self, path: str) -> None:
        findings = [
            {"rule": rule, "path": file, "context": context, "message": message}
            for rule, file, context, message in sorted(self.entries)
        ]
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(
                {"version": FORMAT_VERSION, "findings": findings},
                fh,
                indent=2,
                sort_keys=True,
            )
            fh.write("\n")

    def covers(self, finding: Finding) -> bool:
        return finding.key() in self.entries

    def stale_entries(
        self, findings: "list[Finding]"
    ) -> list[tuple[str, str, str, str]]:
        """Baselined identities no longer produced by any live finding."""
        live = {finding.key() for finding in findings}
        return sorted(self.entries - live)
