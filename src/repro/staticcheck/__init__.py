"""Invariant-enforcing static analysis for this repository.

The concurrency layers (PRs 3–5) rest on conventions the interpreter
never checks: mutex-guarded attributes, module-private representations,
condition-wait re-check loops, undo/redo pairing at every mutation site,
a single error taxonomy, and deliberate (only deliberate) broad
exception handlers. Each convention cost review sweeps to enforce by
hand; this package encodes them as AST checkers behind one CLI —
``python -m repro.staticcheck`` — gated in CI so new violations fail the
build instead of waiting for a reviewer (or a crash) to find them.

Public surface:

* :func:`repro.staticcheck.runner.run_paths` / :func:`check_module` —
  library entry points (the tests drive these);
* :class:`repro.staticcheck.core.ModuleSource`, :class:`Checker`,
  :func:`register` — the framework for writing new rules;
* :class:`repro.staticcheck.baseline.Baseline` — the grandfathering
  ratchet;
* :mod:`repro.staticcheck.cli` — argument parsing and output formats.

See the "Invariants" section of ROADMAP.md for the rule catalog, the
annotation syntax (``#: guarded by self._mutex``, ``#: requires
self._mutex``) and the suppression format
(``# staticcheck: ignore[rule] — reason``).
"""

from .baseline import Baseline
from .core import (
    Checker,
    Finding,
    MiniStaticError,
    ModuleSource,
    all_checkers,
    register,
)
from .runner import RunResult, check_module, iter_python_files, run_paths

__all__ = [
    "Baseline",
    "Checker",
    "Finding",
    "MiniStaticError",
    "ModuleSource",
    "RunResult",
    "all_checkers",
    "check_module",
    "iter_python_files",
    "register",
    "run_paths",
]
