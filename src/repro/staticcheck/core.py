"""Framework core: parsed modules, findings, suppressions, the registry.

The analysis unit is a :class:`ModuleSource` — one parsed Python file plus
everything :mod:`ast` alone cannot give a checker:

* **comments by line** (via :mod:`tokenize`), because the invariant
  annotations this suite enforces live in comments: ``#: guarded by
  self._mutex`` on an attribute assignment, ``#: requires self._mutex``
  on a helper method;
* **parent links** for every node, so checkers can ask "is this access
  lexically inside a ``with self._mutex`` block?";
* **suppressions**: ``# staticcheck: ignore[rule] — reason`` silences one
  rule on one line (or, attached to a ``def``/``class`` header, on the
  whole construct). The reason is mandatory — a suppression without one
  is itself reported (rule ``suppression-format``), so every grandfathered
  violation carries its justification in the diff that introduced it.

Checkers subclass :class:`Checker` and register with :func:`register`;
:func:`all_checkers` is the registry the runner iterates.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Iterable, Iterator

#: suppression comment: ``# staticcheck: ignore[rule-a,rule-b] — reason``
#: (plain ``-``, ``--`` or an em/en dash all accepted as the separator)
SUPPRESS_RE = re.compile(
    r"#\s*staticcheck:\s*ignore\[(?P<rules>[\w\-, ]+)\]"
    r"(?:\s*(?:—|–|--|-)\s*(?P<reason>\S.*))?"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # repo-relative, POSIX separators
    line: int
    message: str
    #: enclosing scope (``Class.method``) — part of the baseline identity,
    #: so findings survive unrelated line drift
    context: str = ""

    def key(self) -> tuple[str, str, str, str]:
        """Line-independent identity used for baseline matching."""
        return (self.rule, self.path, self.context, self.message)

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class Suppression:
    """One parsed ``staticcheck: ignore`` comment."""

    line: int
    rules: tuple[str, ...]
    reason: str | None
    #: inclusive line range the suppression covers (== ``line`` for a
    #: plain statement, the whole body for a def/class header)
    start: int = 0
    end: int = 0

    def covers(self, rule: str, line: int) -> bool:
        return self.start <= line <= self.end and rule in self.rules


class ModuleSource:
    """One parsed module plus comments, parents, and suppressions."""

    def __init__(self, path: str, text: str, rel_path: str | None = None):
        self.path = path
        self.rel_path = (rel_path or path).replace("\\", "/")
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text)
        self.comments = _collect_comments(text)
        self._parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self.suppressions = _collect_suppressions(self)

    # ------------------------------------------------------------ structure

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk from ``node``'s parent up to the module root."""
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def qualname(self, node: ast.AST) -> str:
        """Dotted path of enclosing class/function scopes (for baselines)."""
        parts: list[str] = []
        for ancestor in self.ancestors(node):
            if isinstance(
                ancestor,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                parts.append(ancestor.name)
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            parts.insert(0, node.name)
        return ".".join(reversed(parts))

    # ------------------------------------------------------------- comments

    def comment_on(self, line: int) -> str | None:
        return self.comments.get(line)

    def header_comments(self, node: ast.stmt) -> list[str]:
        """Comments attached to a statement: on its first line, or in the
        contiguous comment block directly above it (above decorators for
        a decorated def/class)."""
        first = getattr(node, "lineno", 0)
        for decorator in getattr(node, "decorator_list", []) or []:
            first = min(first, decorator.lineno)
        found: list[str] = []
        trailing = self.comments.get(getattr(node, "lineno", 0))
        if trailing is not None:
            found.append(trailing)
        line = first - 1
        while line >= 1 and self._comment_only(line):
            found.append(self.comments[line])
            line -= 1
        return found

    def _comment_only(self, line: int) -> bool:
        if line not in self.comments:
            return False
        text = self.lines[line - 1] if line <= len(self.lines) else ""
        return text.lstrip().startswith("#")

    # --------------------------------------------------------- suppressions

    def suppressed(self, finding: Finding) -> bool:
        return any(
            s.covers(finding.rule, finding.line) for s in self.suppressions
        )

    def finding(
        self, rule: str, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=rule,
            path=self.rel_path,
            line=getattr(node, "lineno", 1),
            message=message,
            context=self.qualname(node),
        )


def _collect_comments(text: str) -> dict[int, str]:
    comments: dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    except tokenize.TokenError:
        pass  # ast.parse already succeeded; comments stay best-effort
    return comments


def _collect_suppressions(module: ModuleSource) -> list[Suppression]:
    suppressions: list[Suppression] = []
    for line, comment in module.comments.items():
        match = SUPPRESS_RE.search(comment)
        if match is None:
            continue
        rules = tuple(
            r.strip() for r in match.group("rules").split(",") if r.strip()
        )
        reason = match.group("reason")
        suppressions.append(
            Suppression(line=line, rules=rules, reason=reason, start=line, end=line)
        )
    # a suppression on (or directly above) a def/class header covers the
    # whole construct — that is how "this helper runs single-threaded
    # during recovery"-style rationales are written once, not per line
    headers: dict[int, tuple[int, int]] = {}
    for node in ast.walk(module.tree):
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            first = node.lineno
            for decorator in node.decorator_list:
                first = min(first, decorator.lineno)
            span = (node.lineno, node.end_lineno or node.lineno)
            headers[node.lineno] = span
            # comment block directly above the header/decorators
            line = first - 1
            while line >= 1 and module._comment_only(line):
                headers.setdefault(line, span)
                line -= 1
    for suppression in suppressions:
        span = headers.get(suppression.line)
        if span is None and suppression.line + 1 in headers:
            # standalone comment line directly above a header
            span = headers[suppression.line + 1]
        if span is not None:
            suppression.start, suppression.end = span
        elif _comment_only_line(module, suppression.line):
            # standalone comment: applies to the next code line
            suppression.end = suppression.line + 1
    return suppressions


def _comment_only_line(module: ModuleSource, line: int) -> bool:
    return module._comment_only(line)


def check_suppression_format(module: ModuleSource) -> Iterator[Finding]:
    """Reasonless suppressions are findings themselves (not silencable)."""
    for suppression in module.suppressions:
        if not suppression.reason:
            yield Finding(
                rule="suppression-format",
                path=module.rel_path,
                line=suppression.line,
                message=(
                    "suppression is missing its rationale — write "
                    "'# staticcheck: ignore[rule] — <why this is safe>'"
                ),
                context="",
            )


# ------------------------------------------------------------------ registry


class Checker:
    """Base class: one named rule over one module at a time."""

    name: str = ""
    description: str = ""

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, type[Checker]] = {}


def register(cls: type[Checker]) -> type[Checker]:
    if not cls.name:
        raise MiniStaticError(f"checker {cls.__name__} has no rule name")
    if cls.name in _REGISTRY:
        raise MiniStaticError(f"duplicate checker name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def all_checkers() -> dict[str, type[Checker]]:
    from . import checkers  # noqa: F401  — importing registers everything

    return dict(_REGISTRY)


class MiniStaticError(Exception):
    """Framework misuse (bad registration, unknown rule, unreadable file)."""
