"""Module entry point: ``python -m repro.staticcheck``."""

import sys

from .cli import main

sys.exit(main())
