"""Rule ``broad-except``: catching everything needs an exit or a reason.

``except Exception`` swallows ``MiniDBError`` channels, lock-manager
abort signals, and programming errors alike. It is sometimes exactly
right — a dispatcher worker must survive anything, a tool boundary must
fold every failure into an error result — but each such site is a
deliberate containment boundary and must say so. A handler for
``Exception``/``BaseException`` (or a bare ``except:``) is compliant
when it:

* re-raises (``raise`` or ``raise Wrapped(...) from exc`` — narrowing
  the blast radius while preserving failure), or
* converts to an error ``ToolResult`` (a ``ToolResult.error(...)`` call
  in the handler body — the service boundary contract), or
* carries a rationale suppression:
  ``# staticcheck: ignore[broad-except] — <why containment is correct>``.

Anything else is a silent failure sink and gets flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Checker, Finding, ModuleSource, register

_BROAD = ("Exception", "BaseException")


def _is_broad(handler: ast.ExceptHandler) -> str | None:
    """The broad name this handler catches, or ``None`` if it is narrow."""
    if handler.type is None:
        return "bare except"
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for node in types:
        if isinstance(node, ast.Name) and node.id in _BROAD:
            return node.id
    return None


def _handler_escapes(handler: ast.ExceptHandler) -> bool:
    """Re-raise or ToolResult.error conversion anywhere in the body."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "error"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "ToolResult"
        ):
            return True
    return False


@register
class BroadExceptChecker(Checker):
    name = "broad-except"
    description = (
        "'except Exception' needs a re-raise, a ToolResult.error "
        "conversion, or a rationale suppression"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            caught = _is_broad(node)
            if caught is None:
                continue
            if _handler_escapes(node):
                continue
            yield module.finding(
                self.name,
                node,
                f"broad '{caught}' handler neither re-raises nor converts "
                f"to an error ToolResult — narrow it, or mark the "
                f"deliberate containment boundary with "
                f"'# staticcheck: ignore[broad-except] — <rationale>'",
            )
