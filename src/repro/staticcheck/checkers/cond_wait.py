"""Rule ``cond-wait``: ``Condition.wait()`` only inside a ``while`` re-check.

``threading.Condition`` makes no ordering promise between ``notify`` and
the predicate a waiter cares about: wakeups can be spurious, and the
predicate can be re-falsified between ``notify`` and the waiter re-taking
the lock (the quiesce/checkpoint races of PR 4 were exactly this). The
only correct shape is::

    with cond:
        while not predicate():
            cond.wait()

An ``if``-guarded wait compiles and almost always works — until two
waiters race. This checker finds every attribute assigned
``threading.Condition(...)`` anywhere in the module and requires each
``.wait(...)`` on such an attribute to sit lexically inside a ``while``
loop in the same function. ``wait_for`` is exempt (it loops internally);
``threading.Event.wait`` is naturally out of scope because Events are not
Conditions.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Checker, Finding, ModuleSource, register


def _condition_names(module: ModuleSource) -> set[str]:
    """Attribute/variable names bound to ``threading.Condition(...)``."""
    names: set[str] = set()
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        value = node.value
        if not isinstance(value, ast.Call):
            continue
        func = value.func
        callee = (
            func.attr
            if isinstance(func, ast.Attribute)
            else getattr(func, "id", None)
        )
        if callee != "Condition":
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(target, ast.Attribute):
                names.add(target.attr)
            elif isinstance(target, ast.Name):
                names.add(target.id)
    return names


@register
class ConditionWaitChecker(Checker):
    name = "cond-wait"
    description = (
        "Condition.wait() must run inside a while re-check loop, never a "
        "plain if (spurious wakeups, notify/predicate races)"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        conditions = _condition_names(module)
        if not conditions:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or func.attr != "wait":
                continue
            receiver = func.value
            if isinstance(receiver, ast.Attribute):
                name = receiver.attr
            elif isinstance(receiver, ast.Name):
                name = receiver.id
            else:
                continue
            if name not in conditions:
                continue
            if not self._inside_while(module, node):
                yield module.finding(
                    self.name,
                    node,
                    f"'{name}.wait()' outside a while re-check loop — wrap "
                    f"it as 'while not <predicate>: {name}.wait()' so "
                    f"spurious wakeups and notify races re-test the "
                    f"predicate",
                )

    @staticmethod
    def _inside_while(module: ModuleSource, node: ast.AST) -> bool:
        for ancestor in module.ancestors(node):
            if isinstance(ancestor, ast.While):
                return True
            if isinstance(
                ancestor,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
            ):
                return False
        return False
