"""Rule ``fs-seam``: durable-persistence file I/O goes through the seam.

The fault-injection story (:mod:`repro.faults`) only covers what actually
flows through the :class:`~repro.faults.Filesystem` seam. One bare
``open(...)`` or ``os.rename(...)`` inside the durable engine or the
retrieval sidecar store is an operation the torture sweep can neither
crash nor error — an untested failure path by construction. Inside the
seamed modules, every file operation must use ``self.fs`` (or another
``Filesystem`` instance); direct builtin ``open`` calls and the ``os``
file-mutation functions are findings.

``os.path.*`` helpers, ``os.getpid``/``os.kill`` (pid liveness probes),
and everything outside the seamed modules are untouched — the seam is a
durability contract, not a repo-wide style rule.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Checker, Finding, ModuleSource, register

#: modules whose file I/O must be injectable (the durable stack)
SEAMED_PATHS = frozenset(
    {
        "src/repro/minidb/engines/durable.py",
        "src/repro/obs/tracing.py",
        "src/repro/retrieval/engine.py",
    }
)

#: ``os.<attr>`` calls that touch the filesystem and therefore belong
#: behind the seam
BANNED_OS = frozenset(
    {
        "open",
        "fdopen",
        "fsync",
        "rename",
        "replace",
        "unlink",
        "remove",
        "link",
        "makedirs",
        "mkdir",
        "listdir",
        "truncate",
    }
)


@register
class FsSeamChecker(Checker):
    name = "fs-seam"
    description = (
        "file I/O in the durable engine and retrieval persistence must go "
        "through the repro.faults.Filesystem seam, not bare open()/os.*"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if module.rel_path not in SEAMED_PATHS:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "open":
                yield module.finding(
                    self.name,
                    node,
                    "bare open() in a seamed module — route it through the "
                    "Filesystem seam (self.fs.open) so fault injection can "
                    "reach it",
                )
            elif (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "os"
                and func.attr in BANNED_OS
            ):
                yield module.finding(
                    self.name,
                    node,
                    f"os.{func.attr}() in a seamed module — route it "
                    "through the Filesystem seam so fault injection can "
                    "reach it",
                )
