"""Rule ``error-taxonomy``: minidb raises its own error hierarchy.

The agent layer dispatches on error *channels* (syntax error → SQL
repair, unknown identifier → context retrieval, permission → abort), and
the service layer maps error classes to SQLSTATE codes and retryability
metadata. A ``raise ValueError`` inside the engine silently falls out of
every one of those channels: the MCP server folds it into a generic
result, the dispatcher cannot tag it retryable, and the agent loop
cannot react. Inside ``src/repro/minidb/`` every raise must use the
:mod:`repro.minidb.errors` taxonomy (or a subclass of a builtin defined
locally for intra-module control flow — defining the subclass is the
declaration of intent).

Bare ``raise`` re-raises are fine. Modules outside a ``minidb`` package
directory are out of scope — the taxonomy is the engine's contract, not
the whole repo's.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Checker, Finding, ModuleSource, register

#: builtins whose raising inside the engine loses the SQLSTATE channel
BANNED = frozenset(
    {
        "Exception",
        "BaseException",
        "ValueError",
        "TypeError",
        "RuntimeError",
        "KeyError",
        "IndexError",
        "AttributeError",
    }
)


def _in_scope(module: ModuleSource) -> bool:
    parts = module.rel_path.split("/")
    return "minidb" in parts[:-1]


@register
class ErrorTaxonomyChecker(Checker):
    name = "error-taxonomy"
    description = (
        "raises inside src/repro/minidb/ must use the errors.py hierarchy "
        "(MiniDBError subclasses), not bare builtin exceptions"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if not _in_scope(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            name = None
            if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                name = exc.func.id
            elif isinstance(exc, ast.Name):
                name = exc.id
            if name in BANNED:
                yield module.finding(
                    self.name,
                    node,
                    f"raise {name} inside minidb — use a MiniDBError "
                    f"subclass from errors.py so the SQLSTATE mapping and "
                    f"the agent's error channels survive",
                )
