"""Rule ``encapsulation``: no cross-module pokes at private attributes.

The ``heap._rows`` class of bug: module B reaches into an object whose
class lives in module A and reads (or worse, writes) a ``_private``
attribute, silently coupling itself to A's representation. The WAL
engine poking ``heap._next_rid`` directly is exactly how snapshot writers
drift out of sync with the heap's own accessors.

The rule is *module friendship*: code may touch single-underscore
attributes of classes defined in its own module (``storage.py`` walking
``heap._rows`` is the implementation working on itself; helper classes
like a dispatcher's ``PendingResult._resolve`` stay usable by their
module), but an attribute access ``obj._name`` on a non-``self``/``cls``
receiver whose name is not declared by any class in the current module is
a violation — route it through an accessor instead.

Declarations that make a private name module-own: ``self._name = ...`` or
``cls._name = ...`` anywhere in the module, a class-level ``_name = ...``
assignment, or a ``__slots__`` entry. Dunder and name-mangled attributes
(``__x``) are out of scope — Python already polices those harder.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Checker, Finding, ModuleSource, register


def _is_private(name: str) -> bool:
    return name.startswith("_") and not name.startswith("__")


def _own_private_names(module: ModuleSource) -> set[str]:
    own: set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in ("self", "cls")
                    and _is_private(target.attr)
                ):
                    own.add(target.attr)
        if isinstance(node, ast.ClassDef):
            for stmt in node.body:
                if isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            if _is_private(target.id):
                                own.add(target.id)
                            if target.id == "__slots__":
                                own.update(_slot_names(stmt.value))
                elif isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    if _is_private(stmt.target.id):
                        own.add(stmt.target.id)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _is_private(node.name):
                own.add(node.name)  # private methods of this module's classes
    return own


def _slot_names(value: ast.AST) -> set[str]:
    names: set[str] = set()
    if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
        for element in value.elts:
            if isinstance(element, ast.Constant) and isinstance(
                element.value, str
            ):
                if _is_private(element.value):
                    names.add(element.value)
    return names


@register
class EncapsulationChecker(Checker):
    name = "encapsulation"
    description = (
        "private ('_name') attribute access on a non-self receiver is only "
        "allowed for names declared by classes in the same module"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        own = _own_private_names(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if not _is_private(node.attr):
                continue
            receiver = node.value
            if isinstance(receiver, ast.Name) and receiver.id in ("self", "cls"):
                continue
            if node.attr in own:
                continue
            yield module.finding(
                self.name,
                node,
                f"cross-module access to private attribute "
                f"'{node.attr}' — add or use an accessor on the owning "
                f"class instead of reaching into its representation",
            )
