"""Rule ``metric-registration``: instruments must live in a registry.

An orphan ``Counter()``/``Gauge()``/``Histogram()`` constructed directly is
a metric that silently never appears in ``registry.render_text()`` or
``system.metrics`` — the whole point of the unified registry (PR 9) is that
there are no such invisible instruments. Production code must obtain
instruments through the get-or-create factories (``registry.counter(...)``,
``registry.gauge(...)``, ``registry.histogram(...)``) or hand a constructed
instance straight to ``registry.register(...)``.

The rule is import-aware: only names actually imported from
``repro.obs.metrics`` (directly, via the ``repro.obs`` package, or through
a ``metrics`` module alias) are flagged, so unrelated classes that happen
to be called ``Counter`` — e.g. ``collections.Counter`` — never
false-positive. ``repro/obs/metrics.py`` itself is exempt: the factories
have to construct the instruments somewhere.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Checker, Finding, ModuleSource, register

#: instrument classes the registry must own
INSTRUMENT_CLASSES = frozenset({"Counter", "Gauge", "Histogram"})

#: the one module allowed to construct instruments directly
FACTORY_PATH = "src/repro/obs/metrics.py"


def _obs_metrics_bindings(
    module: ModuleSource,
) -> tuple[dict[str, str], set[str]]:
    """Local names bound to instrument classes, and module aliases through
    which ``<alias>.Counter(...)`` reaches them."""
    direct: dict[str, str] = {}
    module_aliases: set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ImportFrom):
            source = node.module or ""
            if source.endswith("obs.metrics") or source == "obs" or source.endswith(
                ".obs"
            ):
                for alias in node.names:
                    if alias.name in INSTRUMENT_CLASSES:
                        direct[alias.asname or alias.name] = alias.name
                    if alias.name == "metrics" and not source.endswith("obs.metrics"):
                        module_aliases.add(alias.asname or "metrics")
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.endswith("obs.metrics"):
                    module_aliases.add(alias.asname or alias.name)
    return direct, module_aliases


def _is_register_argument(module: ModuleSource, node: ast.Call) -> bool:
    """True when the constructor call is passed straight to ``.register``
    (``registry.register(Counter("x"))`` keeps the instrument visible)."""
    parent = module.parent(node)
    return (
        isinstance(parent, ast.Call)
        and node in parent.args
        and isinstance(parent.func, ast.Attribute)
        and parent.func.attr == "register"
    )


@register
class MetricRegistrationChecker(Checker):
    name = "metric-registration"
    description = (
        "Counter/Gauge/Histogram instances must come from a MetricsRegistry "
        "factory or be passed to registry.register(...) — orphan instruments "
        "never show up in the exposition or system.metrics"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if module.rel_path == FACTORY_PATH:
            return
        direct, module_aliases = _obs_metrics_bindings(module)
        if not direct and not module_aliases:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                kind = direct.get(func.id)
            elif (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in module_aliases
                and func.attr in INSTRUMENT_CLASSES
            ):
                kind = func.attr
            else:
                kind = None
            if kind is None or self._suppressed_ok(module, node):
                continue
            yield module.finding(
                self.name,
                node,
                f"orphan {kind}() — use registry.{kind.lower()}(...) "
                "(get-or-create) or wrap the call in registry.register(...) "
                "so the instrument is exported",
            )

    @staticmethod
    def _suppressed_ok(module: ModuleSource, node: ast.Call) -> bool:
        return _is_register_argument(module, node)
