"""Checker implementations — importing this package registers every rule."""

from . import (  # noqa: F401  — import-for-registration
    broad_except,
    cond_wait,
    encapsulation,
    error_taxonomy,
    fs_seam,
    guarded_by,
    metric_registration,
    wal_pairing,
)
