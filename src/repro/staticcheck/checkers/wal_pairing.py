"""Rule ``wal-pairing``: every ``log_undo`` pairs with a ``log_redo``.

The durability contract (ROADMAP, PR 3): the executor appends a redo
record next to every undo record, and the transaction manager flushes,
truncates, and discards the two logs in lockstep. A mutation site that
logs undo but forgets redo produces a database whose live state and
crash-recovered state silently diverge — the worst failure mode a WAL
can have, and invisible to tests that never crash.

The check is per-path within a function: for each ``*.log_undo(...)``
call, a ``*.log_redo(...)`` call must appear in the statements *after* it
on the same branch — the rest of its own statement list, or the rest of
any enclosing statement list up to the function boundary. This accepts
the repo's idiom::

    session.tx.log_undo("...", undo_action)
    if session.tx.redo_enabled:
        session.tx.log_redo({...})

and rejects an undo logged inside a branch whose redo only exists on a
different branch. Functions *named* ``log_undo`` (the API definition
itself) are exempt. Pure in-memory mutations with no durable footprint
should suppress with a rationale rather than skip the redo silently.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Checker, Finding, ModuleSource, register


def _calls_named(node: ast.AST, method: str) -> bool:
    """Whether ``node``'s subtree contains a call to ``*.<method>(...)``."""
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Call)
            and isinstance(child.func, ast.Attribute)
            and child.func.attr == method
        ):
            return True
    return False


_STMT_LIST_FIELDS = ("body", "orelse", "finalbody", "handlers")


@register
class WalPairingChecker(Checker):
    name = "wal-pairing"
    description = (
        "a log_undo call must be followed by a log_redo call on the same "
        "path, so recovered state matches live state"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "log_undo"
            ):
                continue
            function = module.enclosing_function(node)
            if function is not None and function.name == "log_undo":
                continue  # the API definition itself
            if not self._redo_follows(module, node, function):
                yield module.finding(
                    self.name,
                    node,
                    "log_undo without a matching log_redo on this path — "
                    "crash recovery would replay a state the live database "
                    "never reached (add the redo append, or suppress with "
                    "a rationale if this mutation has no durable footprint)",
                )

    def _redo_follows(
        self,
        module: ModuleSource,
        undo_call: ast.AST,
        function: ast.AST | None,
    ) -> bool:
        # walk up from the undo call; at every enclosing statement list,
        # search the statements after the one containing the call
        node: ast.AST = undo_call
        while True:
            parent = module.parent(node)
            if parent is None or node is function:
                return False
            for field in _STMT_LIST_FIELDS:
                statements = getattr(parent, field, None)
                if not isinstance(statements, list) or node not in statements:
                    continue
                after = statements[statements.index(node) + 1 :]
                if any(_calls_named(stmt, "log_redo") for stmt in after):
                    return True
            node = parent
