"""Rule ``guarded-by``: annotated attributes only touched under their lock.

The PR-4 race class: state shared across sessions ("``_sessions`` is only
touched under ``_mutex``") is protected by convention, and a forgotten
``with self._mutex`` compiles, passes single-threaded tests, and corrupts
state under the threaded dispatcher. This checker makes the convention
machine-checked:

* An attribute assignment in ``__init__`` annotated ``#: guarded by
  self._mutex`` (trailing on the line, or in the comment block directly
  above) declares the lock discipline.
* Every other read or write of ``self.<attr>`` in the class must be
  lexically inside a ``with self._mutex`` block — or inside a method
  annotated ``#: requires self._mutex``, which shifts the obligation to
  its callers: any ``self.<method>()`` call site of a requires-annotated
  method is itself checked for the lock.
* ``self.<cond> = threading.Condition(self.<lock>)`` makes the two names
  aliases — holding the condition *is* holding the lock — so ``with
  self._quiesce`` satisfies ``guarded by self._mutex`` and vice versa.

``__init__`` is exempt (construction happens-before sharing). The check
is lexical: a closure defined under the lock is treated as guarded even
though it may run later — annotate state captured by escaping closures
with care.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..core import Checker, Finding, ModuleSource, register

GUARDED_RE = re.compile(r"#:\s*guarded by\s+self\.(\w+)")
REQUIRES_RE = re.compile(r"#:\s*requires\s+self\.(\w+)")


def _self_attr(node: ast.AST) -> str | None:
    """``attr`` when ``node`` is exactly ``self.<attr>``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _ClassDiscipline:
    """Annotations declared by one class's ``__init__`` and method headers."""

    def __init__(self, module: ModuleSource, cls: ast.ClassDef):
        self.module = module
        self.cls = cls
        #: attr name -> lock attr name it is guarded by
        self.guarded: dict[str, str] = {}
        #: lock name -> its full alias group (Condition-over-Lock pairs)
        self.aliases: dict[str, frozenset[str]] = {}
        #: method name -> lock it requires held on entry
        self.requires: dict[str, str] = {}
        self._scan()

    def _scan(self) -> None:
        alias_pairs: list[tuple[str, str]] = []
        for item in self.cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for comment in self.module.header_comments(item):
                match = REQUIRES_RE.search(comment)
                if match:
                    self.requires[item.name] = match.group(1)
            if item.name != "__init__":
                continue
            for stmt in ast.walk(item):
                if isinstance(stmt, ast.Assign):
                    targets, value = stmt.targets, stmt.value
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    targets, value = [stmt.target], stmt.value
                else:
                    continue
                for target in targets:
                    attr = _self_attr(target)
                    if attr is None:
                        continue
                    for comment in self.module.header_comments(stmt):
                        match = GUARDED_RE.search(comment)
                        if match:
                            self.guarded[attr] = match.group(1)
                    alias = _condition_alias(value)
                    if alias is not None:
                        alias_pairs.append((attr, alias))
        # union alias pairs into groups; every lock is its own alias too
        for a, b in alias_pairs:
            group = frozenset({a, b}) | self.aliases.get(a, frozenset()) | self.aliases.get(b, frozenset())
            for name in group:
                self.aliases[name] = group

    def alias_group(self, lock: str) -> frozenset[str]:
        return self.aliases.get(lock, frozenset({lock}))


def _condition_alias(value: ast.AST) -> str | None:
    """``lock`` for ``threading.Condition(self.<lock>)`` / ``Condition(...)``."""
    if not isinstance(value, ast.Call) or not value.args:
        return None
    func = value.func
    name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", None)
    if name != "Condition":
        return None
    return _self_attr(value.args[0])


@register
class GuardedByChecker(Checker):
    name = "guarded-by"
    description = (
        "attributes annotated '#: guarded by self.<lock>' in __init__ may "
        "only be accessed inside 'with self.<lock>' (or a method annotated "
        "'#: requires self.<lock>')"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(
        self, module: ModuleSource, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        discipline = _ClassDiscipline(module, cls)
        if not discipline.guarded and not discipline.requires:
            return
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name == "__init__":
                continue  # construction happens-before sharing
            held_on_entry = discipline.requires.get(method.name)
            for node in ast.walk(method):
                attr = self._accessed_attr(node)
                if attr is not None and attr in discipline.guarded:
                    lock = discipline.guarded[attr]
                    if not self._holds(
                        module, node, method, discipline, lock, held_on_entry
                    ):
                        yield module.finding(
                            self.name,
                            node,
                            f"'self.{attr}' is guarded by 'self.{lock}' but "
                            f"accessed without holding it (wrap in 'with "
                            f"self.{lock}' or annotate the method "
                            f"'#: requires self.{lock}')",
                        )
                required = self._required_call(node, discipline)
                if required is not None and not self._holds(
                    module, node, method, discipline, required, held_on_entry
                ):
                    callee = node.func.attr  # type: ignore[union-attr]
                    yield module.finding(
                        self.name,
                        node,
                        f"call to 'self.{callee}()' requires "
                        f"'self.{required}' held, but the caller does not "
                        f"hold it here",
                    )

    @staticmethod
    def _accessed_attr(node: ast.AST) -> str | None:
        return _self_attr(node)

    @staticmethod
    def _required_call(
        node: ast.AST, discipline: _ClassDiscipline
    ) -> str | None:
        if not isinstance(node, ast.Call):
            return None
        attr = _self_attr(node.func)
        if attr is None:
            return None
        return discipline.requires.get(attr)

    def _holds(
        self,
        module: ModuleSource,
        node: ast.AST,
        method: ast.AST,
        discipline: _ClassDiscipline,
        lock: str,
        held_on_entry: str | None,
    ) -> bool:
        group = discipline.alias_group(lock)
        if held_on_entry is not None and held_on_entry in group:
            return True
        for ancestor in module.ancestors(node):
            if ancestor is method:
                break
            if isinstance(ancestor, ast.With):
                for item in ancestor.items:
                    context_attr = _self_attr(item.context_expr)
                    if context_attr in group:
                        return True
        return False
