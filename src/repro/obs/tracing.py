"""Per-statement structured tracing.

A ``StatementTrace`` is a tree of ``Span`` nodes built while a statement
runs: ``parse`` → ``plan`` → ``lock-wait`` → ``execute`` → ``wal-flush``,
with ``checkpoint-stall``/``checkpoint`` and ``rollback`` appearing on the
paths that hit them. Durations come from ``time.perf_counter`` (monotonic),
recorded relative to statement start so span trees are self-contained.

``StatementTracer`` owns the machinery: a ``threading.local`` slot holding
the current trace (so deep engine code can attach events without plumbing a
trace argument through every call), a bounded ring buffer of finished
traces, a bounded slow-statement log, and an optional JSONL sink written
through the fault-injectable ``Filesystem`` seam.

Dark-mode contract: when tracing is off and no slow threshold is set, the
statement path never calls ``start``/``finish``; inner hooks only perform a
``current()`` probe (one ``getattr`` on a thread-local) and branch away.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from ..faults import OS_FILESYSTEM, Filesystem


def redact_sql(sql: str) -> str:
    """Replace literal values with ``?`` so traces are safe to ship off-box.

    A tiny scanner rather than the minidb lexer: this module must not import
    ``repro.minidb`` (the database imports us), and redaction must not raise
    on malformed SQL that never parsed. String literals (with ``''``
    escapes) and numeric literals not glued to an identifier are replaced;
    quoted identifiers pass through untouched.
    """
    out: List[str] = []
    i, n = 0, len(sql)
    while i < n:
        ch = sql[i]
        if ch == "'":
            i += 1
            while i < n:
                if sql[i] == "'":
                    if i + 1 < n and sql[i + 1] == "'":
                        i += 2
                        continue
                    i += 1
                    break
                i += 1
            out.append("?")
            continue
        if ch == '"':
            j = i + 1
            while j < n and sql[j] != '"':
                j += 1
            out.append(sql[i : min(j + 1, n)])
            i = j + 1
            continue
        if ch.isdigit() and (i == 0 or not (sql[i - 1].isalnum() or sql[i - 1] in '_"')):
            j = i
            while j < n and (sql[j].isdigit() or sql[j] == "."):
                j += 1
            if j < n and sql[j] in "eE" and j + 1 < n and (
                sql[j + 1].isdigit() or sql[j + 1] in "+-"
            ):
                j += 2
                while j < n and sql[j].isdigit():
                    j += 1
            out.append("?")
            i = j
            continue
        out.append(ch)
        i += 1
    return "".join(out)


class Span:
    """One timed region inside a statement; may nest children."""

    __slots__ = ("name", "start_s", "duration_s", "meta", "children")

    def __init__(self, name: str, start_s: float, meta: Optional[Dict[str, Any]]):
        self.name = name
        self.start_s = start_s
        self.duration_s = 0.0
        self.meta = meta
        self.children: List["Span"] = []

    def to_dict(self) -> Dict[str, Any]:
        entry: Dict[str, Any] = {
            "name": self.name,
            "start_s": round(self.start_s, 9),
            "duration_s": round(self.duration_s, 9),
        }
        if self.meta:
            entry["meta"] = self.meta
        if self.children:
            entry["children"] = [child.to_dict() for child in self.children]
        return entry


class StatementTrace:
    """Span tree plus scan/join events and annotations for one statement."""

    def __init__(self, sql: str, user: str, session: Optional[str]) -> None:
        self.sql = sql
        self.user = user
        self.session = session
        self.trace_id = 0  # assigned by the tracer
        self.started_at = time.time()
        self._t0 = time.perf_counter()
        self.duration_s = 0.0
        self.status: Optional[str] = None
        self.error: Optional[str] = None
        self.error_code: Optional[str] = None
        self.retryable = False
        self.rows_returned = 0
        self.spans: List[Span] = []
        self.scans: List[Dict[str, Any]] = []
        self.joins: List[Dict[str, Any]] = []
        self.annotations: Dict[str, Any] = {}
        self._stack: List[Span] = []
        self._prev: Optional["StatementTrace"] = None

    def elapsed(self) -> float:
        return time.perf_counter() - self._t0

    @contextmanager
    def span(self, name: str, **meta: Any) -> Iterator[Span]:
        node = Span(name, self.elapsed(), meta or None)
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent else self.spans).append(node)
        self._stack.append(node)
        try:
            yield node
        finally:
            node.duration_s = self.elapsed() - node.start_s
            self._stack.pop()

    def close_open_spans(self) -> None:
        """Close anything left open by a non-local exit (defensive)."""
        while self._stack:
            node = self._stack.pop()
            node.duration_s = self.elapsed() - node.start_s

    def annotate(self, key: str, value: Any) -> None:
        self.annotations[key] = value

    def record_scan(
        self, binding: str, kind: str, rows: int, examined: int, duration_s: float
    ) -> None:
        self.scans.append(
            {
                "binding": binding,
                "kind": kind,
                "rows": rows,
                "examined": examined,
                "duration_s": duration_s,
            }
        )

    def record_join(
        self, binding: str, strategy: str, rows: int, duration_s: float
    ) -> None:
        self.joins.append(
            {
                "binding": binding,
                "strategy": strategy,
                "rows": rows,
                "duration_s": duration_s,
            }
        )

    @property
    def rows_examined(self) -> int:
        return sum(event["examined"] for event in self.scans)

    @property
    def access_path(self) -> str:
        """Compact ``kind:binding`` summary of scans, e.g. ``index:t,seq:u``."""
        return ",".join(f"{e['kind']}:{e['binding']}" for e in self.scans)

    def span_seconds(self, name: str) -> float:
        """Total duration of all spans with ``name`` anywhere in the tree."""
        total = 0.0
        stack = list(self.spans)
        while stack:
            node = stack.pop()
            if node.name == name:
                total += node.duration_s
            stack.extend(node.children)
        return total

    def span_names(self) -> List[str]:
        """Depth-first span names — handy for asserting nesting in tests."""
        names: List[str] = []

        def walk(nodes: List[Span]) -> None:
            for node in nodes:
                names.append(node.name)
                walk(node.children)

        walk(self.spans)
        return names

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.trace_id,
            "started_at": self.started_at,
            "user": self.user,
            "session": self.session,
            "sql": self.sql,
            "status": self.status,
            "error": self.error,
            "error_code": self.error_code,
            "retryable": self.retryable,
            "duration_s": round(self.duration_s, 9),
            "rows_returned": self.rows_returned,
            "rows_examined": self.rows_examined,
            "access_path": self.access_path,
            "annotations": self.annotations,
            "spans": [span.to_dict() for span in self.spans],
            "scans": self.scans,
            "joins": self.joins,
        }


class StatementTracer:
    """Ring buffer + thread-local current-trace slot + JSONL sink."""

    def __init__(
        self,
        options: Dict[str, Any],
        registry=None,
        filesystem: Optional[Filesystem] = None,
        ring_size: int = 256,
        slow_log_size: int = 64,
    ) -> None:
        self.options = options  # live reference to db.observability_options
        self.registry = registry
        self.fs = filesystem or OS_FILESYSTEM
        self._mutex = threading.Lock()
        self._ring: deque = deque(maxlen=ring_size)
        self._slow: deque = deque(maxlen=slow_log_size)
        self._local = threading.local()
        self._ids = itertools.count(1)
        if registry is not None:
            self._statements = registry.counter(
                "minidb_statements_total", "statements finished under tracing"
            )
            self._errors = registry.counter(
                "minidb_statement_errors_total", "traced statements ending in error"
            )
            self._latency = registry.histogram(
                "minidb_statement_seconds", "traced statement wall time"
            )
            self._sink_errors = registry.counter(
                "minidb_trace_sink_errors_total", "JSONL sink writes that failed"
            )
        else:
            self._statements = self._errors = self._latency = self._sink_errors = None

    def configure(
        self, ring_size: Optional[int] = None, slow_log_size: Optional[int] = None
    ) -> None:
        """Resize the bounded buffers, keeping the newest entries."""
        with self._mutex:
            if ring_size is not None:
                self._ring = deque(self._ring, maxlen=ring_size)
            if slow_log_size is not None:
                self._slow = deque(self._slow, maxlen=slow_log_size)

    def current(self) -> Optional[StatementTrace]:
        return getattr(self._local, "trace", None)

    def start(self, sql: str, user: str, session: Optional[str]) -> StatementTrace:
        if self.options.get("redact_literals"):
            sql = redact_sql(sql)
        trace = StatementTrace(sql, user, session)
        trace.trace_id = next(self._ids)
        trace._prev = self.current()
        self._local.trace = trace
        return trace

    def finish(
        self, trace: StatementTrace, status: str, error: Optional[BaseException] = None
    ) -> StatementTrace:
        trace.close_open_spans()
        trace.duration_s = trace.elapsed()
        trace.status = status
        if error is not None:
            trace.error = str(error)
            trace.error_code = getattr(error, "code", None)
            trace.retryable = bool(getattr(error, "retryable", False))
        self._local.trace = trace._prev
        if self._statements is not None:
            self._statements.inc()
            self._latency.observe(trace.duration_s)
            if error is not None:
                self._errors.inc()
        if self.options.get("tracing"):
            with self._mutex:
                self._ring.append(trace)
            sink = self.options.get("trace_sink")
            if sink:
                self._write_sink(sink, trace)
        return trace

    def probe(self) -> StatementTrace:
        """Start a throwaway trace for EXPLAIN ANALYZE event collection.

        A probe collects scan/join events exactly like a real trace but is
        never ringed, counted, or sunk; pair with :meth:`release`.
        """
        probe = StatementTrace("", user="", session=None)
        probe._prev = self.current()
        self._local.trace = probe
        return probe

    def release(self, probe: StatementTrace) -> None:
        probe.close_open_spans()
        self._local.trace = probe._prev

    def record_slow(self, entry: Dict[str, Any]) -> None:
        with self._mutex:
            self._slow.append(entry)

    def recent(self) -> List[StatementTrace]:
        """Newest-last snapshot of the finished-trace ring."""
        with self._mutex:
            return list(self._ring)

    def slow_statements(self) -> List[Dict[str, Any]]:
        with self._mutex:
            return list(self._slow)

    def _write_sink(self, path: str, trace: StatementTrace) -> None:
        line = json.dumps(trace.to_dict(), separators=(",", ":"), default=str)
        try:
            handle = self.fs.open(path, "a", encoding="utf-8")
            try:
                handle.write(line + "\n")
            finally:
                handle.close()
        except OSError:
            # The sink is best-effort observability: a full or failing disk
            # must degrade tracing, never the statement that was traced.
            if self._sink_errors is not None:
                self._sink_errors.inc()
