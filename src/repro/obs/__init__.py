"""Unified observability layer: metrics registry, statement tracing, system views.

The package has three pillars (PR 9):

- :mod:`repro.obs.metrics` — thread-safe ``Counter``/``Gauge``/``Histogram``
  primitives behind a ``MetricsRegistry`` with Prometheus-style text
  exposition. One registry hangs off every ``Database`` and absorbs the
  previously fragmented counters (planner stats, engine WAL/checkpoint
  counters, lock-manager stats, retrieval cache stats, service metrics).
- :mod:`repro.obs.tracing` — per-statement structured traces: nested spans
  (parse → plan → lock-wait → execute → wal-flush → checkpoint-stall) with
  monotonic-clock durations, scan/join events, and retry/deadlock
  annotations, kept in a bounded ring buffer with an optional JSONL sink on
  the fault-injectable ``Filesystem`` seam.
- :mod:`repro.obs.views` — read-only virtual tables (``system.statements``,
  ``system.metrics``, ``system.locks``, ``system.sessions``) served through
  the ordinary SQL path.

The layer is zero-cost-when-dark: with ``db.observability_options`` left at
defaults the statement hot path performs one dict read and one
``threading.local`` probe; ``BENCH_obs.json`` gates the measured overhead.

Import discipline: nothing in this package imports ``repro.minidb`` at
module level (``repro.minidb.database`` imports us), so the dependency edge
stays acyclic. ``views`` duck-types the ``Database`` it is handed.
"""

from .metrics import Counter, CounterMapView, Gauge, Histogram, MetricsRegistry
from .tracing import Span, StatementTrace, StatementTracer, redact_sql
from .views import SYSTEM_VIEW_COLUMNS, is_system_relation, system_view_rows

__all__ = [
    "Counter",
    "CounterMapView",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "StatementTrace",
    "StatementTracer",
    "redact_sql",
    "SYSTEM_VIEW_COLUMNS",
    "is_system_relation",
    "system_view_rows",
]
