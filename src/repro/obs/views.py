"""SQL-queryable system views over the observability state.

Four read-only virtual relations, resolved by the executor before the
catalog lookup so they never collide with user tables (dots are not legal
in unquoted ``CREATE TABLE`` names, and the database additionally refuses
writes against any ``system.``-prefixed object):

- ``system.statements`` — tail of the finished-statement trace ring.
- ``system.metrics``    — flat registry samples (histograms expanded).
- ``system.locks``      — live lock holders and waiters per table.
- ``system.sessions``   — connected sessions and their statement counts.

Row producers duck-type the ``Database`` they receive (this module must not
import ``repro.minidb``); each returns ``(columns, rows)`` with rows as
plain dicts keyed by column name, which is the shape the executor's
``_Source`` wants. System views take no locks — they read snapshots of
already-synchronized state, so observing the system never blocks it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

SYSTEM_VIEW_COLUMNS: Dict[str, List[str]] = {
    "system.statements": [
        "id",
        "started_at",
        "user",
        "session",
        "sql",
        "status",
        "error",
        "duration_ms",
        "rows_returned",
        "rows_examined",
        "access_path",
        "lock_wait_ms",
        "wal_flush_ms",
        "retryable",
    ],
    "system.metrics": ["name", "kind", "value"],
    "system.locks": ["relation", "owner", "mode", "state", "position"],
    "system.sessions": ["session", "user", "in_transaction", "statements"],
}


def is_system_relation(name: str) -> bool:
    return name.lower() in SYSTEM_VIEW_COLUMNS


def _ms(seconds: float) -> float:
    return round(seconds * 1000.0, 3)


def _statement_rows(db: Any) -> List[Dict[str, Any]]:
    rows = []
    for trace in db.tracer.recent():
        rows.append(
            {
                "id": trace.trace_id,
                "started_at": trace.started_at,
                "user": trace.user,
                "session": trace.session,
                "sql": trace.sql,
                "status": trace.status,
                "error": trace.error,
                "duration_ms": _ms(trace.duration_s),
                "rows_returned": trace.rows_returned,
                "rows_examined": trace.rows_examined,
                "access_path": trace.access_path,
                "lock_wait_ms": _ms(trace.span_seconds("lock-wait")),
                "wal_flush_ms": _ms(trace.span_seconds("wal-flush")),
                "retryable": trace.retryable,
            }
        )
    return rows


def _metric_rows(db: Any) -> List[Dict[str, Any]]:
    return [
        {"name": name, "kind": kind, "value": value}
        for name, kind, value in db.metrics.samples()
    ]


def _lock_rows(db: Any) -> List[Dict[str, Any]]:
    manager = db.lock_manager
    if manager is None:
        return []
    rows: List[Dict[str, Any]] = []
    for table, state in sorted(manager.snapshot().items()):
        for owner, mode in sorted(state.get("holders", {}).items()):
            rows.append(
                {
                    "relation": table,
                    "owner": owner,
                    "mode": mode,
                    "state": "held",
                    "position": None,
                }
            )
        for position, (owner, mode) in enumerate(state.get("queue", [])):
            rows.append(
                {
                    "relation": table,
                    "owner": owner,
                    "mode": mode,
                    "state": "waiting",
                    "position": position,
                }
            )
    return rows


def _session_rows(db: Any) -> List[Dict[str, Any]]:
    rows = []
    for session in list(db.live_sessions):
        rows.append(
            {
                "session": session.label,
                "user": session.user,
                "in_transaction": session.tx.in_transaction,
                "statements": len(session.statement_log),
            }
        )
    rows.sort(key=lambda row: (row["session"] is None, row["session"] or ""))
    return rows


_PRODUCERS = {
    "system.statements": _statement_rows,
    "system.metrics": _metric_rows,
    "system.locks": _lock_rows,
    "system.sessions": _session_rows,
}


def system_view_rows(db: Any, name: str) -> Tuple[List[str], List[Dict[str, Any]]]:
    """Columns and dict-rows for one system view; ``name`` must be valid."""
    key = name.lower()
    return SYSTEM_VIEW_COLUMNS[key], _PRODUCERS[key](db)
