"""``python -m repro.obs`` — Prometheus-style metrics exposition.

With no arguments, runs a small traced demo workload against an in-memory
database and prints its metrics text plus the ``system.statements`` tail.
With a path argument, opens the durable database at that path and prints
its registry exposition (engine WAL/checkpoint counters included).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional


def _demo_text() -> str:
    from ..minidb import Database

    db = Database(owner="admin")
    db.observability_options["tracing"] = True
    session = db.connect("admin")
    session.execute("CREATE TABLE demo (id INT PRIMARY KEY, v INT)")
    for n in range(50):
        session.execute(f"INSERT INTO demo VALUES ({n}, {n % 7})")
    session.execute("SELECT COUNT(*) FROM demo WHERE v = 3")
    session.execute("SELECT v FROM demo WHERE id = 17")
    tail = session.execute(
        "SELECT sql, duration_ms, rows_returned FROM system.statements "
        "ORDER BY duration_ms DESC LIMIT 3"
    )
    lines = [db.metrics.render_text(), "# slowest statements (system.statements):"]
    for sql, duration_ms, rows_returned in tail.rows:
        lines.append(f"#   {duration_ms} ms rows={rows_returned} {sql}")
    return "\n".join(lines)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "path",
        nargs="?",
        help="durable database directory to open (default: traced demo workload)",
    )
    args = parser.parse_args(argv)
    if args.path is None:
        print(_demo_text())
        return 0
    from ..minidb import Database

    db = Database.open(args.path, owner="admin")
    try:
        print(db.metrics.render_text(), end="")
    finally:
        db.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
